"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main
from repro.io import load_npz


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.npz"
    code = main([
        "generate", "--model", "rmat", "--scale", "9", "--edge-factor", "8",
        "--ts-max", "50", "--seed", "3", "--out", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_rmat_npz(self, graph_file):
        g = load_npz(graph_file)
        assert g.n == 512 and g.m == 8 * 512
        assert g.ts is not None and g.ts.max() <= 50

    def test_text_output(self, tmp_path):
        path = tmp_path / "g.txt"
        assert main(["generate", "--scale", "6", "--out", str(path)]) == 0
        assert path.exists()
        assert sum(1 for line in open(path) if not line.startswith("#")) == 10 * 64

    def test_ws_model(self, tmp_path):
        path = tmp_path / "ws.npz"
        assert main(["generate", "--model", "ws", "--scale", "7", "--k", "4",
                     "--out", str(path)]) == 0
        g = load_npz(path)
        assert g.n == 128 and g.m == 128 * 2

    def test_er_model(self, tmp_path):
        path = tmp_path / "er.npz"
        assert main(["generate", "--model", "er", "--scale", "7", "--p", "0.05",
                     "--out", str(path)]) == 0
        assert load_npz(path).m > 0


class TestStats:
    def test_runs(self, graph_file, capsys):
        assert main(["stats", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "degrees:" in out
        assert "giant component" in out
        assert "effective diameter" in out


class TestConnectivity:
    def test_pairs_and_random(self, graph_file, capsys):
        assert main([
            "connectivity", str(graph_file), "--pairs", "0,1", "3,4",
            "--random", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "connected(0, 1)" in out
        assert "500 random queries" in out


class TestTrace:
    def test_quickstart_tree_and_jsonl(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        out = tmp_path / "trace.jsonl"
        assert main([
            "trace", "quickstart", "--scale", "9", "--edge-factor", "6",
            "--updates", "300", "--queries", "500", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        # The span tree reaches representation depth through the API and
        # update engine, and carries simulated time + counters.
        assert "trace.quickstart" in printed
        assert "api.apply" in printed
        assert "update_engine.apply_stream" in printed
        assert "adjacency.hybrid.apply_arcs" in printed
        assert "sim.sweep" in printed
        assert "sim_seconds" in printed
        assert "top counters" in printed
        assert "manifest" in printed

        events = read_jsonl(out)
        assert events
        ids = {e["manifest_id"] for e in events}
        assert len(ids) == 1  # every event stamped with the run manifest
        by_id = {e["span_id"]: e for e in events}

        def depth_of(e):
            d, p = 0, e["parent_id"]
            while p is not None:
                d += 1
                p = by_id[p]["parent_id"]
            return d

        max_depth = max(depth_of(e) for e in events)
        assert max_depth >= 3  # root -> api -> engine -> representation

    def test_single_kernel_workload(self, tmp_path, capsys):
        out = tmp_path / "bfs.jsonl"
        assert main(["trace", "bfs", "--scale", "8", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "core.bfs" in printed
        assert out.exists()

    def test_connectit_workload(self, tmp_path, capsys):
        out = tmp_path / "connectit.jsonl"
        assert main(["trace", "connectit", "--scale", "8", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "connectit.components" in printed
        assert "connectit.sample" in printed
        assert "connectit.finish" in printed
        assert out.exists()

    def test_tracing_disabled_after_run(self, tmp_path):
        from repro import obs

        assert main(["trace", "connectivity", "--scale", "8",
                     "--out", str(tmp_path / "c.jsonl")]) == 0
        assert not obs.tracing_enabled()


class TestSimulate:
    @pytest.mark.parametrize("rep", ["hybrid", "dynarr", "dynarr-nr"])
    def test_representations(self, graph_file, rep, capsys):
        assert main([
            "simulate", str(graph_file), "--representation", rep,
            "--machine", "t2",
        ]) == 0
        out = capsys.readouterr().out
        assert "UltraSPARC T2" in out
        assert "speedup" in out

    def test_power570(self, graph_file, capsys):
        assert main(["simulate", str(graph_file), "--machine", "power570"]) == 0
        assert "Power 570" in capsys.readouterr().out

    def test_text_input(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        main(["generate", "--scale", "7", "--out", str(path)])
        assert main(["simulate", str(path)]) == 0


class TestTraceFlagsAndExporters:
    WORKLOADS = ["quickstart", "updates", "bfs", "connectivity",
                 "components", "connectit", "fig08", "fig10"]

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_every_workload_quiet_no_manifest(
        self, workload, tmp_path, monkeypatch, capsys
    ):
        # fig08/fig10 write BENCH_repro.json + benchmarks/history.jsonl
        # into the cwd; keep that inside the temp dir.
        monkeypatch.chdir(tmp_path)
        assert main([
            "trace", workload, "--scale", "8", "--edge-factor", "4",
            "--updates", "100", "--queries", "400",
            "--quiet", "--no-manifest", "--out", str(tmp_path / "t.jsonl"),
        ]) == 0
        assert capsys.readouterr().out == ""
        assert (tmp_path / "t.jsonl").exists()

    def test_exported_artifacts_validate(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace, validate_speedscope

        chrome = tmp_path / "c.json"
        speedscope = tmp_path / "s.json"
        folded = tmp_path / "f.txt"
        assert main([
            "trace", "bfs", "--scale", "8", "--out", str(tmp_path / "t.jsonl"),
            "--chrome", str(chrome), "--speedscope", str(speedscope),
            "--folded", str(folded),
        ]) == 0
        capsys.readouterr()
        chrome_doc = json.loads(chrome.read_text())
        assert validate_chrome_trace(chrome_doc) == []
        assert chrome_doc["metadata"]["id"]  # run manifest rides along
        assert validate_speedscope(json.loads(speedscope.read_text())) == []
        assert any(line.startswith("trace.bfs") for line in
                   folded.read_text().splitlines())

    def test_memprof_attaches_span_memory(self, tmp_path, capsys):
        from repro import obs
        from repro.obs import read_jsonl

        out = tmp_path / "t.jsonl"
        assert main([
            "trace", "bfs", "--scale", "8", "--memprof", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        events = read_jsonl(out)
        assert all("peak_bytes" in e["attrs"] for e in events)
        # The CLI turns profiling back off before exiting.
        from repro.obs.prof import memory_profiling_enabled
        assert not memory_profiling_enabled()
        assert not obs.tracing_enabled()

    def test_fig08_appends_history(self, tmp_path, monkeypatch, capsys):
        from repro.obs.history import load_history

        monkeypatch.chdir(tmp_path)
        for _ in range(2):
            assert main([
                "trace", "fig08", "--scale", "8", "--edge-factor", "4",
                "--queries", "400", "--quiet", "--out", str(tmp_path / "t.jsonl"),
            ]) == 0
        capsys.readouterr()
        records = load_history(tmp_path / "benchmarks" / "history.jsonl")
        assert len(records) == 2
        assert all("trace.fig08[scale=8]" in r["kernels"] for r in records)


class TestBench:
    def seed_history(self, path, values):
        from repro.obs.history import append_bench_history

        for i, v in enumerate(values):
            append_bench_history(
                path,
                [{"kernel": "k", "host_seconds": v}],
                manifest={"id": f"m{i}", "git_sha": f"sha{i}",
                          "created": f"2026-08-0{i + 1}T00:00:00Z"},
            )

    def test_diff_prints_percentage(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        self.seed_history(hist, [1.0, 2.0])
        assert main(["bench", "diff", "first", "latest",
                     "--history", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "+100.0%" in out and "!! drift" in out

    def test_diff_fail_on_drift(self, tmp_path, capsys):
        from repro.__main__ import BENCH_EXIT_CLEAN, BENCH_EXIT_DRIFT

        hist = tmp_path / "history.jsonl"
        self.seed_history(hist, [1.0, 2.0])
        # Drift has its own exit code (3), distinct from usage errors (2),
        # so CI scripts can branch on the failure mode.
        assert main(["bench", "diff", "0", "-1", "--history", str(hist),
                     "--fail-on-drift"]) == BENCH_EXIT_DRIFT == 3
        assert main(["bench", "diff", "0", "-1", "--history", str(hist),
                     "--threshold", "150", "--fail-on-drift"]) == BENCH_EXIT_CLEAN == 0
        capsys.readouterr()

    def test_trend_fail_on_drift_uses_drift_code(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        self.seed_history(hist, [1.0, 1.05, 2.0])
        assert main(["bench", "trend", "--history", str(hist),
                     "--fail-on-drift"]) == 3
        capsys.readouterr()

    def test_trend_walks_trajectory(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        self.seed_history(hist, [1.0, 1.1, 1.2])
        assert main(["bench", "trend", "--history", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "3 recorded run(s)" in out and "+20.0%" in out

    def test_empty_history_messages(self, tmp_path, capsys):
        hist = tmp_path / "none.jsonl"
        assert main(["bench", "trend", "--history", str(hist)]) == 0
        assert "empty" in capsys.readouterr().out
        assert main(["bench", "diff", "0", "1", "--history", str(hist)]) == 2
        assert "error:" in capsys.readouterr().out


class TestKernels:
    """``repro kernels``: the compiled-tier dispatch state report."""

    def test_reports_dispatch_state(self, capsys):
        from repro import kernels

        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "compiled tier" in out
        assert "default tier" in out
        for name in kernels.KERNEL_NAMES:
            assert name in out
        assert "repro.adjacency.bulkops.apply_mixed" in out

    def test_warmup_flag_reports_compile_cost(self, capsys):
        assert main(["kernels", "--warmup"]) == 0
        out = capsys.readouterr().out
        assert "warmup: tier" in out
        assert "compile" in out

    def test_unsatisfiable_env_tier_exits_nonzero(self, monkeypatch, capsys):
        from repro import kernels

        if kernels.numba_available():
            pytest.skip("compiled tier is satisfiable with numba installed")
        monkeypatch.setenv(kernels.ENV_VAR, "compiled")
        assert main(["kernels"]) == 1
        out = capsys.readouterr().out
        assert "resolved tier : error" in out
        assert "repro[jit]" in out


class TestObs:
    """The ``repro obs`` family: serve a workload, scrape it, inspect it."""

    def serve_fixture(self):
        from repro import obs

        obs.METRICS.reset()
        obs.METRICS.inc("updates.applied", 7)
        obs.METRICS.observe("lat.seconds", 0.25)
        collector = obs.TelemetryCollector(interval=3600)
        collector.tick()
        return obs.TelemetryServer(collector=collector)

    def test_serve_runs_workload_and_writes_url_file(self, tmp_path, capsys):
        from repro import obs

        url_file = tmp_path / "url.txt"
        assert main([
            "obs", "serve", "updates", "--scale", "8", "--edge-factor", "4",
            "--updates", "200", "--url-file", str(url_file),
        ]) == 0
        out = capsys.readouterr().out
        assert url_file.read_text().startswith("http://127.0.0.1:")
        assert "1 workload round(s)" in out and "series collected" in out
        assert not obs.live_telemetry_enabled()  # clean teardown

    def test_scrape_check_and_out(self, tmp_path, capsys):
        with self.serve_fixture() as server:
            payload = tmp_path / "payload.txt"
            assert main([
                "obs", "scrape", server.url, "--check", "--out", str(payload),
            ]) == 0
            out = capsys.readouterr().out
            assert "payload valid:" in out
            text = payload.read_text()
        assert text.rstrip().endswith("# EOF")
        assert "updates_applied_total 7" in text

    def test_scrape_prints_to_stdout_without_out(self, capsys):
        with self.serve_fixture() as server:
            assert main(["obs", "scrape", server.url]) == 0
            assert "updates_applied_total 7" in capsys.readouterr().out

    def test_scrape_unreachable_endpoint_exits_2(self, capsys):
        assert main([
            "obs", "scrape", "http://127.0.0.1:9", "--timeout", "0.5",
        ]) == 2
        assert "error:" in capsys.readouterr().out

    def test_top_renders_rollups(self, capsys):
        with self.serve_fixture() as server:
            assert main(["obs", "top", server.url, "--top", "5"]) == 0
            out = capsys.readouterr().out
        assert "updates.applied" in out and "p99" in out
