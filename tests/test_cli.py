"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main
from repro.io import load_npz


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.npz"
    code = main([
        "generate", "--model", "rmat", "--scale", "9", "--edge-factor", "8",
        "--ts-max", "50", "--seed", "3", "--out", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_rmat_npz(self, graph_file):
        g = load_npz(graph_file)
        assert g.n == 512 and g.m == 8 * 512
        assert g.ts is not None and g.ts.max() <= 50

    def test_text_output(self, tmp_path):
        path = tmp_path / "g.txt"
        assert main(["generate", "--scale", "6", "--out", str(path)]) == 0
        assert path.exists()
        assert sum(1 for line in open(path) if not line.startswith("#")) == 10 * 64

    def test_ws_model(self, tmp_path):
        path = tmp_path / "ws.npz"
        assert main(["generate", "--model", "ws", "--scale", "7", "--k", "4",
                     "--out", str(path)]) == 0
        g = load_npz(path)
        assert g.n == 128 and g.m == 128 * 2

    def test_er_model(self, tmp_path):
        path = tmp_path / "er.npz"
        assert main(["generate", "--model", "er", "--scale", "7", "--p", "0.05",
                     "--out", str(path)]) == 0
        assert load_npz(path).m > 0


class TestStats:
    def test_runs(self, graph_file, capsys):
        assert main(["stats", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "degrees:" in out
        assert "giant component" in out
        assert "effective diameter" in out


class TestConnectivity:
    def test_pairs_and_random(self, graph_file, capsys):
        assert main([
            "connectivity", str(graph_file), "--pairs", "0,1", "3,4",
            "--random", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "connected(0, 1)" in out
        assert "500 random queries" in out


class TestTrace:
    def test_quickstart_tree_and_jsonl(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        out = tmp_path / "trace.jsonl"
        assert main([
            "trace", "quickstart", "--scale", "9", "--edge-factor", "6",
            "--updates", "300", "--queries", "500", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        # The span tree reaches representation depth through the API and
        # update engine, and carries simulated time + counters.
        assert "trace.quickstart" in printed
        assert "api.apply" in printed
        assert "update_engine.apply_stream" in printed
        assert "adjacency.hybrid.apply_arcs" in printed
        assert "sim.sweep" in printed
        assert "sim_seconds" in printed
        assert "top counters" in printed
        assert "manifest" in printed

        events = read_jsonl(out)
        assert events
        ids = {e["manifest_id"] for e in events}
        assert len(ids) == 1  # every event stamped with the run manifest
        by_id = {e["span_id"]: e for e in events}

        def depth_of(e):
            d, p = 0, e["parent_id"]
            while p is not None:
                d += 1
                p = by_id[p]["parent_id"]
            return d

        max_depth = max(depth_of(e) for e in events)
        assert max_depth >= 3  # root -> api -> engine -> representation

    def test_single_kernel_workload(self, tmp_path, capsys):
        out = tmp_path / "bfs.jsonl"
        assert main(["trace", "bfs", "--scale", "8", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "core.bfs" in printed
        assert out.exists()

    def test_connectit_workload(self, tmp_path, capsys):
        out = tmp_path / "connectit.jsonl"
        assert main(["trace", "connectit", "--scale", "8", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "connectit.components" in printed
        assert "connectit.sample" in printed
        assert "connectit.finish" in printed
        assert out.exists()

    def test_tracing_disabled_after_run(self, tmp_path):
        from repro import obs

        assert main(["trace", "connectivity", "--scale", "8",
                     "--out", str(tmp_path / "c.jsonl")]) == 0
        assert not obs.tracing_enabled()


class TestSimulate:
    @pytest.mark.parametrize("rep", ["hybrid", "dynarr", "dynarr-nr"])
    def test_representations(self, graph_file, rep, capsys):
        assert main([
            "simulate", str(graph_file), "--representation", rep,
            "--machine", "t2",
        ]) == 0
        out = capsys.readouterr().out
        assert "UltraSPARC T2" in out
        assert "speedup" in out

    def test_power570(self, graph_file, capsys):
        assert main(["simulate", str(graph_file), "--machine", "power570"]) == 0
        assert "Power 570" in capsys.readouterr().out

    def test_text_input(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        main(["generate", "--scale", "7", "--out", str(path)])
        assert main(["simulate", str(path)]) == 0
