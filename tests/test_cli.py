"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.io import load_npz


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.npz"
    code = main([
        "generate", "--model", "rmat", "--scale", "9", "--edge-factor", "8",
        "--ts-max", "50", "--seed", "3", "--out", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_rmat_npz(self, graph_file):
        g = load_npz(graph_file)
        assert g.n == 512 and g.m == 8 * 512
        assert g.ts is not None and g.ts.max() <= 50

    def test_text_output(self, tmp_path):
        path = tmp_path / "g.txt"
        assert main(["generate", "--scale", "6", "--out", str(path)]) == 0
        assert path.exists()
        assert sum(1 for line in open(path) if not line.startswith("#")) == 10 * 64

    def test_ws_model(self, tmp_path):
        path = tmp_path / "ws.npz"
        assert main(["generate", "--model", "ws", "--scale", "7", "--k", "4",
                     "--out", str(path)]) == 0
        g = load_npz(path)
        assert g.n == 128 and g.m == 128 * 2

    def test_er_model(self, tmp_path):
        path = tmp_path / "er.npz"
        assert main(["generate", "--model", "er", "--scale", "7", "--p", "0.05",
                     "--out", str(path)]) == 0
        assert load_npz(path).m > 0


class TestStats:
    def test_runs(self, graph_file, capsys):
        assert main(["stats", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "degrees:" in out
        assert "giant component" in out
        assert "effective diameter" in out


class TestConnectivity:
    def test_pairs_and_random(self, graph_file, capsys):
        assert main([
            "connectivity", str(graph_file), "--pairs", "0,1", "3,4",
            "--random", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "connected(0, 1)" in out
        assert "500 random queries" in out


class TestSimulate:
    @pytest.mark.parametrize("rep", ["hybrid", "dynarr", "dynarr-nr"])
    def test_representations(self, graph_file, rep, capsys):
        assert main([
            "simulate", str(graph_file), "--representation", rep,
            "--machine", "t2",
        ]) == 0
        out = capsys.readouterr().out
        assert "UltraSPARC T2" in out
        assert "speedup" in out

    def test_power570(self, graph_file, capsys):
        assert main(["simulate", str(graph_file), "--machine", "power570"]) == 0
        assert "Power 570" in capsys.readouterr().out

    def test_text_input(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        main(["generate", "--scale", "7", "--out", str(path)])
        assert main(["simulate", str(path)]) == 0
