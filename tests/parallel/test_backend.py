"""Backend selection semantics and the ``backend=`` API thread-through."""

import numpy as np
import pytest

from repro.api import DynamicGraph
from repro.core.connectivity import ConnectivityIndex
from repro.core.linkcut import LinkCutForest
from repro.adjacency.csr import build_csr
from repro.errors import ParallelError
from repro.generators.rmat import rmat_graph
from repro.parallel.backend import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    resolve_backend,
)


class TestResolveBackend:
    def test_strings_are_owned(self):
        for name in BACKENDS:
            be, owned = resolve_backend(name)
            try:
                assert owned
                assert be.name == name
            finally:
                be.close()

    def test_instances_are_borrowed(self):
        be = SerialBackend()
        got, owned = resolve_backend(be)
        assert got is be and not owned

        pbe = ProcessBackend(1)
        try:
            got, owned = resolve_backend(pbe, workers=1)
            assert got is pbe and not owned
        finally:
            pbe.close()

    def test_worker_mismatch_rejected(self):
        pbe = ProcessBackend(1)
        try:
            with pytest.raises(ParallelError, match="workers"):
                resolve_backend(pbe, workers=3)
        finally:
            pbe.close()

    def test_unknown_backend(self):
        with pytest.raises(ParallelError, match="unknown backend"):
            resolve_backend("threads")

    def test_close_is_idempotent(self):
        be, _ = resolve_backend("process", workers=1)
        be.close()
        be.close()


@pytest.fixture(scope="module")
def graph():
    el = rmat_graph(8, 8, seed=13)
    return DynamicGraph.from_edges(el.n, el.src, el.dst, representation="dynarr")


class TestApiThreadThrough:
    def test_bfs_backends_agree(self, graph):
        serial = graph.bfs(0)
        par = graph.bfs(0, backend="process", workers=2)
        np.testing.assert_array_equal(serial.dist, par.dist)
        np.testing.assert_array_equal(serial.parent, par.parent)
        assert serial.frontier_sizes == par.frontier_sizes

    def test_components_backends_agree(self, graph):
        serial = graph.connected_components()
        par = graph.connected_components(backend="process", workers=2)
        np.testing.assert_array_equal(serial.labels, par.labels)
        assert serial.n_components == par.n_components

    def test_backend_instance_is_reusable(self, graph):
        with ProcessBackend(2) as be:
            first = graph.bfs(0, backend=be)
            second = graph.bfs(1, backend=be)
        np.testing.assert_array_equal(first.dist, graph.bfs(0).dist)
        np.testing.assert_array_equal(second.dist, graph.bfs(1).dist)


class TestConnectivityIndexBackend:
    def test_query_batch_backends_agree(self):
        csr = build_csr(rmat_graph(8, 8, seed=21))
        forest, record = LinkCutForest.from_csr(csr)
        index = ConnectivityIndex(forest, record)

        serial = index.random_query_batch(2000, seed=5)
        par = index.random_query_batch(2000, seed=5, backend="process", workers=2)
        np.testing.assert_array_equal(serial.connected, par.connected)
        assert serial.total_hops == par.total_hops
        assert par.profile.meta["backend"] == "process"
        assert par.profile.meta["workers"] == 2
        assert serial.profile.meta["workers"] == 1
