"""The process backend's contract: bit-identical results to serial.

Swept across every registered adjacency representation (the snapshot each
produces is the graph the kernels see), several seeds, worker counts, and
the time-stamp-filtered BFS variant; cross-checked against networkx where a
reference is cheap.  A hypothesis sweep feeds arbitrary small edge lists
through both backends.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adjacency.csr import build_csr, csr_from_arrays, csr_from_representation
from repro.adjacency.registry import REPRESENTATIONS, make_representation
from repro.core.bfs import bfs
from repro.core.components import connected_components
from repro.core.update_engine import construct
from repro.generators.rmat import rmat_graph
from repro.generators.reference import to_networkx
from repro.parallel.bfs import parallel_bfs
from repro.parallel.components import parallel_connected_components
from repro.parallel.queries import parallel_query_batch
from repro.core.linkcut import LinkCutForest

KINDS = sorted(REPRESENTATIONS)


def build_rep(kind, n):
    if kind == "dynarr-nr":
        return make_representation(kind, n, degrees=np.full(n, 512))
    if kind == "hybrid":
        return make_representation(kind, n, degree_thresh=4, seed=1)
    if kind == "treap":
        return make_representation(kind, n, seed=1)
    return make_representation(kind, n)


def assert_bfs_equal(serial, par):
    np.testing.assert_array_equal(serial.dist, par.dist)
    np.testing.assert_array_equal(serial.parent, par.parent)
    assert serial.frontier_sizes == par.frontier_sizes
    assert serial.edges_scanned == par.edges_scanned
    assert serial.max_frontier_degree == par.max_frontier_degree


@pytest.mark.parametrize("kind", KINDS)
def test_bfs_and_components_identical_across_representations(kind, pool):
    graph = rmat_graph(8, 8, seed=31, ts_range=(1, 50))
    rep = build_rep(kind, graph.n)
    construct(rep, graph)
    csr = csr_from_representation(rep)

    source = int(np.argmax(csr.degrees()))
    assert_bfs_equal(bfs(csr, source), parallel_bfs(csr, source, pool))

    serial_cc = connected_components(csr)
    par_cc = parallel_connected_components(csr, pool)
    np.testing.assert_array_equal(serial_cc.labels, par_cc.labels)
    assert serial_cc.n_passes == par_cc.n_passes
    assert serial_cc.jump_rounds == par_cc.jump_rounds
    assert serial_cc.arcs_processed == par_cc.arcs_processed


@pytest.mark.parametrize("seed", [3, 17, 92])
def test_bfs_seed_sweep(seed, pool):
    csr = build_csr(rmat_graph(9, 8, seed=seed))
    for source in (0, csr.n // 2):
        assert_bfs_equal(bfs(csr, source), parallel_bfs(csr, source, pool))


@pytest.mark.parametrize("seed", [3, 17])
def test_bfs_ts_filtered(seed, pool):
    csr = build_csr(rmat_graph(9, 8, seed=seed, ts_range=(1, 100)))
    for ts_range in ((1, 100), (10, 40)):
        assert_bfs_equal(
            bfs(csr, 0, ts_range=ts_range),
            parallel_bfs(csr, 0, pool, ts_range=ts_range),
        )


def test_bfs_inline_threshold_sweep(pool):
    # Any small-level inline threshold yields the same traversal.
    csr = build_csr(rmat_graph(9, 8, seed=5))
    serial = bfs(csr, 0)
    for thresh in (0, 64, 10**9):
        assert_bfs_equal(serial, parallel_bfs(csr, 0, pool, small_level_edges=thresh))


def test_components_match_networkx(pool):
    graph = rmat_graph(8, 8, seed=7)
    csr = build_csr(graph)
    par = parallel_connected_components(csr, pool)
    # to_networkx keeps all n nodes, so isolated vertices count as components
    expected = nx.number_connected_components(to_networkx(graph))
    assert par.n_components == expected


def test_query_batch_identical(pool):
    graph = rmat_graph(9, 8, seed=11)
    csr = build_csr(graph)
    forest, _ = LinkCutForest.from_csr(csr)
    rng = np.random.default_rng(2)
    us = rng.integers(0, csr.n, size=5000, dtype=np.int64)
    vs = rng.integers(0, csr.n, size=5000, dtype=np.int64)

    hops_before = forest.hops
    serial = forest.connected_batch(us, vs)
    serial_hops = forest.hops - hops_before

    answers, hops = parallel_query_batch(forest, us, vs, pool)
    np.testing.assert_array_equal(serial, answers)
    assert hops == serial_hops


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=24),
    edges=st.lists(
        st.tuples(st.integers(0, 23), st.integers(0, 23)), min_size=0, max_size=60
    ),
    source=st.integers(0, 23),
)
def test_property_random_graphs(n, edges, source, pool):
    src = np.array([u % n for u, _ in edges], dtype=np.int64)
    dst = np.array([v % n for _, v in edges], dtype=np.int64)
    csr = csr_from_arrays(n, src, dst)
    source %= n

    assert_bfs_equal(bfs(csr, source), parallel_bfs(csr, source, pool))
    serial_cc = connected_components(csr)
    par_cc = parallel_connected_components(csr, pool)
    np.testing.assert_array_equal(serial_cc.labels, par_cc.labels)
