"""Worker-pool behaviour: ordering, tracing, and crash resilience."""

import numpy as np
import pytest

from repro.errors import ParallelError, WorkerCrashError
from repro.obs import disable_tracing, enable_tracing
from repro.parallel.pool import TaskSpec, WorkerPool, default_workers
from repro.parallel.shm import ShmArena


class TestBasics:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_bad_worker_count(self):
        with pytest.raises(ParallelError):
            WorkerPool(-2)

    def test_results_in_submission_order(self, pool):
        tasks = [TaskSpec("selftest.echo", {"value": i}) for i in range(11)]
        outs = pool.run_tasks(tasks)
        assert [o["echo"] for o in outs] == list(range(11))

    def test_empty_round(self, pool):
        assert pool.run_tasks([]) == []

    def test_unknown_task_rejected_in_parent(self, pool):
        with pytest.raises(ParallelError, match="unknown task"):
            pool.run_tasks([TaskSpec("no.such.task", {})])

    def test_shared_arrays_reach_the_worker(self, pool):
        with ShmArena.create({"data": np.arange(6)}) as arena:
            outs = pool.run_tasks(
                [TaskSpec("selftest.echo", {"value": 1}, arenas=(arena.descriptor,))]
            )
        assert outs[0]["arrays"] == ["data"]

    def test_context_manager_shuts_down(self):
        with WorkerPool(1) as p:
            assert p.run_tasks([TaskSpec("selftest.echo", {"value": 9})])[0]["echo"] == 9
        with pytest.raises(ParallelError, match="shut down"):
            p.start()


class TestTraceAdoption:
    def test_worker_spans_adopted_under_parent(self, pool):
        tracer = enable_tracing()
        try:
            from repro.obs import span

            with span("parent.round"):
                pool.run_tasks([TaskSpec("selftest.echo", {"value": 5})])
            events = tracer.sink.events
        finally:
            disable_tracing()
        names = [e["name"] for e in events]
        assert "parallel.selftest.echo" in names
        assert "parallel.selftest.echo.inner" in names
        worker_ev = next(e for e in events if e["name"] == "parallel.selftest.echo")
        assert "worker" in worker_ev["attrs"]
        parent_ev = next(e for e in events if e["name"] == "parent.round")
        # adopted root spans hang off the then-open parent span
        assert worker_ev["parent_id"] == parent_ev["span_id"]
        # the inner worker span keeps its remapped parent chain
        inner = next(e for e in events if e["name"] == "parallel.selftest.echo.inner")
        assert inner["parent_id"] == worker_ev["span_id"]

    def test_span_ids_do_not_collide_with_parent_ids(self, pool):
        tracer = enable_tracing()
        try:
            from repro.obs import span

            with span("a"), span("b"):
                pool.run_tasks([TaskSpec("selftest.echo", {"value": 1})])
            ids = [e["span_id"] for e in tracer.sink.events]
        finally:
            disable_tracing()
        assert len(ids) == len(set(ids))


class TestCrashResilience:
    def test_task_exception_raises_with_traceback(self):
        with WorkerPool(2, timeout=60.0) as p:
            with pytest.raises(WorkerCrashError, match="boom"):
                p.run_tasks(
                    [
                        TaskSpec("selftest.echo", {"value": 0}),
                        TaskSpec("selftest.fail", {"message": "boom"}),
                    ]
                )
            # a raised task does not kill the worker: the pool stays usable
            out = p.run_tasks([TaskSpec("selftest.echo", {"value": 3})])
            assert out[0]["echo"] == 3

    def test_killed_worker_raises_cleanly_without_hang(self):
        p = WorkerPool(2, timeout=60.0)
        try:
            with pytest.raises(WorkerCrashError, match="died"):
                p.run_tasks(
                    [
                        TaskSpec("selftest.echo", {"value": 0}),
                        TaskSpec("selftest.exit", {"code": 3}),
                    ]
                )
            # round integrity is gone: the pool refuses further use
            with pytest.raises(ParallelError):
                p.run_tasks([TaskSpec("selftest.echo", {"value": 1})])
        finally:
            p.shutdown()
