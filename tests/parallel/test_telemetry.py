"""Worker telemetry aggregation: worker{i}./workers. rollups + pool health."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.core.connectivity import ConnectivityIndex
from repro.errors import WorkerCrashError
from repro.generators.rmat import rmat_graph
from repro.obs import METRICS
from repro.obs.prof import disable_memory_profiling, enable_memory_profiling
from repro.parallel.pool import TaskSpec, WorkerPool
from repro.parallel.queries import parallel_query_batch

MB = 1 << 20


def tick_specs(n_tasks, n=3, alloc_bytes=0):
    return [
        TaskSpec("selftest.tick", {"n": n, "alloc_bytes": alloc_bytes})
        for _ in range(n_tasks)
    ]


class TestCounterRollup:
    def test_worker_counters_land_under_prefix_and_rollup(self, pool):
        METRICS.reset()
        outs = pool.run_tasks(tick_specs(4, n=3))
        assert outs == [3, 3, 3, 3]
        snap = METRICS.snapshot()["counters"]
        # Deterministic i % p routing: 2 tasks per worker of the 2-worker pool.
        assert snap["worker0.selftest.ticks"] == 6
        assert snap["worker1.selftest.ticks"] == 6
        assert snap["workers.selftest.ticks"] == 12

    def test_worker_histograms_merge(self, pool):
        METRICS.reset()
        pool.run_tasks(tick_specs(4, n=2))
        h = METRICS.histogram("workers.selftest.lat").summary()
        assert h["count"] == 4 and h["total"] == 8.0

    def test_rollup_accumulates_across_rounds(self, pool):
        METRICS.reset()
        pool.run_tasks(tick_specs(2, n=1))
        pool.run_tasks(tick_specs(2, n=1))
        assert METRICS.counter("workers.selftest.ticks").value == 4


class TestPoolHealth:
    def test_dispatch_and_completion_counters(self, pool):
        METRICS.reset()
        pool.run_tasks(tick_specs(4))
        snap = METRICS.snapshot()
        assert snap["counters"]["parallel.pool.tasks_dispatched"] == 4
        assert snap["counters"]["parallel.pool.tasks_completed"] == 4
        # reset() keeps registered names, so earlier crash tests may have
        # registered the error counter — its value must still be zero.
        assert snap["counters"].get("parallel.pool.task_errors", 0) == 0

    def test_task_and_queue_wait_histograms(self, pool):
        METRICS.reset()
        pool.run_tasks(tick_specs(3))
        snap = METRICS.snapshot()["histograms"]
        assert snap["parallel.pool.task_seconds"]["count"] == 3
        wait = snap["parallel.pool.queue_wait_seconds"]
        assert wait["count"] == 3 and wait["min"] >= 0.0

    def test_workers_gauge_set_on_start(self):
        METRICS.reset()
        with WorkerPool(2, timeout=60.0) as p:
            p.run_tasks(tick_specs(1))
            assert METRICS.gauge("parallel.pool.workers").value == 2.0

    def test_error_path_ticks_task_errors_and_relays_telemetry(self):
        with WorkerPool(2, timeout=60.0) as p:
            p.run_tasks(tick_specs(1))  # warm
            METRICS.reset()
            with pytest.raises(WorkerCrashError):
                p.run_tasks([TaskSpec("selftest.fail", {"message": "boom"})])
            snap = METRICS.snapshot()["counters"]
            assert snap["parallel.pool.task_errors"] == 1
            # The failing task still ships its exec-time telemetry.
            assert METRICS.histogram("parallel.pool.task_seconds").summary()["count"] == 1


class TestWorkerMemory:
    def test_memory_peaks_shipped_when_profiling_enabled(self, pool):
        METRICS.reset()
        enable_memory_profiling()
        try:
            pool.run_tasks(tick_specs(2, alloc_bytes=8 * MB))
        finally:
            disable_memory_profiling()
        snap = METRICS.snapshot()["gauges"]
        assert snap["workers.memory.peak_bytes"] >= 8 * MB
        assert snap["worker0.memory.peak_bytes"] >= 8 * MB
        assert snap["worker1.memory.peak_bytes"] >= 8 * MB

    def test_no_memory_telemetry_when_profiling_disabled(self, pool):
        # reset() keeps registered names, so check the value: with
        # profiling off the workers ship no memory block and nothing
        # writes the gauge.
        METRICS.reset()
        pool.run_tasks(tick_specs(2, alloc_bytes=8 * MB))
        assert METRICS.gauge("workers.memory.peak_bytes").value == 0.0


class TestSerialEqualityContract:
    def test_worker_connectivity_counters_equal_serial(self, pool):
        # The acceptance contract: for a deterministic kernel, the
        # ``workers.`` rollup of a process-backend run equals the counters
        # the serial backend ticks for the identical batch.
        csr = build_csr(rmat_graph(9, 6, seed=5))
        index = ConnectivityIndex.from_csr(csr)
        rng = np.random.default_rng(11)
        us = rng.integers(0, csr.n, size=3000)
        vs = rng.integers(0, csr.n, size=3000)

        METRICS.reset()
        serial = index.query_batch(us, vs)
        serial_hops = METRICS.counter("connectivity.hops").value
        serial_queries = METRICS.counter("connectivity.queries").value
        assert serial_queries == 3000 and serial_hops > 0

        METRICS.reset()
        connected, hops = parallel_query_batch(index.forest, us, vs, pool)
        snap = METRICS.snapshot()["counters"]
        assert np.array_equal(connected, serial.connected)
        assert hops == serial_hops
        assert snap["workers.connectivity.hops"] == serial_hops
        assert snap["workers.connectivity.queries"] == serial_queries
        assert (
            snap["worker0.connectivity.hops"] + snap["worker1.connectivity.hops"]
            == serial_hops
        )
