"""Shared fixtures for the process-backend test suite.

A single two-worker pool is shared across the whole session: pool start-up
(fork + queue plumbing) costs tens of milliseconds, and every test only
needs *some* pool, not a private one.  Tests that kill workers on purpose
build their own throwaway pools.
"""

from __future__ import annotations

import pytest

from repro.parallel.pool import WorkerPool


@pytest.fixture(scope="session")
def pool():
    p = WorkerPool(2, timeout=120.0)
    p.start()
    yield p
    p.shutdown()
