"""Shared-memory arena round trips (single process: attach by descriptor)."""

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel.shm import ArraySpec, ShmArena


class TestArraySpec:
    def test_nbytes(self):
        assert ArraySpec("a", "<i8", (3, 4), 0).nbytes == 96
        assert ArraySpec("b", "<f4", (0,), 0).nbytes == 0


class TestArenaRoundTrip:
    def test_create_view_attach(self):
        arrays = {
            "ints": np.arange(100, dtype=np.int64),
            "floats": np.linspace(0, 1, 17, dtype=np.float64),
            "flags": np.array([True, False, True]),
            "empty": np.empty(0, dtype=np.int64),
        }
        with ShmArena.create(arrays) as arena:
            for name, arr in arrays.items():
                np.testing.assert_array_equal(arena.view(name), arr)
            other = ShmArena.attach(arena.descriptor)
            try:
                for name, arr in arrays.items():
                    np.testing.assert_array_equal(other.view(name), arr)
                assert sorted(other) == sorted(arrays)
            finally:
                other.close()

    def test_mutation_is_visible_across_attachments(self):
        with ShmArena.create({"x": np.zeros(8, dtype=np.int64)}) as arena:
            other = ShmArena.attach(arena.descriptor)
            try:
                arena.view("x")[3] = 42
                assert other.view("x")[3] == 42
                other.view("x")[5] = 7
                assert arena.view("x")[5] == 7
            finally:
                other.close()

    def test_alignment(self):
        specs = ShmArena.create(
            {"a": np.zeros(3, dtype=np.int8), "b": np.zeros(5, dtype=np.int64)}
        )
        try:
            b = specs.descriptor.specs[1]
            assert b.name == "b"
            assert b.offset % 64 == 0
        finally:
            specs.close()
            specs.unlink()

    def test_descriptor_is_picklable(self):
        import pickle

        with ShmArena.create({"x": np.arange(4)}) as arena:
            d2 = pickle.loads(pickle.dumps(arena.descriptor))
            assert d2 == arena.descriptor
            other = ShmArena.attach(d2)
            try:
                np.testing.assert_array_equal(other.view("x"), np.arange(4))
            finally:
                other.close()


class TestArenaErrors:
    def test_empty_arena_rejected(self):
        with pytest.raises(ParallelError, match="empty"):
            ShmArena.create({})

    def test_unknown_array_name(self):
        with ShmArena.create({"x": np.arange(4)}) as arena:
            with pytest.raises(ParallelError, match="no array"):
                arena.view("y")

    def test_view_after_close(self):
        arena = ShmArena.create({"x": np.arange(4)})
        arena.close()
        arena.unlink()
        with pytest.raises(ParallelError, match="closed"):
            arena.view("x")

    def test_close_is_idempotent(self):
        arena = ShmArena.create({"x": np.arange(4)})
        arena.close()
        arena.close()
        arena.unlink()
        arena.unlink()

    def test_zero_size_only_arena_has_no_segment(self):
        with ShmArena.create({"e": np.empty(0, dtype=np.float64)}) as arena:
            assert arena.nbytes == 0
            assert arena.view("e").size == 0
            other = ShmArena.attach(arena.descriptor)
            try:
                assert other.view("e").size == 0
            finally:
                other.close()
