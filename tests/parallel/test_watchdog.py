"""Hang-detection coverage: heartbeats, watchdog alerts, pool recovery.

These tests exercise the real :class:`~repro.parallel.pool.WorkerPool`
against the :class:`~repro.obs.live.Watchdog`: a deliberately stalled
worker must surface as a structured alert event in the trace stream
*before* the round timeout matures into a
:class:`~repro.errors.WorkerCrashError`, and the pool must come back
clean via :meth:`~repro.parallel.pool.WorkerPool.restart`.
"""

import threading
import time

import pytest

from repro.errors import WorkerCrashError
from repro.obs import MemorySink, disable_tracing, enable_tracing
from repro.obs.live import Watchdog
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import alerts
from repro.parallel.pool import TaskSpec, WorkerPool


@pytest.fixture
def hb_pool():
    pool = WorkerPool(2, timeout=60.0, heartbeat_interval=0.05)
    pool.start()
    yield pool
    pool.shutdown()


def wait_for(predicate, *, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestHeartbeats:
    def test_beats_flow_between_rounds(self, hb_pool):
        hb_pool.run_tasks([TaskSpec("selftest.echo", {"value": 1})])

        def both_beating():
            return len(hb_pool.poll_heartbeats()) == hb_pool.workers

        assert wait_for(both_beating)
        beats = hb_pool.heartbeats()
        assert sorted(beats) == [0, 1]
        for beat in beats.values():
            assert beat["task_id"] is None  # idle between rounds
            assert "received" in beat and "rss_bytes" in beat
        assert beats[0]["n_done"] >= 1

    def test_worker_health_reports_alive(self, hb_pool):
        health = hb_pool.worker_health()
        assert [h["worker"] for h in health] == [0, 1]
        assert all(h["alive"] for h in health)

    def test_default_pool_sends_no_heartbeats(self):
        with WorkerPool(1, timeout=30.0) as pool:
            pool.run_tasks([TaskSpec("selftest.echo", {"value": 1})])
            time.sleep(0.15)
            assert pool.poll_heartbeats() == {}


class TestStallDetection:
    def run_round_in_thread(self, pool, spec):
        errors = []

        def run():
            try:
                pool.run_tasks([spec])
            except WorkerCrashError as exc:
                errors.append(exc)

        thread = threading.Thread(target=run)
        thread.start()
        return thread, errors

    def test_stalled_worker_raises_alert_and_pool_recovers(self, hb_pool):
        sink = MemorySink()
        enable_tracing(sink)
        reg = MetricsRegistry()
        wd = Watchdog(hb_pool, stall_after=0.3, registry=reg)
        thread, errors = self.run_round_in_thread(
            hb_pool, TaskSpec("selftest.sleep", {"seconds": 1.5})
        )
        try:
            # The watchdog fires while the round is still in flight: the
            # drain loop records heartbeats, the check runs on this thread.
            assert wait_for(lambda: wd.check(), timeout=10.0)
        finally:
            thread.join()
            disable_tracing()
        assert not errors  # the round itself completed within its timeout
        (alert,) = wd.alerts
        assert alert["kind"] == "worker_stalled"
        assert alert["task"] == "selftest.sleep"
        assert alert["error_type"] == "WorkerCrashError"
        assert reg.counter("obs.watchdog.worker_stalled").value == 1
        flagged = alerts(sink.events)
        assert [e["name"] for e in flagged] == ["watchdog.worker_stalled"]
        # Clean recovery: the same pool keeps serving rounds.
        out = hb_pool.run_tasks([TaskSpec("selftest.echo", {"value": 9})])
        assert out[0]["echo"] == 9

    def test_timeout_then_restart_recovers_cleanly(self):
        pool = WorkerPool(1, timeout=0.5, heartbeat_interval=0.05)
        try:
            with pytest.raises(WorkerCrashError, match="timed out"):
                pool.run_tasks([TaskSpec("selftest.sleep", {"seconds": 30.0})])
            pool.restart()
            out = pool.run_tasks([TaskSpec("selftest.echo", {"value": 3})])
            assert out[0]["echo"] == 3
        finally:
            pool.shutdown()

    def test_dead_worker_surfaces_as_watchdog_alert(self):
        pool = WorkerPool(2, timeout=30.0, heartbeat_interval=0.05)
        pool.start()
        try:
            wd = Watchdog(pool, registry=MetricsRegistry())
            victim = pool._procs[0]
            victim.terminate()
            victim.join(timeout=5.0)
            new = wd.check()
            kinds = {a["kind"] for a in new}
            assert kinds == {"worker_dead"}
            assert new[0]["worker"] == 0
        finally:
            pool.shutdown()

    def test_restart_filters_stale_results_from_old_generation(self):
        # A round that times out leaves its (eventual) results in flight;
        # after restart the monotonic task counter keeps them out.
        pool = WorkerPool(1, timeout=0.4, heartbeat_interval=0.05)
        try:
            with pytest.raises(WorkerCrashError):
                pool.run_tasks([TaskSpec("selftest.sleep", {"seconds": 5.0})])
            pool.restart()
            outs = pool.run_tasks(
                [TaskSpec("selftest.echo", {"value": i}) for i in range(4)]
            )
            assert [o["echo"] for o in outs] == [0, 1, 2, 3]
        finally:
            pool.shutdown()
