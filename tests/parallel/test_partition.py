"""Deterministic partitioning: coverage, balance, and Vpart compatibility."""

import numpy as np
import pytest

from repro.adjacency.vpart import VPartAdjacency
from repro.errors import ParallelError
from repro.parallel.partition import range_chunks, vpart_owner, weighted_chunks


def assert_covers(chunks, total):
    """Chunks are contiguous, ordered, non-empty, and cover [0, total)."""
    assert all(lo < hi for lo, hi in chunks)
    flat = [lo for lo, _ in chunks] + [chunks[-1][1]] if chunks else []
    if total == 0:
        assert chunks == []
        return
    assert chunks[0][0] == 0
    assert chunks[-1][1] == total
    for (_, hi), (lo2, _) in zip(chunks, chunks[1:]):
        assert hi == lo2
    assert flat == sorted(flat)


class TestVpartOwner:
    def test_matches_vpart_representation(self):
        rep = VPartAdjacency(32)
        for u in range(32):
            for p in (1, 2, 3, 8):
                assert vpart_owner(u, p) == rep.owner(u, p)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ParallelError):
            vpart_owner(3, 0)


class TestRangeChunks:
    @pytest.mark.parametrize("total", [0, 1, 2, 7, 16, 1000])
    @pytest.mark.parametrize("parts", [1, 2, 3, 8])
    def test_coverage(self, total, parts):
        chunks = range_chunks(total, parts)
        assert_covers(chunks, total)
        assert len(chunks) <= parts

    def test_balanced_within_one(self):
        sizes = [hi - lo for lo, hi in range_chunks(1001, 8)]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        assert range_chunks(97, 5) == range_chunks(97, 5)

    def test_errors(self):
        with pytest.raises(ParallelError):
            range_chunks(10, 0)
        with pytest.raises(ParallelError):
            range_chunks(-1, 2)


class TestWeightedChunks:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("parts", [1, 2, 4, 7])
    def test_coverage(self, seed, parts):
        rng = np.random.default_rng(seed)
        w = rng.integers(0, 50, size=64)
        chunks = weighted_chunks(w, parts)
        assert_covers(chunks, 64)

    def test_hot_item_does_not_serialise_partners(self):
        # One vertex with 10k weight among 1-weight partners: the hot item's
        # chunk should not also absorb most of the light items.
        w = np.ones(100, dtype=np.int64)
        w[0] = 10_000
        chunks = weighted_chunks(w, 4)
        hot = next((lo, hi) for lo, hi in chunks if lo == 0)
        assert hot[1] - hot[0] <= 2  # the hot vertex rides (nearly) alone

    def test_zero_total_falls_back_to_ranges(self):
        assert weighted_chunks(np.zeros(10, dtype=np.int64), 3) == range_chunks(10, 3)

    def test_empty(self):
        assert weighted_chunks(np.empty(0, dtype=np.int64), 3) == []

    def test_deterministic(self):
        w = np.arange(50) % 7
        assert weighted_chunks(w, 4) == weighted_chunks(w, 4)

    def test_negative_weight_rejected(self):
        with pytest.raises(ParallelError):
            weighted_chunks(np.array([1, -1]), 2)
