"""Tests for the JSON experiment exporter."""

import json

import numpy as np
import pytest

from repro.experiments import get_figure
from repro.experiments.report import _jsonify_row, collect, figure_to_dict, write_json


class TestFigureToDict:
    @pytest.fixture(scope="class")
    def fig(self):
        return get_figure("fig02")(quick=True)

    def test_structure(self, fig):
        d = figure_to_dict(fig)
        assert d["figure"] == "Figure 2"
        assert d["all_passed"] is True
        assert set(d["checks"]) == set(fig.checks)
        assert len(d["series"]) == 2

    def test_series_content(self, fig):
        d = figure_to_dict(fig)
        s = d["series"][0]
        assert s["threads"] == [1, 2, 4, 8, 16, 32, 64]
        assert len(s["seconds"]) == 7
        assert s["speedups"][0] == 1.0
        assert "mups" in s

    def test_json_serialisable(self, fig):
        json.dumps(figure_to_dict(fig))

    def test_rows_jsonified(self):
        fig01 = get_figure("fig01")(quick=True)
        d = figure_to_dict(fig01)
        assert d["rows"]
        json.dumps(d)

    def test_meta_carries_manifest_id(self, fig):
        d = figure_to_dict(fig)
        assert d["meta"]["manifest_id"]


class TestJsonifyRow:
    def test_numpy_scalars_and_arrays(self):
        row = {
            "count": np.int64(3),
            "rate": np.float32(1.5),
            "passed": np.bool_(True),
            "series": np.array([1.0, 2.0]),
            "label": "x",
        }
        out = _jsonify_row(row)
        json.dumps(out)
        assert out == {
            "count": 3,
            "rate": 1.5,
            "passed": True,
            "series": [1.0, 2.0],
            "label": "x",
        }
        assert isinstance(out["passed"], bool)


class TestCollect:
    def test_subset(self):
        doc = collect(quick=True, figures=["fig02", "fig09"])
        assert set(doc["figures"]) == {"fig02", "fig09"}
        assert doc["all_passed"] is True
        assert doc["mode"] == "quick"

    def test_document_manifest(self):
        doc = collect(quick=True, figures=["fig09"])
        json.dumps(doc)
        manifest = doc["manifest"]
        assert manifest["id"] and manifest["git_sha"] and manifest["numpy"]
        assert doc["figures"]["fig09"]["meta"]["manifest_id"] == manifest["id"]

    def test_write_json(self, tmp_path):
        path = tmp_path / "report.json"
        doc = write_json(path, quick=True, figures=["fig02"])
        loaded = json.loads(path.read_text())
        assert loaded["figures"]["fig02"]["figure"] == "Figure 2"
        assert loaded["all_passed"] == doc["all_passed"]
