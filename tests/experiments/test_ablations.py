"""The ablation sweeps must pass their checks and produce coherent tables."""

import pytest

from repro.experiments import ablations
from repro.experiments.report import ABLATIONS, ablation_runners


def test_registry_matches_module():
    """Every registered key resolves to a runner; every runner is registered."""
    assert [k for k, _ in ablation_runners()] == list(ABLATIONS)
    exported = {name[len("run_"):] for name in ablations.__all__ if name.startswith("run_")}
    assert exported == set(ABLATIONS)


@pytest.mark.parametrize(
    "runner", [fn for _, fn in ablation_runners()], ids=list(ABLATIONS)
)
def test_ablation_checks(runner):
    result = runner(quick=True)
    assert result.rows, "ablation produced no table"
    failures = result.failed_checks()
    assert not failures, failures


def test_mix_ratio_monotone_trend():
    """Hybrid/Dyn-arr ratio grows monotonically with the deletion share."""
    result = ablations.run_mix_ratio(quick=True)
    ratios = [r["hybrid/dynarr"] for r in result.rows]
    assert all(b >= a * 0.8 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > ratios[0]


def test_resize_policy_k_zero_worst_copies():
    result = ablations.run_resize_policy(quick=True)
    rows = {(r["k"], r["growth"]): r for r in result.rows}
    assert rows[(0, 2)]["copied_words"] >= rows[(8, 2)]["copied_words"]


def test_degree_thresh_tradeoff_direction():
    result = ablations.run_degree_thresh(quick=True)
    rows = sorted(result.rows, key=lambda r: r["degree_thresh"])
    # fewer treap vertices as the threshold rises
    tv = [r["treap_vertices"] for r in rows]
    assert all(a >= b for a, b in zip(tv, tv[1:]))
