"""EXPERIMENTS.md's generated figure index must match the code registry.

Three sync directions are pinned: the markdown block between the
``GENERATED FIGURE INDEX`` markers equals :func:`figure_index_table`
verbatim; every metadata row matches what the figure module actually does
(title strings in the source, ``backend`` keyword in the run signature);
and every referenced benchmark file exists on disk.
"""

from __future__ import annotations

import inspect
from pathlib import Path

from repro.experiments import FIGURE_MODULES, get_figure
from repro.experiments.report import FIGURE_INDEX, figure_index_table

REPO = Path(__file__).resolve().parents[2]
BEGIN = "<!-- BEGIN GENERATED FIGURE INDEX -->"
END = "<!-- END GENERATED FIGURE INDEX -->"


def test_index_covers_exactly_the_figure_modules():
    assert list(FIGURE_INDEX) == list(FIGURE_MODULES)


def test_experiments_md_block_is_generated_output():
    text = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
    assert text.count(BEGIN) == 1 and text.count(END) == 1
    block = text.split(BEGIN)[1].split(END)[0].strip()
    assert block == figure_index_table().strip()


def test_benchmark_files_exist():
    for name, meta in FIGURE_INDEX.items():
        path = REPO / meta["benchmark"]
        assert path.is_file(), f"{name}: missing benchmark {meta['benchmark']}"


def test_backends_column_matches_runner_signature():
    for name, meta in FIGURE_INDEX.items():
        params = inspect.signature(get_figure(name)).parameters
        expected = "serial, process" if "backend" in params else "serial"
        assert meta["backends"] == expected, name


def test_titles_match_module_source():
    for name, meta in FIGURE_INDEX.items():
        source = (REPO / "src" / "repro" / "experiments" / f"{name}.py").read_text(
            encoding="utf-8"
        )
        assert meta["title"] in source, f"{name}: title drifted from module"
        assert meta["figure"] in source, f"{name}: figure label drifted from module"
