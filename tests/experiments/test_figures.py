"""Every figure reproduction must pass its shape checks (quick scale).

These are the repository's statement that the paper's evaluation reproduces:
each ``figNN.run`` returns the plotted series plus checks like "Hybrid ~20x
Dyn-arr for deletions"; a failure here means the reproduction regressed.
"""

import pytest

from repro.experiments import FIGURE_MODULES, get_figure


@pytest.mark.parametrize("name", FIGURE_MODULES)
def test_figure_shape_checks(name):
    result = get_figure(name)(quick=True)
    assert result.checks, f"{name} defines no shape checks"
    failures = result.failed_checks()
    assert not failures, f"{name}: {failures}"


@pytest.mark.parametrize("name", FIGURE_MODULES)
def test_figure_renders(name):
    result = get_figure(name)(quick=True)
    text = result.render()
    assert result.figure in text
    assert "shape checks" in text


def test_figures_deterministic():
    a = get_figure("fig02")(quick=True)
    b = get_figure("fig02")(quick=True)
    sa = a.get("Dyn-arr").result.seconds
    sb = b.get("Dyn-arr").result.seconds
    assert sa == sb


def test_fig05_gap_magnitude():
    """The headline 20x deletion gap, pinned explicitly."""
    result = get_figure("fig05")(quick=True)
    da = result.get("Dyn-arr")
    hy = result.get("Hybrid-arr-treap")
    assert hy.mups_at(64) / da.mups_at(64) > 6.0


def test_fig02_headline_scaling():
    """~25 MUPS / ~28x speedup at 64 T2 threads."""
    result = get_figure("fig02")(quick=True)
    da = result.get("Dyn-arr")
    assert 18.0 <= da.speedup_at(64) <= 40.0
    assert 10.0 <= da.mups_at(64) <= 80.0
