"""Tests for the experiment-harness infrastructure."""

import pytest

from repro.experiments.common import (
    FigureResult,
    SeriesSpec,
    footprint_coefficients,
    measured_scale,
    scaled_sweep,
)
from repro.machine.scale import ScaledInstance
from repro.machine.sim import ScalingResult
from repro.machine.spec import ULTRASPARC_T2


def make_series(label="s", threads=(1, 2, 4), seconds=(4.0, 2.0, 1.0), n_items=100):
    return SeriesSpec(
        label=label,
        result=ScalingResult("m", "w", threads, seconds, n_items=n_items),
    )


class TestSeriesSpec:
    def test_accessors(self):
        s = make_series()
        assert s.seconds_at(2) == 2.0
        assert s.speedup_at(4) == pytest.approx(4.0)
        assert s.mups_at(4) == pytest.approx(100 / 1.0 / 1e6)

    def test_unknown_thread_count(self):
        with pytest.raises(ValueError):
            make_series().seconds_at(64)


class TestFigureResult:
    def test_checks_and_failures(self):
        fig = FigureResult("F", "t")
        fig.check("good", True, "detail")
        fig.check("bad", False, "why")
        assert not fig.all_passed
        assert fig.failed_checks() == ["bad: why"]

    def test_get_series(self):
        fig = FigureResult("F", "t", series=[make_series("a"), make_series("b")])
        assert fig.get("b").label == "b"
        with pytest.raises(KeyError):
            fig.get("c")

    def test_render_includes_everything(self):
        fig = FigureResult(
            "Figure X", "title",
            series=[make_series("curve")],
            rows=[{"k": 1, "v": 2.5}, {"k": 2, "v": None}],
            notes="a note",
        )
        fig.check("claim", True, "measured")
        text = fig.render()
        assert "Figure X" in text and "a note" in text
        assert "curve" in text
        assert "[PASS] claim" in text
        assert "2.5" in text
        assert "-" in text  # the None cell


class TestHelpers:
    def test_measured_scale(self):
        assert measured_scale(15, 12, quick=True) == 12
        assert measured_scale(15, 12, quick=False) == 15

    def test_footprint_coefficients(self):
        class FakeRep:
            def memory_bytes(self):
                return 10_000

        bpv, bpe = footprint_coefficients(FakeRep(), n=100, arcs=500)
        assert bpv == 40.0
        assert bpe == pytest.approx((10_000 - 4_000) / 500)

    def test_footprint_coefficients_floor(self):
        class TinyRep:
            def memory_bytes(self):
                return 10

        _, bpe = footprint_coefficients(TinyRep(), n=100, arcs=500)
        assert bpe == 0.0

    def test_scaled_sweep(self):
        from repro.machine.profile import Phase, WorkProfile

        profile = WorkProfile(
            "w", (Phase("p", rand_accesses=1e5, footprint_bytes=1e6),)
        )
        inst = ScaledInstance(
            n_measured=1000, m_measured=10_000,
            n_target=10_000, m_target=100_000,
            bytes_per_vertex=8.0, bytes_per_edge=8.0,
        )
        s = scaled_sweep(profile, inst, ULTRASPARC_T2, (1, 64), n_items=100_000,
                         label="x")
        assert s.label == "x"
        assert s.result.threads == (1, 64)
        assert s.seconds_at(64) < s.seconds_at(1)
