"""Request tracing and SLOs through the live service, end to end."""

import json
import time
import urllib.request

import pytest

from repro.__main__ import main
from repro.api import DynamicGraph
from repro.errors import WorkerCrashError
from repro.generators.parallel import iter_update_chunks
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.live import TelemetryCollector, Watchdog
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.reqtrace import ExemplarStore, RequestTracer, activate
from repro.obs.slo import SloTracker
from repro.parallel.pool import TaskSpec, WorkerPool
from repro.service import GraphService, ShardRouter

SCALE = 9
N = 1 << SCALE


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as r:
        assert r.status == 200
        return json.loads(r.read())


@pytest.fixture(scope="module")
def traced(pool):
    """Live service, process-sharded components, keep-every-trace sampling."""
    batches = list(iter_update_chunks(SCALE, 2 * N, seed=23, chunk_edges=512))
    service = GraphService(
        DynamicGraph(N),
        router=ShardRouter(pool),
        reqtrace=RequestTracer(head_every=1, slow_threshold_seconds=60.0),
    )
    handle = service.start_background()
    for c in batches:
        handle.submit(c)
    service.drainer.close()
    yield handle, service, batches
    handle.close()


def request_tree(service, name):
    """The most recent kept span tree for route ``name``."""
    records = [r for r in service.reqtrace.sampled() if r["name"] == name]
    assert records, f"no kept trace for {name}"
    return records[-1]


class TestSpanTree:
    def test_sharded_components_is_one_connected_tree(self, traced):
        handle, service, _ = traced
        get_json(handle.url + "/components")
        record = request_tree(service, "service.components")
        names = [e["name"] for e in record["events"]]
        # route -> executor -> epoch pin -> shard fan-out -> worker spans
        assert "service.exec.components" in names
        assert "service.epoch.read" in names
        assert "service.shard_components" in names
        workers = [
            e for e in record["events"]
            if e["name"] == "parallel.service.shard_components"
        ]
        assert workers, "no worker spans adopted across the process boundary"
        assert all("worker" in e["attrs"] for e in workers)
        # single connected tree: every parent resolves inside the record
        ids = {e["span_id"] for e in record["events"]}
        roots = [e for e in record["events"] if e["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "service.components"
        assert all(
            e["parent_id"] in ids for e in record["events"] if e["parent_id"] is not None
        )
        # every span is stamped with the request identity
        assert all(
            e["attrs"]["trace_id"] == record["trace_id"]
            for e in record["events"]
            if e["parent_id"] is not None
        )

    def test_tree_exports_through_the_chrome_exporter(self, traced):
        handle, service, _ = traced
        get_json(handle.url + "/components")
        # later /components hits the per-epoch label cache (no shard
        # fan-out), so pick the kept record that did cross the pool
        records = [
            r for r in service.reqtrace.sampled()
            if r["name"] == "service.components"
            and any(e["name"] == "parallel.service.shard_components"
                    for e in r["events"])
        ]
        assert records, "no sharded components trace captured"
        doc = to_chrome_trace(records[-1]["events"])
        assert validate_chrome_trace(doc) == []
        # worker spans land on their own lanes
        tids = {e["tid"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert len(tids) > 1

    def test_drainer_batches_traced_with_epoch(self, traced):
        _, service, batches = traced
        applies = [
            r for r in service.reqtrace.sampled() if r["name"] == "service.apply_batch"
        ]
        assert applies, "drainer batches were not traced"
        assert applies[-1]["kind"] == "update"
        assert applies[-1]["epoch"] is not None
        names = {e["name"] for e in applies[-1]["events"]}
        assert {"service.drain.apply", "service.drain.rotate"} <= names

    def test_exec_span_runs_on_executor_thread(self, traced):
        handle, service, _ = traced
        get_json(handle.url + "/connected?u=0&v=1")
        record = request_tree(service, "service.connected")
        execs = [e for e in record["events"] if e["name"] == "service.exec.connected"]
        assert execs and execs[0]["attrs"]["thread"] != "MainThread"

    def test_traced_bodies_bit_identical_to_untraced(self, traced):
        handle, service, batches = traced
        untraced = GraphService(DynamicGraph(N), reqtrace=False)
        plain = untraced.start_background()
        try:
            for c in batches:
                plain.submit(c)
            untraced.drainer.close()
            for path in (
                "/components?full=1",
                "/connected?u=0&v=1",
                "/component?v=7",
                "/bfs?source=3&full=1",
            ):
                assert get_json(handle.url + path) == get_json(plain.url + path)
        finally:
            plain.close()


class TestEndpoints:
    def test_debug_slow_shape(self, traced):
        handle, service, _ = traced
        get_json(handle.url + "/connected?u=0&v=1")
        debug = get_json(handle.url + "/debug/slow")
        assert debug["enabled"] is True
        assert debug["config"]["head_every"] == 1
        assert isinstance(debug["slow"], list)
        assert debug["recent"]  # summaries for every request
        assert "sampled" not in debug
        with_sampled = get_json(handle.url + "/debug/slow?sampled=1")
        assert with_sampled["sampled"]  # head_every=1 keeps everything

    def test_slo_endpoint_states_both_trackers(self, traced):
        handle, _, _ = traced
        slos = get_json(handle.url + "/slo")["slos"]
        assert sorted(slos) == ["service.query", "service.update"]
        assert slos["service.query"]["objectives"]["latency"]["breaching"] is False

    def test_stats_carry_gauges_and_trace_fields(self, traced):
        handle, _, _ = traced
        get_json(handle.url + "/connected?u=0&v=1")
        stats = get_json(handle.url + "/stats")
        assert stats["queries_inflight"] == 0  # nothing mid-flight at rest
        assert stats["update_queue_depth"] == 0
        assert stats["reqtrace"] is True
        assert stats["slow_captured"] >= 0

    def test_gauges_sampled_by_live_collector(self, traced):
        handle, _, _ = traced
        get_json(handle.url + "/connected?u=0&v=1")
        col = TelemetryCollector(METRICS, interval=3600)
        col.tick(now=0.0)
        assert "service.queries.inflight" in col.store.names()
        assert "service.update_queue.depth" in col.store.names()

    def test_metrics_payload_carries_query_exemplars(self, traced):
        handle, _, _ = traced
        get_json(handle.url + "/connected?u=0&v=1")
        with urllib.request.urlopen(handle.url + "/metrics", timeout=30) as r:
            payload = r.read().decode()
        from repro.obs import validate_openmetrics

        assert validate_openmetrics(payload)["n_exemplars"] > 0
        assert "service_query_seconds_bucket" in payload


class TestPoolRestart:
    def test_trace_context_survives_restart_without_orphans(self):
        tracer = RequestTracer(
            head_every=1, registry=MetricsRegistry(), exemplars=ExemplarStore()
        )
        pool = WorkerPool(2, timeout=60.0).start()
        try:
            trace = tracer.start("service.components")
            with activate(trace):
                with trace.span("shard.round1"):
                    with pytest.raises(WorkerCrashError):
                        pool.run_tasks(
                            [TaskSpec("selftest.exit", {})]
                            + [TaskSpec("selftest.echo", {"value": 1})] * 3
                        )
                pool.restart()
                with trace.span("shard.round2") as round2:
                    out = pool.run_tasks(
                        [TaskSpec("selftest.echo", {"value": k}) for k in range(4)]
                    )
            assert [o["echo"] for o in out] == [0, 1, 2, 3]
            record = tracer.finish(trace)
            events = record["events"]
            # new-generation worker spans adopted under the new round's span
            adopted = [
                e for e in events
                if e["name"] == "parallel.selftest.echo"
                and e["parent_id"] == round2.span_id
            ]
            assert len(adopted) == 4
            assert all(e["attrs"]["trace_id"] == trace.trace_id for e in adopted)
            # no orphans anywhere: every span parents inside the tree
            ids = {e["span_id"] for e in events}
            assert all(
                e["parent_id"] in ids
                for e in events
                if e["parent_id"] is not None
            )
            assert validate_chrome_trace(to_chrome_trace(events)) == []
        finally:
            pool.shutdown()


class TestSloFaultInjection:
    def test_throttled_drainer_alerts_once_per_episode(self, capsys):
        fake = [1000.0]
        slo_update = SloTracker(
            "service.update",
            latency_threshold_seconds=0.001,
            windows=(5.0, 20.0),
            registry=MetricsRegistry(),
            clock=lambda: fake[0],
        )
        service = GraphService(DynamicGraph(N), slo_update=slo_update)
        service.drainer.throttle = 0.02  # fault injection: every batch breaches
        watchdog = Watchdog(None, registry=MetricsRegistry())
        watchdog.attach_slo(slo_update)
        handle = service.start_background()
        try:
            def drain(seed):
                batches = list(
                    iter_update_chunks(SCALE, N, seed=seed, chunk_edges=64)
                )
                before = service.drainer.n_batches
                for c in batches:
                    handle.submit(c)
                deadline = time.monotonic() + 60
                while service.drainer.n_batches < before + len(batches):
                    assert time.monotonic() < deadline, "drain stalled"
                    time.sleep(0.01)

            drain(seed=5)
            first = watchdog.check()
            assert [a["kind"] for a in first] == ["slo_burn_latency"]
            assert first[0]["slo"] == "service.update"
            # same episode: further checks stay silent
            assert watchdog.check() == []
            assert len(watchdog.alerts) == 1

            # the alert is visible at /slo ...
            state = get_json(handle.url + "/slo")["slos"]["service.update"]
            assert state["n_alerts"] == 1
            assert state["alerts"][0]["kind"] == "slo_burn_latency"

            # ... and through the CLI
            assert main(["obs", "slo", handle.url]) == 0
            out = capsys.readouterr().out
            assert "slo_burn_latency" in out and "service.update" in out
            assert main(["obs", "slo", handle.url, "--json"]) == 0

            # recovery re-arms; a second breach is a second episode
            fake[0] = 2000.0
            assert watchdog.check() == []
            drain(seed=6)
            second = watchdog.check()
            assert [a["kind"] for a in second] == ["slo_burn_latency"]
            assert len(watchdog.alerts) == 2
        finally:
            handle.close()
