"""Epoch store concurrency: stable pins, non-blocking publishes, no leaks."""

import threading
import time

import numpy as np
import pytest

from repro.adjacency.csr import csr_from_arrays
from repro.errors import ServiceError
from repro.service import EpochStore


def snap(n=4, arcs=()):
    src = np.array([a[0] for a in arcs], dtype=np.int64)
    dst = np.array([a[1] for a in arcs], dtype=np.int64)
    return csr_from_arrays(n, src, dst)


class TestPublishPin:
    def test_pin_before_publish_raises(self):
        store = EpochStore()
        with pytest.raises(ServiceError):
            store.pin()

    def test_publish_keys_on_mutation_count(self):
        store = EpochStore()
        a = store.publish(snap(), 0)
        assert store.publish(snap(), 0) is a  # unchanged: no churn
        b = store.publish(snap(arcs=[(0, 1)]), 1)
        assert b is not a and b.id == a.id + 1
        assert store.n_published == 2

    def test_reading_context_pins_and_releases(self):
        store = EpochStore()
        store.publish(snap(), 0)
        with store.reading() as epoch:
            assert epoch.pins == 1
        assert epoch.pins == 0

    def test_unbalanced_release_raises(self):
        store = EpochStore()
        epoch = store.publish(snap(), 0)
        with pytest.raises(ServiceError):
            store.release(epoch)

    def test_lag_of(self):
        store = EpochStore()
        store.publish(snap(), 5)
        assert store.lag_of(5) == 0
        assert store.lag_of(9) == 4


class TestRotationStability:
    def test_pinned_reader_sees_stable_snapshot_across_rotation(self):
        store = EpochStore()
        s0 = snap(arcs=[(0, 1)])
        store.publish(s0, 1)
        with store.reading() as epoch:
            store.publish(snap(arcs=[(0, 1), (2, 3)]), 2)
            # The pinned epoch's snapshot is the exact object published, and
            # the rotation did not touch it.
            assert epoch.snapshot is s0
            assert epoch.snapshot.n_arcs == 1
            cur = store.current
            assert cur is not None and cur.snapshot.n_arcs == 2
        # released: the retired epoch is freed, only current survives
        assert store.n_live == 1

    def test_no_epoch_leak_after_readers_drain(self):
        store = EpochStore()
        store.publish(snap(), 0)
        pins = [store.pin() for _ in range(3)]
        for k in range(1, 6):
            store.publish(snap(arcs=[(0, 1)] * k), k)
            pins.append(store.pin())
        assert store.n_live == 6  # every epoch is pinned, so all are retained
        for epoch in pins:
            store.release(epoch)
        assert store.n_live == 1
        assert store.n_retired == store.n_published - 1

    def test_writer_never_blocks_on_pinned_readers(self):
        # Hold pins from several reader threads mid-"query" and time the
        # publishes: each must complete immediately (no reader handshake),
        # far faster than the readers' hold time.
        store = EpochStore()
        store.publish(snap(), 0)
        hold = 0.5
        release = threading.Event()
        pinned = threading.Barrier(5)

        def reader():
            with store.reading():
                pinned.wait(timeout=10)
                release.wait(timeout=10)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        pinned.wait(timeout=10)
        t0 = time.perf_counter()
        for k in range(1, 20):
            store.publish(snap(arcs=[(0, 1)] * k), k)
        publish_time = time.perf_counter() - t0
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert publish_time < hold / 2  # writer did not wait for readers
        assert store.n_live == 1

    def test_concurrent_pin_release_churn_is_balanced(self):
        store = EpochStore()
        store.publish(snap(), 0)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    with store.reading() as epoch:
                        assert epoch.pins >= 1
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for k in range(1, 50):
            store.publish(snap(arcs=[(0, 1)] * (k % 3 + 1)), k)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert store.n_live == 1
        cur = store.current
        assert cur is not None and cur.pins == 0


class TestEpochCache:
    def test_cached_computes_once(self):
        store = EpochStore()
        epoch = store.publish(snap(), 0)
        calls = []

        def compute():
            calls.append(1)
            return "labels"

        assert epoch.cached("k", compute) == "labels"
        assert epoch.cached("k", compute) == "labels"
        assert len(calls) == 1

    def test_cache_is_per_epoch(self):
        store = EpochStore()
        a = store.publish(snap(), 0)
        a.cached("k", lambda: "old")
        b = store.publish(snap(arcs=[(0, 1)]), 1)
        assert b.cached("k", lambda: "new") == "new"
