"""Sharded components: bit-identity at every shard count, crash recovery."""

import numpy as np
import pytest

from repro.core.components import connected_components
from repro.errors import WorkerCrashError
from repro.generators.rmat import rmat_graph
from repro.adjacency.csr import build_csr
from repro.service import ShardRouter, shard_components


@pytest.fixture(scope="module")
def graph():
    return build_csr(rmat_graph(9, 8, seed=17))


class TestBitIdentity:
    def test_labels_match_serial_kernel(self, graph, pool):
        expected = connected_components(graph).labels
        labels = shard_components(graph, pool)
        assert np.array_equal(labels, expected)

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_labels_identical_at_every_shard_count(self, graph, pool, n_shards):
        expected = connected_components(graph).labels
        labels = shard_components(graph, pool, n_shards=n_shards)
        assert np.array_equal(labels, expected)

    def test_empty_graph(self, pool):
        empty = build_csr(rmat_graph(4, 0, seed=1))
        labels = shard_components(empty, pool)
        assert np.array_equal(labels, np.arange(1 << 4))


class TestCrashRecovery:
    def test_crash_surfaces_and_restart_recovers(self, graph):
        router = ShardRouter(workers=2)
        try:
            expected = connected_components(graph).labels
            with pytest.raises(WorkerCrashError):
                router.components(graph, fault="exit")
            router.recover()
            assert router.n_crashes == 1
            labels = router.components(graph)
            assert np.array_equal(labels, expected)
        finally:
            router.close()

    def test_router_borrows_pool_without_owning_it(self, graph, pool):
        router = ShardRouter(pool)
        labels = router.components(graph)
        router.close()  # must NOT shut the borrowed session pool down
        assert np.array_equal(labels, connected_components(graph).labels)
        # the shared pool still answers (it would raise if closed)
        assert np.array_equal(router.components(graph), labels)
