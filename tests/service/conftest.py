"""Shared fixtures for the service test suite."""

from __future__ import annotations

import pytest

from repro.parallel.pool import WorkerPool


@pytest.fixture(scope="session")
def pool():
    """One shared two-worker pool (crash tests build their own throwaways)."""
    p = WorkerPool(2, timeout=120.0)
    p.start()
    yield p
    p.shutdown()
