"""HTTP front end: endpoints, error codes, metrics payload, bit-identity."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import DynamicGraph
from repro.core.bfs import bfs
from repro.core.components import connected_components
from repro.generators.parallel import iter_update_chunks
from repro.obs import validate_openmetrics
from repro.service import GraphService, ShardRouter

SCALE = 9
N = 1 << SCALE


def fetch(url, timeout=30.0):
    with urllib.request.urlopen(url, timeout=timeout) as r:
        body = r.read().decode()
        ctype = r.headers.get("Content-Type", "")
        return r.status, ctype, body


def get_json(url):
    status, _, body = fetch(url)
    return status, json.loads(body)


@pytest.fixture(scope="module")
def served():
    """A service with a fully-drained scale-9 stream, plus its batch list."""
    batches = list(iter_update_chunks(SCALE, 2 * N, seed=41, chunk_edges=512))
    service = GraphService(DynamicGraph(N), query_threads=4)
    handle = service.start_background()
    for c in batches:
        handle.submit(c)
    service.drainer.close()  # drain deterministically before queries
    yield handle, service, batches
    handle.close()


class TestEndpoints:
    def test_healthz(self, served):
        handle, _, _ = served
        status, body = get_json(handle.url + "/healthz")
        assert status == 200 and body["ok"] is True

    def test_stats_reflect_drained_stream(self, served):
        handle, service, batches = served
        _, stats = get_json(handle.url + "/stats")
        assert stats["queue_depth"] == 0
        assert stats["epoch_lag"] == 0
        assert stats["batches_applied"] == len(batches)
        assert stats["updates_applied"] == sum(len(c) for c in batches)

    def test_connected_matches_labels(self, served):
        handle, service, _ = served
        labels = connected_components(service.graph.snapshot()).labels
        for u, v in [(0, 1), (3, 200), (N - 1, N - 2)]:
            _, body = get_json(f"{handle.url}/connected?u={u}&v={v}")
            assert body["connected"] == bool(labels[u] == labels[v])

    def test_components_bit_identical_to_serial(self, served):
        handle, service, _ = served
        _, body = get_json(handle.url + "/components?full=1")
        expected = connected_components(service.graph.snapshot())
        assert np.array_equal(np.asarray(body["labels"]), expected.labels)
        assert body["n_components"] == expected.n_components

    def test_bfs_bit_identical_to_serial(self, served):
        handle, service, _ = served
        _, body = get_json(handle.url + "/bfs?source=7&full=1")
        expected = bfs(service.graph.snapshot(), 7)
        assert np.array_equal(np.asarray(body["dist"]), expected.dist)
        assert body["n_reached"] == expected.n_reached
        assert body["n_levels"] == expected.n_levels

    def test_component_size(self, served):
        handle, service, _ = served
        labels = connected_components(service.graph.snapshot()).labels
        _, body = get_json(handle.url + "/component?v=5")
        assert body["label"] == int(labels[5])
        assert body["size"] == int(np.count_nonzero(labels == labels[5]))

    def test_metrics_payload_validates(self, served):
        handle, _, _ = served
        status, ctype, body = fetch(handle.url + "/metrics")
        assert status == 200
        assert "openmetrics" in ctype
        stats = validate_openmetrics(body)
        assert stats["n_samples"] > 0
        assert "service_queries_total" in body


class TestErrors:
    def test_unknown_vertex_is_400(self, served):
        handle, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(f"{handle.url}/connected?u=0&v={N + 5}")
        assert exc.value.code == 400
        assert "out of range" in json.loads(exc.value.read())["error"]

    def test_missing_parameter_is_400(self, served):
        handle, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(handle.url + "/bfs")
        assert exc.value.code == 400

    def test_unknown_route_is_404(self, served):
        handle, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(handle.url + "/nope")
        assert exc.value.code == 404

    def test_non_get_is_405(self, served):
        handle, _, _ = served
        req = urllib.request.Request(
            handle.url + "/stats", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 405


class TestConcurrentServing:
    def test_queries_succeed_while_stream_drains(self):
        """Readers and the writer make progress together, answers stay sane."""
        batches = list(iter_update_chunks(SCALE, 4 * N, seed=43, chunk_edges=256))
        service = GraphService(DynamicGraph(N), query_threads=4)
        errors: list[BaseException] = []
        answers: list[dict] = []
        with service.start_background() as handle:
            def query_loop():
                try:
                    for _ in range(20):
                        _, body = get_json(f"{handle.url}/connected?u=1&v=2")
                        answers.append(body)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            readers = [threading.Thread(target=query_loop) for _ in range(3)]
            for t in readers:
                t.start()
            for c in batches:
                handle.submit(c)
            for t in readers:
                t.join(timeout=60)
            service.drainer.close()
            assert not errors
            assert len(answers) == 60
            # epochs answered monotonically, and every answer names one
            assert all("epoch" in a for a in answers)
            _, stats = get_json(handle.url + "/stats")
            assert stats["updates_applied"] == sum(len(c) for c in batches)
            # no epoch leak once queries drained: current only
            assert service.store.n_live == 1

    def test_sharded_service_recovers_from_worker_crash(self):
        """A shard crash mid-query is retried on a restarted pool."""
        batches = list(iter_update_chunks(SCALE, N, seed=47, chunk_edges=512))
        router = ShardRouter(workers=2)
        service = GraphService(DynamicGraph(N), router=router)
        with service.start_background() as handle:
            for c in batches:
                handle.submit(c)
            service.drainer.close()
            # First sharded query: healthy path, bit-identical labels.
            _, body = get_json(handle.url + "/components?full=1")
            expected = connected_components(service.graph.snapshot()).labels
            assert np.array_equal(np.asarray(body["labels"]), expected)
            # Kill a worker out from under the service, then query again:
            # the WorkerCrashError path restarts the pool and retries.
            router.pool._procs[0].terminate()
            router.pool._procs[0].join(timeout=10)
            service.graph.insert_edge(0, 1)  # force a fresh epoch + cache
            service.drainer.rotate(force=True)
            _, body = get_json(handle.url + "/components?full=1")
            expected = connected_components(service.graph.snapshot()).labels
            assert np.array_equal(np.asarray(body["labels"]), expected)
            assert router.n_crashes >= 1
