"""Update drainer: batches applied in order, epochs rotate, errors surface."""

import numpy as np
import pytest

from repro.api import DynamicGraph
from repro.core.components import connected_components
from repro.errors import ServiceError
from repro.generators.parallel import iter_update_chunks
from repro.service import EpochStore, UpdateDrainer

SCALE = 9


def chunks(seed=11, n_edges=None):
    n_edges = n_edges if n_edges is not None else 2 * (1 << SCALE)
    return list(iter_update_chunks(SCALE, n_edges, seed=seed, chunk_edges=512))


class TestDrain:
    def test_all_batches_applied_and_published(self):
        g = DynamicGraph(1 << SCALE)
        store = EpochStore()
        batches = chunks()
        with UpdateDrainer(g, store) as drainer:
            for c in batches:
                drainer.submit(c)
        assert drainer.n_batches == len(batches)
        assert drainer.n_updates == sum(len(c) for c in batches)
        cur = store.current
        assert cur is not None
        # final epoch reflects the fully-applied structure
        assert cur.mutation_count == g.rep.mutation_count
        assert cur.snapshot.n_arcs == g.rep.n_arcs
        assert store.n_live == 1

    def test_final_epoch_bit_identical_to_offline_build(self):
        batches = chunks(seed=23)
        g = DynamicGraph(1 << SCALE)
        store = EpochStore()
        with UpdateDrainer(g, store) as drainer:
            for c in batches:
                drainer.submit(c)
        served = connected_components(store.current.snapshot).labels
        offline = DynamicGraph(1 << SCALE)
        for c in batches:
            offline.apply(c)
        expected = connected_components(offline.snapshot()).labels
        assert np.array_equal(served, expected)

    def test_coalescing_still_publishes_final_state(self):
        g = DynamicGraph(1 << SCALE)
        store = EpochStore()
        # An hour between rotations: every intermediate rotation is
        # coalesced away, yet close() must still publish the final state.
        with UpdateDrainer(g, store, rotate_min_interval=3600.0) as drainer:
            for c in chunks():
                drainer.submit(c)
        cur = store.current
        assert cur is not None
        assert cur.mutation_count == g.rep.mutation_count
        assert drainer.max_observed_lag > 0  # the lag was seen and recorded

    def test_submit_after_close_raises(self):
        g = DynamicGraph(8)
        drainer = UpdateDrainer(g, EpochStore()).start()
        drainer.close()
        with pytest.raises(ServiceError):
            drainer.submit(chunks()[0])

    def test_drain_error_surfaces_on_close(self):
        g = DynamicGraph(4)  # far too small for the stream's vertex ids
        drainer = UpdateDrainer(g, EpochStore()).start()
        drainer.submit(chunks()[0])
        with pytest.raises(ServiceError, match="drainer died"):
            drainer.close()
