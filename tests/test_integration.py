"""End-to-end integration scenarios crossing module boundaries.

Each test plays through a realistic workflow: generate, ingest through a
dynamic representation, mutate with streams, snapshot, and answer analysis
queries — checking the results against independent references along the way.
"""

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import csr_from_representation
from repro.adjacency.registry import make_representation
from repro.api import DynamicGraph
from repro.core.bfs import bfs
from repro.core.components import connected_components
from repro.core.connectivity import ConnectivityIndex
from repro.core.update_engine import apply_stream, construct
from repro.generators.rmat import rmat_graph
from repro.generators.reference import to_networkx
from repro.generators.streams import deletion_stream, mixed_stream
from repro.machine.sim import SimulatedMachine
from repro.machine.spec import ULTRASPARC_T2


class TestStreamThenAnalyze:
    """The paper's core workflow: build dynamically, then run kernels."""

    @pytest.mark.parametrize("kind", ["dynarr", "treap", "hybrid"])
    def test_construct_snapshot_analyze(self, kind):
        graph = rmat_graph(9, 8, seed=51, ts_range=(1, 40))
        rep = make_representation(kind, graph.n, **({"seed": 1} if kind != "dynarr" else {}))
        construct(rep, graph)
        csr = csr_from_representation(rep)

        # snapshot must equal the direct CSR of the symmetrised input
        nx_graph = to_networkx(graph, multigraph=True)
        comps = connected_components(csr)
        assert comps.n_components == nx.number_connected_components(
            nx.Graph(nx_graph)
        ) + (graph.n - nx_graph.number_of_nodes())

        res = bfs(csr, 0)
        truth = nx.single_source_shortest_path_length(nx.Graph(nx_graph), 0)
        mine = {v: int(d) for v, d in enumerate(res.dist) if d >= 0}
        assert mine == dict(truth)

    def test_delete_then_connectivity_tracks_truth(self):
        graph = rmat_graph(8, 6, seed=52)
        rep = make_representation("hybrid", graph.n, seed=2)
        construct(rep, graph)
        dels = deletion_stream(graph, 80, seed=3)
        apply_stream(rep, dels)

        csr = csr_from_representation(rep)
        index = ConnectivityIndex.from_csr(csr)

        G = nx.MultiGraph()
        G.add_nodes_from(range(graph.n))
        G.add_edges_from(zip(graph.src.tolist(), graph.dst.tolist()))
        for u, v in zip(dels.src.tolist(), dels.dst.tolist()):
            G.remove_edge(u, v)

        rng = np.random.default_rng(4)
        for _ in range(100):
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            assert index.query(u, v) == nx.has_path(G, u, v)

    def test_mixed_stream_state_matches_reference(self):
        graph = rmat_graph(8, 6, seed=53)
        stream = mixed_stream(graph, 300, 0.6, seed=5)
        rep = make_representation("hybrid", graph.n, seed=6)
        construct(rep, graph)
        apply_stream(rep, stream)

        from collections import Counter

        ref = Counter(zip(graph.src.tolist(), graph.dst.tolist()))
        ref.update(zip(graph.dst.tolist(), graph.src.tolist()))
        for o, u, v in zip(stream.op.tolist(), stream.src.tolist(), stream.dst.tolist()):
            pairs = [(u, v), (v, u)]
            for p in pairs:
                if o == 1:
                    ref[p] += 1
                elif ref[p] > 0:
                    ref[p] -= 1
        assert rep.n_arcs == sum(ref.values())


class TestTemporalForensics:
    """Interval snapshots + temporal reachability, the section 3.2/3.3 flow."""

    def test_interval_snapshot_connectivity(self):
        graph = rmat_graph(9, 10, seed=54, ts_range=(1, 100))
        g = DynamicGraph.from_edgelist(graph)
        early = g.induced_interval(0, 34)
        late = g.induced_interval(33, 101)
        assert early.graph.n_arcs + late.graph.n_arcs == 2 * graph.m

        # connectivity of the early window is a subgraph property: any pair
        # connected early is connected in the full graph
        idx_early = ConnectivityIndex.from_csr(early.graph)
        idx_full = g.spanning_forest()
        rng = np.random.default_rng(7)
        for _ in range(60):
            u, v = (int(x) for x in rng.integers(0, g.n, 2))
            if idx_early.query(u, v):
                assert idx_full.query(u, v)

    def test_temporal_bfs_monotone_in_window(self):
        graph = rmat_graph(9, 10, seed=55, ts_range=(1, 100))
        g = DynamicGraph.from_edgelist(graph)
        narrow = g.bfs(0, ts_range=(40, 60))
        wide = g.bfs(0, ts_range=(20, 80))
        # widening the window can only reach more vertices
        assert set(narrow.reached().tolist()) <= set(wide.reached().tolist())


class TestSimulationPipeline:
    """Measured profiles must flow into the simulator coherently."""

    def test_profile_to_machine_time(self):
        graph = rmat_graph(10, 10, seed=56)
        rep = make_representation("dynarr", graph.n, expected_m=2 * graph.m)
        res = construct(rep, graph)
        sim = SimulatedMachine(ULTRASPARC_T2)
        t1 = sim.time(res.profile, 1)
        t64 = sim.time(res.profile, 64)
        assert t1 > t64 > 0
        assert 10 < t1 / t64 < 40

    def test_bigger_stream_costs_more(self):
        small = rmat_graph(8, 6, seed=57)
        big = rmat_graph(10, 6, seed=57)
        sim = SimulatedMachine(ULTRASPARC_T2)
        times = []
        for g in (small, big):
            rep = make_representation("dynarr", g.n, expected_m=2 * g.m)
            res = construct(rep, g)
            times.append(sim.time(res.profile, 64))
        assert times[1] > times[0]

    def test_representation_ordering_for_deletes_at_scale(self):
        """Fig. 5's ordering emerges at paper scale.

        At a 2^10 measured scale Dyn-arr's scans are short enough that it
        can even beat the hybrid; applying the analytically-known probe
        growth to the paper's 2^25 instance must flip the ordering — the
        crux of Figure 5.
        """
        from repro.machine.scale import rmat_size_biased_growth

        graph = rmat_graph(10, 10, seed=58)
        sim = SimulatedMachine(ULTRASPARC_T2)
        dels = deletion_stream(graph, graph.m // 13, seed=9)
        growth = rmat_size_biased_growth(10, 25)
        rates = {}
        for kind in ("dynarr", "hybrid"):
            rep = make_representation(
                kind, graph.n, **({"seed": 3} if kind == "hybrid" else {})
            )
            construct(rep, graph)
            res = apply_stream(
                rep, dels, probe_scale=growth if kind == "dynarr" else 1.0
            )
            rates[kind] = sim.mups_at(res.profile, 64, len(dels))
        assert rates["hybrid"] > 3 * rates["dynarr"]
