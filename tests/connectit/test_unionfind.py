"""Unit tests for the pluggable union-find substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectit.unionfind import (
    COMPACTION_RULES,
    UNION_RULES,
    UnionFind,
    WorkCounters,
)
from repro.errors import GraphError

ALL_VARIANTS = [(u, c) for u in UNION_RULES for c in COMPACTION_RULES]


class NaiveDSU:
    """Reference disjoint-set: no balancing, no compaction, obviously right."""

    def __init__(self, n):
        self.parent = list(range(n))

    def find(self, x):
        while self.parent[x] != x:
            x = self.parent[x]
        return x

    def union(self, u, v):
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            return False
        self.parent[rv] = ru
        return True

    def labels(self):
        n = len(self.parent)
        roots = [self.find(x) for x in range(n)]
        mins = {}
        for x in range(n):
            mins[roots[x]] = min(mins.get(roots[x], n), x)
        return [mins[r] for r in roots]


@pytest.mark.parametrize("union_rule,compaction", ALL_VARIANTS)
class TestVariants:
    def test_matches_naive_dsu(self, union_rule, compaction):
        rng = np.random.default_rng(hash((union_rule, compaction)) % 2**32)
        n = 200
        uf = UnionFind(n, union_rule=union_rule, compaction=compaction)
        ref = NaiveDSU(n)
        for _ in range(300):
            u, v = int(rng.integers(n)), int(rng.integers(n))
            assert uf.union(u, v) == ref.union(u, v)
        assert uf.components().tolist() == ref.labels()

    def test_self_union_is_noop(self, union_rule, compaction):
        uf = UnionFind(5, union_rule=union_rule, compaction=compaction)
        assert not uf.union(3, 3)
        assert uf.n_components() == 5

    def test_union_counts_attempts_and_hooks(self, union_rule, compaction):
        uf = UnionFind(4, union_rule=union_rule, compaction=compaction)
        assert uf.union(0, 1)
        assert uf.union(2, 3)
        assert uf.union(0, 3)
        assert not uf.union(1, 2)
        assert uf.counters.unions == 4
        assert uf.counters.hooks == 3

    def test_components_canonical_minimum(self, union_rule, compaction):
        uf = UnionFind(6, union_rule=union_rule, compaction=compaction)
        uf.union(5, 3)
        uf.union(3, 1)
        labels = uf.components()
        assert labels[1] == labels[3] == labels[5] == 1
        assert labels[0] == 0 and labels[2] == 2 and labels[4] == 4


def test_invalid_rules_raise():
    with pytest.raises(GraphError):
        UnionFind(4, union_rule="nope")
    with pytest.raises(GraphError):
        UnionFind(4, compaction="nope")
    with pytest.raises(GraphError):
        UnionFind(-1)


def test_empty_universe():
    uf = UnionFind(0)
    assert uf.components().size == 0
    assert uf.n_components() == 0


def test_union_arcs_returns_hooks():
    uf = UnionFind(4)
    src = np.array([0, 1, 2, 0], dtype=np.int64)
    dst = np.array([1, 2, 3, 3], dtype=np.int64)
    assert uf.union_arcs(src, dst) == 3
    assert uf.n_components() == 1


def test_bulk_hook_counts_and_merges():
    uf = UnionFind(10)
    hooked = uf.bulk_hook(np.array([1, 2, 3]), 0)
    assert hooked == 3
    assert uf.counters.hooks == 3 and uf.counters.unions == 3
    labels = uf.components()
    assert labels[0] == labels[1] == labels[2] == labels[3] == 0
    assert uf.bulk_hook(np.array([], dtype=np.int64), 0) == 0


def test_compaction_shortens_paths():
    """After a find with compaction, the walked path points near the root."""
    n = 20
    for comp in ("full", "halving", "splitting"):
        uf = UnionFind(n, compaction=comp)
        # Build a deliberate chain 0 <- 1 <- ... <- n-1 without compaction.
        uf.parent[:] = np.maximum(np.arange(n) - 1, 0)
        root = uf.find(n - 1)
        assert root == 0
        if comp == "full":
            assert int(uf.parent[n - 1]) == 0
        else:
            # halving/splitting at least halve the leaf's depth
            assert int(uf.parent[n - 1]) != n - 2
        assert uf.counters.compaction_writes > 0


def test_no_compaction_leaves_paths():
    uf = UnionFind(5, compaction="none")
    uf.parent[:] = np.maximum(np.arange(5) - 1, 0)
    assert uf.find(4) == 0
    assert int(uf.parent[4]) == 3
    assert uf.counters.compaction_writes == 0
    assert uf.counters.pointer_chases == 4


def test_rem_counts_no_finds():
    uf = UnionFind(50, union_rule="rem")
    rng = np.random.default_rng(3)
    for _ in range(100):
        uf.union(int(rng.integers(50)), int(rng.integers(50)))
    assert uf.counters.finds == 0
    assert uf.counters.pointer_chases > 0


def test_memory_bytes_by_rule():
    assert UnionFind(100, union_rule="rank").memory_bytes() == 100 * 8 + 100
    assert UnionFind(100, union_rule="size").memory_bytes() == 100 * 8 + 100 * 8
    assert UnionFind(100, union_rule="rem").memory_bytes() == 100 * 8


def test_workcounters_roundtrip_and_arithmetic():
    a = WorkCounters(finds=5, unions=4, hooks=3, pointer_chases=10, compaction_writes=2)
    assert a.atomics == 5
    d = a.to_dict()
    assert d["atomics"] == 5
    assert WorkCounters.from_dict(d) == a
    b = a.snapshot()
    b.add(WorkCounters(finds=1))
    assert b.finds == 6 and a.finds == 5
    delta = b.since(a)
    assert delta == WorkCounters(finds=1)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    edges=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=120),
    variant=st.sampled_from(ALL_VARIANTS),
)
def test_hypothesis_equivalence_with_naive_dsu(n, edges, variant):
    union_rule, compaction = variant
    uf = UnionFind(n, union_rule=union_rule, compaction=compaction)
    ref = NaiveDSU(n)
    for u, v in edges:
        u %= n
        v %= n
        assert uf.union(u, v) == ref.union(u, v)
    assert uf.components().tolist() == ref.labels()
