"""``ConnectivityIndex.insert_batch`` must match sequential ``insert_edge``.

The fast path routes a whole edge batch through one union-find over root
space; its contract is that the i-th batched union succeeds exactly when
the i-th sequential ``insert_edge`` would have linked, so the resulting
forest partitions (and the per-edge ``linked`` mask) are identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adjacency.csr import build_csr
from repro.core.connectivity import BatchInsertResult, ConnectivityIndex
from repro.core.linkcut import LinkCutForest
from repro.errors import GraphError
from repro.generators.rmat import rmat_graph


def make_index(n: int) -> ConnectivityIndex:
    return ConnectivityIndex(LinkCutForest(n))


def forest_labels(index: ConnectivityIndex) -> np.ndarray:
    """Canonical (min-id) label per tree of the index's forest."""
    n = index.forest.n
    roots = index.forest.findroot_batch(np.arange(n, dtype=np.int64))
    mins = np.full(n, n, dtype=np.int64)
    np.minimum.at(mins, roots, np.arange(n, dtype=np.int64))
    return mins[roots]


def sequential_reference(index: ConnectivityIndex, us, vs) -> np.ndarray:
    linked = np.zeros(len(us), dtype=bool)
    for i, (u, v) in enumerate(zip(us.tolist(), vs.tolist())):
        linked[i] = index.insert_edge(u, v)
    return linked


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_insert_batch_matches_sequential(seed):
    graph = rmat_graph(scale=9, edge_factor=3, seed=seed)
    csr = build_csr(graph)
    rng = np.random.default_rng(seed)
    us = rng.integers(0, graph.n, size=2000, dtype=np.int64)
    vs = rng.integers(0, graph.n, size=2000, dtype=np.int64)

    batched = ConnectivityIndex.from_csr(csr)
    sequential = ConnectivityIndex.from_csr(csr)
    result = batched.insert_batch(us, vs)
    ref_linked = sequential_reference(sequential, us, vs)

    assert isinstance(result, BatchInsertResult)
    np.testing.assert_array_equal(result.linked, ref_linked)
    np.testing.assert_array_equal(forest_labels(batched), forest_labels(sequential))
    assert result.n_links == int(ref_linked.sum())
    assert result.n_skipped == len(us) - result.n_links


def test_insert_batch_empty():
    index = make_index(16)
    empty = np.array([], dtype=np.int64)
    result = index.insert_batch(empty, empty)
    assert result.n_links == 0 and result.n_skipped == 0
    assert result.linked.size == 0


def test_insert_batch_self_loops_and_duplicates():
    index = make_index(4)
    us = np.array([0, 0, 0, 1, 2], dtype=np.int64)
    vs = np.array([0, 1, 1, 0, 3], dtype=np.int64)
    result = index.insert_batch(us, vs)
    assert result.linked.tolist() == [False, True, False, False, True]
    assert index.forest.n_trees() == 2


def test_insert_batch_validates_input():
    index = make_index(8)
    with pytest.raises(GraphError):
        index.insert_batch(np.array([0, 1]), np.array([1]))
    with pytest.raises(GraphError):
        index.insert_batch(np.array([[0]]), np.array([[1]]))


def test_insert_batch_profile_and_meta():
    index = make_index(32)
    rng = np.random.default_rng(5)
    us = rng.integers(0, 32, size=64, dtype=np.int64)
    vs = rng.integers(0, 32, size=64, dtype=np.int64)
    result = index.insert_batch(us, vs, union_rule="rem", compaction="splitting")
    prof = result.profile
    assert prof.phases[0].name == "insert-batch"
    assert prof.meta["counters"]["unions"] >= result.n_links
    assert prof.meta["union_rule"] == "rem"
    assert prof.meta["n_edges"] == 64


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=24),
    edges=st.lists(st.tuples(st.integers(0, 23), st.integers(0, 23)), max_size=60),
)
def test_hypothesis_insert_batch_matches_sequential(n, edges):
    us = np.array([u % n for u, _ in edges], dtype=np.int64)
    vs = np.array([v % n for _, v in edges], dtype=np.int64)
    batched = make_index(n)
    sequential = make_index(n)
    result = batched.insert_batch(us, vs)
    ref_linked = sequential_reference(sequential, us, vs)
    np.testing.assert_array_equal(result.linked, ref_linked)
    np.testing.assert_array_equal(forest_labels(batched), forest_labels(sequential))
