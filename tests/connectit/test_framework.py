"""Equivalence suite: every variant × composition matches networkx.

The acceptance contract of the framework: canonical component labels are
bit-identical to the networkx reference (and to the repo's Shiloach–Vishkin
kernel) for every union rule, compaction rule, and sampling strategy, on
every reference topology, under both execution backends.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.adjacency.csr import build_csr
from repro.connectit import (
    SAMPLING_RULES,
    ConnectItSpec,
    UnionFind,
    connect_components,
    variant_matrix,
)
from repro.core.components import connected_components
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.parallel.backend import ProcessBackend

ALL_SPECS = variant_matrix(samplings=SAMPLING_RULES)


def nx_reference_labels(graph) -> np.ndarray:
    """Canonical (min-id) labels from networkx, including isolates."""
    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.n))
    nxg.add_edges_from(zip(graph.src.tolist(), graph.dst.tolist()))
    labels = np.empty(graph.n, dtype=np.int64)
    for comp in nx.connected_components(nxg):
        labels[list(comp)] = min(comp)
    return labels


@pytest.mark.parametrize("spec", ALL_SPECS, ids=[s.name for s in ALL_SPECS])
def test_all_variants_match_networkx(graph_family, spec):
    name, graph, csr = graph_family
    expected = nx_reference_labels(graph)
    result = connect_components(csr, spec)
    np.testing.assert_array_equal(result.labels, expected)
    assert result.n_components == np.unique(expected).size


@pytest.mark.parametrize("spec", ALL_SPECS, ids=[s.name for s in ALL_SPECS])
def test_compiled_tier_bit_identical(graph_family, spec, monkeypatch):
    # The compiled kernel tier must reproduce every variant bit-for-bit:
    # labels AND the full WorkCounters accounting of both phases.  Driven
    # through force_available so the fused loop bodies run (as pure Python)
    # even where numba is not installed.
    _, _, csr = graph_family
    monkeypatch.setenv(kernels.ENV_VAR, "vectorised")
    ref = connect_components(csr, spec)
    monkeypatch.setenv(kernels.ENV_VAR, "compiled")
    with kernels.force_available():
        jit = connect_components(csr, spec)
    np.testing.assert_array_equal(jit.labels, ref.labels)
    assert jit.counters.to_dict() == ref.counters.to_dict()
    assert jit.sample_counters.to_dict() == ref.sample_counters.to_dict()
    assert jit.finish_counters.to_dict() == ref.finish_counters.to_dict()
    assert jit.sample.to_dict() == ref.sample.to_dict()
    assert ref.meta["kernel_tier"] == "vectorised"
    assert jit.meta["kernel_tier"] == "compiled"


def test_matches_shiloach_vishkin(graph_family):
    _, _, csr = graph_family
    sv = connected_components(csr)
    for spec in (ConnectItSpec(), ConnectItSpec(sampling="kout"), ConnectItSpec(sampling="bfs")):
        np.testing.assert_array_equal(connect_components(csr, spec).labels, sv.labels)


@pytest.mark.parametrize(
    "spec",
    [
        ConnectItSpec(),
        ConnectItSpec(sampling="kout", union_rule="rem", compaction="splitting"),
        ConnectItSpec(sampling="kout", k=4, union_rule="size", compaction="full"),
        ConnectItSpec(sampling="bfs", union_rule="rank", compaction="none"),
    ],
    ids=lambda s: s.name,
)
def test_process_backend_bit_identical(graph_family, pool, spec):
    _, _, csr = graph_family
    serial = connect_components(csr, spec)
    be = ProcessBackend.__new__(ProcessBackend)
    be.pool = pool
    parallel = connect_components(csr, spec, backend=be)
    np.testing.assert_array_equal(serial.labels, parallel.labels)
    assert parallel.meta["backend"] == "process"
    assert parallel.meta["workers"] == pool.workers


def test_sampling_reduces_finish_work(small_rmat_csr):
    unsampled = connect_components(small_rmat_csr, ConnectItSpec())
    for sampling in ("kout", "bfs"):
        sampled = connect_components(small_rmat_csr, ConnectItSpec(sampling=sampling))
        assert sampled.meta["finish_arcs"] < unsampled.meta["finish_arcs"]
        assert sampled.counters.unions < unsampled.counters.unions
        assert sampled.sample.giant_fraction > 0.5


def test_spec_validation():
    with pytest.raises(GraphError):
        ConnectItSpec(union_rule="nope")
    with pytest.raises(GraphError):
        ConnectItSpec(sampling="nope")
    with pytest.raises(GraphError):
        ConnectItSpec(sampling="kout", k=0)
    with pytest.raises(GraphError):
        connect_components(None, ConnectItSpec(), sampling="kout")


def test_spec_kwargs_form(er_csr):
    by_spec = connect_components(er_csr, ConnectItSpec(sampling="kout", union_rule="rem"))
    by_kwargs = connect_components(er_csr, sampling="kout", union_rule="rem")
    np.testing.assert_array_equal(by_spec.labels, by_kwargs.labels)


def test_spec_names_unique():
    names = [s.name for s in ALL_SPECS]
    assert len(names) == len(set(names)) == 36


def test_profile_phases_and_meta(small_rmat_csr):
    spec = ConnectItSpec(sampling="kout")
    result = connect_components(small_rmat_csr, spec)
    prof = result.profile()
    assert [p.name for p in prof.phases] == ["sample", "finish"]
    assert prof.total("rand_accesses") > 0
    assert prof.meta["spec"]["name"] == spec.name
    assert prof.meta["counters"]["unions"] == result.counters.unions
    # unsampled composition has no sample phase
    prof_un = connect_components(small_rmat_csr, ConnectItSpec()).profile()
    assert [p.name for p in prof_un.phases] == ["finish"]


def test_counters_split_at_phase_boundary(small_rmat_csr):
    result = connect_components(small_rmat_csr, ConnectItSpec(sampling="bfs"))
    total = result.sample_counters.snapshot()
    total.add(result.finish_counters)
    assert total == result.counters


def test_empty_graph():
    csr = build_csr(EdgeList(0, np.array([], dtype=np.int64), np.array([], dtype=np.int64)))
    for sampling in SAMPLING_RULES:
        result = connect_components(csr, ConnectItSpec(sampling=sampling))
        assert result.labels.size == 0
        assert result.n_components == 0


def test_isolated_vertices_only():
    csr = build_csr(EdgeList(5, np.array([], dtype=np.int64), np.array([], dtype=np.int64)))
    for sampling in SAMPLING_RULES:
        result = connect_components(csr, ConnectItSpec(sampling=sampling))
        assert result.labels.tolist() == [0, 1, 2, 3, 4]


def test_unionfind_reexported():
    assert UnionFind(3).n == 3


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=80),
    spec=st.sampled_from(ALL_SPECS),
)
def test_hypothesis_arbitrary_graphs_match_networkx(n, edges, spec):
    src = np.array([u % n for u, _ in edges], dtype=np.int64)
    dst = np.array([v % n for _, v in edges], dtype=np.int64)
    graph = EdgeList(n, src, dst)
    expected = nx_reference_labels(graph)
    result = connect_components(build_csr(graph), spec)
    np.testing.assert_array_equal(result.labels, expected)
