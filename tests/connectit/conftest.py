"""Shared fixtures for the connectit suite: graphs with known components.

``graph_family`` parametrizes the five topologies the equivalence tests
sweep — R-MAT and Erdős–Rényi (realistic), star and path (adversarial for
tree depth), and a multigraph with self-loops and duplicates (the edge
cases a sampling phase must not mis-handle).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.edgelist import EdgeList
from repro.generators.reference import erdos_renyi, path_graph, star_graph
from repro.generators.rmat import rmat_graph
from repro.parallel.pool import WorkerPool


def _selfloop_graph() -> EdgeList:
    # Two components, self-loops on both, duplicate arcs, one isolate.
    src = np.array([0, 0, 1, 1, 2, 4, 4, 5, 5], dtype=np.int64)
    dst = np.array([0, 1, 2, 2, 0, 4, 5, 6, 6], dtype=np.int64)
    return EdgeList(8, src, dst)


GRAPHS = {
    "rmat": lambda: rmat_graph(scale=10, edge_factor=8, seed=42),
    "er": lambda: erdos_renyi(250, 0.015, seed=7),
    "star": lambda: star_graph(64),
    "path": lambda: path_graph(50),
    "selfloop": _selfloop_graph,
}


@pytest.fixture(scope="session", params=sorted(GRAPHS))
def graph_family(request):
    """(name, EdgeList, CSRGraph) for each reference topology."""
    g = GRAPHS[request.param]()
    return request.param, g, build_csr(g)


@pytest.fixture(scope="session")
def pool():
    p = WorkerPool(2, timeout=120.0)
    p.start()
    yield p
    p.shutdown()
