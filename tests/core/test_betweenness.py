"""Tests for (temporal) betweenness centrality."""

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.core.betweenness import temporal_bc_exact, temporal_betweenness
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.rmat import rmat_graph
from repro.generators.reference import erdos_renyi, path_graph, star_graph, to_networkx


class TestStaticBrandes:
    """temporal=False must be exactly Brandes (vs networkx)."""

    def test_matches_networkx_er(self, er_csr, er_nx):
        res = temporal_betweenness(er_csr, temporal=False)
        truth = nx.betweenness_centrality(er_nx, normalized=False)
        # ours sums over ordered pairs -> exactly twice nx's undirected value
        for v in range(er_csr.n):
            assert res.scores[v] == pytest.approx(2 * truth[v], abs=1e-9)

    def test_path_graph(self):
        res = temporal_betweenness(build_csr(path_graph(5)), temporal=False)
        # interior vertex i of a path lies on 2*i*(n-1-i) ordered pairs
        assert res.scores.tolist() == [0.0, 6.0, 8.0, 6.0, 0.0]

    def test_star_centre(self):
        res = temporal_betweenness(build_csr(star_graph(6)), temporal=False)
        assert res.scores[0] == pytest.approx(5 * 4)  # all ordered leaf pairs
        assert np.all(res.scores[1:] == 0)

    def test_dense_graph(self):
        g = erdos_renyi(40, 0.3, seed=9)
        res = temporal_betweenness(build_csr(g), temporal=False)
        truth = nx.betweenness_centrality(to_networkx(g), normalized=False)
        for v in range(g.n):
            assert res.scores[v] == pytest.approx(2 * truth[v], abs=1e-9)


class TestSampling:
    def test_all_sources_when_none(self, er_csr):
        res = temporal_betweenness(er_csr, temporal=False)
        assert res.n_sources == er_csr.n

    def test_sample_size(self, er_csr):
        res = temporal_betweenness(er_csr, sources=16, seed=1, temporal=False)
        assert res.n_sources == 16
        assert np.unique(res.sources).size == 16

    def test_extrapolation_scale(self, er_csr):
        full = temporal_betweenness(er_csr, temporal=False)
        approx = temporal_betweenness(er_csr, sources=er_csr.n // 2, seed=2,
                                      temporal=False)
        # same order of magnitude on the top vertex
        top = int(np.argmax(full.scores))
        assert approx.scores[top] > 0.2 * full.scores[top]

    def test_explicit_sources(self, er_csr):
        res = temporal_betweenness(er_csr, sources=np.array([0, 5]), temporal=False)
        assert res.sources.tolist() == [0, 5]

    def test_invalid_sample_size(self, er_csr):
        with pytest.raises(GraphError):
            temporal_betweenness(er_csr, sources=0)
        with pytest.raises(GraphError):
            temporal_betweenness(er_csr, sources=er_csr.n + 1)

    def test_source_ids_validated(self, er_csr):
        with pytest.raises(GraphError):
            temporal_betweenness(er_csr, sources=np.array([er_csr.n]))

    def test_deterministic_sampling(self, er_csr):
        a = temporal_betweenness(er_csr, sources=8, seed=3, temporal=False)
        b = temporal_betweenness(er_csr, sources=8, seed=3, temporal=False)
        assert np.array_equal(a.scores, b.scores)


class TestTemporalSemantics:
    def test_requires_ts(self, er_csr):
        with pytest.raises(GraphError):
            temporal_betweenness(er_csr, temporal=True)

    def test_increasing_labels_required(self, tiny_temporal):
        csr = build_csr(tiny_temporal)
        res = temporal_betweenness(csr, temporal=True)
        # 0->1->2->3 valid (labels 1<2<3): vertices 1 and 2 carry flow.
        assert res.scores[1] > 0 and res.scores[2] > 0
        # 0->4->3 has labels 5 then 4 (invalid), but the reverse 3->4->0
        # (4 < 5) and 2->3->4->0 (3 < 4 < 5) are valid, so vertex 4 mediates
        # exactly those two pairs.
        assert res.scores[4] == pytest.approx(2.0)
        # End-to-end agreement with the exhaustive reference.
        exact = temporal_bc_exact(tiny_temporal)
        assert np.allclose(res.scores, exact)

    def test_matches_exact_on_trees(self):
        rng = np.random.default_rng(4)
        for trial in range(5):
            n = 12
            src = np.arange(1, n)
            dst = np.array([int(rng.integers(0, v)) for v in range(1, n)])
            ts = rng.integers(0, 10, n - 1)
            g = EdgeList(n, src, dst, ts=ts)
            fast = temporal_betweenness(build_csr(g), temporal=True)
            exact = temporal_bc_exact(g)
            assert np.allclose(fast.scores, exact), f"trial {trial}"

    def test_close_to_exact_on_sparse_random(self):
        """The single-label relaxation is near-exact on sparse instances."""
        rng = np.random.default_rng(8)
        total_diff = 0.0
        total_mass = 0.0
        for trial in range(6):
            g = erdos_renyi(10, 0.25, seed=100 + trial)
            g = g.with_timestamps(rng.integers(0, 6, g.m))
            fast = temporal_betweenness(build_csr(g), temporal=True)
            exact = temporal_bc_exact(g)
            total_diff += float(np.abs(fast.scores - exact).sum())
            total_mass += float(exact.sum()) + 1e-12
        assert total_diff <= 0.25 * total_mass

    def test_all_equal_labels_means_single_hops_only(self):
        g = EdgeList(4, np.array([0, 1, 2]), np.array([1, 2, 3]),
                     ts=np.array([5, 5, 5]))
        res = temporal_betweenness(build_csr(g), temporal=True)
        # strictly increasing labels: no 2-edge temporal path exists
        assert np.all(res.scores == 0)


class TestExactReference:
    def test_requires_ts(self):
        with pytest.raises(GraphError):
            temporal_bc_exact(path_graph(3))

    def test_scale_guard(self):
        g = rmat_graph(8, 4, seed=1, ts_range=(0, 5))
        with pytest.raises(GraphError, match="exponential"):
            temporal_bc_exact(g)

    def test_parallel_edges_counted_separately(self):
        # Two temporal copies of 0-1 (labels 1 and 2), then 1-2 (label 3):
        # sigma(0->2) = 2, both paths through vertex 1, so the (0,2) pair
        # contributes 2/2 = 1; the reverse pair (2,0) has no increasing-label
        # path.  BC(1) = 1.
        g = EdgeList(3, np.array([0, 0, 1]), np.array([1, 1, 2]),
                     ts=np.array([1, 2, 3]))
        exact = temporal_bc_exact(g)
        assert exact[1] == pytest.approx(1.0)
        # The fast kernel agrees here (both parallel arcs are feasible).
        fast = temporal_betweenness(build_csr(g), temporal=True)
        assert fast.scores[1] == pytest.approx(1.0)

    def test_chain_value(self):
        g = EdgeList(3, np.array([0, 1]), np.array([1, 2]), ts=np.array([1, 2]))
        exact = temporal_bc_exact(g)
        # 0->2 via 1 (labels 1<2) and 2->0 via 1 needs labels decreasing: only
        # 2-(2)->1-(1)->0 has 2 then 1: not increasing. So BC(1) = 1.
        assert exact.tolist() == [0.0, 1.0, 0.0]


class TestResultHelpers:
    def test_top(self, er_csr):
        res = temporal_betweenness(er_csr, temporal=False)
        top = res.top(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_profile_phases(self, small_rmat_csr):
        res = temporal_betweenness(small_rmat_csr, sources=8, seed=1, temporal=True)
        names = [p.name for p in res.profile.phases]
        assert names == ["traversal", "accumulation"]
        assert res.profile.meta["n_sources"] == 8
