"""Tests for edge betweenness centrality."""

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.core.betweenness import edge_betweenness
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.reference import erdos_renyi, path_graph, star_graph, to_networkx


class TestStatic:
    def test_matches_networkx_er(self, er_csr, er_graph, er_nx):
        res = edge_betweenness(er_csr)
        truth = nx.edge_betweenness_centrality(er_nx, normalized=False)
        mine = res.edge_scores()
        for (u, v), val in truth.items():
            key = (u, v) if u <= v else (v, u)
            assert mine.get(key, 0.0) == pytest.approx(2 * val, abs=1e-9)

    def test_path_graph(self):
        res = edge_betweenness(build_csr(path_graph(4)))
        scores = res.edge_scores()
        # edge (1,2) carries the most pairs: 2 * 2 * 2 ordered crossings / 1
        assert scores[(1, 2)] == pytest.approx(8.0)
        assert scores[(0, 1)] == pytest.approx(6.0)

    def test_star_edges_equal(self):
        res = edge_betweenness(build_csr(star_graph(5)))
        scores = res.edge_scores()
        values = list(scores.values())
        assert all(v == pytest.approx(values[0]) for v in values)
        # each spoke carries: its own 2 + 2*(n-2) transit pairs (ordered)
        assert values[0] == pytest.approx(2 + 2 * 3)

    def test_dense_case(self):
        g = erdos_renyi(40, 0.2, seed=19)
        res = edge_betweenness(build_csr(g))
        truth = nx.edge_betweenness_centrality(to_networkx(g), normalized=False)
        mine = res.edge_scores()
        for (u, v), val in truth.items():
            key = (u, v) if u <= v else (v, u)
            assert mine.get(key, 0.0) == pytest.approx(2 * val, abs=1e-9)

    def test_top_sorted(self, er_csr):
        res = edge_betweenness(er_csr)
        top = res.top(5)
        assert all(a[1] >= b[1] for a, b in zip(top, top[1:]))

    def test_vertex_and_edge_consistency(self):
        """An interior vertex's score equals pass-through edge flow minus
        terminating flow (sanity relation on a path)."""
        csr = build_csr(path_graph(5))
        from repro.core.betweenness import temporal_betweenness

        vres = temporal_betweenness(csr, temporal=False)
        eres = edge_betweenness(csr).edge_scores()
        # vertex 2 relays everything crossing both its edges
        crossing = min(eres[(1, 2)], eres[(2, 3)])
        assert vres.scores[2] <= crossing


class TestSamplingAndTemporal:
    def test_sampled_extrapolation(self, er_csr):
        full = edge_betweenness(er_csr)
        approx = edge_betweenness(er_csr, sources=er_csr.n // 2, seed=1)
        top_key, top_val = full.top(1)[0]
        assert approx.edge_scores().get(top_key, 0.0) > 0.2 * top_val

    def test_temporal_filtering(self):
        g = EdgeList(4, np.array([0, 1, 2]), np.array([1, 2, 3]),
                     ts=np.array([1, 2, 3]))
        res = edge_betweenness(build_csr(g), temporal=True)
        scores = res.edge_scores()
        # the ordered chain is traversable forward only; middle edge carries
        # the 0->2, 0->3, 1->3 flows
        assert scores[(1, 2)] > 0

    def test_temporal_requires_ts(self, er_csr):
        with pytest.raises(GraphError):
            edge_betweenness(er_csr, temporal=True)

    def test_invalid_sources(self, er_csr):
        with pytest.raises(GraphError):
            edge_betweenness(er_csr, sources=0)
        with pytest.raises(GraphError):
            edge_betweenness(er_csr, sources=np.array([er_csr.n]))

    def test_arc_scores_shape(self, er_csr):
        res = edge_betweenness(er_csr, sources=4, seed=2)
        assert res.arc_scores.shape == (er_csr.n_arcs,)
        assert res.n_sources == 4
