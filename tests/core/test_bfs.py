"""Tests for level-synchronous BFS (validated against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.core.bfs import bfs, bfs_profile
from repro.edgelist import EdgeList
from repro.errors import VertexError
from repro.generators.reference import grid_graph, path_graph, star_graph


class TestCorrectness:
    def test_distances_match_networkx(self, er_csr, er_nx):
        res = bfs(er_csr, 0)
        truth = nx.single_source_shortest_path_length(er_nx, 0)
        mine = {v: int(d) for v, d in enumerate(res.dist) if d >= 0}
        assert mine == dict(truth)

    def test_unreachable_marked(self, er_csr, er_nx):
        res = bfs(er_csr, 0)
        reachable = set(nx.node_connected_component(er_nx, 0))
        assert set(res.reached().tolist()) == reachable

    def test_parents_form_valid_tree(self, er_csr, er_nx):
        res = bfs(er_csr, 0)
        for v in res.reached().tolist():
            if v == 0:
                assert res.parent[v] == -1
                continue
            p = int(res.parent[v])
            assert res.dist[p] == res.dist[v] - 1
            assert er_nx.has_edge(p, v)

    def test_path_graph_levels(self):
        csr = build_csr(path_graph(6))
        res = bfs(csr, 0)
        assert res.dist.tolist() == [0, 1, 2, 3, 4, 5]
        assert res.n_levels == 6

    def test_star_two_levels(self):
        csr = build_csr(star_graph(8))
        res = bfs(csr, 0)
        assert res.n_levels == 2
        assert np.all(res.dist[1:] == 1)

    def test_from_leaf_of_star(self):
        csr = build_csr(star_graph(8))
        res = bfs(csr, 3)
        assert res.dist[0] == 1
        assert res.dist[5] == 2

    def test_grid_diagonal_distance(self):
        csr = build_csr(grid_graph(4, 4))
        res = bfs(csr, 0)
        assert res.dist[15] == 6  # Manhattan distance to opposite corner

    def test_isolated_source(self):
        g = EdgeList(3, np.array([1]), np.array([2]))
        res = bfs(build_csr(g), 0)
        assert res.n_reached == 1
        assert res.dist.tolist() == [0, -1, -1]

    def test_bad_source(self, er_csr):
        with pytest.raises(VertexError):
            bfs(er_csr, er_csr.n)

    def test_max_levels_truncates(self):
        csr = build_csr(path_graph(10))
        res = bfs(csr, 0, max_levels=3)
        assert res.dist.max() == 3


class TestTemporalFilter:
    def test_filter_blocks_old_edges(self):
        g = EdgeList(4, np.array([0, 1, 2]), np.array([1, 2, 3]),
                     ts=np.array([5, 50, 5]))
        res = bfs(build_csr(g), 0, ts_range=(0, 10))
        assert res.dist.tolist() == [0, 1, -1, -1]

    def test_full_range_equals_unfiltered(self, small_rmat, small_rmat_csr):
        plain = bfs(small_rmat_csr, 0)
        filt = bfs(small_rmat_csr, 0, ts_range=(1, 100))
        assert np.array_equal(plain.dist, filt.dist)

    def test_requires_timestamps(self, er_csr):
        with pytest.raises(VertexError, match="no time-stamps"):
            bfs(er_csr, 0, ts_range=(0, 1))

    def test_interval_inclusive(self):
        g = EdgeList(3, np.array([0, 1]), np.array([1, 2]), ts=np.array([5, 10]))
        res = bfs(build_csr(g), 0, ts_range=(5, 10))
        assert res.dist.tolist() == [0, 1, 2]


class TestStatistics:
    def test_edges_scanned_counts_arc_visits(self):
        csr = build_csr(path_graph(4))
        res = bfs(csr, 0)
        # Levels scan the frontier's full adjacency: 1 + 2 + 2 + 1.
        assert res.total_edges_scanned == 6

    def test_frontier_sizes(self):
        csr = build_csr(star_graph(5))
        res = bfs(csr, 0)
        assert res.frontier_sizes == [1, 4]

    def test_max_frontier_degree(self):
        csr = build_csr(star_graph(5))
        res = bfs(csr, 0)
        assert res.max_frontier_degree[0] == 4


class TestProfile:
    def test_one_phase_per_level(self, small_rmat_csr):
        res = bfs(small_rmat_csr, 0)
        prof = bfs_profile(small_rmat_csr, res)
        assert len(prof.phases) == res.n_levels
        assert prof.meta["levels"] == res.n_levels

    def test_degree_split_removes_imbalance(self):
        csr = build_csr(star_graph(100))
        res = bfs(csr, 3)  # level 2 is dominated by the hub's adjacency
        split = bfs_profile(csr, res, degree_split=True)
        nosplit = bfs_profile(csr, res, degree_split=False)
        assert all(p.max_unit_frac == 0.0 for p in split.phases)
        assert any(p.max_unit_frac > 0.5 for p in nosplit.phases)

    def test_temporal_profile_charges_ts_reads(self, small_rmat_csr):
        res_t = bfs(small_rmat_csr, 0, ts_range=(1, 100))
        res_p = bfs(small_rmat_csr, 0)
        prof_t = bfs_profile(small_rmat_csr, res_t)
        prof_p = bfs_profile(small_rmat_csr, res_p)
        assert prof_t.total("seq_bytes") > prof_p.total("seq_bytes")

    def test_empty_traversal_still_valid(self):
        g = EdgeList(3, np.array([1]), np.array([2]))
        csr = build_csr(g)
        res = bfs(csr, 0)
        prof = bfs_profile(csr, res)
        assert len(prof.phases) >= 1
