"""Tests for the fully dynamic connectivity index."""

import networkx as nx
import numpy as np
import pytest

from repro.core.dynamic_connectivity import DynamicConnectivity
from repro.errors import GraphError
from repro.generators.rmat import rmat_graph
from repro.generators.streams import UpdateStream, insertion_stream, mixed_stream


class TestBasics:
    def test_insert_changes_connectivity(self):
        dc = DynamicConnectivity(4)
        assert dc.insert_edge(0, 1)
        assert dc.connected(0, 1)
        assert dc.n_components() == 3

    def test_nontree_insert(self):
        dc = DynamicConnectivity(4)
        dc.insert_edge(0, 1)
        dc.insert_edge(1, 2)
        assert not dc.insert_edge(0, 2)  # already connected
        assert dc.stats.tree_links == 2

    def test_self_loop_no_connectivity_change(self):
        dc = DynamicConnectivity(3)
        assert not dc.insert_edge(1, 1)
        assert dc.n_components() == 3
        assert dc.delete_edge(1, 1)

    def test_delete_missing(self):
        dc = DynamicConnectivity(3)
        assert not dc.delete_edge(0, 1)
        assert dc.stats.delete_misses == 1

    def test_delete_bridge_disconnects(self):
        dc = DynamicConnectivity(3)
        dc.insert_edge(0, 1)
        dc.insert_edge(1, 2)
        assert dc.delete_edge(0, 1)
        assert not dc.connected(0, 1)
        assert dc.connected(1, 2)
        assert dc.stats.tree_cuts == 1
        assert dc.stats.replacements_found == 0

    def test_delete_cycle_edge_keeps_connectivity(self):
        dc = DynamicConnectivity(4)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            dc.insert_edge(u, v)
        assert dc.delete_edge(1, 2)
        assert dc.connected(1, 2)
        dc.validate()

    def test_parallel_edge_keeps_tree_link(self):
        dc = DynamicConnectivity(3)
        dc.insert_edge(0, 1)
        dc.insert_edge(0, 1)  # parallel copy
        assert dc.delete_edge(0, 1)
        assert dc.connected(0, 1)
        assert dc.stats.parallel_edge_keeps >= 0  # either order is legal
        assert dc.delete_edge(0, 1)
        assert not dc.connected(0, 1)

    def test_n_edges(self):
        dc = DynamicConnectivity(4)
        dc.insert_edge(0, 1)
        dc.insert_edge(2, 3)
        assert dc.n_edges == 2
        dc.delete_edge(0, 1)
        assert dc.n_edges == 1


class TestAgainstNetworkx:
    def _random_session(self, seed, n=24, steps=250, p_insert=0.6):
        rng = np.random.default_rng(seed)
        dc = DynamicConnectivity(n, seed=int(seed))
        G = nx.MultiGraph()
        G.add_nodes_from(range(n))
        for step in range(steps):
            u, v = (int(x) for x in rng.integers(0, n, 2))
            if u == v:
                continue
            if rng.random() < p_insert:
                dc.insert_edge(u, v)
                G.add_edge(u, v)
            else:
                mine = dc.delete_edge(u, v)
                theirs = G.has_edge(u, v)
                assert mine == theirs, (step, u, v)
                if theirs:
                    G.remove_edge(u, v)
            if step % 25 == 0:
                self._check_equal(dc, G)
        self._check_equal(dc, G)
        dc.validate()
        return dc

    @staticmethod
    def _check_equal(dc, G):
        rng = np.random.default_rng(0)
        n = dc.n
        for _ in range(40):
            a, b = (int(x) for x in rng.integers(0, n, 2))
            assert dc.connected(a, b) == nx.has_path(G, a, b), (a, b)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_update_sessions(self, seed):
        self._random_session(seed)

    def test_deletion_heavy_session(self):
        self._random_session(7, p_insert=0.45, steps=300)

    def test_component_count_tracks_truth(self):
        rng = np.random.default_rng(11)
        n = 20
        dc = DynamicConnectivity(n, seed=11)
        G = nx.MultiGraph()
        G.add_nodes_from(range(n))
        for _ in range(150):
            u, v = (int(x) for x in rng.integers(0, n, 2))
            if u == v:
                continue
            if rng.random() < 0.55:
                dc.insert_edge(u, v)
                G.add_edge(u, v)
            elif G.has_edge(u, v):
                dc.delete_edge(u, v)
                G.remove_edge(u, v)
        assert dc.n_components() == nx.number_connected_components(G)


class TestStreams:
    def test_apply_stream(self):
        graph = rmat_graph(8, 6, seed=61)
        dc = DynamicConnectivity(graph.n, seed=1)
        dc.apply(insertion_stream(graph))
        dc.validate()
        stream = mixed_stream(graph, 200, 0.5, seed=2)
        dc.apply(stream)
        dc.validate()

    def test_apply_counts_misses(self):
        dc = DynamicConnectivity(4)
        stream = UpdateStream(
            4,
            np.array([-1, -1], dtype=np.int8),
            np.array([0, 1]),
            np.array([1, 2]),
            np.zeros(2, dtype=np.int64),
        )
        assert dc.apply(stream) == 2

    def test_stream_vertex_mismatch(self):
        dc = DynamicConnectivity(4)
        stream = UpdateStream(
            5, np.array([1], dtype=np.int8), np.array([0]), np.array([1]),
            np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(GraphError):
            dc.apply(stream)


class TestProfiles:
    def test_profile_structure(self):
        dc = DynamicConnectivity(10, seed=1)
        for u, v in [(0, 1), (1, 2), (2, 3), (0, 3)]:
            dc.insert_edge(u, v)
        dc.delete_edge(1, 2)
        prof = dc.profile()
        assert len(prof.phases) == 2
        forest_phase = prof.phases[1]
        assert forest_phase.locks >= dc.stats.tree_links

    def test_replacement_scan_counted(self):
        dc = DynamicConnectivity(4, seed=1)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            dc.insert_edge(u, v)
        dc.delete_edge(0, 1)
        assert dc.stats.replacement_scan_arcs > 0


class TestValidate:
    def test_detects_divergence(self):
        dc = DynamicConnectivity(4)
        dc.insert_edge(0, 1)
        dc.forest.cut(dc.forest.parent_of(0) == 1 and 0 or 1)
        with pytest.raises(GraphError):
            dc.validate()
