"""Property-based tests (hypothesis) for the analysis kernels."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adjacency.csr import build_csr
from repro.core.bfs import bfs
from repro.core.components import connected_components
from repro.core.linkcut import LinkCutForest
from repro.core.stconn import st_connectivity
from repro.edgelist import EdgeList
from repro.generators.reference import to_networkx

N = 14

edges_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=0, max_value=N - 1),
    ),
    max_size=40,
)


def make_graph(pairs):
    if pairs:
        src, dst = (np.array(x, dtype=np.int64) for x in zip(*pairs))
    else:
        src = dst = np.array([], dtype=np.int64)
    return EdgeList(N, src, dst)


class TestBFSProperties:
    @given(edges_strategy, st.integers(min_value=0, max_value=N - 1))
    @settings(max_examples=80, deadline=None)
    def test_distances_match_networkx(self, pairs, source):
        g = make_graph(pairs)
        res = bfs(build_csr(g), source)
        truth = nx.single_source_shortest_path_length(to_networkx(g), source)
        mine = {v: int(d) for v, d in enumerate(res.dist) if d >= 0}
        assert mine == dict(truth)

    @given(edges_strategy, st.integers(min_value=0, max_value=N - 1))
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality_on_tree_edges(self, pairs, source):
        g = make_graph(pairs)
        res = bfs(build_csr(g), source)
        for v in range(N):
            p = int(res.parent[v])
            if p >= 0:
                assert res.dist[v] == res.dist[p] + 1


class TestComponentsProperties:
    @given(edges_strategy)
    @settings(max_examples=80, deadline=None)
    def test_partition_matches_networkx(self, pairs):
        g = make_graph(pairs)
        res = connected_components(build_csr(g))
        truth = list(nx.connected_components(to_networkx(g)))
        assert res.n_components == len(truth)
        for comp in truth:
            assert len({int(res.labels[v]) for v in comp}) == 1
            assert int(res.labels[next(iter(comp))]) == min(comp)

    @given(edges_strategy)
    @settings(max_examples=50, deadline=None)
    def test_labels_idempotent_under_relabel(self, pairs):
        g = make_graph(pairs)
        labels = connected_components(build_csr(g)).labels
        # a label must itself carry the same label (canonical fixed point)
        assert np.array_equal(labels[labels], labels)


class TestSTConnProperties:
    @given(
        edges_strategy,
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=0, max_value=N - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_networkx(self, pairs, s, t):
        g = make_graph(pairs)
        G = to_networkx(g)
        res = st_connectivity(build_csr(g), s, t)
        assert res.connected == nx.has_path(G, s, t)
        if res.connected:
            assert res.distance == nx.shortest_path_length(G, s, t)


class TestLinkCutProperties:
    @given(edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_forest_connectivity_equals_graph(self, pairs):
        g = make_graph(pairs)
        forest, _ = LinkCutForest.from_csr(build_csr(g))
        forest.validate()
        comps = connected_components(build_csr(g))
        for u in range(N):
            for v in range(u + 1, N):
                assert forest.connected(u, v) == comps.same_component(u, v)

    @given(edges_strategy, st.data())
    @settings(max_examples=50, deadline=None)
    def test_incremental_add_edge_tracks_union(self, pairs, data):
        """add_edge over a stream keeps forest connectivity == graph's."""
        forest = LinkCutForest(N)
        G = nx.Graph()
        G.add_nodes_from(range(N))
        for u, v in pairs:
            if u != v:
                forest.add_edge(u, v)
            G.add_edge(u, v)
        forest.validate()
        for u in range(N):
            for v in range(u + 1, N):
                assert forest.connected(u, v) == nx.has_path(G, u, v)

    @given(edges_strategy)
    @settings(max_examples=40, deadline=None)
    def test_reroot_preserves_partition(self, pairs):
        g = make_graph(pairs)
        forest, _ = LinkCutForest.from_csr(build_csr(g))
        before = forest.findroot_batch(np.arange(N))
        for v in range(0, N, 5):
            forest.reroot(v)
            forest.validate()
        after = forest.findroot_batch(np.arange(N))
        # partition unchanged: same-root relation preserved
        for u in range(N):
            for v in range(N):
                assert (before[u] == before[v]) == (after[u] == after[v])
