"""Tests for the sliding-window graph."""

import networkx as nx
import numpy as np
import pytest

from repro.core.window import SlidingWindowGraph
from repro.errors import GraphError, StreamError
from repro.generators.rmat import rmat_edges


class TestBasics:
    def test_fills_then_expires(self):
        g = SlidingWindowGraph(10, window=2)
        assert g.advance([0, 1], [1, 2]) == 0
        assert g.advance([2, 3], [3, 4]) == 0
        assert g.n_edges == 4
        expired = g.advance([4], [5])
        assert expired == 2  # the first batch aged out
        assert g.n_edges == 3
        g.validate()

    def test_tick_counter(self):
        g = SlidingWindowGraph(5, window=3)
        assert g.tick == -1
        g.advance([0], [1])
        g.advance([1], [2])
        assert g.tick == 1

    def test_self_loops_dropped(self):
        g = SlidingWindowGraph(5, window=2)
        g.advance([0, 1, 2], [0, 2, 2])
        assert g.n_edges == 1

    def test_default_ts_is_tick(self):
        g = SlidingWindowGraph(5, window=4)
        g.advance([0], [1])
        g.advance([1], [2])
        snap = g.snapshot()
        _, ts = snap.neighbors_with_ts(1)
        assert sorted(ts.tolist()) == [0, 1]

    def test_explicit_ts(self):
        g = SlidingWindowGraph(5, window=2)
        g.advance([0], [1], ts=[42])
        snap = g.snapshot()
        assert snap.neighbors_with_ts(0)[1].tolist() == [42]

    def test_old_edges_leave_snapshot(self):
        g = SlidingWindowGraph(5, window=1)
        g.advance([0], [1])
        g.advance([2], [3])
        snap = g.snapshot()
        assert snap.degree(0) == 0
        assert snap.degree(2) == 1

    def test_validation_errors(self):
        with pytest.raises(GraphError):
            SlidingWindowGraph(5, window=0)
        g = SlidingWindowGraph(5, window=2)
        with pytest.raises(StreamError):
            g.advance([0, 1], [1])
        with pytest.raises(StreamError):
            g.advance([0], [1], ts=[1, 2])


class TestConnectivityTracking:
    @pytest.mark.parametrize("track", [False, True])
    def test_connectivity_matches_truth(self, track):
        rng = np.random.default_rng(5)
        g = SlidingWindowGraph(24, window=3, track_connectivity=track,
                               **({"seed": 1} if track else {}))
        window_batches = []
        for tick in range(8):
            src, dst = rmat_edges(4, 30, seed=int(rng.integers(1 << 30)))
            # drop loops for the reference too
            keep = src != dst
            src, dst = src[keep], dst[keep]
            # vertex space is 16 < 24: valid
            g.advance(src, dst)
            window_batches.append((src, dst))
            window_batches = window_batches[-3:]
            G = nx.MultiGraph()
            G.add_nodes_from(range(24))
            for s_, d_ in window_batches:
                G.add_edges_from(zip(s_.tolist(), d_.tolist()))
            for _ in range(20):
                a, b = (int(x) for x in rng.integers(0, 24, 2))
                assert g.connected(a, b) == nx.has_path(G, a, b), (tick, a, b)
        g.validate()

    def test_components_tracked(self):
        g = SlidingWindowGraph(6, window=1, track_connectivity=True, seed=2)
        g.advance([0, 2], [1, 3])
        assert g.n_components() == 4  # {0,1},{2,3},{4},{5}
        g.advance([4], [5])
        assert g.n_components() == 5  # old batch expired

    def test_untracked_components(self):
        g = SlidingWindowGraph(6, window=2)
        g.advance([0, 2], [1, 3])
        assert g.n_components() == 4


class TestSteadyState:
    def test_edge_count_stable(self):
        g = SlidingWindowGraph(32, window=4)
        rng = np.random.default_rng(9)
        for tick in range(12):
            src = rng.integers(0, 32, 25)
            dst = (src + 1 + rng.integers(0, 30, 25)) % 32  # loop-free
            g.advance(src, dst)
            if tick >= 4:
                assert g.n_live_batches == 4
                assert g.n_edges == 4 * 25
        g.validate()

    def test_duplicate_edges_within_window(self):
        g = SlidingWindowGraph(4, window=2)
        g.advance([0, 0], [1, 1])  # duplicates allowed
        g.advance([0], [1])
        assert g.n_edges == 3
        g.advance([2], [3])  # first batch (2 copies) expires
        assert g.n_edges == 2
        g.validate()
