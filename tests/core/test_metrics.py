"""Tests for the small-world network statistics."""

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.core.metrics import (
    average_clustering,
    clustering_coefficient,
    degree_stats,
    effective_diameter,
    giant_component_fraction,
)
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.rmat import rmat_graph
from repro.generators.reference import (
    complete_graph,
    erdos_renyi,
    path_graph,
    star_graph,
    to_networkx,
    watts_strogatz,
)


class TestDegreeStats:
    def test_path(self):
        s = degree_stats(build_csr(path_graph(5)))
        assert s.min == 1 and s.max == 2
        assert s.mean == pytest.approx(8 / 5)

    def test_rmat_heavy_tail(self):
        csr = build_csr(rmat_graph(11, 10, seed=81))
        s = degree_stats(csr)
        assert s.max > 10 * s.mean  # unbalanced degree distribution
        assert s.top1pct_arc_share > 0.1
        assert s.loglog_slope < -0.5  # decaying tail

    def test_er_balanced(self):
        csr = build_csr(erdos_renyi(400, 0.03, seed=82))
        s = degree_stats(csr)
        assert s.max < 5 * s.mean
        assert s.top1pct_arc_share < 0.1

    def test_empty(self):
        g = EdgeList(0, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        s = degree_stats(build_csr(g))
        assert s.n == 0 and s.mean == 0.0


class TestClustering:
    def test_matches_networkx(self, er_csr, er_nx):
        mine = clustering_coefficient(er_csr)
        truth = nx.clustering(er_nx)
        for v in range(er_csr.n):
            assert mine[v] == pytest.approx(truth[v], abs=1e-12)

    def test_complete_graph_all_one(self):
        vals = clustering_coefficient(build_csr(complete_graph(6)))
        assert np.allclose(vals, 1.0)

    def test_star_all_zero(self):
        vals = clustering_coefficient(build_csr(star_graph(6)))
        assert np.allclose(vals, 0.0)

    def test_triangle_with_tail(self):
        # triangle 0-1-2 plus pendant 3 on 0
        g = EdgeList(4, np.array([0, 1, 2, 0]), np.array([1, 2, 0, 3]))
        vals = clustering_coefficient(build_csr(g))
        assert vals[1] == 1.0 and vals[2] == 1.0
        assert vals[0] == pytest.approx(1 / 3)
        assert vals[3] == 0.0

    def test_duplicate_arcs_ignored(self):
        g = EdgeList(3, np.array([0, 0, 1, 2]), np.array([1, 1, 2, 0]))
        vals = clustering_coefficient(build_csr(g))
        assert np.allclose(vals, 1.0)

    def test_subset(self, er_csr):
        vals = clustering_coefficient(er_csr, vertices=np.array([0, 5]))
        assert vals.shape == (2,)

    def test_subset_validated(self, er_csr):
        with pytest.raises(GraphError):
            clustering_coefficient(er_csr, vertices=np.array([er_csr.n]))

    def test_average_matches_networkx(self, er_csr, er_nx):
        assert average_clustering(er_csr) == pytest.approx(
            nx.average_clustering(er_nx), abs=1e-12
        )

    def test_sampled_average(self, er_csr):
        a = average_clustering(er_csr, samples=50, seed=1)
        b = average_clustering(er_csr, samples=50, seed=1)
        assert a == b  # deterministic

    def test_ws_more_clustered_than_er(self):
        ws = build_csr(watts_strogatz(200, 6, 0.05, seed=83))
        er = build_csr(erdos_renyi(200, 6 / 199, seed=83))
        assert average_clustering(ws) > 3 * average_clustering(er)

    def test_invalid_sample_size(self, er_csr):
        with pytest.raises(GraphError):
            average_clustering(er_csr, samples=0)


class TestDiameter:
    def test_path_exact(self):
        eff, ecc = effective_diameter(build_csr(path_graph(20)), samples=20, seed=1)
        assert ecc == 19
        assert eff > 5

    def test_small_world_low_diameter(self):
        csr = build_csr(rmat_graph(11, 10, seed=84))
        eff, ecc = effective_diameter(csr, samples=8, seed=2)
        assert eff <= 8  # the small-world phenomenon

    def test_percentile_validated(self, er_csr):
        with pytest.raises(GraphError):
            effective_diameter(er_csr, percentile=0)

    def test_empty_graph(self):
        g = EdgeList(0, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert effective_diameter(build_csr(g)) == (0.0, 0)


class TestGiantComponent:
    def test_connected(self):
        assert giant_component_fraction(build_csr(path_graph(5))) == 1.0

    def test_matches_networkx(self, er_csr, er_nx):
        truth = max(len(c) for c in nx.connected_components(er_nx)) / er_csr.n
        assert giant_component_fraction(er_csr) == pytest.approx(truth)
