"""Tests for triangles, k-cores and community detection."""

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.core.community import label_propagation_communities, modularity
from repro.core.metrics import core_numbers, total_triangles, triangle_counts
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.reference import (
    complete_graph,
    erdos_renyi,
    path_graph,
    star_graph,
    to_networkx,
)


class TestTriangles:
    def test_matches_networkx(self, er_csr, er_nx):
        mine = triangle_counts(er_csr)
        truth = nx.triangles(er_nx)
        for v in range(er_csr.n):
            assert mine[v] == truth[v]

    def test_complete_graph(self):
        csr = build_csr(complete_graph(5))
        assert np.all(triangle_counts(csr) == 6)  # C(4,2)
        assert total_triangles(csr) == 10  # C(5,3)

    def test_triangle_free(self):
        assert total_triangles(build_csr(star_graph(8))) == 0
        assert total_triangles(build_csr(path_graph(8))) == 0

    def test_single_triangle(self):
        g = EdgeList(4, np.array([0, 1, 2, 0]), np.array([1, 2, 0, 3]))
        counts = triangle_counts(build_csr(g))
        assert counts.tolist() == [1, 1, 1, 0]

    def test_duplicates_ignored(self):
        g = EdgeList(3, np.array([0, 0, 1, 2]), np.array([1, 1, 2, 0]))
        assert total_triangles(build_csr(g)) == 1

    def test_dense_er(self):
        g = erdos_renyi(40, 0.25, seed=23)
        mine = triangle_counts(build_csr(g))
        truth = nx.triangles(to_networkx(g))
        assert all(mine[v] == truth[v] for v in range(g.n))


class TestCoreNumbers:
    def test_matches_networkx(self, er_csr, er_nx):
        mine = core_numbers(er_csr)
        truth = nx.core_number(er_nx)
        for v in range(er_csr.n):
            assert mine[v] == truth[v]

    def test_complete_graph(self):
        assert np.all(core_numbers(build_csr(complete_graph(6))) == 5)

    def test_path(self):
        assert np.all(core_numbers(build_csr(path_graph(6))) == 1)

    def test_star(self):
        cores = core_numbers(build_csr(star_graph(6)))
        assert np.all(cores == 1)

    def test_nested_cores(self):
        # triangle attached to a pendant chain: triangle is 2-core, chain 1-core
        g = EdgeList(5, np.array([0, 1, 2, 2, 3]), np.array([1, 2, 0, 3, 4]))
        cores = core_numbers(build_csr(g))
        assert cores.tolist() == [2, 2, 2, 1, 1]

    def test_dense_er(self):
        g = erdos_renyi(50, 0.2, seed=24)
        mine = core_numbers(build_csr(g))
        truth = nx.core_number(to_networkx(g))
        assert all(mine[v] == truth[v] for v in range(g.n))


class TestModularity:
    def test_matches_networkx(self, er_csr, er_graph, er_nx):
        res = label_propagation_communities(er_csr, seed=1)
        mine = modularity(er_csr, res.labels)
        truth = nx.community.modularity(
            er_nx,
            [set(c.tolist()) for c in res.communities()],
        )
        assert mine == pytest.approx(truth, abs=1e-9)

    def test_single_community_zero(self):
        csr = build_csr(complete_graph(5))
        q = modularity(csr, np.zeros(5, dtype=np.int64))
        assert q == pytest.approx(0.0)

    def test_perfect_split(self):
        # two disjoint triangles, labelled by component: Q = 1/2
        g = EdgeList(6, np.array([0, 1, 2, 3, 4, 5]), np.array([1, 2, 0, 4, 5, 3]))
        labels = np.array([0, 0, 0, 1, 1, 1])
        assert modularity(build_csr(g), labels) == pytest.approx(0.5)

    def test_bad_labels_shape(self, er_csr):
        with pytest.raises(GraphError):
            modularity(er_csr, np.zeros(3))

    def test_empty_graph(self):
        g = EdgeList(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert modularity(build_csr(g), np.zeros(3, dtype=np.int64)) == 0.0


class TestLabelPropagation:
    def test_disjoint_cliques_found(self):
        # two K4s joined by nothing: LPA must find exactly the two cliques
        src, dst = [], []
        for base in (0, 4):
            for i in range(4):
                for j in range(i + 1, 4):
                    src.append(base + i)
                    dst.append(base + j)
        g = EdgeList(8, np.array(src), np.array(dst))
        res = label_propagation_communities(build_csr(g), seed=3)
        assert res.converged
        assert res.n_communities == 2
        assert len({int(x) for x in res.labels[:4]}) == 1
        assert len({int(x) for x in res.labels[4:]}) == 1

    def test_weakly_joined_cliques_positive_modularity(self):
        src, dst = [], []
        for base in (0, 5):
            for i in range(5):
                for j in range(i + 1, 5):
                    src.append(base + i)
                    dst.append(base + j)
        src.append(0)
        dst.append(5)  # single bridge
        g = EdgeList(10, np.array(src), np.array(dst))
        csr = build_csr(g)
        res = label_propagation_communities(csr, seed=4)
        assert modularity(csr, res.labels) > 0.3

    def test_labels_canonical(self, er_csr):
        res = label_propagation_communities(er_csr, seed=5)
        for c in res.communities():
            assert int(res.labels[c[0]]) == int(c.min())

    def test_deterministic_given_seed(self, er_csr):
        a = label_propagation_communities(er_csr, seed=6)
        b = label_propagation_communities(er_csr, seed=6)
        assert np.array_equal(a.labels, b.labels)

    def test_profile_one_phase_per_sweep(self, er_csr):
        res = label_propagation_communities(er_csr, seed=7)
        assert len(res.profile.phases) == res.n_sweeps

    def test_max_sweeps_respected(self, er_csr):
        res = label_propagation_communities(er_csr, max_sweeps=1, seed=8)
        assert res.n_sweeps == 1

    def test_invalid_max_sweeps(self, er_csr):
        with pytest.raises(GraphError):
            label_propagation_communities(er_csr, max_sweeps=0)
