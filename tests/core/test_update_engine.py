"""Tests for the update engine."""

import numpy as np
import pytest

from repro.adjacency.dynarr import DynArrAdjacency
from repro.adjacency.hybrid import HybridAdjacency
from repro.core.update_engine import apply_stream, construct
from repro.generators.rmat import rmat_graph
from repro.generators.streams import (
    UpdateStream,
    deletion_stream,
    insertion_stream,
    mixed_stream,
)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(9, 8, seed=21, ts_range=(1, 50))


class TestApplyStream:
    def test_undirected_doubles_arcs(self, graph):
        rep = DynArrAdjacency(graph.n)
        res = apply_stream(rep, insertion_stream(graph))
        assert res.n_updates == graph.m
        assert res.n_arc_ops == 2 * graph.m
        assert rep.n_arcs == 2 * graph.m

    def test_directed_single_arcs(self, graph):
        rep = DynArrAdjacency(graph.n)
        res = apply_stream(rep, insertion_stream(graph), undirected=False)
        assert res.n_arc_ops == graph.m
        assert rep.n_arcs == graph.m

    def test_symmetry_after_undirected_insert(self, graph):
        rep = DynArrAdjacency(graph.n)
        apply_stream(rep, insertion_stream(graph))
        for u, v in list(zip(graph.src.tolist(), graph.dst.tolist()))[:50]:
            assert rep.has_arc(u, v) and rep.has_arc(v, u)

    def test_deletions_remove_both_arcs(self, graph):
        rep = DynArrAdjacency(graph.n)
        apply_stream(rep, insertion_stream(graph))
        dels = deletion_stream(graph, 50, seed=1)
        res = apply_stream(rep, dels)
        assert res.misses == 0
        assert rep.n_arcs == 2 * (graph.m - 50)

    def test_misses_counted(self):
        g = rmat_graph(6, 4, seed=2)
        rep = DynArrAdjacency(g.n)
        stream = UpdateStream(
            g.n,
            np.array([-1], dtype=np.int8),
            np.array([0]),
            np.array([1]),
            np.array([0]),
        )
        res = apply_stream(rep, stream)
        assert res.misses == 2  # both arc deletes missed

    def test_vertex_count_mismatch(self, graph):
        rep = DynArrAdjacency(graph.n + 1)
        with pytest.raises(ValueError):
            apply_stream(rep, insertion_stream(graph))

    def test_profile_metadata(self, graph):
        rep = DynArrAdjacency(graph.n)
        res = apply_stream(rep, insertion_stream(graph), phase_name="construction")
        assert res.profile.name == "construction"
        assert res.profile.meta["n_updates"] == graph.m
        assert res.profile.meta["representation"] == "dynarr"

    def test_hot_stats_from_arc_sources(self, graph):
        rep = DynArrAdjacency(graph.n)
        res = apply_stream(rep, insertion_stream(graph))
        deg = np.bincount(graph.src, minlength=graph.n) + np.bincount(
            graph.dst, minlength=graph.n
        )
        assert res.hot.max_addr_ops == int(deg.max())

    def test_reset_stats_scopes_profile(self, graph):
        rep = DynArrAdjacency(graph.n)
        apply_stream(rep, insertion_stream(graph))
        dels = deletion_stream(graph, 10, seed=1)
        res = apply_stream(rep, dels, phase_name="deletions")
        # profile covers only the deletions, not construction
        assert res.profile.phases[0].atomics == pytest.approx(20.0)

    def test_probe_scale(self, graph):
        rep1 = DynArrAdjacency(graph.n)
        rep2 = DynArrAdjacency(graph.n)
        apply_stream(rep1, insertion_stream(graph))
        apply_stream(rep2, insertion_stream(graph))
        dels = deletion_stream(graph, 40, seed=3)
        plain = apply_stream(rep1, dels)
        scaled = apply_stream(rep2, dels, probe_scale=10.0)
        assert scaled.profile.phases[0].seq_bytes > 5 * plain.profile.phases[0].seq_bytes

    def test_probe_scale_negative_rejected(self, graph):
        rep = DynArrAdjacency(graph.n)
        with pytest.raises(ValueError):
            apply_stream(rep, insertion_stream(graph), probe_scale=-1.0)


class TestConstruct:
    def test_equivalent_to_insertion_stream(self, graph):
        a = DynArrAdjacency(graph.n)
        b = DynArrAdjacency(graph.n)
        construct(a, graph)
        apply_stream(b, insertion_stream(graph))
        assert a.n_arcs == b.n_arcs
        for u in range(0, graph.n, 37):
            assert sorted(a.neighbors(u).tolist()) == sorted(b.neighbors(u).tolist())

    def test_shuffle_changes_order_not_content(self, graph):
        a = DynArrAdjacency(graph.n)
        construct(a, graph, shuffle=True, seed=5)
        assert a.n_arcs == 2 * graph.m

    def test_hybrid_construction(self, graph):
        rep = HybridAdjacency(graph.n, seed=1)
        res = construct(rep, graph)
        assert rep.n_arcs == 2 * graph.m
        assert res.profile.phases[0].locks > 0  # treap side active

    def test_mixed_stream_end_state(self, graph):
        rep = DynArrAdjacency(graph.n)
        construct(rep, graph)
        stream = mixed_stream(graph, 200, 0.5, seed=7)
        before = rep.n_arcs
        res = apply_stream(rep, stream)
        # inserts add 2 arcs each; successful deletes remove 2 each
        expected = before + 2 * stream.n_inserts - (2 * stream.n_deletes - res.misses)
        assert rep.n_arcs == expected
