"""Property-based tests for the extension kernels."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.sparse.csgraph import dijkstra

from repro.adjacency.compressed import CompressedCSR
from repro.adjacency.csr import build_csr
from repro.core.sssp import delta_stepping
from repro.core.temporal_reach import earliest_arrival
from repro.edgelist import EdgeList

N = 12

weighted_edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=1, max_value=30),
    ),
    max_size=35,
)

temporal_edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=0, max_value=9),
    ),
    max_size=35,
)


def weighted_graph(triples):
    if triples:
        src, dst, w = (np.array(x, dtype=np.int64) for x in zip(*triples))
    else:
        src = dst = w = np.array([], dtype=np.int64)
    return EdgeList(N, src, dst, w=w if w.size else None)


def temporal_graph(triples):
    if triples:
        src, dst, ts = (np.array(x, dtype=np.int64) for x in zip(*triples))
    else:
        src = dst = ts = np.array([], dtype=np.int64)
    return EdgeList(N, src, dst, ts=ts)


class TestSSSPProperties:
    @given(weighted_edges, st.integers(min_value=0, max_value=N - 1),
           st.integers(min_value=1, max_value=40))
    @settings(max_examples=80, deadline=None)
    def test_matches_dijkstra_any_delta(self, triples, source, delta):
        g = weighted_graph(triples)
        csr = build_csr(g)
        mine = delta_stepping(csr, source, delta=delta).dist
        mat = sp.csr_matrix(
            (csr.weights().astype(float), csr.targets, csr.offsets),
            shape=(N, N),
        )
        truth = dijkstra(mat, directed=True, indices=source)
        assert np.allclose(mine, truth)

    @given(weighted_edges, st.integers(min_value=0, max_value=N - 1))
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, triples, source):
        g = weighted_graph(triples)
        csr = build_csr(g)
        dist = delta_stepping(csr, source).dist
        w = csr.weights()
        for u in range(N):
            lo, hi = int(csr.offsets[u]), int(csr.offsets[u + 1])
            for j in range(lo, hi):
                v = int(csr.targets[j])
                if np.isfinite(dist[u]):
                    assert dist[v] <= dist[u] + w[j] + 1e-9


class TestTemporalReachProperties:
    @given(temporal_edges, st.integers(min_value=0, max_value=N - 1))
    @settings(max_examples=60, deadline=None)
    def test_subset_of_static_reachability(self, triples, source):
        from repro.core.bfs import bfs

        g = temporal_graph(triples)
        res = earliest_arrival(g, source)
        static = bfs(build_csr(g), source)
        assert set(res.reached().tolist()) <= set(static.reached().tolist())

    @given(temporal_edges, st.integers(min_value=0, max_value=N - 1),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_later_start_reaches_no_more(self, triples, source, t0):
        g = temporal_graph(triples)
        early = earliest_arrival(g, source, t_start=t0)
        late = earliest_arrival(g, source, t_start=t0 + 3)
        assert set(late.reached().tolist()) <= set(early.reached().tolist())

    @given(temporal_edges, st.integers(min_value=0, max_value=N - 1))
    @settings(max_examples=40, deadline=None)
    def test_arrival_labels_are_edge_labels(self, triples, source):
        g = temporal_graph(triples)
        res = earliest_arrival(g, source)
        labels = set(g.timestamps().tolist())
        for v in res.reached().tolist():
            if v != source:
                assert int(res.arrival[v]) in labels


class TestCompressionProperties:
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=N - 1),
                  st.integers(min_value=0, max_value=N - 1)),
        max_size=50,
    ))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_neighbour_sets(self, pairs):
        if pairs:
            src, dst = (np.array(x, dtype=np.int64) for x in zip(*pairs))
        else:
            src = dst = np.array([], dtype=np.int64)
        csr = build_csr(EdgeList(N, src, dst))
        comp = CompressedCSR.from_csr(csr)
        for u in range(N):
            assert comp.neighbors(u).tolist() == sorted(set(csr.neighbors(u).tolist()))
            assert comp.degree(u) == len(set(csr.neighbors(u).tolist()))


class TestIOProperties:
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=N - 1),
                  st.integers(min_value=0, max_value=N - 1),
                  st.integers(min_value=0, max_value=100)),
        max_size=30,
    ))
    @settings(max_examples=40, deadline=None)
    def test_npz_roundtrip(self, tmp_path_factory, triples):
        from repro.io import load_npz, save_npz

        g = temporal_graph(triples)
        path = tmp_path_factory.mktemp("io") / "g.npz"
        save_npz(path, g)
        back = load_npz(path)
        assert np.array_equal(back.src, g.src)
        assert np.array_equal(back.dst, g.dst)
        assert np.array_equal(back.timestamps(), g.timestamps())
