"""Tests for connected components (validated against networkx)."""

import networkx as nx
import numpy as np

from repro.adjacency.csr import build_csr
from repro.core.components import connected_components
from repro.edgelist import EdgeList
from repro.generators.reference import cycle_graph, path_graph, star_graph


class TestCorrectness:
    def test_matches_networkx(self, er_csr, er_nx):
        res = connected_components(er_csr)
        truth = list(nx.connected_components(er_nx))
        assert res.n_components == len(truth)
        for comp in truth:
            labels = {int(res.labels[v]) for v in comp}
            assert len(labels) == 1

    def test_labels_are_canonical_minimum(self, er_csr, er_nx):
        res = connected_components(er_csr)
        for comp in nx.connected_components(er_nx):
            assert int(res.labels[next(iter(comp))]) == min(comp)

    def test_single_component(self):
        res = connected_components(build_csr(cycle_graph(10)))
        assert res.n_components == 1
        assert np.all(res.labels == 0)

    def test_all_isolated(self):
        g = EdgeList(5, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        res = connected_components(build_csr(g))
        assert res.n_components == 5
        assert res.labels.tolist() == [0, 1, 2, 3, 4]

    def test_two_components(self):
        g = EdgeList(6, np.array([0, 1, 3, 4]), np.array([1, 2, 4, 5]))
        res = connected_components(build_csr(g))
        assert res.n_components == 2
        assert res.same_component(0, 2)
        assert not res.same_component(2, 3)

    def test_directed_arcs_still_weakly_connect(self):
        # One-directional CSR input: hooking propagates both ways.
        g = EdgeList(3, np.array([0, 1]), np.array([1, 2]), directed=True)
        res = connected_components(build_csr(g))
        assert res.n_components == 1

    def test_empty_graph(self):
        g = EdgeList(0, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        res = connected_components(build_csr(g))
        assert res.n_components == 0

    def test_long_path_converges(self):
        res = connected_components(build_csr(path_graph(500)))
        assert res.n_components == 1


class TestDerived:
    def test_sizes_sum_to_n(self, er_csr):
        res = connected_components(er_csr)
        assert int(res.sizes().sum()) == er_csr.n

    def test_largest(self, er_csr, er_nx):
        root, size = connected_components(er_csr).largest()
        truth = max(nx.connected_components(er_nx), key=len)
        assert size == len(truth)
        assert root == min(truth)

    def test_roots_sorted_unique(self, er_csr):
        roots = connected_components(er_csr).roots()
        assert np.all(np.diff(roots) > 0)

    def test_profile_has_pass_phases(self, er_csr):
        res = connected_components(er_csr)
        prof = res.profile(er_csr)
        assert len(prof.phases) == res.n_passes
        assert prof.total("atomics") > 0

    def test_pass_count_logarithmic(self):
        res = connected_components(build_csr(star_graph(1000)))
        assert res.n_passes <= 4
