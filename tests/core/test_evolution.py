"""Tests for network-evolution timelines."""

import numpy as np
import pytest

from repro.core.evolution import evolution_timeline
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.rmat import rmat_graph


@pytest.fixture
def staged():
    """Edges arriving in three clear stages.

    Stage 0 creates two separate pairs; stage 1 bridges them; stage 2 pulls
    in vertex 5 and closes the ring.
    """
    return EdgeList(
        6,
        np.array([0, 2, 1, 3, 0, 4]),
        np.array([1, 3, 2, 4, 5, 5]),
        ts=np.array([0, 0, 10, 10, 20, 20]),
    )


class TestWindows:
    def test_tumbling_windows(self, staged):
        tl = evolution_timeline(staged, window=10)
        assert len(tl) == 3
        assert [w.n_edges for w in tl.windows] == [2, 2, 2]
        assert tl.windows[0].t_lo == 0 and tl.windows[0].t_hi == 9

    def test_sliding_windows(self, staged):
        tl = evolution_timeline(staged, window=15, step=5)
        assert len(tl) == 5
        # the first window [0,15) holds the first four edges
        assert tl.windows[0].n_edges == 4

    def test_cumulative_growth_monotone(self, staged):
        tl = evolution_timeline(staged, window=10, cumulative=True)
        edges = tl.series("n_edges")
        assert list(edges) == [2, 4, 6]
        active = tl.series("n_active_vertices")
        assert all(a <= b for a, b in zip(active, active[1:]))

    def test_giant_component_emerges(self, staged):
        tl = evolution_timeline(staged, window=10, cumulative=True)
        giant = tl.series("giant_fraction")
        assert giant[-1] == pytest.approx(1.0)  # everything connects by t=20
        assert giant[0] < 1.0

    def test_active_vertices_counted(self, staged):
        tl = evolution_timeline(staged, window=10)
        assert tl.windows[0].n_active_vertices == 4  # 0,1 and 2,3

    def test_components_of_active_subgraph(self, staged):
        tl = evolution_timeline(staged, window=10)
        # window 0: the pairs 0-1 and 2-3 -> two active components
        assert tl.windows[0].n_components == 2
        assert tl.windows[0].giant_fraction == pytest.approx(0.5)

    def test_series_and_table(self, staged):
        tl = evolution_timeline(staged, window=10)
        assert tl.series("n_edges").shape == (3,)
        text = tl.table()
        assert "giant_frac" in text
        assert len(text.splitlines()) == 4

    def test_empty_edge_list(self):
        g = EdgeList(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64),
                     ts=np.array([], dtype=np.int64))
        tl = evolution_timeline(g, window=5)
        assert len(tl) == 0
        assert tl.table() == "(empty timeline)"

    def test_requires_timestamps(self):
        g = EdgeList(3, np.array([0]), np.array([1]))
        with pytest.raises(GraphError):
            evolution_timeline(g, window=5)

    def test_validates_window_and_step(self, staged):
        with pytest.raises(GraphError):
            evolution_timeline(staged, window=0)
        with pytest.raises(GraphError):
            evolution_timeline(staged, window=5, step=0)

    def test_clustering_skippable(self, staged):
        tl = evolution_timeline(staged, window=10, clustering_samples=0)
        assert all(w.clustering == 0.0 for w in tl.windows)

    def test_deterministic(self, staged):
        a = evolution_timeline(staged, window=10, seed=3)
        b = evolution_timeline(staged, window=10, seed=3)
        assert a.windows == b.windows


class TestOnRmat:
    def test_rmat_formation(self):
        g = rmat_graph(9, 8, seed=44, ts_range=(0, 99))
        tl = evolution_timeline(g, window=25, cumulative=True, seed=1)
        assert len(tl) == 4
        # formation view: edges and giant share grow monotonically
        edges = tl.series("n_edges")
        assert all(a <= b for a, b in zip(edges, edges[1:]))
        assert edges[-1] == g.m
        giant = tl.series("giant_fraction")
        assert giant[-1] >= giant[0]
