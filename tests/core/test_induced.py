"""Tests for the temporal induced-subgraph kernel."""

import numpy as np
import pytest

from repro.core.induced import induced_subgraph
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.rmat import rmat_graph


@pytest.fixture
def stamped():
    return EdgeList(
        5,
        np.array([0, 1, 2, 3, 0]),
        np.array([1, 2, 3, 4, 2]),
        ts=np.array([10, 25, 50, 69, 70]),
    )


class TestSelection:
    def test_open_interval(self, stamped):
        res = induced_subgraph(stamped, 20, 70)
        # labels 25, 50, 69 qualify; 10 and 70 do not (open interval)
        assert res.n_affected == 3

    def test_inclusive_interval(self, stamped):
        res = induced_subgraph(stamped, 20, 70, inclusive=True)
        assert res.n_affected == 4  # 70 now included

    def test_subgraph_contains_only_interval_edges(self, stamped):
        res = induced_subgraph(stamped, 20, 70)
        assert res.graph.ts is not None
        assert np.all((res.graph.ts > 20) & (res.graph.ts < 70))

    def test_full_vertex_set_kept(self, stamped):
        res = induced_subgraph(stamped, 20, 70)
        assert res.graph.n == 5

    def test_symmetrised_arcs(self, stamped):
        res = induced_subgraph(stamped, 20, 70)
        assert res.graph.n_arcs == 2 * res.n_affected

    def test_empty_interval_result(self, stamped):
        res = induced_subgraph(stamped, 100, 200)
        assert res.n_affected == 0
        assert res.graph.n_arcs == 0

    def test_everything_selected(self, stamped):
        res = induced_subgraph(stamped, 0, 1000)
        assert res.n_affected == stamped.m

    def test_requires_timestamps(self):
        g = EdgeList(3, np.array([0]), np.array([1]))
        with pytest.raises(GraphError):
            induced_subgraph(g, 0, 10)

    def test_inverted_interval_rejected(self, stamped):
        with pytest.raises(GraphError):
            induced_subgraph(stamped, 70, 20)


class TestStrategyChoice:
    def test_rebuild_for_minority(self, stamped):
        res = induced_subgraph(stamped, 20, 70)  # 3 of 5 kept -> delete 2? no:
        # kept=3 > m-kept=2, so deleting the complement is cheaper
        assert res.strategy == "delete"

    def test_delete_for_majority(self, stamped):
        res = induced_subgraph(stamped, 40, 60)  # only label 50 kept
        assert res.strategy == "rebuild"

    def test_paper_interval_on_rmat(self):
        g = rmat_graph(10, 8, seed=3, ts_range=(1, 100))
        res = induced_subgraph(g, 20, 70)
        assert res.strategy == "rebuild"  # ~49% kept
        assert 0.4 * g.m < res.n_affected < 0.6 * g.m


class TestProfile:
    def test_two_phases(self, stamped):
        res = induced_subgraph(stamped, 20, 70)
        assert [p.name for p in res.profile.phases] == ["mark", "delete"]

    def test_mark_streams_all_edges(self, stamped):
        res = induced_subgraph(stamped, 20, 70)
        mark = res.profile.phases[0]
        assert mark.seq_bytes == 8.0 * stamped.m

    def test_apply_work_proportional_to_moved(self):
        g = rmat_graph(10, 8, seed=3, ts_range=(1, 100))
        narrow = induced_subgraph(g, 45, 55)
        wide = induced_subgraph(g, 10, 90)
        assert narrow.profile.phases[1].rand_accesses < wide.profile.phases[1].rand_accesses

    def test_meta(self, stamped):
        res = induced_subgraph(stamped, 20, 70)
        assert res.profile.meta["interval"] == (20, 70)
        assert res.profile.meta["kept"] == 3
