"""Tests for the connectivity-query index."""

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.adjacency.dynarr import DynArrAdjacency
from repro.core.connectivity import ConnectivityIndex
from repro.core.linkcut import LinkCutForest
from repro.errors import GraphError
from repro.generators.reference import path_graph


class TestQueries:
    @pytest.fixture(scope="class")
    def index(self, er_csr):
        return ConnectivityIndex.from_csr(er_csr)

    def test_single_query_matches_networkx(self, index, er_nx):
        rng = np.random.default_rng(2)
        for _ in range(50):
            u, v = rng.integers(0, er_nx.number_of_nodes(), 2)
            assert index.query(int(u), int(v)) == nx.has_path(er_nx, int(u), int(v))

    def test_batch_matches_networkx(self, index, er_nx):
        rng = np.random.default_rng(3)
        n = er_nx.number_of_nodes()
        us = rng.integers(0, n, 300)
        vs = rng.integers(0, n, 300)
        res = index.query_batch(us, vs)
        truth = np.array([nx.has_path(er_nx, int(u), int(v)) for u, v in zip(us, vs)])
        assert np.array_equal(res.connected, truth)

    def test_hops_measured(self, index):
        res = index.random_query_batch(100, seed=4)
        assert res.total_hops > 0
        assert res.hops_per_query == pytest.approx(res.total_hops / 100)

    def test_profile_read_only(self, index):
        res = index.random_query_batch(100, seed=4)
        ph = res.profile.phases[0]
        assert ph.atomics == 0 and ph.locks == 0 and ph.barriers == 0
        assert ph.rand_accesses >= res.total_hops

    def test_query_batch_shape_validation(self, index):
        with pytest.raises(GraphError):
            index.query_batch(np.array([1, 2]), np.array([1]))

    def test_random_query_batch_negative(self, index):
        with pytest.raises(GraphError):
            index.random_query_batch(-1)

    def test_construction_profile_exposed(self, er_csr):
        idx = ConnectivityIndex.from_csr(er_csr)
        assert idx.construction_profile.phases

    def test_no_record_raises(self):
        idx = ConnectivityIndex(LinkCutForest(3))
        with pytest.raises(GraphError):
            idx.construction_profile


class TestMaintenance:
    def _line_index(self):
        csr = build_csr(path_graph(5))
        rep = DynArrAdjacency(5)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            rep.insert(u, v)
            rep.insert(v, u)
        return ConnectivityIndex.from_csr(csr), rep

    def test_insert_edge(self):
        idx = ConnectivityIndex(LinkCutForest(4))
        assert idx.insert_edge(0, 1)
        assert idx.query(0, 1)
        assert not idx.insert_edge(0, 1)  # already connected

    def test_delete_tree_edge_disconnects(self):
        idx, rep = self._line_index()
        rep.delete(2, 3)
        rep.delete(3, 2)
        assert idx.delete_edge(2, 3, rep)
        assert not idx.query(0, 4)
        assert idx.query(0, 2) and idx.query(3, 4)

    def test_delete_nontree_edge_noop(self):
        idx, rep = self._line_index()
        # add a cycle edge 0-4 to the graph and the index
        rep.insert(0, 4)
        rep.insert(4, 0)
        changed = idx.insert_edge(0, 4)
        assert not changed  # it was a non-tree edge
        assert not idx.delete_edge(0, 4, rep)
        assert idx.query(0, 4)

    def test_delete_with_replacement_keeps_connectivity(self):
        idx, rep = self._line_index()
        rep.insert(0, 4)
        rep.insert(4, 0)
        idx.insert_edge(0, 4)
        # now delete tree edge (1,2); cycle provides a replacement
        rep.delete(1, 2)
        rep.delete(2, 1)
        assert idx.delete_edge(1, 2, rep)
        assert idx.query(0, 4) and idx.query(1, 2)
