"""Tests for bidirectional st-connectivity."""

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.core.stconn import st_connectivity
from repro.edgelist import EdgeList
from repro.errors import VertexError
from repro.generators.reference import grid_graph, path_graph


class TestCorrectness:
    def test_matches_networkx_connectivity(self, er_csr, er_nx):
        rng = np.random.default_rng(5)
        for _ in range(60):
            s, t = (int(x) for x in rng.integers(0, er_csr.n, 2))
            res = st_connectivity(er_csr, s, t)
            assert res.connected == nx.has_path(er_nx, s, t), (s, t)

    def test_distance_matches_networkx(self, er_csr, er_nx):
        rng = np.random.default_rng(6)
        checked = 0
        for _ in range(120):
            s, t = (int(x) for x in rng.integers(0, er_csr.n, 2))
            if not nx.has_path(er_nx, s, t):
                continue
            res = st_connectivity(er_csr, s, t)
            assert res.distance == nx.shortest_path_length(er_nx, s, t), (s, t)
            checked += 1
        assert checked > 20

    def test_same_vertex(self, er_csr):
        res = st_connectivity(er_csr, 3, 3)
        assert res.connected and res.distance == 0

    def test_adjacent(self):
        csr = build_csr(path_graph(3))
        res = st_connectivity(csr, 0, 1)
        assert res.connected and res.distance == 1

    def test_path_ends(self):
        csr = build_csr(path_graph(10))
        res = st_connectivity(csr, 0, 9)
        assert res.distance == 9

    def test_grid(self):
        csr = build_csr(grid_graph(5, 5))
        res = st_connectivity(csr, 0, 24)
        assert res.distance == 8

    def test_disconnected(self):
        g = EdgeList(4, np.array([0, 2]), np.array([1, 3]))
        res = st_connectivity(build_csr(g), 0, 3)
        assert not res.connected and res.distance == -1

    def test_bad_vertices(self, er_csr):
        with pytest.raises(VertexError):
            st_connectivity(er_csr, -1, 0)
        with pytest.raises(VertexError):
            st_connectivity(er_csr, 0, er_csr.n)


class TestEfficiency:
    def test_scans_fewer_edges_than_full_bfs(self):
        from repro.core.bfs import bfs

        csr = build_csr(path_graph(200))
        res = st_connectivity(csr, 0, 3)
        full = bfs(csr, 0)
        assert res.edges_scanned < full.total_edges_scanned


class TestTemporal:
    def test_filter_respected(self):
        g = EdgeList(4, np.array([0, 1, 2]), np.array([1, 2, 3]),
                     ts=np.array([1, 99, 1]))
        csr = build_csr(g)
        assert st_connectivity(csr, 0, 3).connected
        assert not st_connectivity(csr, 0, 3, ts_range=(0, 10)).connected

    def test_requires_ts(self, er_csr):
        with pytest.raises(VertexError):
            st_connectivity(er_csr, 0, 1, ts_range=(0, 1))


class TestProfile:
    def test_phases_per_round(self, er_csr):
        res = st_connectivity(er_csr, 0, 1)
        assert len(res.profile.phases) >= 1
        assert res.profile.meta["s"] == 0
