"""Tests for harmonic temporal closeness."""

import numpy as np
import pytest

from repro.core.temporal_reach import temporal_closeness
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.rmat import rmat_graph


@pytest.fixture
def chain():
    return EdgeList(4, np.array([0, 1, 2]), np.array([1, 2, 3]),
                    ts=np.array([1, 2, 3]))


class TestTemporalCloseness:
    def test_chain_values(self, chain):
        s = temporal_closeness(chain)
        assert s[0] == pytest.approx(1 / 2 + 1 / 3 + 1 / 4)
        # vertex 3 can only go backwards: 3-(3)->2 then stuck (labels decrease)
        assert s[3] == pytest.approx(1 / 4)

    def test_earlier_reach_scores_higher(self):
        # a reaches b at t=1; c reaches b at t=9
        g = EdgeList(3, np.array([0, 2]), np.array([1, 1]), ts=np.array([1, 9]))
        s = temporal_closeness(g)
        assert s[0] > s[2] > 0

    def test_isolated_zero(self):
        g = EdgeList(3, np.array([0]), np.array([1]), ts=np.array([5]))
        assert temporal_closeness(g)[2] == 0.0

    def test_sampling(self, chain):
        s = temporal_closeness(chain, sources=np.array([0]))
        assert s[0] > 0
        assert np.all(s[1:] == 0)

    def test_sample_size(self, chain):
        s = temporal_closeness(chain, 2, seed=1)
        assert np.count_nonzero(s) <= 2

    def test_t_start_reduces_score(self, chain):
        full = temporal_closeness(chain, sources=np.array([0]))
        late = temporal_closeness(chain, sources=np.array([0]), t_start=2)
        assert late[0] < full[0]

    def test_invalid_sources(self, chain):
        with pytest.raises(GraphError):
            temporal_closeness(chain, 0)
        with pytest.raises(GraphError):
            temporal_closeness(chain, np.array([9]))

    def test_rmat_smoke(self):
        g = rmat_graph(8, 6, seed=41, ts_range=(1, 20))
        s = temporal_closeness(g, 8, seed=2)
        assert s.shape == (g.n,)
        assert s.max() > 0
