"""Tests for earliest-arrival temporal reachability."""

import numpy as np
import pytest

from repro.core.temporal_reach import earliest_arrival, temporal_reachable_set
from repro.edgelist import EdgeList
from repro.errors import GraphError, VertexError


def brute_force_arrival(edges: EdgeList, source: int, t_start: int = 0):
    """Exhaustive DFS over label-increasing paths."""
    arcs = edges.symmetrized() if not edges.directed else edges
    adj = [[] for _ in range(edges.n)]
    for u, v, t in zip(arcs.src.tolist(), arcs.dst.tolist(),
                       arcs.timestamps().tolist()):
        if t >= t_start:
            adj[u].append((v, t))
    best = {source: t_start - 1}
    stack = [(source, t_start - 1)]
    while stack:
        u, last = stack.pop()
        for v, t in adj[u]:
            if t > last and t < best.get(v, 1 << 60):
                best[v] = t
                stack.append((v, t))
    return best


@pytest.fixture
def chain():
    # 0 -(1)- 1 -(3)- 2 -(2)- 3 : the last hop's label decreases
    return EdgeList(4, np.array([0, 1, 2]), np.array([1, 2, 3]),
                    ts=np.array([1, 3, 2]))


class TestSemantics:
    def test_label_order_respected(self, chain):
        res = earliest_arrival(chain, 0)
        assert res.reachable(1) and res.reachable(2)
        # 2 -(2)-> 3 needs label > 3 after arriving at 2 via label 3
        assert not res.reachable(3)
        assert res.arrival[1] == 1 and res.arrival[2] == 3

    def test_reverse_direction(self, chain):
        res = earliest_arrival(chain, 3)
        # 3 -(2)-> 2 -(3)-> 1: labels 2 < 3 valid; 1 -(1)-> 0 needs label > 3
        assert res.reachable(2) and res.reachable(1)
        assert not res.reachable(0)

    def test_equal_labels_no_chaining(self):
        g = EdgeList(3, np.array([0, 1]), np.array([1, 2]), ts=np.array([5, 5]))
        res = earliest_arrival(g, 0)
        assert res.reachable(1)
        assert not res.reachable(2)

    def test_t_start_gates_first_edge(self, chain):
        res = earliest_arrival(chain, 0, t_start=2)
        assert not res.reachable(1)  # edge 0-1 has label 1 < t_start

    def test_source_always_reached(self, chain):
        res = earliest_arrival(chain, 2)
        assert res.reachable(2)
        assert res.arrival[2] == -1

    def test_directed_not_symmetrised(self):
        g = EdgeList(3, np.array([0]), np.array([1]), ts=np.array([4]),
                     directed=True)
        assert not earliest_arrival(g, 1).reachable(0)
        assert earliest_arrival(g, 0).reachable(1)

    def test_earliest_among_alternatives(self):
        # two routes to 2: via 1 arriving at 5, direct at 9
        g = EdgeList(3, np.array([0, 1, 0]), np.array([1, 2, 2]),
                     ts=np.array([2, 5, 9]))
        res = earliest_arrival(g, 0)
        assert res.arrival[2] == 5

    def test_greedy_earliest_is_optimal_prefix(self):
        # arriving EARLY at an intermediate helps: earliest-arrival has
        # optimal substructure and the label-scan computes it correctly.
        g = EdgeList(4, np.array([0, 0, 1, 2]), np.array([1, 2, 3, 3]),
                     ts=np.array([1, 4, 2, 5]))
        res = earliest_arrival(g, 0)
        assert res.arrival[3] == 2  # via 0-(1)->1-(2)->3


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_temporal_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 15, 40
        g = EdgeList(
            n,
            rng.integers(0, n, m),
            rng.integers(0, n, m),
            ts=rng.integers(0, 8, m),
        )
        for source in range(0, n, 4):
            res = earliest_arrival(g, source)
            truth = brute_force_arrival(g, source)
            mine = {
                v: int(res.arrival[v])
                for v in range(n)
                if res.arrival[v] < res.UNREACHED
            }
            assert mine == truth, (seed, source)

    def test_with_t_start(self):
        rng = np.random.default_rng(9)
        g = EdgeList(10, rng.integers(0, 10, 25), rng.integers(0, 10, 25),
                     ts=rng.integers(0, 6, 25))
        res = earliest_arrival(g, 0, t_start=3)
        truth = brute_force_arrival(g, 0, t_start=3)
        mine = {v: int(res.arrival[v]) for v in range(10)
                if res.arrival[v] < res.UNREACHED}
        assert mine == truth


class TestInterface:
    def test_requires_timestamps(self):
        g = EdgeList(3, np.array([0]), np.array([1]))
        with pytest.raises(GraphError):
            earliest_arrival(g, 0)

    def test_bad_source(self, chain):
        with pytest.raises(VertexError):
            earliest_arrival(chain, 4)

    def test_reachable_bad_vertex(self, chain):
        res = earliest_arrival(chain, 0)
        with pytest.raises(VertexError):
            res.reachable(9)

    def test_reachable_set(self, chain):
        assert temporal_reachable_set(chain, 0).tolist() == [0, 1, 2]

    def test_profile_one_phase_per_label(self, chain):
        res = earliest_arrival(chain, 0)
        assert res.edge_groups == 3  # labels 1, 2, 3
        assert len(res.profile.phases) == 3

    def test_empty_graph(self):
        g = EdgeList(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64),
                     ts=np.array([], dtype=np.int64))
        res = earliest_arrival(g, 1)
        assert res.n_reached == 1
