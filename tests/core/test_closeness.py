"""Tests for closeness and stress centrality."""

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.core.closeness import closeness_centrality, stress_centrality
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.reference import erdos_renyi, path_graph, star_graph, to_networkx


def brute_force_stress(G, n):
    """Exhaustive stress via networkx all-shortest-paths (ordered pairs)."""
    scores = np.zeros(n)
    for s in G.nodes:
        for t in G.nodes:
            if s == t or not nx.has_path(G, s, t):
                continue
            for p in nx.all_shortest_paths(G, s, t):
                for v in p[1:-1]:
                    scores[v] += 1
    return scores


class TestCloseness:
    def test_matches_networkx_er(self, er_csr, er_nx):
        res = closeness_centrality(er_csr)
        truth = nx.closeness_centrality(er_nx)  # wf_improved by default
        for v in range(er_csr.n):
            assert res.scores[v] == pytest.approx(truth[v], abs=1e-12)

    def test_star_centre_highest(self):
        res = closeness_centrality(build_csr(star_graph(10)))
        assert np.argmax(res.scores) == 0

    def test_path_interior_higher_than_ends(self):
        res = closeness_centrality(build_csr(path_graph(7)))
        assert res.scores[3] > res.scores[0]

    def test_isolated_vertex_zero(self):
        g = EdgeList(3, np.array([0]), np.array([1]))
        res = closeness_centrality(build_csr(g))
        assert res.scores[2] == 0.0

    def test_sampling_scores_only_sample(self, er_csr):
        res = closeness_centrality(er_csr, sources=np.array([3, 5]))
        nonzero = np.nonzero(res.scores)[0]
        assert set(nonzero.tolist()) <= {3, 5}

    def test_ts_filter(self):
        g = EdgeList(3, np.array([0, 1]), np.array([1, 2]), ts=np.array([1, 99]))
        csr = build_csr(g)
        full = closeness_centrality(csr, sources=np.array([0]))
        early = closeness_centrality(csr, sources=np.array([0]), ts_range=(0, 10))
        assert early.scores[0] < full.scores[0]

    def test_invalid_sources(self, er_csr):
        with pytest.raises(GraphError):
            closeness_centrality(er_csr, sources=0)

    def test_profile(self, er_csr):
        res = closeness_centrality(er_csr, sources=4, seed=1)
        assert res.profile.total("rand_accesses") > 0
        assert res.n_sources == 4


class TestStress:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_brute_force_er(self, seed):
        g = erdos_renyi(25, 0.15, seed=seed)
        csr = build_csr(g)
        res = stress_centrality(csr)
        truth = brute_force_stress(to_networkx(g), g.n)
        assert np.allclose(res.scores, truth)

    def test_path(self):
        res = stress_centrality(build_csr(path_graph(5)))
        # single shortest path per pair on a path graph: stress equals
        # the (ordered) betweenness values
        assert res.scores.tolist() == [0.0, 6.0, 8.0, 6.0, 0.0]

    def test_star(self):
        res = stress_centrality(build_csr(star_graph(6)))
        assert res.scores[0] == pytest.approx(20.0)  # ordered leaf pairs

    def test_parallel_paths_counted(self):
        # diamond: 0-1-3 and 0-2-3: sigma(0,3)=2, each interior carries 1
        g = EdgeList(4, np.array([0, 0, 1, 2]), np.array([1, 2, 3, 3]))
        res = stress_centrality(build_csr(g))
        truth = brute_force_stress(to_networkx(g), 4)
        assert np.allclose(res.scores, truth)
        assert res.scores[1] == res.scores[2] == 2.0  # both directions

    def test_sampling_extrapolates(self, er_csr):
        full = stress_centrality(er_csr)
        approx = stress_centrality(er_csr, sources=er_csr.n // 2, seed=2)
        top = int(np.argmax(full.scores))
        assert approx.scores[top] > 0.2 * full.scores[top]

    def test_stress_vs_betweenness_relation(self):
        """On graphs with unique shortest paths, stress == betweenness."""
        from repro.core.betweenness import temporal_betweenness

        g = path_graph(6)
        csr = build_csr(g)
        stress = stress_centrality(csr)
        bc = temporal_betweenness(csr, temporal=False)
        assert np.allclose(stress.scores, bc.scores)
