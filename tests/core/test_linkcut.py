"""Tests for the link-cut forest."""

import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.adjacency.dynarr import DynArrAdjacency
from repro.core.components import connected_components
from repro.core.linkcut import LinkCutForest
from repro.errors import GraphError, NotInForestError, VertexError
from repro.generators.reference import path_graph, star_graph


class TestBasicOps:
    def test_initially_all_roots(self):
        f = LinkCutForest(4)
        assert f.n_trees() == 4
        assert all(f.is_root(v) for v in range(4))

    def test_link_and_parent(self):
        f = LinkCutForest(4)
        f.link(1, 0)
        assert f.parent_of(1) == 0
        assert f.findroot(1) == 0
        assert f.n_trees() == 3

    def test_link_requires_root_source(self):
        f = LinkCutForest(4)
        f.link(1, 0)
        with pytest.raises(GraphError, match="not a root"):
            f.link(1, 2)

    def test_link_rejects_cycle(self):
        f = LinkCutForest(4)
        f.link(1, 0)
        with pytest.raises(GraphError, match="cycle"):
            f.link(0, 1)

    def test_cut(self):
        f = LinkCutForest(4)
        f.link(1, 0)
        assert f.cut(1) == 0
        assert f.is_root(1)

    def test_cut_root_rejected(self):
        with pytest.raises(NotInForestError):
            LinkCutForest(3).cut(0)

    def test_connected(self):
        f = LinkCutForest(5)
        f.link(1, 0)
        f.link(2, 1)
        f.link(4, 3)
        assert f.connected(0, 2)
        assert f.connected(3, 4)
        assert not f.connected(2, 4)

    def test_vertex_validation(self):
        f = LinkCutForest(3)
        with pytest.raises(VertexError):
            f.findroot(3)
        with pytest.raises(VertexError):
            f.link(0, -1)

    def test_version_increments(self):
        f = LinkCutForest(3)
        v0 = f.version
        f.link(1, 0)
        f.cut(1)
        assert f.version == v0 + 2

    def test_hops_counted(self):
        f = LinkCutForest(4)
        f.link(1, 0)
        f.link(2, 1)
        f.hops = 0
        f.findroot(2)
        assert f.hops == 2


class TestBatchOps:
    def test_findroot_batch_matches_scalar(self):
        f = LinkCutForest(50)
        rng = np.random.default_rng(0)
        for v in range(1, 50):
            f.link(v, int(rng.integers(0, v)))
        q = rng.integers(0, 50, 100)
        batch = f.findroot_batch(q)
        assert batch.tolist() == [f.findroot(int(v)) for v in q]

    def test_connected_batch(self):
        f = LinkCutForest(6)
        f.link(1, 0)
        f.link(2, 1)
        f.link(4, 3)
        out = f.connected_batch([0, 0, 3], [2, 4, 4])
        assert out.tolist() == [True, False, True]

    def test_batch_out_of_range(self):
        with pytest.raises(VertexError):
            LinkCutForest(3).findroot_batch([3])

    def test_depths(self):
        f = LinkCutForest(4)
        f.link(1, 0)
        f.link(2, 1)
        assert f.depths().tolist() == [0, 1, 2, 0]


class TestConstruction:
    def test_spanning_forest_of_er(self, er_csr, er_nx):
        forest, record = LinkCutForest.from_csr(er_csr)
        forest.validate()
        comps = connected_components(er_csr)
        assert forest.n_trees() == comps.n_components
        # forest connectivity must equal graph connectivity
        rng = np.random.default_rng(1)
        us = rng.integers(0, er_csr.n, 200)
        vs = rng.integers(0, er_csr.n, 200)
        mine = forest.connected_batch(us, vs)
        truth = comps.labels[us] == comps.labels[vs]
        assert np.array_equal(mine, truth)

    def test_tree_edges_are_graph_edges(self, er_csr, er_nx):
        forest, _ = LinkCutForest.from_csr(er_csr)
        for v in range(er_csr.n):
            p = forest.parent_of(v)
            if p != -1:
                assert er_nx.has_edge(v, p)

    def test_depth_bounded_by_bfs_ecc(self):
        forest, record = LinkCutForest.from_csr(build_csr(path_graph(20)))
        assert record.max_depth == 19

    def test_profile_includes_components_and_bfs(self, er_csr):
        _, record = LinkCutForest.from_csr(er_csr)
        names = [p.name for p in record.profile.phases]
        assert any(n.startswith("pass") for n in names)
        assert any(n.startswith("bfs-level") for n in names)

    def test_star_construction(self):
        forest, record = LinkCutForest.from_csr(build_csr(star_graph(50)))
        assert forest.n_trees() == 1
        assert record.max_depth == 1


class TestDynamicMaintenance:
    def test_add_edge_joins_trees(self):
        f = LinkCutForest(4)
        assert f.add_edge(0, 1)
        assert f.connected(0, 1)

    def test_add_edge_nontree_returns_false(self):
        f = LinkCutForest(4)
        f.add_edge(0, 1)
        f.add_edge(1, 2)
        assert not f.add_edge(0, 2)

    def test_reroot(self):
        f = LinkCutForest(4)
        f.link(1, 0)
        f.link(2, 1)
        f.reroot(2)
        assert f.is_root(2)
        assert f.findroot(0) == 2
        assert f.connected(0, 2)

    def test_reroot_preserves_partition(self):
        f = LinkCutForest(6)
        for a, b in [(1, 0), (2, 1), (4, 3)]:
            f.link(a, b)
        f.reroot(0)
        assert f.connected(0, 2) and not f.connected(0, 4)

    def test_cut_with_replacement_finds_alternative(self):
        # cycle 0-1-2-3-0: cutting one tree edge must reconnect via the cycle
        rep = DynArrAdjacency(4)
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        for u, v in edges:
            rep.insert(u, v)
            rep.insert(v, u)
        f = LinkCutForest(4)
        for u, v in edges[:3]:
            f.add_edge(u, v)
        # delete graph edge (1,2) which is a tree edge
        child = 1 if f.parent_of(1) == 2 else 2
        rep.delete(1, 2)
        rep.delete(2, 1)
        found = f.cut_with_replacement(child, rep)
        assert found is not None
        assert f.connected(1, 2)  # reconnected through 0-3

    def test_cut_with_replacement_none_when_bridge(self):
        rep = DynArrAdjacency(4)
        for u, v in [(0, 1), (1, 2)]:
            rep.insert(u, v)
            rep.insert(v, u)
        f = LinkCutForest(4)
        f.add_edge(0, 1)
        f.add_edge(1, 2)
        child = 1 if f.parent_of(1) == 0 else 0
        rep.delete(0, 1)
        rep.delete(1, 0)
        assert f.cut_with_replacement(child, rep) is None
        assert not f.connected(0, 1)

    def test_tree_vertices(self):
        f = LinkCutForest(5)
        f.add_edge(0, 1)
        f.add_edge(1, 2)
        assert sorted(f.tree_vertices(0).tolist()) == [0, 1, 2]


class TestValidate:
    def test_detects_cycle(self):
        f = LinkCutForest(3)
        f.parent[0] = 1
        f.parent[1] = 0
        with pytest.raises(GraphError, match="cycle"):
            f.validate()

    def test_detects_out_of_range(self):
        f = LinkCutForest(3)
        f.parent[0] = 7
        with pytest.raises(GraphError):
            f.validate()

    def test_valid_forest_passes(self):
        f = LinkCutForest(3)
        f.link(1, 0)
        f.validate()
