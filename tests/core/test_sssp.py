"""Tests for Δ-stepping SSSP (validated against scipy's Dijkstra)."""

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.sparse.csgraph import dijkstra

from repro.adjacency.csr import build_csr
from repro.core.sssp import delta_stepping
from repro.edgelist import EdgeList
from repro.errors import GraphError, VertexError
from repro.generators.rmat import rmat_graph
from repro.generators.reference import erdos_renyi, path_graph
from repro.util.seeding import make_rng


def weighted(graph: EdgeList, lo=1, hi=20, seed=0) -> EdgeList:
    rng = make_rng(seed)
    from dataclasses import replace

    return replace(graph, w=rng.integers(lo, hi + 1, graph.m, dtype=np.int64))


def scipy_dist(csr, source):
    mat = sp.csr_matrix(
        (csr.weights().astype(float), csr.targets, csr.offsets), shape=(csr.n, csr.n)
    )
    return dijkstra(mat, directed=True, indices=source)


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("delta", [1, 4, 16, None])
    def test_matches_dijkstra_er(self, seed, delta):
        g = weighted(erdos_renyi(120, 0.04, seed=seed), seed=seed)
        csr = build_csr(g)
        res = delta_stepping(csr, 0, delta=delta)
        truth = scipy_dist(csr, 0)
        assert np.allclose(res.dist, truth, equal_nan=False)

    def test_matches_dijkstra_rmat(self):
        g = weighted(rmat_graph(9, 6, seed=3), hi=50, seed=3)
        csr = build_csr(g)
        res = delta_stepping(csr, 0)
        assert np.allclose(res.dist, scipy_dist(csr, 0))

    def test_unweighted_equals_bfs(self):
        from repro.core.bfs import bfs

        g = erdos_renyi(150, 0.03, seed=4)
        csr = build_csr(g)
        res = delta_stepping(csr, 0)
        assert res.delta == 1
        b = bfs(csr, 0)
        mine = np.where(np.isfinite(res.dist), res.dist, -1)
        assert np.array_equal(mine.astype(np.int64), b.dist)

    def test_weighted_path(self):
        g = EdgeList(4, np.array([0, 1, 2]), np.array([1, 2, 3]),
                     w=np.array([5, 1, 7]))
        res = delta_stepping(build_csr(g), 0, delta=3)
        assert res.dist.tolist() == [0.0, 5.0, 6.0, 13.0]

    def test_shortcut_preferred(self):
        # 0-1-2 with weights 1+1 beats direct 0-2 weight 5
        g = EdgeList(3, np.array([0, 1, 0]), np.array([1, 2, 2]),
                     w=np.array([1, 1, 5]))
        res = delta_stepping(build_csr(g), 0, delta=2)
        assert res.dist[2] == 2.0

    def test_disconnected_inf(self):
        g = EdgeList(4, np.array([0]), np.array([1]), w=np.array([3]))
        res = delta_stepping(build_csr(g), 0)
        assert np.isinf(res.dist[2]) and np.isinf(res.dist[3])
        assert res.n_reached == 2

    def test_source_only(self):
        g = EdgeList(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        res = delta_stepping(build_csr(g), 1)
        assert res.dist[1] == 0.0 and res.n_reached == 1

    def test_big_delta_single_bucket(self):
        g = weighted(path_graph(10), hi=3, seed=5)
        res = delta_stepping(build_csr(g), 0, delta=1000)
        assert np.allclose(res.dist, scipy_dist(build_csr(g), 0))
        assert res.buckets_processed == 1

    def test_delta_one_many_buckets(self):
        g = weighted(path_graph(10), hi=3, seed=5)
        res = delta_stepping(build_csr(g), 0, delta=1)
        assert np.allclose(res.dist, scipy_dist(build_csr(g), 0))
        assert res.buckets_processed > 3


class TestValidation:
    def test_bad_source(self):
        csr = build_csr(path_graph(3))
        with pytest.raises(VertexError):
            delta_stepping(csr, 3)

    def test_bad_delta(self):
        csr = build_csr(path_graph(3))
        with pytest.raises(GraphError):
            delta_stepping(csr, 0, delta=0)


class TestStatistics:
    def test_profile_phases(self):
        g = weighted(erdos_renyi(80, 0.06, seed=6), seed=6)
        res = delta_stepping(build_csr(g), 0)
        assert len(res.profile.phases) >= res.buckets_processed
        assert res.relaxations > 0
        assert res.profile.meta["delta"] == res.delta

    def test_smaller_delta_more_phases(self):
        g = weighted(erdos_renyi(80, 0.06, seed=7), hi=30, seed=7)
        csr = build_csr(g)
        few = delta_stepping(csr, 0, delta=64)
        many = delta_stepping(csr, 0, delta=2)
        assert many.buckets_processed > few.buckets_processed
