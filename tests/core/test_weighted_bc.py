"""Tests for weighted betweenness centrality."""

from dataclasses import replace

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.core.betweenness import temporal_betweenness
from repro.core.weighted_bc import weighted_betweenness
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.reference import erdos_renyi, path_graph
from repro.util.seeding import make_rng


def weighted_er(n, p, seed, hi=10):
    g = erdos_renyi(n, p, seed=seed)
    rng = make_rng(seed)
    return replace(g, w=rng.integers(1, hi + 1, g.m, dtype=np.int64))


def nx_weighted(g):
    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    for u, v, w in zip(g.src.tolist(), g.dst.tolist(), g.weights().tolist()):
        # keep the lighter parallel edge, matching simple-graph semantics
        if not G.has_edge(u, v) or G[u][v]["weight"] > w:
            G.add_edge(u, v, weight=w)
    return G


class TestWeighted:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        g = weighted_er(40, 0.12, seed)
        # deduplicate so multigraph vs simple-graph semantics align
        g = g.deduplicated()
        res = weighted_betweenness(build_csr(g))
        truth = nx.betweenness_centrality(nx_weighted(g), weight="weight",
                                          normalized=False)
        for v in range(g.n):
            assert res.scores[v] == pytest.approx(2 * truth[v], abs=1e-6), v

    def test_weights_change_the_answer(self):
        # square 0-1-2-3-0 with one heavy edge: flow routes around it
        g = EdgeList(4, np.array([0, 1, 2, 3]), np.array([1, 2, 3, 0]),
                     w=np.array([1, 10, 1, 1]))
        res = weighted_betweenness(build_csr(g))
        unw = weighted_betweenness(build_csr(replace(g, w=None)))
        # with the heavy 1-2 edge, vertex 3 relays 0<->2 AND 1<->... more
        assert res.scores[3] > unw.scores[3]

    def test_unweighted_equals_bfs_brandes(self, er_csr):
        a = weighted_betweenness(er_csr)
        b = temporal_betweenness(er_csr, temporal=False)
        assert np.allclose(a.scores, b.scores)

    def test_path_graph(self):
        res = weighted_betweenness(build_csr(path_graph(5)))
        assert res.scores.tolist() == [0.0, 6.0, 8.0, 6.0, 0.0]

    def test_parallel_edges_count_as_paths(self):
        g = EdgeList(3, np.array([0, 0, 1]), np.array([1, 1, 2]),
                     w=np.array([2, 2, 3]))
        res = weighted_betweenness(build_csr(g))
        # both parallel 0-1 edges are shortest: sigma(0,2)=2 through vertex 1
        assert res.scores[1] == pytest.approx(2.0)  # pairs (0,2) and (2,0)

    def test_sampling(self, er_csr):
        full = weighted_betweenness(er_csr)
        approx = weighted_betweenness(er_csr, sources=er_csr.n // 2, seed=1)
        top = int(np.argmax(full.scores))
        assert approx.scores[top] > 0.2 * full.scores[top]

    def test_invalid_sources(self, er_csr):
        with pytest.raises(GraphError):
            weighted_betweenness(er_csr, sources=0)

    def test_profile(self, er_csr):
        res = weighted_betweenness(er_csr, sources=4, seed=2)
        assert res.relaxations > 0
        assert res.profile.meta["relaxations"] == res.relaxations
