"""Tests for PageRank (validated against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.core.pagerank import pagerank
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.reference import path_graph, star_graph


class TestPageRank:
    def test_matches_networkx_undirected(self, er_csr, er_nx):
        res = pagerank(er_csr)
        truth = nx.pagerank(er_nx, alpha=0.85, tol=1e-12, max_iter=500)
        for v in range(er_csr.n):
            assert res.scores[v] == pytest.approx(truth[v], abs=1e-7)

    def test_matches_networkx_directed(self):
        g = EdgeList(5, np.array([0, 1, 2, 3, 1]), np.array([1, 2, 3, 0, 4]),
                     directed=True)
        csr = build_csr(g)
        res = pagerank(csr)
        G = nx.DiGraph()
        G.add_nodes_from(range(5))
        G.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
        truth = nx.pagerank(G, alpha=0.85, tol=1e-12, max_iter=500)
        for v in range(5):
            assert res.scores[v] == pytest.approx(truth[v], abs=1e-7)

    def test_scores_sum_to_one(self, er_csr):
        assert pagerank(er_csr).scores.sum() == pytest.approx(1.0)

    def test_star_hub_highest(self):
        res = pagerank(build_csr(star_graph(10)))
        assert int(np.argmax(res.scores)) == 0

    def test_symmetric_path_symmetric_scores(self):
        res = pagerank(build_csr(path_graph(5)))
        assert res.scores[0] == pytest.approx(res.scores[4])
        assert res.scores[1] == pytest.approx(res.scores[3])

    def test_dangling_vertices_handled(self):
        g = EdgeList(3, np.array([0]), np.array([1]), directed=True)
        res = pagerank(build_csr(g))
        assert res.converged
        assert res.scores.sum() == pytest.approx(1.0)
        assert res.scores[1] > res.scores[0]

    def test_personalization(self, er_csr):
        pers = np.zeros(er_csr.n)
        pers[0] = 1.0
        res = pagerank(er_csr, personalization=pers)
        uniform = pagerank(er_csr)
        assert res.scores[0] > uniform.scores[0]

    def test_personalization_validated(self, er_csr):
        with pytest.raises(GraphError):
            pagerank(er_csr, personalization=np.zeros(er_csr.n))
        with pytest.raises(GraphError):
            pagerank(er_csr, personalization=np.zeros(3))

    def test_alpha_validated(self, er_csr):
        with pytest.raises(GraphError):
            pagerank(er_csr, alpha=1.0)
        with pytest.raises(GraphError):
            pagerank(er_csr, alpha=0.0)

    def test_max_iter_cap(self, er_csr):
        res = pagerank(er_csr, max_iter=2, tol=0.0)
        assert res.iterations == 2 and not res.converged

    def test_empty_graph(self):
        g = EdgeList(0, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        res = pagerank(build_csr(g))
        assert res.scores.size == 0 and res.converged

    def test_profile_scales_with_iterations(self, er_csr):
        short = pagerank(er_csr, max_iter=2, tol=0.0)
        long = pagerank(er_csr, max_iter=8, tol=0.0)
        assert (
            long.profile.total("rand_accesses")
            > short.profile.total("rand_accesses")
        )
