"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.GraphError,
            errors.VertexError,
            errors.EdgeError,
            errors.StreamError,
            errors.MachineModelError,
            errors.ProfileError,
            errors.NotInForestError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_vertex_and_edge_are_graph_errors(self):
        assert issubclass(errors.VertexError, errors.GraphError)
        assert issubclass(errors.EdgeError, errors.GraphError)

    def test_one_except_catches_everything(self):
        """The documented catch-all contract."""
        from repro.adjacency.dynarr import DynArrAdjacency
        from repro.machine.spec import get_machine

        caught = 0
        for trigger in (
            lambda: DynArrAdjacency(3).insert(5, 0),
            lambda: get_machine("bogus"),
            lambda: errors.ProfileError("x") and None,
        ):
            try:
                trigger()
                raise errors.ProfileError("synthetic")
            except errors.ReproError:
                caught += 1
        assert caught == 3

    def test_library_does_not_leak_bare_exceptions(self):
        """API-boundary validation raises ReproError subclasses, not ValueError."""
        from repro.adjacency.csr import CSRGraph
        import numpy as np

        with pytest.raises(errors.ReproError):
            CSRGraph(2, np.array([0, 1]), np.array([0]))

    def test_all_exported(self):
        for name in errors.__all__:
            assert hasattr(errors, name)
