"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adjacency.csr import build_csr
from repro.edgelist import EdgeList
from repro.generators.rmat import rmat_graph
from repro.generators.reference import erdos_renyi, to_networkx


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_rmat():
    """A small R-MAT graph with time-stamps (session-cached, read-only)."""
    return rmat_graph(scale=10, edge_factor=8, seed=42, ts_range=(1, 100))


@pytest.fixture(scope="session")
def small_rmat_csr(small_rmat):
    return build_csr(small_rmat)


@pytest.fixture(scope="session")
def er_graph():
    """Erdős–Rényi graph for kernel validation (session-cached)."""
    return erdos_renyi(250, 0.015, seed=7)


@pytest.fixture(scope="session")
def er_csr(er_graph):
    return build_csr(er_graph)


@pytest.fixture(scope="session")
def er_nx(er_graph):
    return to_networkx(er_graph)


@pytest.fixture
def tiny_temporal():
    """A hand-built temporal graph whose paths are easy to reason about.

    0 -1- 1 -2- 2 -3- 3   (labels increase along the path)
    0 -5- 4 -4- 3         (second route with non-increasing labels)
    """
    return EdgeList(
        5,
        np.array([0, 1, 2, 0, 4]),
        np.array([1, 2, 3, 4, 3]),
        ts=np.array([1, 2, 3, 5, 4]),
    )
