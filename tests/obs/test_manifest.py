"""Tests for repro.obs.manifest."""

import json

import numpy as np

from repro import obs
from repro.obs.manifest import RunManifest, capture_git_sha


class TestCapture:
    def test_fields(self):
        m = RunManifest.capture(seed=7, machine="t2", argv=["trace", "bfs"])
        assert len(m.id) == 12
        assert m.seed == 7
        assert m.machine == "t2"
        assert m.argv == ("trace", "bfs")
        assert m.python.count(".") >= 1
        assert m.numpy == np.__version__
        assert m.created.endswith("Z")

    def test_machine_spec_accepted(self):
        from repro.machine.spec import ULTRASPARC_T2

        m = RunManifest.capture(machine=ULTRASPARC_T2)
        assert m.machine == ULTRASPARC_T2.name

    def test_extra_kwargs(self):
        m = RunManifest.capture(workload="quickstart")
        assert m.extra == {"workload": "quickstart"}

    def test_ids_unique(self):
        assert RunManifest.capture().id != RunManifest.capture().id

    def test_git_sha_shape(self):
        sha = capture_git_sha()
        # In a checkout this is a 40-hex commit; outside git it degrades
        # to the sentinel rather than raising.
        assert sha == "unknown" or len(sha) == 40


class TestSerialisation:
    def test_to_dict_json_safe(self):
        m = RunManifest.capture(seed=1, machine="t1")
        d = m.to_dict()
        json.dumps(d)
        assert d["id"] == m.id
        assert d["argv"] == list(m.argv)

    def test_summary_mentions_key_facts(self):
        m = RunManifest.capture(seed=5, machine="t2")
        s = m.summary()
        assert m.id in s and "seed 5" in s and "t2" in s


class TestCurrentManifest:
    def test_ensure_captures_once(self):
        obs.set_manifest(None)
        m1 = obs.ensure_manifest()
        m2 = obs.ensure_manifest()
        assert m1 is m2
        assert obs.current_manifest() is m1

    def test_set_and_clear(self):
        m = RunManifest.capture()
        obs.set_manifest(m)
        assert obs.current_manifest() is m
        assert obs.ensure_manifest() is m
        obs.set_manifest(None)
        assert obs.current_manifest() is None

    def test_manifest_meta_uses_current(self):
        m = RunManifest.capture()
        obs.set_manifest(m)
        assert obs.manifest_meta() == {"manifest_id": m.id}
