"""BENCH_repro.json merge semantics (the cross-invocation clobber fix)."""

import json

from repro.obs.bench import load_bench_document, merge_bench_document, update_bench_file


def entry(kernel, seconds):
    return {"kernel": kernel, "host_seconds": seconds}


def manifest(mid):
    return {"id": mid, "host": "test"}


class TestMerge:
    def test_fresh_document(self):
        doc = merge_bench_document(None, [entry("a", 1.0)], manifest=manifest("m1"))
        assert doc["n_benchmarks"] == 1
        assert doc["entries"] == [entry("a", 1.0)]
        assert doc["manifest"]["id"] == "m1"
        assert "previous_manifests" not in doc

    def test_rerun_kernel_replaces_in_place(self):
        first = merge_bench_document(
            None, [entry("a", 1.0), entry("b", 2.0)], manifest=manifest("m1")
        )
        second = merge_bench_document(first, [entry("a", 9.0)], manifest=manifest("m2"))
        assert [e["kernel"] for e in second["entries"]] == ["a", "b"]
        assert second["entries"][0]["host_seconds"] == 9.0
        assert second["entries"][1]["host_seconds"] == 2.0

    def test_new_kernels_append_and_old_survive(self):
        # The original bug: a second pytest invocation wiped the first's
        # entries.  Merging must keep both.
        first = merge_bench_document(None, [entry("fig02", 1.0)], manifest=manifest("m1"))
        second = merge_bench_document(first, [entry("fig08", 2.0)], manifest=manifest("m2"))
        assert [e["kernel"] for e in second["entries"]] == ["fig02", "fig08"]
        assert second["n_benchmarks"] == 2

    def test_manifest_history_is_retained_and_bounded(self):
        doc = merge_bench_document(None, [entry("a", 1.0)], manifest=manifest("m0"))
        for i in range(1, 12):
            doc = merge_bench_document(doc, [entry("a", 1.0)], manifest=manifest(f"m{i}"))
        assert doc["manifest"]["id"] == "m11"
        prev = doc["previous_manifests"]
        assert len(prev) == 8
        assert [m["id"] for m in prev] == [f"m{i}" for i in range(3, 11)]

    def test_same_manifest_not_duplicated_into_history(self):
        doc = merge_bench_document(None, [entry("a", 1.0)], manifest=manifest("m1"))
        doc = merge_bench_document(doc, [entry("b", 1.0)], manifest=manifest("m1"))
        assert "previous_manifests" not in doc


class TestLoad:
    def test_absent_file(self, tmp_path):
        assert load_bench_document(tmp_path / "nope.json") is None

    def test_corrupt_file(self, tmp_path):
        p = tmp_path / "bench.json"
        p.write_text("{not json")
        assert load_bench_document(p) is None

    def test_wrong_shape(self, tmp_path):
        p = tmp_path / "bench.json"
        p.write_text(json.dumps({"entries": "not-a-list"}))
        assert load_bench_document(p) is None


class TestUpdateFile:
    def test_two_invocations_both_land(self, tmp_path):
        p = tmp_path / "BENCH_repro.json"
        update_bench_file(p, [entry("fig02", 1.0)], manifest=manifest("m1"))
        update_bench_file(p, [entry("fig08", 2.0)], manifest=manifest("m2"))
        doc = load_bench_document(p)
        assert doc is not None
        assert sorted(e["kernel"] for e in doc["entries"]) == ["fig02", "fig08"]
        assert doc["manifest"]["id"] == "m2"
        assert [m["id"] for m in doc["previous_manifests"]] == ["m1"]


class TestMergeEdgeCases:
    def test_duplicate_kernels_in_incoming_entries(self):
        # The later duplicate wins (it replaces the first via the index),
        # and the document never carries two entries for one kernel.
        doc = merge_bench_document(
            None, [entry("a", 1.0), entry("a", 5.0)], manifest=manifest("m1")
        )
        assert doc["n_benchmarks"] == 1
        assert doc["entries"] == [entry("a", 5.0)]

    def test_duplicate_kernels_in_existing_document(self):
        # A hand-edited document with duplicates: the incoming entry
        # replaces the last occurrence; the merge itself must not crash.
        existing = {
            "manifest": manifest("m0"),
            "entries": [entry("a", 1.0), entry("a", 2.0)],
        }
        doc = merge_bench_document(existing, [entry("a", 9.0)], manifest=manifest("m1"))
        assert [e["host_seconds"] for e in doc["entries"]] == [1.0, 9.0]

    def test_existing_without_entries_key(self):
        doc = merge_bench_document(
            {"manifest": manifest("m0")}, [entry("a", 1.0)], manifest=manifest("m1")
        )
        assert doc["entries"] == [entry("a", 1.0)]
        assert [m["id"] for m in doc["previous_manifests"]] == ["m0"]

    def test_non_mapping_entries_in_existing_are_dropped(self):
        existing = {
            "manifest": manifest("m0"),
            "entries": ["garbage", 42, entry("keep", 1.0)],
        }
        doc = merge_bench_document(existing, [], manifest=manifest("m1"))
        assert doc["entries"] == [entry("keep", 1.0)]

    def test_non_dict_extra_info_survives_merge_and_dump(self, tmp_path):
        weird = {"kernel": "w", "host_seconds": 1.0, "extra_info": "just a string"}
        p = tmp_path / "BENCH_repro.json"
        update_bench_file(p, [weird], manifest=manifest("m1"))
        doc = update_bench_file(p, [entry("other", 2.0)], manifest=manifest("m2"))
        assert doc["entries"][0]["extra_info"] == "just a string"
        assert json.loads(p.read_text())["n_benchmarks"] == 2
