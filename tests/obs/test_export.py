"""Tests for repro.obs.export: chrome / speedscope / folded exporters."""

import json

import numpy as np

from repro import obs
from repro.obs.export import (
    to_chrome_trace,
    to_folded,
    to_speedscope,
    validate_chrome_trace,
    validate_speedscope,
    write_chrome_trace,
    write_folded,
    write_speedscope,
)


def ev(name, span_id, parent_id, t0, dur, **attrs):
    """Hand-rolled span event in the shape Tracer._emit produces."""
    return {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "t_start": t0,
        "duration": dur,
        "attrs": attrs,
    }


def nested_events():
    """root[0,10] > mid[1,5] > leaf[2,2], plus a worker span on its own lane."""
    return [
        ev("leaf", 3, 2, 2.0, 2.0),
        ev("mid", 2, 1, 1.0, 5.0),
        ev("work", 4, 1, 1.5, 6.0, worker=0),
        ev("root", 1, None, 0.0, 10.0),
    ]


def traced_events():
    """Real events recorded through the tracer (exit order, children first)."""
    tracer = obs.enable_tracing(obs.MemorySink())
    try:
        with obs.span("outer", n=8):
            with obs.span("inner.a"):
                pass
            with obs.span("inner.b", flag=True):
                pass
        return list(tracer.sink.events)
    finally:
        obs.disable_tracing()


class TestChromeTrace:
    def test_real_trace_validates(self):
        doc = to_chrome_trace(traced_events())
        assert validate_chrome_trace(doc) == []

    def test_complete_events_have_required_fields(self):
        doc = to_chrome_trace(nested_events())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 4
        for e in xs:
            for key in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
                assert key in e
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_timestamps_rebased_to_microseconds(self):
        doc = to_chrome_trace(nested_events())
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert by_name["root"]["ts"] == 0.0
        assert by_name["mid"]["ts"] == 1e6 and by_name["mid"]["dur"] == 5e6
        assert by_name["leaf"]["ts"] == 2e6

    def test_worker_spans_get_own_lane_with_thread_names(self):
        doc = to_chrome_trace(nested_events())
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert by_name["root"]["tid"] == 0
        assert by_name["work"]["tid"] == 1
        meta = {e["tid"]: e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert meta == {0: "main", 1: "worker-0"}

    def test_manifest_rides_in_metadata(self):
        doc = to_chrome_trace(nested_events(), manifest={"id": "abc", "seed": 1})
        assert doc["metadata"]["id"] == "abc"

    def test_validator_flags_nesting_escape(self):
        bad = [ev("parent", 1, None, 0.0, 1.0), ev("child", 2, 1, 0.5, 5.0)]
        problems = validate_chrome_trace(to_chrome_trace(bad))
        assert problems and "escapes parent" in problems[0]

    def test_validator_flags_missing_envelope(self):
        assert validate_chrome_trace({}) == ["traceEvents is missing or not a list"]

    def test_numpy_attrs_survive_write(self, tmp_path):
        events = [ev("np", 1, None, 0.0, 1.0, n=np.int64(4), ok=np.bool_(True))]
        p = write_chrome_trace(tmp_path / "t.json", events)
        doc = json.loads(p.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["traceEvents"][0]["args"]["n"] == 4


class TestSpeedscope:
    def test_real_trace_round_trips(self, tmp_path):
        p = write_speedscope(tmp_path / "p.json", traced_events(), name="t")
        doc = json.loads(p.read_text())
        assert validate_speedscope(doc) == []
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert set(names) == {"outer", "inner.a", "inner.b"}

    def test_one_profile_per_lane(self):
        doc = to_speedscope(nested_events())
        assert [p["name"].split("[")[1] for p in doc["profiles"]] == [
            "main]",
            "worker-0]",
        ]
        assert validate_speedscope(doc) == []

    def test_stack_discipline_under_overlap(self):
        # Sibling intervals that overlap (measurement jitter) must still
        # produce a well-formed open/close sequence.
        events = [
            ev("root", 1, None, 0.0, 10.0),
            ev("a", 2, 1, 1.0, 4.0),
            ev("b", 3, 1, 3.0, 4.0),  # overlaps a's tail
        ]
        assert validate_speedscope(to_speedscope(events)) == []

    def test_validator_flags_unbalanced_stack(self):
        doc = to_speedscope(nested_events())
        doc["profiles"][0]["events"].pop()  # drop a close
        assert any("left open" in p for p in validate_speedscope(doc))


class TestFolded:
    def test_paths_counts_and_self_time(self):
        lines = to_folded(nested_events()).splitlines()
        rows = {}
        for line in lines:
            path, count, self_ns = line.rsplit(" ", 2)
            rows[path] = (int(count), int(self_ns))
        assert rows["root;mid;leaf"] == (1, 2_000_000_000)
        assert rows["root;mid"] == (1, 3_000_000_000)  # 5s - 2s child
        # root's self time: 10 - (5 + 6) clamps at zero.
        assert rows["root"] == (1, 0)

    def test_repeated_paths_aggregate(self):
        events = [
            ev("k", 1, None, 0.0, 1.0),
            ev("k", 2, None, 2.0, 3.0),
        ]
        assert to_folded(events) == "k 2 4000000000"

    def test_empty_stream_writes_empty_file(self, tmp_path):
        p = write_folded(tmp_path / "f.txt", [])
        assert p.read_text() == ""

    def test_orphaned_parent_promotes_to_root(self):
        lines = to_folded([ev("lost", 9, 12345, 0.0, 1.0)]).splitlines()
        assert lines == ["lost 1 1000000000"]
