"""Tests for repro.obs.reqtrace: sampling, span trees, propagation, stores."""

import threading

from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry
from repro.obs.reqtrace import (
    ExemplarStore,
    RequestTracer,
    activate,
    bind,
    current_trace,
    rspan,
)


def tracer(**kw):
    kw.setdefault("registry", MetricsRegistry())
    kw.setdefault("exemplars", ExemplarStore())
    return RequestTracer(**kw)


class TestSampling:
    def test_head_sampling_is_deterministic(self):
        t = tracer(head_every=3, slow_threshold_seconds=60.0)
        kept = [t.finish(t.start("q"))["sampled"] for _ in range(7)]
        assert kept == ["head", "none", "none", "head", "none", "none", "head"]

    def test_head_zero_disables_head_sampling(self):
        t = tracer(head_every=0, slow_threshold_seconds=60.0)
        assert t.finish(t.start("q"))["sampled"] == "none"
        assert t.sampled() == []

    def test_tail_always_keeps_slow_requests(self):
        t = tracer(head_every=0, slow_threshold_seconds=0.0)
        record = t.finish(t.start("q"))
        assert record["sampled"] == "tail" and record["slow"]
        assert "events" in record
        assert [r["trace_id"] for r in t.slow()] == [record["trace_id"]]

    def test_unsampled_summary_carries_no_events(self):
        t = tracer(head_every=0, slow_threshold_seconds=60.0)
        summary = t.finish(t.start("q"))
        assert "events" not in summary
        assert t.recent()[0]["trace_id"] == summary["trace_id"]

    def test_counters(self):
        reg = MetricsRegistry()
        t = tracer(registry=reg, head_every=1, slow_threshold_seconds=0.0)
        t.finish(t.start("q"))
        counters = reg.snapshot()["counters"]
        assert counters["obs.reqtrace.requests"] == 1
        assert counters["obs.reqtrace.sampled"] == 1
        assert counters["obs.reqtrace.slow"] == 1

    def test_trace_ids_are_unique_and_stamped(self):
        t = tracer(head_every=1)
        a, b = t.start("q"), t.start("q")
        assert a.trace_id != b.trace_id
        assert a.request_id == 1 and b.request_id == 2
        assert a.context() == {"trace_id": a.trace_id, "request_id": 1}


class TestSpanTree:
    def test_nested_spans_parent_correctly(self):
        t = tracer(head_every=1)
        trace = t.start("route")
        with trace.span("outer"):
            with trace.span("inner", k=1):
                pass
        record = t.finish(trace)
        by_name = {e["name"]: e for e in record["events"]}
        assert by_name["route"]["parent_id"] is None
        assert by_name["outer"]["parent_id"] == by_name["route"]["span_id"]
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["attrs"]["k"] == 1
        assert by_name["inner"]["attrs"]["trace_id"] == trace.trace_id

    def test_span_error_attribute_on_exception(self):
        t = tracer(head_every=1)
        trace = t.start("route")
        try:
            with trace.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        record = t.finish(trace, status=500, error="ValueError")
        boom = next(e for e in record["events"] if e["name"] == "boom")
        assert boom["attrs"]["error"] == "ValueError"
        assert record["status"] == 500 and record["error"] == "ValueError"

    def test_exported_tree_validates_as_chrome_trace(self):
        t = tracer(head_every=1)
        trace = t.start("route")
        with trace.span("exec"):
            with trace.span("kernel"):
                pass
        record = t.finish(trace)
        assert validate_chrome_trace(to_chrome_trace(record["events"])) == []

    def test_span_cap_counts_drops(self):
        t = tracer(head_every=1, max_spans=2)
        trace = t.start("route")
        for _ in range(5):
            with trace.span("s"):
                pass
        record = t.finish(trace)
        assert record["n_spans"] == 3  # root + 2 kept
        assert record["n_dropped_spans"] == 3

    def test_stores_are_bounded(self):
        t = tracer(head_every=0, slow_threshold_seconds=0.0, max_slow=2, max_recent=3)
        for _ in range(5):
            t.finish(t.start("q"))
        assert len(t.slow()) == 2 and len(t.recent()) == 3
        # oldest evicted, newest kept
        assert t.slow()[-1]["request_id"] == 5


class TestPropagation:
    def test_rspan_is_noop_without_active_trace(self):
        assert current_trace() is None
        sp = rspan("nothing", k=1)
        assert not sp.enabled
        with sp:
            sp.set(more=2)  # swallowed, not recorded

    def test_activate_scopes_the_context(self):
        t = tracer(head_every=1)
        trace = t.start("route")
        with activate(trace):
            assert current_trace() is trace
            with rspan("inside"):
                pass
        assert current_trace() is None
        record = t.finish(trace)
        assert [e["name"] for e in record["events"]] == ["route", "inside"]

    def test_bind_carries_trace_into_another_thread(self):
        t = tracer(head_every=1)
        trace = t.start("route")

        def work():
            assert current_trace() is trace
            with rspan("threaded"):
                pass

        thread = threading.Thread(target=bind(trace, work))
        thread.start()
        thread.join()
        assert current_trace() is None  # binding never leaks out
        record = t.finish(trace)
        threaded = next(e for e in record["events"] if e["name"] == "threaded")
        assert threaded["parent_id"] == trace.ROOT_ID

    def test_adopt_remaps_worker_spans_under_open_span(self):
        import time

        t = tracer(head_every=1)
        trace = t.start("route")
        with trace.span("shard") as shard:
            # Worker spans share the parent's perf_counter domain (same
            # CLOCK_MONOTONIC), so real adopted intervals nest inside the
            # shard span; mimic that here.
            now = time.perf_counter()
            worker_events = [
                {"type": "span", "name": "parallel.kernel", "span_id": 7,
                 "parent_id": None, "t_start": now, "duration": 5e-4, "attrs": {}},
                {"type": "span", "name": "parallel.sub", "span_id": 8,
                 "parent_id": 7, "t_start": now + 1e-4, "duration": 2e-4,
                 "attrs": {}},
            ]
            time.sleep(0.002)
            trace.adopt(worker_events, worker=3)
        record = t.finish(trace)
        by_name = {e["name"]: e for e in record["events"]}
        kernel, sub = by_name["parallel.kernel"], by_name["parallel.sub"]
        # worker root hangs off the span that was open while adopting
        assert kernel["parent_id"] == shard.span_id
        assert sub["parent_id"] == kernel["span_id"]
        assert kernel["span_id"] not in (7, 8)  # remapped into trace id-space
        assert kernel["attrs"]["worker"] == 3
        assert sub["attrs"]["trace_id"] == trace.trace_id
        assert validate_chrome_trace(to_chrome_trace(record["events"])) == []


class TestExemplarStore:
    def test_observe_keys_on_histogram_bucket(self):
        from bisect import bisect_left

        ex = ExemplarStore()
        ex.observe("m", 0.004, "t1")
        idx = bisect_left(BUCKET_BOUNDS, 0.004)
        assert ex.for_metric("m") == {idx: ("t1", 0.004)}

    def test_latest_exemplar_per_bucket_wins(self):
        ex = ExemplarStore()
        ex.observe("m", 0.004, "old")
        ex.observe("m", 0.004, "new")
        (tid, _), = ex.for_metric("m").values()
        assert tid == "new"

    def test_metrics_and_clear(self):
        ex = ExemplarStore()
        ex.observe("b", 1.0, "t")
        ex.observe("a", 1.0, "t")
        assert ex.metrics() == ["a", "b"]
        ex.clear()
        assert ex.metrics() == []

    def test_config_reports_bounds(self):
        t = tracer(head_every=4, slow_threshold_seconds=0.5, max_slow=9)
        cfg = t.config()
        assert cfg["head_every"] == 4
        assert cfg["slow_threshold_seconds"] == 0.5
        assert cfg["max_slow"] == 9
