"""Integration: the instrumented library emits the expected spans/counters."""

import numpy as np
import pytest

from repro import obs
from repro.api import DynamicGraph
from repro.core.update_engine import apply_stream
from repro.adjacency.registry import make_representation
from repro.generators.streams import mixed_stream
from repro.machine.sim import SimulatedMachine


@pytest.fixture
def graph_and_stream(small_rmat):
    g = DynamicGraph.from_edgelist(small_rmat, representation="hybrid")
    stream = mixed_stream(small_rmat, 500, insert_frac=0.75, seed=2)
    return g, stream


class TestApplyStreamSpans:
    def test_span_chain_api_to_representation(self, tracer, graph_and_stream):
        g, stream = graph_and_stream
        g.apply(stream)
        events = {e["name"]: e for e in tracer.sink.events}
        api = events["api.apply"]
        eng = events["update_engine.apply_stream"]
        rep = events["adjacency.hybrid.apply_arcs"]
        # API -> update engine -> representation, properly nested.
        assert api["parent_id"] is None
        assert eng["parent_id"] == api["span_id"]
        assert rep["parent_id"] == eng["span_id"]

    def test_span_attrs(self, tracer, graph_and_stream):
        g, stream = graph_and_stream
        res = g.apply(stream)
        events = {e["name"]: e for e in tracer.sink.events}
        eng = events["update_engine.apply_stream"]["attrs"]
        assert eng["representation"] == "hybrid"
        assert eng["n_updates"] == len(stream)
        assert eng["n_arc_ops"] == res.n_arc_ops
        assert eng["misses"] == res.misses
        assert eng["host_seconds"] > 0

    def test_counters_ticked(self, graph_and_stream):
        g, stream = graph_and_stream
        res = g.apply(stream)
        snap = obs.METRICS.snapshot()["counters"]
        assert snap["update_engine.streams"] == 1
        assert snap["update_engine.arc_ops"] == res.n_arc_ops
        # The hybrid splits counters over its sub-structures; the registry
        # sees the merged view.
        assert snap["adjacency.hybrid.inserts"] == g.rep.combined_stats().inserts > 0
        gauges = obs.METRICS.snapshot()["gauges"]
        assert gauges["adjacency.hybrid.live_arcs"] == g.rep.n_arcs

    def test_counters_accumulate_across_streams(self, small_rmat):
        rep = make_representation("dynarr", small_rmat.n)
        s1 = mixed_stream(small_rmat, 100, insert_frac=1.0, seed=1)
        s2 = mixed_stream(small_rmat, 100, insert_frac=1.0, seed=2)
        apply_stream(rep, s1)
        apply_stream(rep, s2)
        snap = obs.METRICS.snapshot()["counters"]
        assert snap["update_engine.streams"] == 2
        assert snap["update_engine.arc_ops"] == 400  # 2 * 100 updates * 2 arcs

    def test_profile_meta_carries_manifest(self, graph_and_stream):
        g, stream = graph_and_stream
        res = g.apply(stream)
        assert res.profile.meta["manifest_id"] == obs.ensure_manifest().id


class TestKernelSpans:
    def test_spanning_forest_span_tree(self, tracer, graph_and_stream):
        g, _ = graph_and_stream
        g.spanning_forest()
        events = {e["name"]: e for e in tracer.sink.events}
        sf = events["api.spanning_forest"]
        assert events["api.snapshot"]["parent_id"] == sf["span_id"]
        assert events["connectivity.from_csr"]["parent_id"] == sf["span_id"]
        assert obs.METRICS.counter("connectivity.forests_built").value == 1

    def test_bfs_spans_and_counters(self, tracer, graph_and_stream):
        g, _ = graph_and_stream
        res = g.bfs(0)
        events = {e["name"]: e for e in tracer.sink.events}
        core = events["core.bfs"]
        assert core["parent_id"] == events["api.bfs"]["span_id"]
        assert core["attrs"]["levels"] == res.n_levels
        assert core["attrs"]["reached"] == res.n_reached
        snap = obs.METRICS.snapshot()["counters"]
        assert snap["bfs.runs"] == 1
        assert snap["bfs.edges_scanned"] == res.total_edges_scanned

    def test_connectivity_queries_counters(self, tracer, graph_and_stream):
        g, _ = graph_and_stream
        index = g.spanning_forest()
        res = index.random_query_batch(200, seed=3)
        events = {e["name"]: e for e in tracer.sink.events}
        assert events["connectivity.query_batch"]["attrs"]["hops"] == res.total_hops
        snap = obs.METRICS.snapshot()["counters"]
        assert snap["connectivity.queries"] == 200
        assert snap["connectivity.hops"] == res.total_hops

    def test_snapshot_cache_metrics(self, graph_and_stream):
        g, _ = graph_and_stream
        g.snapshot()
        g.snapshot()
        snap = obs.METRICS.snapshot()["counters"]
        assert snap["api.snapshot_rebuilds"] == 1
        assert snap["api.snapshot_cache_hits"] == 1


class TestSimulatorSpans:
    def test_sweep_span_and_counters(self, tracer, graph_and_stream):
        g, stream = graph_and_stream
        res = g.apply(stream)
        sim = SimulatedMachine("t2")
        scaling = sim.sweep(res.profile, (1, 4, 16), n_items=res.n_updates)
        events = {e["name"]: e for e in tracer.sink.events}
        attrs = events["sim.sweep"]["attrs"]
        assert attrs["machine"] == "UltraSPARC T2"
        assert attrs["sim_seconds"] == pytest.approx(min(scaling.seconds))
        assert attrs["mups"] > 0
        assert obs.METRICS.counter("sim.evaluations").value == 3
        assert obs.METRICS.counter("sim.cache_misses").value >= 0

    def test_scaling_result_meta_manifest(self, graph_and_stream):
        g, stream = graph_and_stream
        res = g.apply(stream)
        scaling = SimulatedMachine("t1").sweep(res.profile, (1, 2))
        assert scaling.meta["manifest_id"] == obs.ensure_manifest().id


class TestDisabledModeIsInert:
    def test_no_events_and_identical_results(self, small_rmat):
        assert not obs.tracing_enabled()
        rep_a = make_representation("dynarr", small_rmat.n)
        rep_b = make_representation("dynarr", small_rmat.n)
        stream = mixed_stream(small_rmat, 300, insert_frac=0.8, seed=5)
        res_a = apply_stream(rep_a, stream)

        sink = obs.MemorySink()
        obs.enable_tracing(sink)
        res_b = apply_stream(rep_b, stream)
        obs.disable_tracing()

        # Tracing changes observability, never results.
        assert res_a.n_arc_ops == res_b.n_arc_ops
        assert res_a.misses == res_b.misses
        assert rep_a.n_arcs == rep_b.n_arcs
        np.testing.assert_array_equal(rep_a.neighbors(0), rep_b.neighbors(0))
        assert len(sink.events) == 2  # engine + representation spans
