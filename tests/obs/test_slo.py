"""Tests for repro.obs.slo: burn-rate math, episode alerts, watchdog feed."""

import pytest

from repro.obs.live import Watchdog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker


def slo(**kw):
    kw.setdefault("registry", MetricsRegistry())
    kw.setdefault("windows", (5.0, 20.0))
    kw.setdefault("clock", lambda: 0.0)
    return SloTracker("svc", **kw)


class TestBurnRates:
    def test_all_good_is_zero_burn(self):
        s = slo()
        for t in range(5):
            s.record(0.01, now=float(t))
        rates = s.burn_rates(now=5.0)
        assert rates["latency"] == {"5s": 0.0, "20s": 0.0}
        assert rates["availability"] == {"5s": 0.0, "20s": 0.0}

    def test_all_slow_burns_the_full_budget_ratio(self):
        s = slo(latency_objective=0.99)
        for t in range(5):
            s.record(9.0, now=float(t))
        # bad fraction 1.0 over budget 0.01 -> burn rate 100
        assert s.burn_rates(now=5.0)["latency"]["5s"] == pytest.approx(100.0)

    def test_errors_burn_availability_not_latency(self):
        s = slo()
        for t in range(5):
            s.record(0.01, error=True, now=float(t))
        rates = s.burn_rates(now=5.0)
        assert rates["availability"]["5s"] > 0
        assert rates["latency"]["5s"] == 0.0

    def test_old_events_age_out_of_the_window(self):
        s = slo()
        s.record(9.0, now=0.0)
        assert s.burn_rates(now=1.0)["latency"]["5s"] > 0
        assert s.burn_rates(now=30.0)["latency"]["5s"] == 0.0

    def test_empty_windows_rejected(self):
        with pytest.raises(ValueError, match="window"):
            SloTracker("svc", windows=())


class TestEpisodeAlerts:
    def test_alert_fires_once_per_episode(self):
        s = slo()
        for t in range(20):
            s.record(9.0, now=float(t))
        first = s.check(now=20.0)
        assert [a["kind"] for a in first] == ["slo_burn_latency"]
        assert first[0]["slo"] == "svc"
        assert sorted(first[0]["burn_rates"]) == ["20s", "5s"]
        # still breaching: same episode, no re-fire
        assert s.check(now=20.5) == []
        assert len(s.alerts) == 1

    def test_short_window_alone_does_not_alert(self):
        s = slo()
        # 5 good requests per second, then ONE slow outlier at the end:
        # the 5s window burns (1/21 bad >> 1% budget x2) but the 20s
        # window stays under threshold (1/96 bad ~ 1.04x budget < 2) —
        # the multi-window rule keeps the blip silent.
        for t in range(23):
            for i in range(5):
                s.record(0.01, now=t + i * 0.1)
        s.record(9.0, now=22.5)
        assert s.breaching(now=23.0)["latency"] is False
        assert s.burn_rates(now=23.0)["latency"]["5s"] > s.burn_threshold
        assert s.check(now=23.0) == []

    def test_recovery_rearms_and_second_episode_fires(self):
        s = slo()
        for t in range(20):
            s.record(9.0, now=float(t))
        assert len(s.check(now=20.0)) == 1
        # recover: healthy traffic pushes every window below threshold
        for t in range(60, 90):
            s.record(0.01, now=float(t))
        assert s.check(now=90.0) == []  # re-armed, not re-fired
        for t in range(100, 130):
            s.record(9.0, now=float(t))
        second = s.check(now=130.0)
        assert [a["kind"] for a in second] == ["slo_burn_latency"]
        assert len(s.alerts) == 2

    def test_latency_and_availability_are_independent_episodes(self):
        s = slo()
        for t in range(25):
            s.record(9.0, error=True, now=float(t))
        kinds = sorted(a["kind"] for a in s.check(now=25.0))
        assert kinds == ["slo_burn_availability", "slo_burn_latency"]

    def test_alerts_tick_registry_counters(self):
        reg = MetricsRegistry()
        s = slo(registry=reg)
        for t in range(20):
            s.record(9.0, now=float(t))
        s.check(now=20.0)
        counters = reg.snapshot()["counters"]
        assert counters["obs.slo.alerts"] == 1
        assert counters["obs.slo.burn.latency"] == 1


class TestWatchdogIntegration:
    def test_poolless_watchdog_forwards_slo_alerts(self):
        s = slo()
        dog = Watchdog(None, registry=MetricsRegistry())
        dog.attach_slo(s)
        for t in range(20):
            s.record(9.0, now=float(t))
        new = dog.check()
        assert [a["kind"] for a in new] == ["slo_burn_latency"]
        assert dog.alerts == new
        assert dog.check() == []  # same episode stays deduplicated

    def test_out_of_band_tracker_alerts_are_still_collected(self):
        s = slo()
        dog = Watchdog(None, registry=MetricsRegistry())
        dog.attach_slo(s)
        for t in range(20):
            s.record(9.0, now=float(t))
        s.check(now=20.0)  # fired outside the watchdog
        assert [a["kind"] for a in dog.check()] == ["slo_burn_latency"]
        assert len(dog.alerts) == 1

    def test_attach_skips_alerts_from_before_attachment(self):
        s = slo()
        for t in range(20):
            s.record(9.0, now=float(t))
        s.check(now=20.0)
        dog = Watchdog(None, registry=MetricsRegistry())
        dog.attach_slo(s)
        assert dog.check() == []  # pre-attachment history not replayed


class TestState:
    def test_state_is_json_ready_and_complete(self):
        import json

        s = slo()
        for t in range(20):
            s.record(9.0, now=float(t))
        s.check(now=20.0)
        state = s.state(now=20.0)
        json.dumps(state)  # round-trippable
        assert state["name"] == "svc"
        assert state["windows_seconds"] == [5.0, 20.0]
        assert state["objectives"]["latency"]["breaching"] is True
        assert state["objectives"]["availability"]["breaching"] is False
        assert state["totals"] == {"events": 20, "errors": 0, "slow": 20}
        assert state["n_alerts"] == 1
        assert state["alerts"][0]["kind"] == "slo_burn_latency"
