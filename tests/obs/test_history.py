"""Tests for repro.obs.history: the bench-history ledger and diff/trend."""

import json

import pytest

from repro.obs.history import (
    HistoryError,
    append_bench_history,
    diff_records,
    format_diff,
    format_trend,
    history_record,
    load_history,
    select_record,
    trend_rows,
)


def manifest(mid="m1", sha="abc123", created="2026-08-06T00:00:00Z"):
    return {"id": mid, "git_sha": sha, "created": created}


def record(mid, **kernels):
    return {
        "recorded": "2026-08-06T00:00:00Z",
        "manifest_id": mid,
        "git_sha": f"sha-{mid}",
        "n_kernels": len(kernels),
        "kernels": kernels,
    }


class TestRecordAndAppend:
    def test_record_shape(self):
        rec = history_record(
            [{"kernel": "a", "host_seconds": 1.5}], manifest=manifest()
        )
        assert rec["manifest_id"] == "m1" and rec["git_sha"] == "abc123"
        assert rec["kernels"] == {"a": 1.5} and rec["n_kernels"] == 1

    def test_unusable_entries_skipped(self):
        rec = history_record(
            [
                {"kernel": "ok", "host_seconds": 2.0},
                {"kernel": "errored", "host_seconds": None},
                {"kernel": "stringy", "host_seconds": "nan-ish-garbage"},
                "not-a-mapping",
            ],
            manifest=manifest(),
        )
        assert rec["kernels"] == {"ok": 2.0}

    def test_append_creates_parents_and_round_trips(self, tmp_path):
        path = tmp_path / "benchmarks" / "history.jsonl"
        append_bench_history(path, [{"kernel": "a", "host_seconds": 1.0}],
                             manifest=manifest("m1"))
        append_bench_history(path, [{"kernel": "a", "host_seconds": 2.0}],
                             manifest=manifest("m2"))
        records = load_history(path)
        assert [r["manifest_id"] for r in records] == ["m1", "m2"]

    def test_zero_kernel_run_not_appended(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_bench_history(path, [], manifest=manifest())
        assert not path.exists()

    def test_load_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = record("m1", a=1.0)
        path.write_text("not json\n" + json.dumps(good) + "\n{\"kernels\": 3}\n")
        assert load_history(path) == [good]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []


class TestSelect:
    RECORDS = [record("aaa1", k=1.0), record("bbb2", k=2.0), record("aaa3", k=3.0)]

    def test_aliases_and_indices(self):
        assert select_record(self.RECORDS, "latest")["manifest_id"] == "aaa3"
        assert select_record(self.RECORDS, "previous")["manifest_id"] == "bbb2"
        assert select_record(self.RECORDS, "first")["manifest_id"] == "aaa1"
        assert select_record(self.RECORDS, "-2")["manifest_id"] == "bbb2"
        assert select_record(self.RECORDS, "1")["manifest_id"] == "bbb2"

    def test_prefix_match_most_recent_wins(self):
        assert select_record(self.RECORDS, "aaa")["manifest_id"] == "aaa3"
        assert select_record(self.RECORDS, "sha-bbb")["manifest_id"] == "bbb2"

    def test_errors(self):
        with pytest.raises(HistoryError):
            select_record([], "latest")
        with pytest.raises(HistoryError):
            select_record(self.RECORDS, "99")
        with pytest.raises(HistoryError):
            select_record(self.RECORDS, "zzz")


class TestDiff:
    def test_percentage_deltas(self):
        rows = diff_records(record("a", k1=2.0, k2=1.0), record("b", k1=3.0, k2=0.5))
        by = {r["kernel"]: r for r in rows}
        assert by["k1"]["delta_pct"] == pytest.approx(50.0)   # 2.0 -> 3.0
        assert by["k2"]["delta_pct"] == pytest.approx(-50.0)  # 1.0 -> 0.5

    def test_one_sided_kernels_have_no_delta(self):
        rows = diff_records(record("a", old=1.0), record("b", new=2.0))
        by = {r["kernel"]: r for r in rows}
        assert by["old"]["b_seconds"] is None and by["old"]["delta_pct"] is None
        assert by["new"]["a_seconds"] is None and by["new"]["delta_pct"] is None

    def test_zero_base_has_no_delta(self):
        rows = diff_records(record("a", k=0.0), record("b", k=1.0))
        assert rows[0]["delta_pct"] is None

    def test_format_flags_drift(self):
        a, b = record("a", k=1.0, ok=1.0), record("b", k=2.0, ok=1.01)
        text = format_diff(a, b, diff_records(a, b), threshold=25.0)
        assert "+100.0%  !! drift" in text
        assert "1 beyond ±25% drift threshold" in text


class TestTrend:
    def test_trajectory_first_to_last(self):
        rows = trend_rows([record("a", k=1.0), record("b", k=1.5), record("c", k=2.0)])
        assert rows == [
            {
                "kernel": "k",
                "runs": 3,
                "first_seconds": 1.0,
                "last_seconds": 2.0,
                "total_pct": pytest.approx(100.0),
            }
        ]

    def test_single_run_has_no_pct(self):
        rows = trend_rows([record("a", k=1.0)])
        assert rows[0]["total_pct"] is None

    def test_format_empty_history(self):
        assert "empty" in format_trend([], [])

    def test_format_table(self):
        records = [record("a", k=1.0), record("b", k=2.0)]
        text = format_trend(records, trend_rows(records), threshold=25.0)
        assert "2 recorded run(s)" in text and "!! drift" in text
