"""Tests for repro.obs.expose: OpenMetrics rendering, validation, HTTP."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.expose import (
    TelemetryServer,
    format_rollups,
    to_openmetrics,
    validate_openmetrics,
)
from repro.obs.live import TelemetryCollector
from repro.obs.metrics import MetricsRegistry
from repro.obs.reqtrace import ExemplarStore


def populated_registry():
    reg = MetricsRegistry()
    reg.inc("updates.applied", 42)
    reg.set("memory.rss_bytes", 1024.0)
    for v in (0.1, 0.2, 0.4):
        reg.observe("lat.seconds", v)
    return reg


class TestToOpenMetrics:
    def test_counter_gauge_summary_families(self):
        text = to_openmetrics(populated_registry())
        assert "# TYPE updates_applied counter" in text
        assert "updates_applied_total 42" in text
        assert "# TYPE memory_rss_bytes gauge" in text
        assert "memory_rss_bytes 1024" in text
        assert "# TYPE lat_seconds summary" in text
        assert 'lat_seconds{quantile="0.5"}' in text
        assert "lat_seconds_count 3" in text
        assert text.endswith("# EOF\n")

    def test_dotted_names_sanitised(self):
        reg = MetricsRegistry()
        reg.inc("a.b-c.d", 1)
        assert "a_b_c_d_total 1" in to_openmetrics(reg)

    def test_empty_registry_is_still_terminated(self):
        assert to_openmetrics(MetricsRegistry()) == "# EOF\n"

    def test_payload_always_validates(self):
        stats = validate_openmetrics(to_openmetrics(populated_registry()))
        assert stats["n_families"] == 3
        assert stats["types"]["updates_applied"] == "counter"
        assert stats["types"]["lat_seconds"] == "summary"
        # counter + gauge + 2 quantiles + _count + _sum
        assert stats["n_samples"] == 6


class TestValidateOpenMetrics:
    def test_rejects_empty_and_unterminated(self):
        with pytest.raises(ValueError, match="empty"):
            validate_openmetrics("")
        with pytest.raises(ValueError, match="# EOF"):
            validate_openmetrics("# TYPE a counter\na_total 1\n")

    def test_rejects_double_eof(self):
        with pytest.raises(ValueError, match="exactly once"):
            validate_openmetrics("# EOF\n# EOF\n")

    def test_rejects_sample_without_family(self):
        with pytest.raises(ValueError, match="no declared family"):
            validate_openmetrics("orphan_total 1\n# EOF\n")

    def test_rejects_counter_sample_without_total_suffix(self):
        with pytest.raises(ValueError, match="_total"):
            validate_openmetrics("# TYPE a counter\na 1\n# EOF\n")

    def test_rejects_non_numeric_and_non_finite_values(self):
        with pytest.raises(ValueError, match="non-numeric"):
            validate_openmetrics("# TYPE g gauge\ng up\n# EOF\n")
        with pytest.raises(ValueError, match="non-finite"):
            validate_openmetrics("# TYPE g gauge\ng nan\n# EOF\n")

    def test_rejects_duplicate_family_and_blank_line(self):
        with pytest.raises(ValueError, match="declared twice"):
            validate_openmetrics("# TYPE g gauge\n# TYPE g gauge\ng 1\n# EOF\n")
        with pytest.raises(ValueError, match="blank line"):
            validate_openmetrics("# TYPE g gauge\n\ng 1\n# EOF\n")

    def test_rejects_bare_summary_sample_without_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            validate_openmetrics("# TYPE s summary\ns 1\n# EOF\n")

    def test_accepts_labels_and_help_comments(self):
        stats = validate_openmetrics(
            "# TYPE s summary\n"
            "# HELP s latency\n"
            's{quantile="0.5"} 0.25\n'
            "s_count 10\n"
            "s_sum 2.5\n"
            "# EOF\n"
        )
        assert stats == {
            "n_families": 1,
            "n_samples": 3,
            "n_exemplars": 0,
            "types": {"s": "summary"},
        }


class TestExemplars:
    def payload(self):
        reg = MetricsRegistry()
        reg.observe("service.query.seconds", 0.004)
        reg.observe("service.query.seconds", 0.03)
        ex = ExemplarStore()
        ex.observe("service.query.seconds", 0.004, "0000abcd00000001")
        ex.observe("service.query.seconds", 0.03, "0000abcd00000002")
        return to_openmetrics(reg, exemplars=ex)

    def test_exemplar_histogram_renders_and_validates(self):
        text = self.payload()
        assert "# TYPE service_query_seconds histogram" in text
        assert '# {trace_id="0000abcd00000001"} 0.004' in text
        assert '# {trace_id="0000abcd00000002"} 0.03' in text
        assert 'le="+Inf"' in text
        stats = validate_openmetrics(text)
        assert stats["n_exemplars"] == 2
        assert stats["types"]["service_query_seconds"] == "histogram"

    def test_buckets_are_cumulative_and_counted(self):
        lines = self.payload().splitlines()
        buckets = [ln for ln in lines if "_bucket" in ln]
        counts = [int(ln.split("#")[0].split()[-1]) for ln in buckets]
        assert counts == sorted(counts)  # cumulative, monotone
        assert counts[-1] == 2  # +Inf bucket covers every observation
        assert any(ln.startswith("service_query_seconds_count 2") for ln in lines)

    def test_metrics_without_exemplars_still_render_as_summaries(self):
        reg = MetricsRegistry()
        reg.observe("lat.seconds", 0.1)
        text = to_openmetrics(reg, exemplars=ExemplarStore())
        assert "# TYPE lat_seconds summary" in text

    def test_exemplar_on_gauge_rejected(self):
        with pytest.raises(ValueError, match="exemplar"):
            validate_openmetrics(
                "# TYPE g gauge\n"
                'g 1 # {trace_id="abc"} 1.0\n'
                "# EOF\n"
            )

    def test_exemplar_on_counter_total_accepted(self):
        stats = validate_openmetrics(
            "# TYPE c counter\n"
            'c_total 3 # {trace_id="abc"} 1.0\n'
            "# EOF\n"
        )
        assert stats["n_exemplars"] == 1

    def test_non_finite_exemplar_value_rejected(self):
        with pytest.raises(ValueError, match="exemplar"):
            validate_openmetrics(
                "# TYPE c counter\n"
                'c_total 3 # {trace_id="abc"} nan\n'
                "# EOF\n"
            )


class TestValidatorStructure:
    def test_interleaved_families_rejected(self):
        with pytest.raises(ValueError, match="interleaves"):
            validate_openmetrics(
                "# TYPE a counter\n"
                "# TYPE b counter\n"
                "a_total 1\n"
                "b_total 1\n"
                "# EOF\n"
            )

    def test_histogram_bucket_requires_le_label(self):
        with pytest.raises(ValueError, match="'le' label"):
            validate_openmetrics(
                "# TYPE h histogram\n"
                "h_bucket 1\n"
                "# EOF\n"
            )

    def test_histogram_rejects_foreign_suffix(self):
        with pytest.raises(ValueError, match="histogram"):
            validate_openmetrics(
                "# TYPE h histogram\n"
                "h 1\n"
                "# EOF\n"
            )

    def test_eof_and_duplicate_type_stay_locked(self):
        # regression locks for the satellite: both were already enforced,
        # keep them that way.
        with pytest.raises(ValueError, match="# EOF"):
            validate_openmetrics("# TYPE a counter\na_total 1\n")
        with pytest.raises(ValueError, match="declared twice"):
            validate_openmetrics(
                "# TYPE a counter\na_total 1\n"
                "# TYPE a counter\na_total 2\n# EOF\n"
            )


class TestFormatRollups:
    def test_table_has_header_and_rows(self):
        out = format_rollups({
            "a": {"kind": "counter", "last": 10, "mean": 5.0, "p50": 5.0,
                  "p99": 9.0, "max": 9.5},
        })
        assert "metric" in out and "p99" in out and "a" in out

    def test_top_keeps_busiest(self):
        rollups = {
            "small": {"kind": "counter", "last": 1},
            "big": {"kind": "counter", "last": 1000},
        }
        out = format_rollups(rollups, top=1)
        assert "big" in out and "small" not in out

    def test_empty(self):
        assert format_rollups({}) == "(no series collected)"


class TestTelemetryServer:
    def test_metrics_endpoint_serves_valid_payload(self):
        reg = populated_registry()
        with TelemetryServer(reg) as server:
            assert server.port > 0
            body = urllib.request.urlopen(server.url + "/metrics").read().decode()
        assert validate_openmetrics(body)["n_families"] == 3
        assert server.n_scrapes == 1

    def test_metrics_json_includes_rollups(self):
        reg = populated_registry()
        col = TelemetryCollector(reg, interval=3600)
        col.tick(now=0.0)
        with TelemetryServer(reg, collector=col) as server:
            payload = json.loads(
                urllib.request.urlopen(server.url + "/metrics.json").read()
            )
        assert payload["snapshot"]["counters"]["updates.applied"] == 42
        assert payload["rollups"]["updates.applied"]["kind"] == "counter"

    def test_healthz_and_404(self):
        with TelemetryServer(MetricsRegistry()) as server:
            ok = urllib.request.urlopen(server.url + "/healthz").read()
            assert ok == b"ok\n"
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(server.url + "/nope")
            assert exc.value.code == 404

    def test_stop_releases_socket(self):
        server = TelemetryServer(MetricsRegistry()).start()
        url = server.url
        server.stop()
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(url + "/healthz", timeout=0.5)
