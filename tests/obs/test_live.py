"""Tests for repro.obs.live: collector, time-series windows, watchdog."""

import time

import pytest

from repro.obs import MemorySink, disable_tracing, enable_tracing
from repro.obs.live import (
    MetricWindow,
    TelemetryCollector,
    TimeSeriesStore,
    Watchdog,
    current_collector,
    disable_live_telemetry,
    enable_live_telemetry,
    live_telemetry_enabled,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import alerts, describe


class StubPool:
    """Duck-typed WorkerPool for watchdog tests: scripted health/beats."""

    def __init__(self, health=(), beats=None):
        self._health = list(health)
        self._beats = dict(beats or {})

    def worker_health(self):
        return [dict(h) for h in self._health]

    def heartbeats(self):
        return {k: dict(v) for k, v in self._beats.items()}


class TestMetricWindow:
    def test_counter_rollup_describes_rates(self):
        w = MetricWindow("c", "counter", maxlen=16)
        for t, v in [(0.0, 0.0), (1.0, 10.0), (2.0, 40.0)]:
            w.record(t, v)
        r = w.rollup()
        assert r["kind"] == "counter" and r["samples"] == 3
        assert r["last"] == 40
        assert r["min"] == 10.0 and r["max"] == 30.0 and r["mean"] == 20.0

    def test_gauge_rollup_describes_levels(self):
        w = MetricWindow("g", "gauge", maxlen=16)
        for t, v in enumerate([5.0, 1.0, 3.0]):
            w.record(float(t), v)
        r = w.rollup()
        assert r["min"] == 1.0 and r["max"] == 5.0 and r["last"] == 3.0
        assert r["p50"] == 3.0

    def test_window_is_bounded(self):
        w = MetricWindow("c", "gauge", maxlen=4)
        for t in range(100):
            w.record(float(t), float(t))
        assert len(w.samples) == 4
        assert w.rollup()["min"] == 96.0  # oldest samples evicted

    def test_quantiles_interpolate_over_window(self):
        w = MetricWindow("g", "gauge", maxlen=128)
        for t in range(101):
            w.record(float(t), float(t))
        r = w.rollup()
        assert r["p50"] == pytest.approx(50.0)
        assert r["p99"] == pytest.approx(99.0)

    def test_empty_and_single_sample_rollups_are_finite(self):
        w = MetricWindow("c", "counter", maxlen=4)
        assert w.rollup() == {
            "kind": "counter", "samples": 0, "last": 0,
            "min": 0.0, "max": 0.0, "mean": 0.0, "p50": 0.0, "p99": 0.0,
        }
        w.record(0.0, 5.0)
        r = w.rollup()  # one counter sample -> no interval yet
        assert r["samples"] == 1 and r["last"] == 5 and r["mean"] == 0.0

    def test_counter_rate_never_negative_after_reset(self):
        w = MetricWindow("c", "counter", maxlen=8)
        w.record(0.0, 100.0)
        w.record(1.0, 10.0)  # registry was reset between scrapes
        assert w.rollup()["min"] == 0.0


class TestTimeSeriesStore:
    def test_series_cap_drops_new_not_old(self):
        store = TimeSeriesStore(window=8, max_series=2)
        store.record("counter", "a", 0.0, 1.0)
        store.record("counter", "b", 0.0, 1.0)
        store.record("counter", "c", 0.0, 1.0)  # over the cap
        assert store.names() == ["a", "b"]
        assert store.n_dropped_series == 1
        store.record("counter", "a", 1.0, 2.0)  # existing series still grow
        assert len(store.window_of("a").samples) == 2

    def test_rollups_keyed_by_name(self):
        store = TimeSeriesStore()
        store.record("gauge", "g", 0.0, 1.5)
        assert store.rollups()["g"]["last"] == 1.5
        assert store.rollup("missing") == {}


class TestTelemetryCollector:
    def test_tick_records_all_metric_kinds(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set("g", 2.5)
        reg.observe("h", 0.5)
        col = TelemetryCollector(reg, interval=3600)
        col.tick(now=0.0)
        names = col.store.names()
        assert "c" in names and "g" in names and "h.count" in names
        assert col.n_ticks == 1
        # The collector accounts for itself in the same registry.
        assert reg.counter("obs.live.ticks").value == 1
        assert reg.histogram("obs.live.scrape_seconds").count == 1

    def test_rates_derive_from_consecutive_ticks(self):
        reg = MetricsRegistry()
        col = TelemetryCollector(reg, interval=3600)
        reg.inc("ops", 10)
        col.tick(now=0.0)
        reg.inc("ops", 20)
        col.tick(now=2.0)
        r = col.store.rollup("ops")
        assert r["last"] == 30 and r["mean"] == pytest.approx(10.0)  # 20/2s

    def test_background_thread_ticks(self):
        reg = MetricsRegistry()
        col = TelemetryCollector(reg, interval=0.01)
        with col:
            assert col.running
            deadline = time.monotonic() + 2.0
            while col.n_ticks < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert not col.running
        assert col.n_ticks >= 3

    def test_attached_watchdog_checked_each_tick(self):
        reg = MetricsRegistry()
        col = TelemetryCollector(reg, interval=3600)
        wd = col.attach_watchdog(
            Watchdog(StubPool(health=[{"worker": 0, "alive": False, "exitcode": -9}]),
                     registry=reg)
        )
        col.tick(now=0.0)
        assert [a["kind"] for a in wd.alerts] == ["worker_dead"]

    def test_module_level_enable_disable(self):
        try:
            col = enable_live_telemetry(interval=60.0)
            assert live_telemetry_enabled() and current_collector() is col
            assert col.running
            replacement = enable_live_telemetry(interval=60.0)
            assert current_collector() is replacement and not col.running
        finally:
            disable_live_telemetry()
        assert not live_telemetry_enabled() and current_collector() is None
        assert not replacement.running


class TestWatchdog:
    def beats(self, *, task_id=7, busy=10.0, received=0.0, rss=None):
        return {
            0: {
                "worker": 0, "task_id": task_id, "task": "selftest.sleep",
                "busy_seconds": busy, "n_done": 1, "rss_bytes": rss,
                "received": received,
            }
        }

    def healthy(self):
        return [{"worker": 0, "alive": True, "exitcode": None}]

    def test_stalled_worker_alerts_once_per_task(self):
        reg = MetricsRegistry()
        pool = StubPool(health=self.healthy(), beats=self.beats(busy=10.0))
        wd = Watchdog(pool, stall_after=5.0, registry=reg)
        first = wd.check(now=0.0)
        assert [a["kind"] for a in first] == ["worker_stalled"]
        assert first[0]["task_id"] == 7
        assert first[0]["error_type"] == "WorkerCrashError"
        assert wd.check(now=1.0) == []  # same episode, no re-alert
        assert reg.counter("obs.watchdog.alerts").value == 1
        assert reg.counter("obs.watchdog.worker_stalled").value == 1

    def test_stale_heartbeat_counts_toward_stall(self):
        # Beat says busy 1s, but it was received 10s ago: the worker is
        # not even beating any more -> treated as stalled.
        pool = StubPool(health=self.healthy(),
                        beats=self.beats(busy=1.0, received=0.0))
        wd = Watchdog(pool, stall_after=5.0, registry=MetricsRegistry())
        assert [a["kind"] for a in wd.check(now=10.0)] == ["worker_stalled"]

    def test_idle_fast_worker_never_alerts(self):
        pool = StubPool(health=self.healthy(),
                        beats=self.beats(task_id=None, busy=0.0))
        wd = Watchdog(pool, stall_after=0.1, registry=MetricsRegistry())
        assert wd.check(now=100.0) == []

    def test_memory_episode_resets_when_rss_drops(self):
        reg = MetricsRegistry()
        pool = StubPool(health=self.healthy(),
                        beats=self.beats(task_id=None, rss=2_000_000))
        wd = Watchdog(pool, rss_limit_bytes=1_000_000, registry=reg)
        assert [a["kind"] for a in wd.check(now=0.0)] == ["worker_memory"]
        assert wd.check(now=1.0) == []  # still over: one alert per episode
        pool._beats = self.beats(task_id=None, rss=500_000)
        assert wd.check(now=2.0) == []  # back under: episode closed
        pool._beats = self.beats(task_id=None, rss=3_000_000)
        assert [a["kind"] for a in wd.check(now=3.0)] == ["worker_memory"]

    def test_dead_worker_alert_carries_exitcode(self):
        pool = StubPool(health=[{"worker": 1, "alive": False, "exitcode": -11}])
        wd = Watchdog(pool, registry=MetricsRegistry())
        (alert,) = wd.check(now=0.0)
        assert alert["kind"] == "worker_dead" and alert["exitcode"] == -11

    def test_alerts_enter_trace_stream_and_describe(self):
        sink = MemorySink()
        enable_tracing(sink)
        try:
            reg = MetricsRegistry()
            pool = StubPool(health=self.healthy(), beats=self.beats(busy=9.0))
            Watchdog(pool, stall_after=1.0, registry=reg).check(now=0.0)
        finally:
            disable_tracing()
        flagged = alerts(sink.events)
        assert len(flagged) == 1
        assert flagged[0]["name"] == "watchdog.worker_stalled"
        assert flagged[0]["attrs"]["worker"] == 0
        text = describe(sink.events)
        assert "-- alerts (1) --" in text and "watchdog.worker_stalled" in text
