"""Overhead contracts of the observability stack.

Two guarantees are pinned here:

* **Disabled is (near) free.**  The kernels bind ``span``/``METRICS`` at
  import time, so instrumentation cannot be patched away — instead we
  bound what it *costs*: the measured per-call price of a disabled
  ``span()`` times the number of instrumentation sites a real workload
  hits must stay far below the workload's own runtime.  This is a
  computed bound, not a noise-prone A/B timing, so it is stable in CI.
* **The live collector never changes results.**  Enabling the background
  collector (satellite thread, scrapes, rollups) must leave kernel
  outputs bit-identical — telemetry observes, it never participates.

The <2% *enabled*-collector wall-clock gate lives in
``benchmarks/test_obs_overhead.py`` where pytest-benchmark can time it
properly.
"""

import threading
import time

import numpy as np

from repro import obs
from repro.api import DynamicGraph
from repro.generators import mixed_stream, rmat_graph
from repro.obs.trace import _NULL_SPAN


def run_workload(scale=8, updates=400):
    """A small end-to-end slice; returns bit-comparable outputs."""
    graph = rmat_graph(scale, 4, seed=5, ts_range=(1, 50))
    g = DynamicGraph.from_edgelist(graph, representation="hybrid")
    res = g.apply(mixed_stream(graph, updates, insert_frac=0.75, seed=2))
    comps = g.connected_components()
    return res.n_updates, comps.labels, comps.n_passes


class TestDisabledOverhead:
    def test_disabled_span_is_the_shared_noop_singleton(self):
        assert not obs.tracing_enabled()
        assert obs.span("anything", attr=1) is _NULL_SPAN
        assert obs.emit_event("anything") is None

    def test_disabled_span_per_call_cost_is_sub_microsecond_scale(self):
        assert not obs.tracing_enabled()
        n = 100_000
        span = obs.span
        t0 = time.perf_counter()
        for _ in range(n):
            with span("x"):
                pass
        per_call = (time.perf_counter() - t0) / n
        # Generous ceiling (~10x typical): a no-op span costs well under
        # 5us even on slow shared CI machines.
        assert per_call < 5e-6, f"disabled span() cost {per_call * 1e6:.2f}us/call"

    def test_disabled_obs_overhead_bounded_below_2pct_of_workload(self):
        # Count the instrumentation sites a real workload actually hits...
        sink = obs.MemorySink()
        tracer = obs.enable_tracing(sink)
        try:
            run_workload()
            n_sites = tracer.n_events
        finally:
            obs.disable_tracing()
        assert n_sites > 0

        # ...measure the disabled per-call price...
        n = 50_000
        span = obs.span
        t0 = time.perf_counter()
        for _ in range(n):
            with span("x"):
                pass
        per_call = (time.perf_counter() - t0) / n

        # ...and time the workload with everything off.
        assert not obs.tracing_enabled()
        assert not obs.live_telemetry_enabled()
        assert not obs.memory_profiling_enabled()
        t0 = time.perf_counter()
        run_workload()
        workload_s = time.perf_counter() - t0

        instrumentation_s = n_sites * per_call
        assert instrumentation_s < 0.02 * workload_s, (
            f"{n_sites} sites x {per_call * 1e6:.2f}us = "
            f"{instrumentation_s * 1e3:.2f}ms vs workload {workload_s * 1e3:.0f}ms"
        )


class TestZeroResidue:
    def test_full_stack_disable_leaves_nothing_behind(self):
        tracer = obs.enable_tracing(obs.MemorySink())
        collector = obs.enable_live_telemetry(interval=0.01)
        obs.enable_memory_profiling()
        with obs.span("residue.check"):
            obs.METRICS.inc("residue.counter")
        deadline = time.monotonic() + 2.0
        while collector.n_ticks == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        obs.disable_memory_profiling()
        obs.disable_live_telemetry()
        obs.disable_tracing()

        assert not obs.tracing_enabled() and obs.current_tracer() is None
        assert not obs.live_telemetry_enabled() and obs.current_collector() is None
        assert not obs.memory_profiling_enabled()
        assert not collector.running
        assert obs.span("x") is _NULL_SPAN and obs.emit_event("x") is None
        lingering = [
            t.name for t in threading.enumerate()
            if t.name.startswith("repro-telemetry")
        ]
        assert lingering == []
        assert tracer.n_events == 1  # only the span from the enabled window


class TestCollectorNeutrality:
    def test_results_bit_identical_with_collector_on(self):
        n_off, labels_off, passes_off = run_workload()
        obs.enable_live_telemetry(interval=0.005)
        try:
            n_on, labels_on, passes_on = run_workload()
        finally:
            obs.disable_live_telemetry()
        assert n_on == n_off and passes_on == passes_off
        assert np.array_equal(labels_on, labels_off)
