"""Tests for repro.obs.trace: span nesting, disabled path, rendering."""

import time

import pytest

from repro import obs
from repro.obs.trace import _NULL_SPAN, format_span_tree


class TestDisabledPath:
    def test_span_is_shared_noop_singleton(self):
        assert not obs.tracing_enabled()
        s1 = obs.span("a", big_attr=list(range(10)))
        s2 = obs.span("b")
        assert s1 is s2 is _NULL_SPAN
        assert s1.enabled is False

    def test_noop_span_contextmanager(self):
        with obs.span("a") as s:
            s.set(x=1)  # silently dropped
        assert obs.current_tracer() is None

    def test_no_events_recorded_when_disabled(self):
        tracer = obs.enable_tracing(obs.MemorySink())
        obs.disable_tracing()
        with obs.span("a"):
            pass
        assert tracer.sink.events == []

    def test_overhead_is_one_call_and_test(self):
        """The disabled path must stay allocation-free per call.

        A coarse guard (not a benchmark): a million disabled span() calls
        complete in well under a second on any host this suite runs on,
        which bounds per-call overhead to ~1us — invisible next to the
        ~10us/update pure-Python apply path it instruments.
        """
        t0 = time.perf_counter()
        for _ in range(100_000):
            obs.span("update_engine.apply_stream")
        assert time.perf_counter() - t0 < 1.0


class TestSpanNesting:
    def test_parent_child_ids(self, tracer):
        with obs.span("outer"):
            with obs.span("mid"):
                with obs.span("inner"):
                    pass
        events = {e["name"]: e for e in tracer.sink.events}
        assert events["outer"]["parent_id"] is None
        assert events["mid"]["parent_id"] == events["outer"]["span_id"]
        assert events["inner"]["parent_id"] == events["mid"]["span_id"]

    def test_children_emitted_before_parents(self, tracer):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert [e["name"] for e in tracer.sink.events] == ["inner", "outer"]

    def test_siblings_share_parent(self, tracer):
        with obs.span("root"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        events = {e["name"]: e for e in tracer.sink.events}
        assert events["a"]["parent_id"] == events["root"]["span_id"]
        assert events["b"]["parent_id"] == events["root"]["span_id"]

    def test_durations_nest(self, tracer):
        with obs.span("outer"):
            with obs.span("inner"):
                time.sleep(0.002)
        events = {e["name"]: e for e in tracer.sink.events}
        assert 0 < events["inner"]["duration"] <= events["outer"]["duration"]

    def test_depth_tracks_open_spans(self, tracer):
        assert tracer.depth == 0
        with obs.span("a"):
            assert tracer.depth == 1
            with obs.span("b"):
                assert tracer.depth == 2
        assert tracer.depth == 0


class TestSpanAttrs:
    def test_creation_and_set_attrs(self, tracer):
        with obs.span("s", representation="hybrid") as sp:
            sp.set(misses=3, host_seconds=0.5)
        (event,) = tracer.sink.events
        assert event["attrs"] == {
            "representation": "hybrid",
            "misses": 3,
            "host_seconds": 0.5,
        }

    def test_exception_marks_span_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("x")
        (event,) = tracer.sink.events
        assert event["attrs"]["error"] == "ValueError"

    def test_manifest_id_stamped(self):
        manifest = obs.RunManifest.capture(seed=9)
        tracer = obs.enable_tracing(obs.MemorySink(), manifest=manifest)
        with obs.span("s"):
            pass
        (event,) = tracer.sink.events
        assert event["manifest_id"] == manifest.id

    def test_no_manifest_no_id(self, tracer):
        with obs.span("s"):
            pass
        assert "manifest_id" not in tracer.sink.events[0]


class TestFormatSpanTree:
    def test_indentation_and_order(self, tracer):
        with obs.span("root"):
            with obs.span("first"):
                with obs.span("deep"):
                    pass
            with obs.span("second"):
                pass
        text = format_span_tree(tracer.sink.events)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  first")
        assert lines[2].startswith("    deep")
        assert lines[3].startswith("  second")

    def test_attrs_shown_inline(self, tracer):
        with obs.span("s", representation="hybrid", n_updates=42):
            pass
        text = format_span_tree(tracer.sink.events)
        assert "representation=hybrid" in text
        assert "n_updates=42" in text

    def test_empty(self):
        assert "no spans" in format_span_tree([])

    def test_orphans_promoted_to_roots(self, tracer):
        with obs.span("root"):
            with obs.span("kid"):
                pass
        events = [e for e in tracer.sink.events if e["name"] == "kid"]
        text = format_span_tree(events)  # parent evicted / filtered out
        assert text.splitlines()[0].startswith("kid")


class TestEnableDisable:
    def test_enable_returns_current(self):
        t = obs.enable_tracing()
        assert obs.current_tracer() is t
        assert obs.tracing_enabled()
        obs.disable_tracing()
        assert obs.current_tracer() is None

    def test_reenable_replaces(self):
        t1 = obs.enable_tracing()
        t2 = obs.enable_tracing()
        assert obs.current_tracer() is t2 is not t1
