"""Tests for repro.obs.metrics."""

import json

from repro.obs.metrics import MetricsRegistry, snapshot_delta


class TestCounter:
    def test_inc_and_reset(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(41)
        assert c.value == 42
        c.reset()
        assert c.value == 0

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_inc_convenience(self):
        reg = MetricsRegistry()
        reg.inc("a.b", 5)
        reg.inc("a.b")
        assert reg.counter("a.b").value == 6

    def test_inc_many_skips_zeros(self):
        reg = MetricsRegistry()
        reg.inc_many("adjacency.hybrid", {"inserts": 3, "rotations": 0})
        snap = reg.snapshot()
        assert snap["counters"] == {"adjacency.hybrid.inserts": 3}


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.set("mem", 100.0)
        reg.set("mem", 250.0)
        assert reg.gauge("mem").value == 250.0


class TestHistogram:
    def test_observe_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("lat", v)
        s = reg.histogram("lat").summary()
        assert s == {"count": 3, "total": 6.0, "mean": 2.0, "min": 1.0, "max": 3.0}

    def test_empty_summary(self):
        # Well-defined zeros, never ±inf sentinels or None: the summary
        # feeds straight into JSON artifacts and arithmetic.
        reg = MetricsRegistry()
        s = reg.histogram("empty").summary()
        assert s == {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        assert reg.histogram("empty").mean == 0.0


class TestRegistry:
    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set("g", 1.5)
        reg.observe("h", 2.0)
        json.dumps(reg.snapshot())

    def test_top_counters_ranked_and_nonzero(self):
        reg = MetricsRegistry()
        reg.inc("small", 1)
        reg.inc("big", 100)
        reg.inc("mid", 10)
        reg.counter("zero")
        assert reg.top_counters(2) == [("big", 100), ("mid", 10)]
        assert ("zero", 0) not in reg.top_counters(10)

    def test_reset_zeroes_but_keeps_names(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set("g", 1.0)
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 0}
        assert snap["gauges"] == {"g": 0.0}
        assert snap["histograms"]["h"]["count"] == 0


class TestMergeSnapshot:
    def worker_snapshot(self):
        w = MetricsRegistry()
        w.inc("connectivity.hops", 10)
        w.set("memory.peak_bytes", 500.0)
        w.observe("lat", 1.0)
        w.observe("lat", 3.0)
        return w.snapshot()

    def test_counters_add_under_prefix_and_rollup(self):
        reg = MetricsRegistry()
        reg.merge_snapshot(self.worker_snapshot(), prefix="worker0", rollup="workers")
        reg.merge_snapshot(self.worker_snapshot(), prefix="worker1", rollup="workers")
        snap = reg.snapshot()
        assert snap["counters"]["worker0.connectivity.hops"] == 10
        assert snap["counters"]["worker1.connectivity.hops"] == 10
        assert snap["counters"]["workers.connectivity.hops"] == 20

    def test_gauges_set_under_prefix_max_under_rollup(self):
        reg = MetricsRegistry()
        big = self.worker_snapshot()
        small = {"gauges": {"memory.peak_bytes": 100.0}}
        reg.merge_snapshot(big, prefix="worker0", rollup="workers")
        reg.merge_snapshot(small, prefix="worker1", rollup="workers")
        snap = reg.snapshot()
        assert snap["gauges"]["worker0.memory.peak_bytes"] == 500.0
        assert snap["gauges"]["worker1.memory.peak_bytes"] == 100.0
        # The rollup of a last-value metric is its high-water mark.
        assert snap["gauges"]["workers.memory.peak_bytes"] == 500.0

    def test_histograms_merge_exactly(self):
        reg = MetricsRegistry()
        reg.observe("workers.lat", 10.0)
        reg.merge_snapshot(self.worker_snapshot(), rollup="workers")
        s = reg.histogram("workers.lat").summary()
        assert s["count"] == 3 and s["total"] == 14.0
        assert s["min"] == 1.0 and s["max"] == 10.0

    def test_no_prefix_no_rollup_merges_in_place(self):
        reg = MetricsRegistry()
        reg.inc("connectivity.hops", 5)
        reg.merge_snapshot(self.worker_snapshot())
        assert reg.counter("connectivity.hops").value == 15

    def test_empty_histograms_and_zero_counters_skipped(self):
        reg = MetricsRegistry()
        reg.merge_snapshot(
            {"counters": {"c": 0}, "histograms": {"h": {"count": 0}}},
            prefix="worker0",
        )
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}


class TestSnapshotDelta:
    def test_counter_and_gauge_deltas(self):
        reg = MetricsRegistry()
        reg.inc("c", 5)
        reg.set("g", 1.0)
        before = reg.snapshot()
        reg.inc("c", 7)
        reg.inc("new", 2)
        reg.set("g", 3.0)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["counters"] == {"c": 7, "new": 2}
        assert delta["gauges"] == {"g": 3.0}

    def test_unchanged_metrics_absent(self):
        reg = MetricsRegistry()
        reg.inc("c", 5)
        reg.set("g", 1.0)
        snap = reg.snapshot()
        delta = snapshot_delta(snap, snap)
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_histogram_delta_counts_and_totals(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        before = reg.snapshot()
        reg.observe("h", 4.0)
        reg.observe("h", 2.0)
        delta = snapshot_delta(before, reg.snapshot())
        h = delta["histograms"]["h"]
        assert h["count"] == 2 and h["total"] == 6.0

    def test_round_trips_through_merge(self):
        # A worker's delta merged into a fresh registry reproduces exactly
        # what the worker ticked — the aggregation equality contract.
        worker = MetricsRegistry()
        before = worker.snapshot()
        worker.inc("connectivity.hops", 42)
        delta = snapshot_delta(before, worker.snapshot())
        parent = MetricsRegistry()
        parent.merge_snapshot(delta, prefix="worker0", rollup="workers")
        assert parent.counter("workers.connectivity.hops").value == 42
