"""Tests for repro.obs.metrics."""

import json

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_inc_and_reset(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(41)
        assert c.value == 42
        c.reset()
        assert c.value == 0

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_inc_convenience(self):
        reg = MetricsRegistry()
        reg.inc("a.b", 5)
        reg.inc("a.b")
        assert reg.counter("a.b").value == 6

    def test_inc_many_skips_zeros(self):
        reg = MetricsRegistry()
        reg.inc_many("adjacency.hybrid", {"inserts": 3, "rotations": 0})
        snap = reg.snapshot()
        assert snap["counters"] == {"adjacency.hybrid.inserts": 3}


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.set("mem", 100.0)
        reg.set("mem", 250.0)
        assert reg.gauge("mem").value == 250.0


class TestHistogram:
    def test_observe_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("lat", v)
        s = reg.histogram("lat").summary()
        assert s == {"count": 3, "total": 6.0, "mean": 2.0, "min": 1.0, "max": 3.0}

    def test_empty_summary(self):
        reg = MetricsRegistry()
        s = reg.histogram("empty").summary()
        assert s["count"] == 0 and s["min"] is None and s["max"] is None


class TestRegistry:
    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set("g", 1.5)
        reg.observe("h", 2.0)
        json.dumps(reg.snapshot())

    def test_top_counters_ranked_and_nonzero(self):
        reg = MetricsRegistry()
        reg.inc("small", 1)
        reg.inc("big", 100)
        reg.inc("mid", 10)
        reg.counter("zero")
        assert reg.top_counters(2) == [("big", 100), ("mid", 10)]
        assert ("zero", 0) not in reg.top_counters(10)

    def test_reset_zeroes_but_keeps_names(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set("g", 1.0)
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 0}
        assert snap["gauges"] == {"g": 0.0}
        assert snap["histograms"]["h"]["count"] == 0
