"""Tests for repro.obs.metrics."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry, snapshot_delta


class TestCounter:
    def test_inc_and_reset(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(41)
        assert c.value == 42
        c.reset()
        assert c.value == 0

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_inc_convenience(self):
        reg = MetricsRegistry()
        reg.inc("a.b", 5)
        reg.inc("a.b")
        assert reg.counter("a.b").value == 6

    def test_inc_many_skips_zeros(self):
        reg = MetricsRegistry()
        reg.inc_many("adjacency.hybrid", {"inserts": 3, "rotations": 0})
        snap = reg.snapshot()
        assert snap["counters"] == {"adjacency.hybrid.inserts": 3}


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.set("mem", 100.0)
        reg.set("mem", 250.0)
        assert reg.gauge("mem").value == 250.0


class TestHistogram:
    def test_observe_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("lat", v)
        s = reg.histogram("lat").summary()
        assert s["count"] == 3 and s["total"] == 6.0 and s["mean"] == 2.0
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert 1.0 <= s["p50"] <= s["p99"] <= 3.0
        assert sum(s["buckets"]) == 3

    def test_empty_summary(self):
        # Well-defined zeros, never ±inf sentinels or None: the summary
        # feeds straight into JSON artifacts and arithmetic.
        reg = MetricsRegistry()
        s = reg.histogram("empty").summary()
        assert s == {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        assert reg.histogram("empty").mean == 0.0
        assert reg.histogram("empty").quantile(0.5) == 0.0


class TestHistogramQuantiles:
    """Interpolated quantiles pinned on known distributions.

    The quantile estimator interpolates linearly between bucket bounds;
    on a distribution spread across buckets (uniform below) the estimate
    lands within a few percent of the exact answer, while a point mass
    inside one bucket can be off by up to that bucket's width (factor √2,
    ~41%) — still strictly better than upper-bound snapping, which adds
    a whole-bucket bias even on smooth distributions.
    """

    def test_uniform_distribution_p50_p99(self):
        h = MetricsRegistry().histogram("u")
        for v in range(1, 10_001):
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(5000.0, rel=0.05)
        assert h.quantile(0.99) == pytest.approx(9900.0, rel=0.05)

    def test_constant_distribution_is_exact(self):
        h = MetricsRegistry().histogram("c")
        for _ in range(100):
            h.observe(7.0)
        # Every observation in one bucket, clamped to observed extremes.
        assert h.quantile(0.5) == 7.0
        assert h.quantile(0.99) == 7.0

    def test_two_point_distribution(self):
        h = MetricsRegistry().histogram("b")
        for _ in range(99):
            h.observe(1.0)
        h.observe(1000.0)
        assert h.quantile(0.5) == pytest.approx(1.0, rel=0.25)
        assert h.quantile(0.999) == pytest.approx(1000.0, rel=0.05)

    def test_exponential_like_ladder(self):
        h = MetricsRegistry().histogram("e")
        for k in range(10):  # 512 ones, 256 twos, ... one 512
            for _ in range(2 ** (9 - k)):
                h.observe(float(2**k))
        # 1023 samples, 512 of them equal 1.0 -> p50 sits in 1.0's bucket.
        assert h.quantile(0.5) == pytest.approx(1.0, rel=0.25)
        # rank 0.99*1023 falls in the 64-mass (cum 1008 < 1012.8 <= 1016)
        assert h.quantile(0.99) == pytest.approx(64.0, rel=0.25)

    def test_quantiles_monotone_and_clamped(self):
        h = MetricsRegistry().histogram("m")
        for v in (0.001, 0.01, 0.1, 1.0, 10.0):
            h.observe(v)
        qs = [h.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0)]
        assert qs == sorted(qs)
        assert qs[0] >= 0.001 and qs[-1] <= 10.0

    def test_merge_preserves_bucket_resolution(self):
        # Two workers' summaries merged -> quantiles computed from the
        # combined buckets, not degraded to min/max interpolation.
        a = MetricsRegistry()
        b = MetricsRegistry()
        for v in range(1, 501):
            a.observe("lat", float(v))
        for v in range(501, 1001):
            b.observe("lat", float(v))
        parent = MetricsRegistry()
        parent.merge_snapshot(a.snapshot(), rollup="workers")
        parent.merge_snapshot(b.snapshot(), rollup="workers")
        h = parent.histogram("workers.lat")
        assert h.count == 1000
        assert h.quantile(0.5) == pytest.approx(500.0, rel=0.05)
        assert h.quantile(0.99) == pytest.approx(990.0, rel=0.05)

    def test_delta_buckets_round_trip(self):
        from repro.obs.metrics import snapshot_delta

        reg = MetricsRegistry()
        for v in (1.0, 2.0):
            reg.observe("h", v)
        before = reg.snapshot()
        for v in (100.0, 200.0, 400.0):
            reg.observe("h", v)
        delta = snapshot_delta(before, reg.snapshot())
        entry = delta["histograms"]["h"]
        assert entry["count"] == 3
        assert sum(entry["buckets"]) == 3
        parent = MetricsRegistry()
        parent.merge_snapshot(delta)
        assert parent.histogram("h").quantile(0.99) == pytest.approx(400.0, rel=0.06)


class TestRegistry:
    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set("g", 1.5)
        reg.observe("h", 2.0)
        json.dumps(reg.snapshot())

    def test_top_counters_ranked_and_nonzero(self):
        reg = MetricsRegistry()
        reg.inc("small", 1)
        reg.inc("big", 100)
        reg.inc("mid", 10)
        reg.counter("zero")
        assert reg.top_counters(2) == [("big", 100), ("mid", 10)]
        assert ("zero", 0) not in reg.top_counters(10)

    def test_reset_zeroes_but_keeps_names(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set("g", 1.0)
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 0}
        assert snap["gauges"] == {"g": 0.0}
        assert snap["histograms"]["h"]["count"] == 0


class TestMergeSnapshot:
    def worker_snapshot(self):
        w = MetricsRegistry()
        w.inc("connectivity.hops", 10)
        w.set("memory.peak_bytes", 500.0)
        w.observe("lat", 1.0)
        w.observe("lat", 3.0)
        return w.snapshot()

    def test_counters_add_under_prefix_and_rollup(self):
        reg = MetricsRegistry()
        reg.merge_snapshot(self.worker_snapshot(), prefix="worker0", rollup="workers")
        reg.merge_snapshot(self.worker_snapshot(), prefix="worker1", rollup="workers")
        snap = reg.snapshot()
        assert snap["counters"]["worker0.connectivity.hops"] == 10
        assert snap["counters"]["worker1.connectivity.hops"] == 10
        assert snap["counters"]["workers.connectivity.hops"] == 20

    def test_gauges_set_under_prefix_max_under_rollup(self):
        reg = MetricsRegistry()
        big = self.worker_snapshot()
        small = {"gauges": {"memory.peak_bytes": 100.0}}
        reg.merge_snapshot(big, prefix="worker0", rollup="workers")
        reg.merge_snapshot(small, prefix="worker1", rollup="workers")
        snap = reg.snapshot()
        assert snap["gauges"]["worker0.memory.peak_bytes"] == 500.0
        assert snap["gauges"]["worker1.memory.peak_bytes"] == 100.0
        # The rollup of a last-value metric is its high-water mark.
        assert snap["gauges"]["workers.memory.peak_bytes"] == 500.0

    def test_histograms_merge_exactly(self):
        reg = MetricsRegistry()
        reg.observe("workers.lat", 10.0)
        reg.merge_snapshot(self.worker_snapshot(), rollup="workers")
        s = reg.histogram("workers.lat").summary()
        assert s["count"] == 3 and s["total"] == 14.0
        assert s["min"] == 1.0 and s["max"] == 10.0

    def test_no_prefix_no_rollup_merges_in_place(self):
        reg = MetricsRegistry()
        reg.inc("connectivity.hops", 5)
        reg.merge_snapshot(self.worker_snapshot())
        assert reg.counter("connectivity.hops").value == 15

    def test_empty_histograms_and_zero_counters_skipped(self):
        reg = MetricsRegistry()
        reg.merge_snapshot(
            {"counters": {"c": 0}, "histograms": {"h": {"count": 0}}},
            prefix="worker0",
        )
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}


class TestSnapshotDelta:
    def test_counter_and_gauge_deltas(self):
        reg = MetricsRegistry()
        reg.inc("c", 5)
        reg.set("g", 1.0)
        before = reg.snapshot()
        reg.inc("c", 7)
        reg.inc("new", 2)
        reg.set("g", 3.0)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["counters"] == {"c": 7, "new": 2}
        assert delta["gauges"] == {"g": 3.0}

    def test_unchanged_metrics_absent(self):
        reg = MetricsRegistry()
        reg.inc("c", 5)
        reg.set("g", 1.0)
        snap = reg.snapshot()
        delta = snapshot_delta(snap, snap)
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_histogram_delta_counts_and_totals(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        before = reg.snapshot()
        reg.observe("h", 4.0)
        reg.observe("h", 2.0)
        delta = snapshot_delta(before, reg.snapshot())
        h = delta["histograms"]["h"]
        assert h["count"] == 2 and h["total"] == 6.0

    def test_round_trips_through_merge(self):
        # A worker's delta merged into a fresh registry reproduces exactly
        # what the worker ticked — the aggregation equality contract.
        worker = MetricsRegistry()
        before = worker.snapshot()
        worker.inc("connectivity.hops", 42)
        delta = snapshot_delta(before, worker.snapshot())
        parent = MetricsRegistry()
        parent.merge_snapshot(delta, prefix="worker0", rollup="workers")
        assert parent.counter("workers.connectivity.hops").value == 42
