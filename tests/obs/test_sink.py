"""Tests for repro.obs.sink: ring buffer, JSONL round-trip, tee, describe."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.sink import JsonlSink, MemorySink, TeeSink, describe, read_jsonl


class TestMemorySink:
    def test_records_in_order(self):
        sink = MemorySink()
        for i in range(3):
            sink.emit({"type": "span", "i": i})
        assert [e["i"] for e in sink.events] == [0, 1, 2]
        assert len(sink) == 3

    def test_ring_buffer_evicts_oldest(self):
        sink = MemorySink(maxlen=2)
        for i in range(5):
            sink.emit({"i": i})
        assert [e["i"] for e in sink.events] == [3, 4]
        assert sink.n_emitted == 5

    def test_clear(self):
        sink = MemorySink()
        sink.emit({})
        sink.clear()
        assert sink.events == []


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = [
            {"type": "span", "name": "a", "span_id": 1, "parent_id": None,
             "duration": 0.25, "attrs": {"rep": "hybrid"}},
            {"type": "span", "name": "b", "span_id": 2, "parent_id": 1,
             "duration": 0.5, "attrs": {}},
        ]
        with JsonlSink(path) as sink:
            for e in events:
                sink.emit(e)
        assert read_jsonl(path) == events

    def test_numpy_values_coerced(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({
                "count": np.int64(3),
                "rate": np.float64(1.5),
                "ok": np.bool_(True),
                "arr": np.array([1, 2]),
            })
        (event,) = read_jsonl(path)
        assert event == {"count": 3, "rate": 1.5, "ok": True, "arr": [1, 2]}

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({})

    def test_append_mode(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"i": 0})
        with JsonlSink(path, append=True) as sink:
            sink.emit({"i": 1})
        assert [e["i"] for e in read_jsonl(path)] == [0, 1]

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"a": 1})
            sink.emit({"b": 2})
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)


class TestTeeSink:
    def test_fans_out_and_closes(self, tmp_path):
        mem1, mem2 = MemorySink(), MemorySink()
        jsonl = JsonlSink(tmp_path / "t.jsonl")
        tee = TeeSink(mem1, mem2, jsonl)
        tee.emit({"x": 1})
        tee.close()
        assert mem1.events == mem2.events == [{"x": 1}]
        assert read_jsonl(tmp_path / "t.jsonl") == [{"x": 1}]
        with pytest.raises(ValueError):
            jsonl.emit({})


class TestDescribe:
    def test_tree_plus_counters(self, tracer):
        with obs.span("root"):
            with obs.span("child"):
                pass
        obs.METRICS.inc("update_engine.arc_ops", 7)
        text = describe(tracer.sink.events, metrics=obs.METRICS)
        assert "root" in text and "child" in text
        assert "top counters" in text
        assert "update_engine.arc_ops" in text

    def test_without_metrics(self, tracer):
        with obs.span("root"):
            pass
        text = describe(tracer.sink.events)
        assert "root" in text and "top counters" not in text


class TestNumpyThroughFullTracePath:
    def test_span_attrs_with_numpy_scalars_reach_jsonl(self, tmp_path):
        # Regression: kernels stamp span attrs with np.int64 / np.bool_
        # (e.g. sp.set(hops=np.int64(...))); the JSONL sink must coerce
        # them instead of crashing the whole traced run at emit time.
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        obs.enable_tracing(sink)
        try:
            with obs.span(
                "kernel",
                n=np.int64(128),
                identical=np.bool_(True),
                rate=np.float64(0.5),
            ) as sp:
                sp.set(hops=np.int64(7), sizes=np.array([3, 4]))
        finally:
            obs.disable_tracing()
            sink.close()
        (event,) = read_jsonl(path)
        assert event["attrs"] == {
            "n": 128,
            "identical": True,
            "rate": 0.5,
            "hops": 7,
            "sizes": [3, 4],
        }
