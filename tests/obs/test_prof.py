"""Tests for repro.obs.prof: per-span memory accounting."""

import pytest

from repro import obs
from repro.obs.prof import (
    current_memory_profiler,
    disable_memory_profiling,
    enable_memory_profiling,
    measure_block,
    memory_profiling_enabled,
    rss_bytes,
)

MB = 1 << 20


@pytest.fixture
def memprof():
    profiler = enable_memory_profiling(track_rss=False)
    yield profiler
    disable_memory_profiling()


class TestLifecycle:
    def test_disabled_by_default(self):
        assert not memory_profiling_enabled()
        assert current_memory_profiler() is None

    def test_enable_is_idempotent(self, memprof):
        assert enable_memory_profiling() is memprof
        assert memory_profiling_enabled()

    def test_disable_twice_is_safe(self, memprof):
        disable_memory_profiling()
        disable_memory_profiling()
        assert not memory_profiling_enabled()


class TestSpanAttrs:
    def test_span_gains_memory_attrs(self, memprof, tracer):
        with obs.span("alloc"):
            blob = bytearray(4 * MB)
        del blob
        attrs = tracer.sink.events[-1]["attrs"]
        assert attrs["peak_bytes"] >= 4 * MB
        assert attrs["alloc_bytes"] >= 4 * MB  # blob still live at span exit

    def test_freed_allocation_peaks_but_nets_out(self, memprof, tracer):
        with obs.span("transient"):
            blob = bytearray(4 * MB)
            del blob
        attrs = tracer.sink.events[-1]["attrs"]
        assert attrs["peak_bytes"] >= 4 * MB
        assert attrs["alloc_bytes"] < MB

    def test_parent_peak_covers_child_allocations(self, memprof, tracer):
        with obs.span("parent"):
            with obs.span("child"):
                blob = bytearray(4 * MB)
                del blob
        events = {e["name"]: e["attrs"] for e in tracer.sink.events}
        assert events["child"]["peak_bytes"] >= 4 * MB
        # The child's transient must be visible in the parent's peak even
        # though the global counter was reset at the child's entry.
        assert events["parent"]["peak_bytes"] >= 4 * MB

    def test_sequential_children_fold_into_parent(self, memprof, tracer):
        with obs.span("parent"):
            with obs.span("first"):
                blob = bytearray(4 * MB)
                del blob
            with obs.span("second"):
                pass
        events = {e["name"]: e["attrs"] for e in tracer.sink.events}
        assert events["parent"]["peak_bytes"] >= 4 * MB
        assert events["second"]["peak_bytes"] < MB

    def test_spans_without_profiler_have_no_memory_attrs(self, tracer):
        with obs.span("plain"):
            pass
        assert "peak_bytes" not in tracer.sink.events[-1]["attrs"]


class TestMeasuredBlock:
    def test_inert_without_profiler(self):
        with measure_block() as mem:
            bytearray(MB)
        assert not mem.enabled
        assert mem.peak_bytes is None and mem.alloc_bytes is None
        assert mem.meta() == {}

    def test_measures_peak(self, memprof):
        with measure_block() as mem:
            blob = bytearray(4 * MB)
            del blob
        assert mem.enabled
        assert mem.peak_bytes >= 4 * MB
        assert "peak_bytes" in mem.meta()

    def test_participates_in_span_nesting(self, memprof, tracer):
        with obs.span("outer"):
            with measure_block() as mem:
                blob = bytearray(4 * MB)
                del blob
        assert mem.peak_bytes >= 4 * MB
        outer = tracer.sink.events[-1]["attrs"]
        assert outer["peak_bytes"] >= 4 * MB

    def test_rss_delta_tracked_when_available(self):
        if rss_bytes() is None:
            pytest.skip("no /proc/self/statm on this platform")
        enable_memory_profiling(track_rss=True)
        try:
            with measure_block() as mem:
                blob = bytearray(MB)
            del blob
            assert mem.rss_delta_bytes is not None
        finally:
            disable_memory_profiling()


class TestRssBytes:
    def test_positive_when_available(self):
        rss = rss_bytes()
        if rss is not None:
            assert rss > 0
