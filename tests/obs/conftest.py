"""Fixtures for the observability tests: clean global tracer/metrics state."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with tracing off and zeroed metrics.

    The current manifest is saved and restored so tests that install their
    own (via ``set_manifest``) do not leak into the rest of the suite.
    """
    saved = obs.current_manifest()
    obs.disable_tracing()
    obs.METRICS.reset()
    yield
    obs.disable_tracing()
    obs.METRICS.reset()
    obs.set_manifest(saved)


@pytest.fixture
def tracer():
    """An enabled tracer with a memory sink, torn down automatically."""
    return obs.enable_tracing(obs.MemorySink())
