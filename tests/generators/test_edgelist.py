"""Tests for repro.edgelist.EdgeList."""

import numpy as np
import pytest

from repro.edgelist import EdgeList
from repro.errors import GraphError, VertexError


def make(n=4, src=(0, 1, 2), dst=(1, 2, 3), **kw):
    return EdgeList(n, np.array(src), np.array(dst), **kw)


class TestConstruction:
    def test_basic(self):
        g = make()
        assert g.n == 4 and g.m == 3
        assert not g.directed

    def test_out_of_range_rejected(self):
        with pytest.raises(VertexError):
            make(dst=(1, 2, 4))

    def test_negative_vertex_rejected(self):
        with pytest.raises(VertexError):
            make(src=(-1, 1, 2))

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            EdgeList(4, np.array([0, 1]), np.array([1]))

    def test_ts_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            make(ts=np.array([1, 2]))

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(GraphError):
            make(w=np.array([1, 0, 1]))

    def test_negative_n_rejected(self):
        with pytest.raises(GraphError):
            EdgeList(-1, np.array([], dtype=np.int64), np.array([], dtype=np.int64))

    def test_empty_graph(self):
        g = EdgeList(0, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert g.m == 0


class TestDefaults:
    def test_timestamps_default_zero(self):
        assert make().timestamps().tolist() == [0, 0, 0]

    def test_weights_default_one(self):
        assert make().weights().tolist() == [1, 1, 1]

    def test_has_timestamps(self):
        assert not make().has_timestamps
        assert make(ts=np.array([1, 2, 3])).has_timestamps


class TestDerivedViews:
    def test_degrees_undirected(self):
        g = make()  # path 0-1-2-3
        assert g.degrees().tolist() == [1, 2, 2, 1]

    def test_degrees_directed(self):
        g = make(directed=True)
        assert g.degrees().tolist() == [1, 1, 1, 0]

    def test_symmetrized_doubles(self):
        s = make(ts=np.array([5, 6, 7])).symmetrized()
        assert s.m == 6 and s.directed
        assert s.ts.tolist() == [5, 6, 7, 5, 6, 7]

    def test_symmetrized_directed_noop(self):
        g = make(directed=True)
        assert g.symmetrized() is g

    def test_deduplicated(self):
        g = EdgeList(3, np.array([0, 0, 1]), np.array([1, 1, 2]))
        assert g.deduplicated().m == 2

    def test_without_self_loops(self):
        g = EdgeList(3, np.array([0, 1, 2]), np.array([0, 2, 2]))
        assert g.without_self_loops().m == 1

    def test_select_preserves_parallel_arrays(self):
        g = make(ts=np.array([5, 6, 7]))
        sub = g.select(np.array([2, 0]))
        assert sub.src.tolist() == [2, 0]
        assert sub.ts.tolist() == [7, 5]

    def test_with_timestamps(self):
        g = make().with_timestamps(np.array([9, 9, 9]))
        assert g.ts.tolist() == [9, 9, 9]

    def test_shuffled_is_permutation(self):
        g = make(ts=np.array([5, 6, 7]))
        s = g.shuffled(np.random.default_rng(0))
        assert sorted(zip(s.src, s.dst, s.ts)) == sorted(zip(g.src, g.dst, g.ts))

    def test_memory_bytes(self):
        assert make().memory_bytes() == 2 * 3 * 8
        assert make(ts=np.array([1, 2, 3])).memory_bytes() == 3 * 3 * 8

    def test_iter_edges(self):
        assert list(make().iter_edges()) == [(0, 1), (1, 2), (2, 3)]
