"""Tests for communication-free parallel generation and streaming chunks.

The heart is the slice-protocol invariant: concatenating the slices (or
streamed chunks) of *any* partition is bit-identical to the serial
``rmat_edges`` stream — property-tested here over arbitrary slice counts,
chunk sizes and the uneven-remainder split, and hash-gated again in CI by
``tools/check_generation.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import DynamicGraph
from repro.errors import GraphError, WorkerCrashError
from repro.generators.parallel import (
    iter_edge_chunks,
    iter_update_chunks,
    rmat_edges_parallel,
    rmat_edges_range,
    rmat_edges_slice,
    rmat_graph_parallel,
    slice_bounds,
    uniform_timestamps_range,
)
from repro.generators.rmat import PAPER_RMAT, RMATParams, rmat_edges, rmat_graph
from repro.parallel.pool import WorkerPool

NOISY = RMATParams(0.45, 0.22, 0.22, 0.11, noise=0.05)


# --------------------------------------------------------------------- #
# slice protocol
# --------------------------------------------------------------------- #


class TestSliceBounds:
    @given(
        m=st.integers(min_value=0, max_value=500),
        n_slices=st.integers(min_value=1, max_value=17),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_covers_exactly_and_balanced(self, m, n_slices):
        bounds = [slice_bounds(m, i, n_slices) for i in range(n_slices)]
        # Contiguous cover of [0, m) in index order.
        assert bounds[0][0] == 0 and bounds[-1][1] == m
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        # Balanced: sizes differ by at most one, bigger slices first.
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_rejects_bad_arguments(self):
        with pytest.raises(GraphError):
            slice_bounds(10, 0, 0)
        with pytest.raises(GraphError):
            slice_bounds(10, 3, 3)
        with pytest.raises(GraphError):
            slice_bounds(-1, 0, 1)


class TestSliceProtocol:
    @given(
        scale=st.integers(min_value=1, max_value=8),
        m=st.integers(min_value=0, max_value=300),
        seed=st.integers(min_value=0, max_value=2**32),
        n_slices=st.integers(min_value=1, max_value=9),
        noisy=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_concatenated_slices_bit_identical_to_serial(
        self, scale, m, seed, n_slices, noisy
    ):
        params = NOISY if noisy else PAPER_RMAT
        ref_src, ref_dst = rmat_edges(scale, m, params, seed)
        parts = [
            rmat_edges_slice(params, scale, m, seed, i, n_slices)
            for i in range(n_slices)
        ]
        np.testing.assert_array_equal(
            ref_src, np.concatenate([p[0] for p in parts])
        )
        np.testing.assert_array_equal(
            ref_dst, np.concatenate([p[1] for p in parts])
        )

    @given(
        lo=st.integers(min_value=0, max_value=120),
        span=st.integers(min_value=0, max_value=120),
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_range_matches_serial_window(self, lo, span):
        m, scale, seed = 120, 6, 7
        lo = min(lo, m)
        hi = min(lo + span, m)
        ref_src, ref_dst = rmat_edges(scale, m, PAPER_RMAT, seed)
        src, dst = rmat_edges_range(PAPER_RMAT, scale, m, seed, lo, hi)
        np.testing.assert_array_equal(ref_src[lo:hi], src)
        np.testing.assert_array_equal(ref_dst[lo:hi], dst)

    def test_generator_seed_rejected(self):
        with pytest.raises(GraphError, match="integer seed"):
            rmat_edges_slice(PAPER_RMAT, 4, 10, np.random.default_rng(1), 0, 2)

    def test_bad_range_rejected(self):
        with pytest.raises(GraphError, match="invalid edge range"):
            rmat_edges_range(PAPER_RMAT, 4, 10, 1, 7, 3)


class TestTimestampsRange:
    @given(
        n_slices=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=30, deadline=None)
    def test_slicing_invariant(self, n_slices, seed):
        m, ts_lo, ts_hi = 150, 5, 47
        full = uniform_timestamps_range(m, ts_lo, ts_hi, seed, 0, m)
        assert full.min() >= ts_lo and full.max() <= ts_hi
        parts = [
            uniform_timestamps_range(m, ts_lo, ts_hi, seed, *slice_bounds(m, i, n_slices))
            for i in range(n_slices)
        ]
        np.testing.assert_array_equal(full, np.concatenate(parts))

    def test_validation(self):
        with pytest.raises(GraphError):
            uniform_timestamps_range(10, -1, 5, 1, 0, 10)
        with pytest.raises(GraphError):
            uniform_timestamps_range(10, 9, 5, 1, 0, 10)


# --------------------------------------------------------------------- #
# streaming chunks
# --------------------------------------------------------------------- #


class TestEdgeChunks:
    @given(
        scale=st.integers(min_value=1, max_value=7),
        edge_factor=st.integers(min_value=0, max_value=6),
        chunk_edges=st.integers(min_value=1, max_value=700),
        n_slices=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunks_bit_identical_for_any_chunking(
        self, scale, edge_factor, chunk_edges, n_slices, seed
    ):
        m = edge_factor * (1 << scale)
        ref_src, ref_dst = rmat_edges(scale, m, PAPER_RMAT, seed)
        ref_ts = uniform_timestamps_range(m, 3, 99, seed, 0, m)
        srcs, dsts, tss = [], [], []
        for slice_idx in range(n_slices):
            for chunk in iter_edge_chunks(
                scale,
                m,
                seed=seed,
                chunk_edges=chunk_edges,
                ts_range=(3, 99),
                slice_idx=slice_idx,
                n_slices=n_slices,
            ):
                assert chunk.m <= chunk_edges
                assert chunk.meta["chunk_hi"] - chunk.meta["chunk_lo"] == chunk.m
                srcs.append(chunk.src)
                dsts.append(chunk.dst)
                tss.append(chunk.timestamps())
        def cat(parts):
            return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

        np.testing.assert_array_equal(ref_src, cat(srcs))
        np.testing.assert_array_equal(ref_dst, cat(dsts))
        np.testing.assert_array_equal(ref_ts, cat(tss))

    def test_update_chunks_are_insertions_in_order(self):
        chunks = list(iter_update_chunks(5, 96, seed=3, chunk_edges=37, ts_range=(0, 9)))
        assert [c.meta["chunk_lo"] for c in chunks] == [0, 37, 74]
        src, dst = rmat_edges(5, 96, PAPER_RMAT, 3)
        np.testing.assert_array_equal(src, np.concatenate([c.src for c in chunks]))
        np.testing.assert_array_equal(dst, np.concatenate([c.dst for c in chunks]))
        for c in chunks:
            assert c.n_deletes == 0 and c.n_inserts == len(c)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(GraphError, match="chunk size"):
            next(iter_edge_chunks(4, 10, chunk_edges=0))

    def test_from_edge_chunks_builds_the_same_structure(self):
        scale, m = 7, 512
        g_ref = DynamicGraph.from_edges(1 << scale, *rmat_edges(scale, m, seed=5))
        g_str = DynamicGraph.from_edge_chunks(
            1 << scale, iter_edge_chunks(scale, m, seed=5, chunk_edges=100)
        )
        assert g_str.n_edges == g_ref.n_edges
        s_ref, s_str = g_ref.snapshot(), g_str.snapshot()
        np.testing.assert_array_equal(s_ref.offsets, s_str.offsets)
        # Neighbour order differs (per-chunk symmetrisation); multisets match.
        for v in range(s_ref.n):
            lo, hi = s_ref.offsets[v], s_ref.offsets[v + 1]
            np.testing.assert_array_equal(
                np.sort(s_ref.targets[lo:hi]), np.sort(s_str.targets[lo:hi])
            )

    def test_from_edge_chunks_rejects_oversized_chunks(self):
        with pytest.raises(GraphError, match="exceeds graph"):
            DynamicGraph.from_edge_chunks(4, iter_edge_chunks(5, 10, seed=1))


# --------------------------------------------------------------------- #
# the worker-pool driver
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def pool():
    p = WorkerPool(2, timeout=120.0)
    p.start()
    yield p
    p.shutdown()


class TestParallelDriver:
    def test_bit_identical_with_timestamps(self, pool):
        scale, m = 8, 1000
        ref_src, ref_dst = rmat_edges(scale, m, PAPER_RMAT, 11)
        ref_ts = uniform_timestamps_range(m, 0, 50, 11, 0, m)
        src, dst, ts = rmat_edges_parallel(
            scale, m, seed=11, pool=pool, n_slices=5, ts_range=(0, 50)
        )
        np.testing.assert_array_equal(ref_src, src)
        np.testing.assert_array_equal(ref_dst, dst)
        np.testing.assert_array_equal(ref_ts, ts)

    def test_graph_parallel_matches_rmat_graph(self, pool):
        a = rmat_graph(7, 6, seed=13, ts_range=(0, 200))
        b = rmat_graph_parallel(7, 6, seed=13, ts_range=(0, 200), pool=pool)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)
        np.testing.assert_array_equal(a.timestamps(), b.timestamps())
        assert a.meta == b.meta

    def test_rmat_graph_backend_switch(self, pool):
        from repro.parallel.backend import ProcessBackend

        be = ProcessBackend.__new__(ProcessBackend)
        be.pool = pool
        a = rmat_graph(7, 6, seed=17, ts_range=(1, 99), shuffle=True)
        b = rmat_graph(7, 6, seed=17, ts_range=(1, 99), shuffle=True, backend=be)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)
        np.testing.assert_array_equal(a.timestamps(), b.timestamps())

    def test_worker_crash_surfaces_and_pool_survives(self, pool):
        # An invalid time range is only validated worker-side, so the task
        # raises in the worker and the parent must surface WorkerCrashError.
        with pytest.raises(WorkerCrashError, match="non-negative"):
            rmat_edges_parallel(6, 100, seed=3, pool=pool, ts_range=(-5, 10))
        # A raised task does not kill the worker, and the failing round's
        # arena was cleaned up: the pool generates fine immediately after.
        src, dst, _ = rmat_edges_parallel(6, 100, seed=3, pool=pool)
        ref_src, ref_dst = rmat_edges(6, 100, PAPER_RMAT, 3)
        np.testing.assert_array_equal(ref_src, src)
        np.testing.assert_array_equal(ref_dst, dst)

    def test_generator_seed_rejected(self, pool):
        with pytest.raises(GraphError, match="integer seed"):
            rmat_edges_parallel(5, 10, seed=np.random.default_rng(2), pool=pool)
