"""Tests for update streams."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.generators.rmat import rmat_graph
from repro.generators.streams import (
    DELETE,
    INSERT,
    UpdateStream,
    deletion_stream,
    insertion_stream,
    iter_batches,
    mixed_stream,
    semisort,
)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(9, 8, seed=11, ts_range=(1, 50))


def make_stream(n=5, ops=(1, -1, 1), src=(0, 1, 2), dst=(1, 2, 3)):
    k = len(ops)
    return UpdateStream(
        n,
        np.array(ops, dtype=np.int8),
        np.array(src),
        np.array(dst),
        np.zeros(k, dtype=np.int64),
    )


class TestUpdateStream:
    def test_counts(self):
        s = make_stream()
        assert len(s) == 3
        assert s.n_inserts == 2 and s.n_deletes == 1

    def test_invalid_op_codes(self):
        with pytest.raises(StreamError):
            make_stream(ops=(1, 2, 1))

    def test_out_of_range_vertices(self):
        with pytest.raises(Exception):
            make_stream(n=2)

    def test_select_and_filters(self):
        s = make_stream()
        assert len(s.inserts_only()) == 2
        assert len(s.deletes_only()) == 1
        assert s.select(np.array([2])).src.tolist() == [2]

    def test_shuffled_preserves_multiset(self):
        s = make_stream()
        sh = s.shuffled(0)
        assert sorted(zip(sh.op, sh.src, sh.dst)) == sorted(zip(s.op, s.src, s.dst))

    def test_concatenated(self):
        s = make_stream()
        both = s.concatenated(s)
        assert len(both) == 6

    def test_concatenated_vertex_mismatch(self):
        with pytest.raises(StreamError):
            make_stream(n=5).concatenated(make_stream(n=6))


class TestInsertionStream:
    def test_all_inserts(self, graph):
        s = insertion_stream(graph)
        assert s.n_inserts == graph.m and s.n_deletes == 0
        assert np.array_equal(s.src, graph.src)
        assert np.array_equal(s.ts, graph.ts)

    def test_shuffle(self, graph):
        s = insertion_stream(graph, shuffle=True, seed=1)
        assert not np.array_equal(s.src, graph.src)
        assert sorted(s.src.tolist()) == sorted(graph.src.tolist())


class TestDeletionStream:
    def test_targets_existing_edges(self, graph):
        s = deletion_stream(graph, 100, seed=2)
        assert len(s) == 100 and s.n_deletes == 100
        existing = set(zip(graph.src.tolist(), graph.dst.tolist()))
        assert all((u, v) in existing for u, v in zip(s.src.tolist(), s.dst.tolist()))

    def test_distinct_positions(self, graph):
        s = deletion_stream(graph, graph.m, seed=2)
        assert len(s) == graph.m

    def test_too_many_rejected(self, graph):
        with pytest.raises(StreamError):
            deletion_stream(graph, graph.m + 1)

    def test_negative_rejected(self, graph):
        with pytest.raises(StreamError):
            deletion_stream(graph, -1)


class TestMixedStream:
    def test_fractions(self, graph):
        s = mixed_stream(graph, 1000, 0.75, seed=3)
        assert len(s) == 1000
        assert s.n_inserts == 750 and s.n_deletes == 250

    def test_deletes_target_existing(self, graph):
        s = mixed_stream(graph, 400, 0.5, seed=4)
        existing = set(zip(graph.src.tolist(), graph.dst.tolist()))
        d = s.deletes_only()
        assert all((u, v) in existing for u, v in zip(d.src.tolist(), d.dst.tolist()))

    def test_uniform_delete_mode(self, graph):
        s = mixed_stream(graph, 400, 0.5, seed=4, delete_mode="uniform")
        assert s.n_deletes == 200  # uniform pairs need not exist in the graph

    def test_invalid_delete_mode(self, graph):
        with pytest.raises(StreamError):
            mixed_stream(graph, 10, 0.5, delete_mode="bogus")

    def test_insert_edges_source(self, graph):
        extra = rmat_graph(9, 2, seed=99)
        s = mixed_stream(graph, 100, 0.9, seed=5, insert_edges=extra)
        ins = s.inserts_only()
        pool = set(zip(extra.src.tolist(), extra.dst.tolist()))
        assert all((u, v) in pool for u, v in zip(ins.src.tolist(), ins.dst.tolist()))

    def test_insert_edges_too_small(self, graph):
        tiny = rmat_graph(9, m=5, seed=99)
        with pytest.raises(StreamError):
            mixed_stream(graph, 100, 0.9, insert_edges=tiny)

    def test_insert_frac_bounds(self, graph):
        with pytest.raises(ValueError):
            mixed_stream(graph, 10, 1.5)


class TestSemisort:
    def test_sorted_by_source(self, graph):
        s = mixed_stream(graph, 500, 0.5, seed=6)
        out, perm = semisort(s)
        assert np.all(np.diff(out.src) >= 0)
        assert np.array_equal(out.src, s.src[perm])

    def test_stable_within_vertex(self):
        s = make_stream(ops=(1, 1, 1), src=(2, 0, 2), dst=(1, 1, 3))
        out, _ = semisort(s)
        # vertex 2's updates keep arrival order: dst 1 before dst 3
        two = out.dst[out.src == 2]
        assert two.tolist() == [1, 3]


class TestIterBatches:
    def test_partition(self, graph):
        s = insertion_stream(graph)
        batches = list(iter_batches(s, 1000))
        assert sum(len(b) for b in batches) == len(s)
        assert all(len(b) <= 1000 for b in batches)
        recon = np.concatenate([b.src for b in batches])
        assert np.array_equal(recon, s.src)

    def test_invalid_batch_size(self, graph):
        with pytest.raises(StreamError):
            list(iter_batches(insertion_stream(graph), 0))
