"""Tests for the R-MAT generator."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.generators.rmat import PAPER_RMAT, RMATParams, rmat_edges, rmat_graph


class TestRMATParams:
    def test_paper_defaults(self):
        assert PAPER_RMAT.as_tuple() == (0.6, 0.15, 0.15, 0.10)

    def test_must_sum_to_one(self):
        with pytest.raises(GraphError):
            RMATParams(0.5, 0.5, 0.5, 0.5)

    def test_probability_range(self):
        with pytest.raises(ValueError):
            RMATParams(1.2, -0.1, -0.05, -0.05)


class TestRmatEdges:
    def test_shapes_and_range(self):
        src, dst = rmat_edges(8, 1000, seed=1)
        assert src.shape == dst.shape == (1000,)
        assert src.min() >= 0 and src.max() < 256
        assert dst.min() >= 0 and dst.max() < 256

    def test_deterministic(self):
        a = rmat_edges(8, 500, seed=3)
        b = rmat_edges(8, 500, seed=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_seed_changes_output(self):
        a = rmat_edges(8, 500, seed=3)
        b = rmat_edges(8, 500, seed=4)
        assert not np.array_equal(a[0], b[0])

    def test_skew_toward_low_ids(self):
        """a=0.6 concentrates endpoints at low vertex ids."""
        src, dst = rmat_edges(12, 20_000, seed=5)
        below = np.count_nonzero(src < 2048)
        assert below > 12_000  # 0.75 of mass expected in the low half

    def test_power_law_max_degree(self):
        """Max degree far exceeds the mean for the paper's parameters."""
        src, _ = rmat_edges(12, 10 * 4096, seed=6)
        deg = np.bincount(src, minlength=4096)
        assert deg.max() > 10 * deg.mean()

    def test_uniform_params_uniformish(self):
        params = RMATParams(0.25, 0.25, 0.25, 0.25)
        src, _ = rmat_edges(10, 50_000, params, seed=7)
        deg = np.bincount(src, minlength=1024)
        assert deg.max() < 6 * deg.mean()

    def test_zero_edges(self):
        src, dst = rmat_edges(5, 0, seed=1)
        assert src.size == dst.size == 0

    def test_invalid_scale(self):
        with pytest.raises(GraphError):
            rmat_edges(0, 10)
        with pytest.raises(GraphError):
            rmat_edges(63, 10)

    def test_negative_m(self):
        with pytest.raises(GraphError):
            rmat_edges(5, -1)

    def test_noise_still_valid(self):
        params = RMATParams(0.6, 0.15, 0.15, 0.10, noise=0.1)
        src, dst = rmat_edges(9, 2000, params, seed=8)
        assert src.max() < 512 and dst.max() < 512


class TestRmatGraph:
    def test_default_edge_factor(self):
        g = rmat_graph(8, seed=1)
        assert g.n == 256 and g.m == 2560

    def test_explicit_m(self):
        assert rmat_graph(8, m=100, seed=1).m == 100

    def test_timestamps_assigned(self):
        g = rmat_graph(8, seed=1, ts_range=(1, 100))
        assert g.ts is not None
        assert g.ts.min() >= 1 and g.ts.max() <= 100

    def test_ts_stream_independent_of_topology(self):
        """Same topology whether or not time-stamps are requested."""
        a = rmat_graph(8, seed=9)
        b = rmat_graph(8, seed=9, ts_range=(1, 10))
        assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

    def test_drop_self_loops(self):
        g = rmat_graph(8, seed=1, drop_self_loops=True)
        assert np.all(g.src != g.dst)

    def test_deduplicate(self):
        g = rmat_graph(6, edge_factor=40, seed=1, deduplicate=True)
        key = g.src * g.n + g.dst
        assert np.unique(key).size == g.m

    def test_shuffle_preserves_multiset(self):
        a = rmat_graph(8, seed=2)
        b = rmat_graph(8, seed=2, shuffle=True)
        assert sorted(zip(a.src, a.dst)) == sorted(zip(b.src, b.dst))

    def test_meta_recorded(self):
        g = rmat_graph(8, seed=1)
        assert g.meta["generator"] == "rmat"
        assert g.meta["scale"] == 8
