"""Tests for reference generators (and the networkx bridge)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.generators.reference import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
    to_networkx,
    watts_strogatz,
)
from repro.generators.timestamps import assign_timestamps, uniform_timestamps


class TestDeterministicGraphs:
    def test_path(self):
        g = path_graph(5)
        assert g.m == 4
        assert g.degrees().tolist() == [1, 2, 2, 2, 1]

    def test_path_trivial(self):
        assert path_graph(0).m == 0
        assert path_graph(1).m == 0

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.m == 5
        assert np.all(g.degrees() == 2)

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        deg = g.degrees()
        assert deg[0] == 5 and np.all(deg[1:] == 1)

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10
        assert np.all(g.degrees() == 4)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical edges
        assert int(g.degrees().max()) == 4

    def test_grid_invalid(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)


class TestRandomGraphs:
    def test_er_edge_count_near_expectation(self):
        g = erdos_renyi(100, 0.1, seed=1)
        expected = 0.1 * 100 * 99 / 2
        assert 0.7 * expected < g.m < 1.3 * expected

    def test_er_deterministic(self):
        a = erdos_renyi(50, 0.2, seed=5)
        b = erdos_renyi(50, 0.2, seed=5)
        assert np.array_equal(a.src, b.src)

    def test_er_p_extremes(self):
        assert erdos_renyi(20, 0.0, seed=1).m == 0
        assert erdos_renyi(20, 1.0, seed=1).m == 190

    def test_er_tiny_n(self):
        assert erdos_renyi(1, 0.5, seed=1).m == 0

    def test_ws_structure(self):
        g = watts_strogatz(60, 4, 0.0, seed=2)
        assert g.m == 120  # n*k/2
        assert np.all(g.degrees() == 4)

    def test_ws_rewiring_no_self_loops(self):
        g = watts_strogatz(60, 4, 0.5, seed=3)
        assert np.all(g.src != g.dst)

    def test_ws_invalid_k(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz(10, 10, 0.1)


class TestToNetworkx:
    def test_roundtrip_counts(self):
        g = erdos_renyi(40, 0.2, seed=4)
        G = to_networkx(g)
        assert G.number_of_nodes() == 40
        # simple graph collapses duplicates; ER has none
        assert G.number_of_edges() == g.m

    def test_ts_attribute(self):
        g = assign_timestamps(path_graph(4), 1, 9, seed=1)
        G = to_networkx(g)
        assert all("ts" in d for _, _, d in G.edges(data=True))

    def test_multigraph(self):
        import networkx as nx

        g = path_graph(3)
        G = to_networkx(g, multigraph=True)
        assert isinstance(G, nx.MultiGraph)


class TestTimestamps:
    def test_range_inclusive(self):
        ts = uniform_timestamps(5000, 3, 7, seed=1)
        assert ts.min() == 3 and ts.max() == 7

    def test_deterministic(self):
        assert np.array_equal(
            uniform_timestamps(100, 0, 10, seed=2), uniform_timestamps(100, 0, 10, seed=2)
        )

    def test_single_value_range(self):
        assert np.all(uniform_timestamps(10, 4, 4, seed=1) == 4)

    def test_invalid(self):
        with pytest.raises(GraphError):
            uniform_timestamps(-1, 0, 5)
        with pytest.raises(GraphError):
            uniform_timestamps(5, -1, 5)
        with pytest.raises(GraphError):
            uniform_timestamps(5, 6, 5)
