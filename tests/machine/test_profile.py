"""Tests for repro.machine.profile."""

import pytest

from repro.errors import ProfileError
from repro.machine.profile import Phase, ProfileBuilder, WorkProfile


class TestPhaseValidation:
    def test_defaults(self):
        p = Phase("x")
        assert p.alu_ops == 0.0 and p.parallel

    def test_negative_rejected(self):
        with pytest.raises(ProfileError):
            Phase("x", alu_ops=-1)

    def test_max_unit_frac_range(self):
        Phase("x", max_unit_frac=1.0)
        with pytest.raises(ProfileError):
            Phase("x", max_unit_frac=1.5)

    def test_hot_counts_bounded_by_totals(self):
        with pytest.raises(ProfileError):
            Phase("x", atomics=5, atomic_max_addr=6)
        with pytest.raises(ProfileError):
            Phase("x", locks=5, lock_max_addr=6)


class TestPhaseScaled:
    def test_work_scaling(self):
        p = Phase("x", alu_ops=10, rand_accesses=4, atomics=2, barriers=3)
        s = p.scaled(5.0)
        assert s.alu_ops == 50 and s.rand_accesses == 20 and s.atomics == 10
        assert s.barriers == 15  # extensive by default

    def test_footprint_separate(self):
        p = Phase("x", footprint_bytes=100, rand_accesses=1)
        s = p.scaled(2.0, footprint=3.0)
        assert s.footprint_bytes == 300
        assert s.rand_accesses == 2

    def test_max_addr_applies_to_unscaled_counts(self):
        p = Phase("x", atomics=100, atomic_max_addr=10)
        s = p.scaled(10.0, max_addr=3.0)
        assert s.atomics == 1000
        assert s.atomic_max_addr == 30  # 10 * 3, not (10*10)*3

    def test_max_addr_clamped_to_total(self):
        p = Phase("x", atomics=10, atomic_max_addr=10)
        s = p.scaled(1.0, max_addr=5.0)
        assert s.atomic_max_addr == s.atomics == 10

    def test_max_unit_frac_clamped(self):
        p = Phase("x", max_unit_frac=0.5)
        assert p.scaled(1.0, max_unit_frac=4.0).max_unit_frac == 1.0

    def test_negative_scale_rejected(self):
        with pytest.raises(ProfileError):
            Phase("x").scaled(-1.0)


class TestPhaseMerged:
    def test_extensive_add(self):
        a = Phase("a", alu_ops=1, rand_accesses=2, atomics=3)
        b = Phase("b", alu_ops=10, rand_accesses=20, atomics=30)
        m = a.merged_with(b)
        assert m.alu_ops == 11 and m.rand_accesses == 22 and m.atomics == 33

    def test_footprint_max(self):
        m = Phase("a", footprint_bytes=10).merged_with(Phase("b", footprint_bytes=99))
        assert m.footprint_bytes == 99

    def test_parallel_flag_anded(self):
        m = Phase("a").merged_with(Phase("b", parallel=False))
        assert not m.parallel

    def test_unit_frac_weighted(self):
        a = Phase("a", rand_accesses=90, max_unit_frac=0.1)
        b = Phase("b", rand_accesses=10, max_unit_frac=1.0)
        m = a.merged_with(b)
        assert 0.0 < m.max_unit_frac <= 0.2


class TestWorkProfile:
    def test_requires_phases(self):
        with pytest.raises(ProfileError):
            WorkProfile("empty", ())

    def test_total(self):
        wp = WorkProfile("x", (Phase("a", alu_ops=1), Phase("b", alu_ops=2)))
        assert wp.total("alu_ops") == 3.0

    def test_footprint_is_peak(self):
        wp = WorkProfile(
            "x", (Phase("a", footprint_bytes=5), Phase("b", footprint_bytes=9))
        )
        assert wp.footprint_bytes == 9

    def test_with_meta(self):
        wp = WorkProfile("x", (Phase("a"),), {"k": 1})
        wp2 = wp.with_meta(j=2)
        assert wp2.meta == {"k": 1, "j": 2}
        assert wp.meta == {"k": 1}

    def test_collapsed(self):
        wp = WorkProfile("x", (Phase("a", alu_ops=1), Phase("b", alu_ops=2)))
        c = wp.collapsed()
        assert len(c.phases) == 1
        assert c.total("alu_ops") == 3.0

    def test_describe_mentions_phases(self):
        wp = WorkProfile("demo", (Phase("sweep", alu_ops=10),))
        text = wp.describe()
        assert "demo" in text and "sweep" in text


class TestProfileBuilder:
    def test_build(self):
        b = ProfileBuilder("x", n=5)
        b.phase("p1", alu_ops=1)
        b.phase("p2", rand_accesses=2)
        b.meta(extra=True)
        wp = b.build()
        assert len(wp.phases) == 2
        assert wp.meta == {"n": 5, "extra": True}

    def test_extend(self):
        b = ProfileBuilder("x")
        b.extend([Phase("a"), Phase("b")])
        assert len(b.build().phases) == 2
