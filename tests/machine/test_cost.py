"""Tests for repro.machine.cost — the cycle-level model's qualitative laws."""

import pytest

from repro.errors import MachineModelError
from repro.machine.cost import CostModel
from repro.machine.profile import Phase, WorkProfile
from repro.machine.spec import POWER_570, ULTRASPARC_T2


@pytest.fixture
def t2():
    return CostModel(ULTRASPARC_T2)


def one_phase_profile(**kwargs):
    return WorkProfile("p", (Phase("w", **kwargs),))


class TestHitProbability:
    def test_fits_in_cache(self, t2):
        assert t2.hit_probability(1024) == 1.0

    def test_scales_inverse(self, t2):
        c = ULTRASPARC_T2.cache_bytes
        assert t2.hit_probability(2 * c) == pytest.approx(0.5)
        assert t2.hit_probability(10 * c) == pytest.approx(0.1)

    def test_negative_rejected(self, t2):
        with pytest.raises(MachineModelError):
            t2.hit_probability(-1)

    def test_latency_interpolates(self, t2):
        small = t2.random_latency(1024)
        huge = t2.random_latency(1e12)
        assert small == pytest.approx(ULTRASPARC_T2.cache_latency)
        assert huge == pytest.approx(ULTRASPARC_T2.dram_latency, rel=0.01)


class TestScalingLaws:
    def test_latency_bound_phase_scales_with_mlp(self, t2):
        wp = one_phase_profile(rand_accesses=1e7, footprint_bytes=1e9)
        t1 = t2.seconds(wp, 1)
        t64 = t2.seconds(wp, 64)
        speedup = t1 / t64
        assert 25 < speedup < 32  # the T2 MLP cap

    def test_more_threads_never_slower_without_barriers(self, t2):
        wp = one_phase_profile(rand_accesses=1e6, footprint_bytes=1e8, alu_ops=1e6)
        times = [t2.seconds(wp, p) for p in (1, 2, 4, 8, 16, 32, 64)]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))

    def test_barrier_cost_grows_with_threads(self, t2):
        wp = one_phase_profile(barriers=1000.0)
        assert t2.seconds(wp, 64) > t2.seconds(wp, 2)

    def test_serial_phase_ignores_threads(self, t2):
        wp = WorkProfile("p", (Phase("s", alu_ops=1e6, parallel=False),))
        assert t2.seconds(wp, 64) == pytest.approx(t2.seconds(wp, 1))

    def test_span_unscaled(self, t2):
        wp = one_phase_profile(span_cycles=1e6)
        assert t2.seconds(wp, 64) == pytest.approx(1e6 / ULTRASPARC_T2.clock_hz)

    def test_imbalance_caps_speedup(self, t2):
        wp = one_phase_profile(rand_accesses=1e6, footprint_bytes=1e9, max_unit_frac=0.25)
        speedup = t2.seconds(wp, 1) / t2.seconds(wp, 64)
        assert speedup <= 4.05

    def test_hot_atomic_serialises(self, t2):
        balanced = one_phase_profile(atomics=1e6, atomic_max_addr=10)
        hot = one_phase_profile(atomics=1e6, atomic_max_addr=1e6)
        assert t2.seconds(hot, 64) > 5 * t2.seconds(balanced, 64)
        # At one thread there is no contention: identical cost.
        assert t2.seconds(hot, 1) == pytest.approx(t2.seconds(balanced, 1))

    def test_hot_lock_serialises(self, t2):
        balanced = one_phase_profile(locks=1e5, lock_hold_cycles=50, lock_max_addr=10)
        hot = one_phase_profile(locks=1e5, lock_hold_cycles=50, lock_max_addr=1e5)
        assert t2.seconds(hot, 64) > 5 * t2.seconds(balanced, 64)

    def test_lock_hot_hold_overrides_average(self, t2):
        shallow = one_phase_profile(
            locks=1e5, lock_hold_cycles=10, lock_max_addr=1e5, lock_hold_max_cycles=0.0
        )
        deep = one_phase_profile(
            locks=1e5, lock_hold_cycles=10, lock_max_addr=1e5, lock_hold_max_cycles=500.0
        )
        assert t2.seconds(deep, 64) > 2 * t2.seconds(shallow, 64)

    def test_replicated_work_defeats_scaling(self, t2):
        wp = one_phase_profile(seq_bytes_per_thread=1e8)
        # Per-thread replicated streams: more threads -> more total traffic,
        # so the bandwidth-bound time *grows* with p.
        assert t2.seconds(wp, 64) > t2.seconds(wp, 2)

    def test_bandwidth_roof_on_power5(self):
        cm = CostModel(POWER_570)
        wp = one_phase_profile(rand_accesses=1e7, footprint_bytes=1e10)
        speedup = cm.seconds(wp, 1) / cm.seconds(wp, 16)
        assert 10 < speedup < 16  # the paper's 13.1x regime

    def test_cache_cliff(self, t2):
        small = one_phase_profile(rand_accesses=1e6, footprint_bytes=1e6)
        large = one_phase_profile(rand_accesses=1e6, footprint_bytes=1e9)
        assert t2.seconds(large, 64) > 2 * t2.seconds(small, 64)


class TestBreakdown:
    def test_components_sum(self, t2):
        wp = one_phase_profile(
            alu_ops=1e6, rand_accesses=1e5, seq_bytes=1e6, atomics=1e4, barriers=2,
            footprint_bytes=1e8,
        )
        parts = t2.breakdown(wp, 16)
        assert len(parts) == 1
        pc = parts[0]
        assert pc.total == pytest.approx(
            pc.alu + pc.rand_mem + pc.seq_mem + pc.sync + pc.barrier + pc.span
        )
        assert t2.cycles(wp, 16) == pytest.approx(pc.total)

    def test_invalid_threads(self, t2):
        with pytest.raises(MachineModelError):
            t2.cycles(one_phase_profile(alu_ops=1), 0)
