"""Tests for repro.machine.sim."""

import pytest

from repro.errors import MachineModelError
from repro.machine.profile import Phase, WorkProfile
from repro.machine.sim import ScalingResult, SimulatedMachine, default_thread_counts
from repro.machine.spec import POWER_570, ULTRASPARC_T1, ULTRASPARC_T2


@pytest.fixture
def profile():
    return WorkProfile(
        "w", (Phase("p", rand_accesses=1e7, footprint_bytes=1e9, alu_ops=1e7),)
    )


class TestDefaultThreadCounts:
    def test_t2(self):
        assert default_thread_counts(ULTRASPARC_T2) == (1, 2, 4, 8, 16, 32, 64)

    def test_t1(self):
        assert default_thread_counts(ULTRASPARC_T1) == (1, 2, 4, 8, 16, 32)

    def test_power570_includes_max(self):
        counts = default_thread_counts(POWER_570)
        assert counts[-1] == 32  # 16 cores x SMT-2
        assert counts[0] == 1


class TestSimulatedMachine:
    def test_construct_by_name(self):
        assert SimulatedMachine("t2").name == "UltraSPARC T2"

    def test_time_positive(self, profile):
        assert SimulatedMachine("t2").time(profile, 8) > 0

    def test_sweep_shapes(self, profile):
        r = SimulatedMachine("t2").sweep(profile, n_items=1000)
        assert r.threads == default_thread_counts(ULTRASPARC_T2)
        assert len(r.seconds) == len(r.threads)
        assert r.speedups[0] == 1.0
        assert r.rates is not None and r.mups is not None

    def test_sweep_custom_threads(self, profile):
        r = SimulatedMachine("t1").sweep(profile, (1, 32))
        assert r.threads == (1, 32)

    def test_sweep_rejects_empty(self, profile):
        with pytest.raises(MachineModelError):
            SimulatedMachine("t2").sweep(profile, ())

    def test_sweep_rejects_nonpositive(self, profile):
        with pytest.raises(MachineModelError):
            SimulatedMachine("t2").sweep(profile, (0, 2))

    def test_mups_at(self, profile):
        m = SimulatedMachine("t2")
        assert m.mups_at(profile, 64, 10_000_000) == pytest.approx(
            10.0 / m.time(profile, 64), rel=1e-9
        )

    def test_mups_negative_updates_rejected(self, profile):
        with pytest.raises(MachineModelError):
            SimulatedMachine("t2").mups_at(profile, 4, -1)


class TestScalingResult:
    def test_best(self):
        r = ScalingResult("m", "w", (1, 2, 4), (4.0, 2.0, 1.0))
        assert r.best() == (4, 1.0)

    def test_rates_none_without_items(self):
        r = ScalingResult("m", "w", (1,), (1.0,))
        assert r.rates is None and r.mups is None

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MachineModelError):
            ScalingResult("m", "w", (1, 2), (1.0,))

    def test_empty_rejected(self):
        with pytest.raises(MachineModelError):
            ScalingResult("m", "w", (), ())

    def test_table_renders(self, profile):
        r = SimulatedMachine("t2").sweep(profile, (1, 64), n_items=500)
        text = r.table()
        assert "UltraSPARC T2" in text
        assert "speedup" in text and "MUPS" in text
        assert len(text.splitlines()) == 4
