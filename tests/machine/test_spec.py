"""Tests for repro.machine.spec."""

import pytest

from repro.errors import MachineModelError
from repro.machine.spec import (
    MACHINES,
    POWER_570,
    ULTRASPARC_T1,
    ULTRASPARC_T2,
    MachineSpec,
    get_machine,
)


class TestBuiltinSpecs:
    def test_t2_geometry(self):
        assert ULTRASPARC_T2.cores == 8
        assert ULTRASPARC_T2.threads_per_core == 8
        assert ULTRASPARC_T2.max_threads == 64
        assert ULTRASPARC_T2.clock_hz == pytest.approx(1.2e9)
        assert ULTRASPARC_T2.cache_bytes == 4 * 1024 * 1024

    def test_t1_geometry(self):
        assert ULTRASPARC_T1.max_threads == 32
        assert ULTRASPARC_T1.int_pipes_per_core == 1
        assert ULTRASPARC_T1.cache_bytes == 3 * 1024 * 1024

    def test_power570_geometry(self):
        assert POWER_570.cores == 16
        assert POWER_570.threads_per_core == 2

    def test_registry(self):
        assert get_machine("t2") is ULTRASPARC_T2
        assert get_machine("UltraSPARC T1") is ULTRASPARC_T1
        assert get_machine("POWER570") is POWER_570
        assert set(MACHINES) == {"t1", "t2", "power570"}

    def test_unknown_machine(self):
        with pytest.raises(MachineModelError, match="unknown machine"):
            get_machine("cray-xmt")


class TestThreadPlacement:
    def test_scatter_before_doubling(self):
        assert ULTRASPARC_T2.threads_per_core_at(8) == 1
        assert ULTRASPARC_T2.threads_per_core_at(16) == 2
        assert ULTRASPARC_T2.threads_per_core_at(64) == 8

    def test_clamped_to_hardware(self):
        assert ULTRASPARC_T2.threads_per_core_at(1000) == 8

    def test_cores_used(self):
        assert ULTRASPARC_T2.cores_used(3) == 3
        assert ULTRASPARC_T2.cores_used(64) == 8

    def test_invalid_thread_count(self):
        with pytest.raises(MachineModelError):
            ULTRASPARC_T2.threads_per_core_at(0)


class TestMemoryConcurrency:
    def test_linear_when_undersubscribed(self):
        c4 = ULTRASPARC_T2.memory_concurrency(4)
        c8 = ULTRASPARC_T2.memory_concurrency(8)
        assert c8 == pytest.approx(2 * c4)

    def test_saturates(self):
        full = ULTRASPARC_T2.memory_concurrency(64)
        assert full == pytest.approx(8 * ULTRASPARC_T2.mlp_per_core_max)
        # The Niagara speedup story: 64-thread MLP is ~28x a single thread.
        assert 25 < full / ULTRASPARC_T2.memory_concurrency(1) < 32

    def test_monotone_in_threads(self):
        prev = 0.0
        for p in (1, 2, 4, 8, 16, 32, 64):
            cur = ULTRASPARC_T2.memory_concurrency(p)
            assert cur >= prev
            prev = cur


class TestIssueThroughput:
    def test_one_thread_per_core(self):
        assert ULTRASPARC_T2.issue_throughput(8) == 8.0

    def test_pipes_shared(self):
        # 64 threads on 8 cores with 2 pipes each: 16 ops/cycle max.
        assert ULTRASPARC_T2.issue_throughput(64) == 16.0
        # T1 has a single pipe per core.
        assert ULTRASPARC_T1.issue_throughput(32) == 8.0


class TestValidation:
    def _base(self, **over):
        kwargs = dict(
            name="x",
            cores=2,
            threads_per_core=2,
            clock_hz=1e9,
            int_pipes_per_core=1,
            cache_bytes=1024,
            line_bytes=64,
            cache_latency=10.0,
            dram_latency=100.0,
            dram_bw_bytes_per_cycle=10.0,
            mlp_single_thread=1.0,
            mlp_per_core_max=2.0,
            atomic_cycles=30.0,
            lock_cycles=100.0,
            barrier_base=100.0,
            barrier_per_thread=10.0,
        )
        kwargs.update(over)
        return MachineSpec(**kwargs)

    def test_valid(self):
        self._base()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cores", 0),
            ("clock_hz", 0.0),
            ("cache_bytes", 0),
            ("dram_latency", 5.0),  # below cache latency
            ("mlp_single_thread", 0.0),
            ("mlp_per_core_max", 0.5),  # below single-thread MLP
            ("dram_bw_bytes_per_cycle", 0.0),
        ],
    )
    def test_invalid(self, field, value):
        with pytest.raises(MachineModelError):
            self._base(**{field: value})

    def test_with_overrides(self):
        single = ULTRASPARC_T2.with_overrides(cores=1)
        assert single.cores == 1
        assert single.max_threads == 8
        assert ULTRASPARC_T2.cores == 8  # original untouched
