"""Tests for repro.machine.scale."""

import pytest

from repro.errors import ProfileError
from repro.machine.profile import Phase, WorkProfile
from repro.machine.scale import (
    ScaledInstance,
    rmat_max_degree_exponent,
    rmat_size_biased_growth,
    scale_profile,
)


@pytest.fixture
def instance():
    return ScaledInstance(
        n_measured=1 << 12,
        m_measured=10 << 12,
        n_target=1 << 20,
        m_target=10 << 20,
        bytes_per_vertex=40.0,
        bytes_per_edge=16.0,
    )


class TestScaledInstance:
    def test_work_scale_defaults_to_edges(self, instance):
        assert instance.work_scale == pytest.approx(256.0)

    def test_explicit_ops(self):
        inst = ScaledInstance(10, 100, 10, 100, ops_measured=5, ops_target=50)
        assert inst.work_scale == 10.0

    def test_footprint(self, instance):
        assert instance.footprint_target_bytes == pytest.approx(
            40.0 * (1 << 20) + 16.0 * (10 << 20)
        )
        assert instance.footprint_scale == pytest.approx(256.0)

    def test_hot_spot_scale_sublinear(self, instance):
        hs = instance.hot_spot_scale()
        assert 1.0 < hs < instance.work_scale
        assert hs == pytest.approx(256.0 ** 0.6)

    def test_diameter_scale_logarithmic(self, instance):
        d = instance.diameter_scale()
        assert 1.0 < d < 2.0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ProfileError):
            ScaledInstance(0, 1, 1, 1)


class TestScaleProfile:
    def _profile(self):
        return WorkProfile(
            "w",
            (
                Phase(
                    "p",
                    alu_ops=100,
                    rand_accesses=50,
                    atomics=40,
                    atomic_max_addr=10,
                    footprint_bytes=1000,
                    barriers=2,
                    max_unit_frac=0.1,
                ),
            ),
        )

    def test_work_scaled(self, instance):
        out = scale_profile(self._profile(), instance)
        ph = out.phases[0]
        assert ph.alu_ops == pytest.approx(100 * 256)
        assert ph.rand_accesses == pytest.approx(50 * 256)

    def test_hot_counts_grow_sublinearly(self, instance):
        out = scale_profile(self._profile(), instance)
        ph = out.phases[0]
        assert ph.atomic_max_addr == pytest.approx(10 * 256 ** 0.6)
        # and the hot *fraction* shrinks
        assert ph.max_unit_frac < 0.1

    def test_footprint_recomputed(self, instance):
        out = scale_profile(self._profile(), instance)
        assert out.phases[0].footprint_bytes == pytest.approx(1000 * 256)

    def test_barriers_untouched_by_default(self, instance):
        out = scale_profile(self._profile(), instance)
        assert out.phases[0].barriers == 2

    def test_barriers_scale_with_diameter(self, instance):
        out = scale_profile(
            self._profile(), instance, scale_barriers_with_diameter=True
        )
        assert out.phases[0].barriers == pytest.approx(2 * instance.diameter_scale())

    def test_meta_records_scaling(self, instance):
        out = scale_profile(self._profile(), instance)
        assert out.meta["scaled_to"]["n"] == 1 << 20
        assert out.meta["work_scale"] == pytest.approx(256.0)

    def test_logdeg_correction_mild(self, instance):
        plain = scale_profile(self._profile(), instance)
        corrected = scale_profile(self._profile(), instance, logdeg_correction=True)
        ratio = corrected.phases[0].alu_ops / plain.phases[0].alu_ops
        assert 0.8 < ratio < 1.3


class TestGrowthFormulas:
    def test_max_degree_exponent(self):
        assert rmat_max_degree_exponent(0.5) == pytest.approx(0.0)
        assert rmat_max_degree_exponent(0.6) == pytest.approx(1 + __import__("math").log2(0.6))
        with pytest.raises(ValueError):
            rmat_max_degree_exponent(0.1)

    def test_size_biased_growth_paper_params(self):
        # (a+b) = 0.75: factor 1.25 per scale doubling.
        assert rmat_size_biased_growth(11, 12) == pytest.approx(1.25)
        assert rmat_size_biased_growth(11, 25) == pytest.approx(1.25 ** 14)

    def test_size_biased_growth_identity(self):
        assert rmat_size_biased_growth(15, 15) == 1.0

    def test_size_biased_growth_invalid(self):
        with pytest.raises(ProfileError):
            rmat_size_biased_growth(0, 5)
