"""Tests for repro.machine.contention."""

import numpy as np
import pytest

from repro.machine.contention import (
    effective_parallelism,
    hot_spot_stats,
    max_multiplicity,
    max_unit_fraction,
    windowed_hot_stats,
)


class TestMaxMultiplicity:
    def test_basic(self):
        assert max_multiplicity([1, 2, 2, 3, 2]) == 3

    def test_all_distinct(self):
        assert max_multiplicity([1, 2, 3]) == 1

    def test_empty(self):
        assert max_multiplicity([]) == 0


class TestHotSpotStats:
    def test_basic(self):
        total, mx, frac = hot_spot_stats([0, 0, 0, 1])
        assert (total, mx) == (4, 3)
        assert frac == pytest.approx(0.75)

    def test_empty(self):
        assert hot_spot_stats([]) == (0, 0, 0.0)


class TestMaxUnitFraction:
    def test_basic(self):
        assert max_unit_fraction([1, 1, 2]) == pytest.approx(0.5)

    def test_all_zero(self):
        assert max_unit_fraction([0, 0]) == 0.0

    def test_empty(self):
        assert max_unit_fraction([]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            max_unit_fraction([-1.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            max_unit_fraction(np.ones((2, 2)))


class TestEffectiveParallelism:
    def test_no_imbalance(self):
        assert effective_parallelism(64, 0.0) == 64.0

    def test_capped(self):
        assert effective_parallelism(64, 0.25) == 4.0

    def test_below_cap(self):
        assert effective_parallelism(2, 0.25) == 2.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            effective_parallelism(0, 0.0)
        with pytest.raises(ValueError):
            effective_parallelism(4, 1.5)


class TestWindowedHotStats:
    def test_burst_detected(self):
        keys = np.concatenate([np.full(100, 7), np.arange(100)])
        burst, frac = windowed_hot_stats(keys, 50)
        assert burst >= 50
        assert frac >= 1.0

    def test_spread_stream_low(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1000, 10_000)
        burst, frac = windowed_hot_stats(keys, 100)
        assert frac < 0.2

    def test_empty(self):
        assert windowed_hot_stats([], 10) == (0, 0.0)

    def test_window_larger_than_stream(self):
        burst, _ = windowed_hot_stats([1, 1, 2], 100)
        assert burst == 2

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            windowed_hot_stats([1], 0)
