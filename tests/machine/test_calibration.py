"""Calibration pins: the simulated machines must keep reproducing the
paper's headline numbers.

These tests freeze the once-calibrated constants (machine specs in
repro.machine.spec, per-operation costs in repro.adjacency.base): if a
refactor moves any headline quantity out of its band, the reproduction has
drifted and the figures in EXPERIMENTS.md are stale.
"""

import numpy as np
import pytest

from repro.adjacency.dynarr import DynArrAdjacency
from repro.core.update_engine import construct
from repro.experiments.common import footprint_coefficients
from repro.generators.rmat import rmat_graph
from repro.machine.profile import Phase, WorkProfile
from repro.machine.scale import ScaledInstance, scale_profile
from repro.machine.sim import SimulatedMachine
from repro.machine.spec import POWER_570, ULTRASPARC_T1, ULTRASPARC_T2


@pytest.fixture(scope="module")
def t2_construction():
    """Dyn-arr construction profile scaled to the paper's 33.5M/268M."""
    graph = rmat_graph(12, 10, seed=20090525)
    deg = np.bincount(graph.src, minlength=graph.n) + np.bincount(
        graph.dst, minlength=graph.n
    )
    rep = DynArrAdjacency.preallocated(graph.n, deg)
    res = construct(rep, graph)
    bpv, bpe = footprint_coefficients(rep, graph.n, 2 * graph.m)
    inst = ScaledInstance(
        n_measured=graph.n,
        m_measured=graph.m,
        n_target=1 << 25,
        m_target=268_000_000,
        ops_measured=graph.m,
        ops_target=268_000_000,
        bytes_per_vertex=bpv,
        bytes_per_edge=2 * bpe,
    )
    return scale_profile(res.profile, inst)


class TestUpdateHeadlines:
    """Paper: ~25 MUPS and ~28x speedup at 64 T2 threads for updates."""

    def test_t2_64thread_mups(self, t2_construction):
        mups = SimulatedMachine(ULTRASPARC_T2).mups_at(t2_construction, 64, 268_000_000)
        assert 15.0 <= mups <= 50.0, f"drifted: {mups:.1f} MUPS (paper ~25)"

    def test_t2_speedup_near_28(self, t2_construction):
        m = SimulatedMachine(ULTRASPARC_T2)
        speedup = m.time(t2_construction, 1) / m.time(t2_construction, 64)
        assert 22.0 <= speedup <= 34.0, f"drifted: {speedup:.1f}x (paper ~28)"

    def test_t1_slower_than_t2(self, t2_construction):
        t2 = SimulatedMachine(ULTRASPARC_T2).time(t2_construction, 64)
        t1 = SimulatedMachine(ULTRASPARC_T1).time(t2_construction, 32)
        assert t1 > t2


class TestArchitectureSignatures:
    def test_t2_latency_bound_cap(self):
        wp = WorkProfile("m", (Phase("p", rand_accesses=1e8, footprint_bytes=1e10),))
        m = SimulatedMachine(ULTRASPARC_T2)
        assert 25 < m.time(wp, 1) / m.time(wp, 64) < 32

    def test_t1_latency_bound_cap(self):
        wp = WorkProfile("m", (Phase("p", rand_accesses=1e8, footprint_bytes=1e10),))
        m = SimulatedMachine(ULTRASPARC_T1)
        assert 16 < m.time(wp, 1) / m.time(wp, 32) < 24

    def test_power570_bandwidth_cap(self):
        """Paper: BFS speedup 13.1 on 16 Power5 CPUs."""
        wp = WorkProfile("m", (Phase("p", rand_accesses=1e8, footprint_bytes=1e11),))
        m = SimulatedMachine(POWER_570)
        assert 10 < m.time(wp, 1) / m.time(wp, 16) < 15.5

    def test_single_thread_rates_sane(self):
        # A single in-order Niagara thread chasing DRAM sustains a handful
        # of million dependent accesses per second — not hundreds.
        wp = WorkProfile("m", (Phase("p", rand_accesses=1e6, footprint_bytes=1e9),))
        t = SimulatedMachine(ULTRASPARC_T2).time(wp, 1)
        rate = 1e6 / t
        assert 2e6 < rate < 5e7
