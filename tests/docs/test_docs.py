"""The documentation gate, runnable as part of the tier-1 suite.

Two halves: the repo's actual documentation must pass both
``tools/check_docs.py`` modes (no broken links, every ``pycon`` example
executes), and the checker itself must catch the failure classes it
exists for (broken links, missing paths, wrong doctest output) — a
checker that silently passes everything would make the CI job
decorative.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location("check_docs", REPO / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


# --------------------------------------------------------------------- #
# the real documentation passes
# --------------------------------------------------------------------- #


def test_doc_set_contains_the_expected_files():
    names = {p.name for p in check_docs.doc_files()}
    for required in ("README.md", "ARCHITECTURE.md", "CONNECTIVITY.md", "PARALLEL.md"):
        assert required in names


def test_repo_docs_have_no_broken_links():
    problems = []
    for path in check_docs.doc_files():
        problems.extend(check_docs.check_links(path))
    assert problems == []


def test_repo_doc_examples_pass_doctest():
    total = 0
    problems = []
    for path in check_docs.doc_files():
        n, probs = check_docs.run_doctests(path)
        total += n
        problems.extend(probs)
    assert problems == []
    assert total >= 15  # the architecture + connectivity walk-throughs


def test_cli_exit_status_is_problem_count():
    assert check_docs.main([]) == 0


# --------------------------------------------------------------------- #
# the checker catches what it is for
# --------------------------------------------------------------------- #


@pytest.fixture
def doc_dir(tmp_path, monkeypatch):
    """A throwaway repo root the checker is pointed at."""
    monkeypatch.setattr(check_docs, "REPO", tmp_path)
    (tmp_path / "docs").mkdir()
    return tmp_path


def test_detects_broken_relative_link(doc_dir):
    md = doc_dir / "docs" / "X.md"
    md.write_text("see [the design](../MISSING.md) for details\n")
    problems = check_docs.check_links(md)
    assert len(problems) == 1 and "MISSING.md" in problems[0]


def test_accepts_valid_link_and_skips_urls_and_anchors(doc_dir):
    (doc_dir / "DESIGN.md").write_text("# design\n")
    md = doc_dir / "docs" / "X.md"
    md.write_text(
        "[ok](../DESIGN.md) [web](https://example.com) [anchor](#section)\n"
        "[badge](../../actions/workflows/ci.yml)\n"  # escapes the repo root
    )
    assert check_docs.check_links(md) == []


def test_detects_missing_path_reference(doc_dir):
    md = doc_dir / "docs" / "X.md"
    md.write_text("the kernel lives in `src/repro/nope.py` today\n")
    problems = check_docs.check_links(md)
    assert len(problems) == 1 and "src/repro/nope.py" in problems[0]


def test_path_references_inside_code_fences_are_ignored(doc_dir):
    md = doc_dir / "docs" / "X.md"
    md.write_text("```\n`src/repro/nope.py` [broken](../MISSING.md)\n```\n")
    assert check_docs.check_links(md) == []


def test_doctest_failure_is_reported(doc_dir):
    md = doc_dir / "docs" / "X.md"
    md.write_text("```pycon\n>>> 1 + 1\n3\n```\n")
    n, problems = check_docs.run_doctests(md)
    assert n == 1 and len(problems) == 1


def test_doctest_globals_are_shared_across_blocks(doc_dir):
    md = doc_dir / "docs" / "X.md"
    md.write_text(
        "```pycon\n>>> x = 21\n```\nprose between blocks\n```pycon\n>>> x * 2\n42\n```\n"
    )
    n, problems = check_docs.run_doctests(md)
    assert n == 2 and problems == []
