"""Tests for the Hybrid-arr-treap representation."""

import pytest

from repro.adjacency.hybrid import HybridAdjacency
from repro.errors import GraphError


class TestMigration:
    def test_stays_in_array_below_threshold(self):
        h = HybridAdjacency(3, degree_thresh=4, seed=1)
        for v in [0, 1, 2, 0]:
            h.insert(2, v)
        assert h.mode[2] == 0
        assert h.stats.migrations == 0

    def test_migrates_past_threshold(self):
        h = HybridAdjacency(3, degree_thresh=4, seed=1)
        for i in range(5):
            h.insert(0, i % 3, ts=i)
        assert h.mode[0] == 1
        assert h.stats.migrations == 1
        assert h.degree(0) == 5

    def test_content_preserved_across_migration(self):
        h = HybridAdjacency(2, degree_thresh=3, seed=1)
        inserted = [(1, 10), (0, 11), (1, 12), (0, 13), (1, 14)]
        for v, ts in inserted:
            h.insert(0, v, ts)
        nbr, ts = h.neighbors_with_ts(0)
        assert sorted(zip(nbr.tolist(), ts.tolist())) == sorted(inserted)

    def test_migration_counts_occupancy_not_live(self):
        """Tombstoned slots count toward the threshold, as block cost does."""
        h = HybridAdjacency(2, degree_thresh=3, seed=1)
        h.insert(0, 1)
        h.insert(0, 1)
        h.delete(0, 1)
        h.delete(0, 1)
        h.insert(0, 1)
        h.insert(0, 1)  # occupancy 4 > 3 -> migrates despite live degree 2
        assert h.mode[0] == 1
        assert h.degree(0) == 2

    def test_migration_work_reclassified(self):
        h = HybridAdjacency(2, degree_thresh=2, seed=1)
        for i in range(4):
            h.insert(0, i % 2)
        assert h.stats.migration_words == 2
        # stream-visible counters: every op counted exactly once
        combined = h.combined_stats()
        assert combined.inserts == 4

    def test_downshift(self):
        h = HybridAdjacency(2, degree_thresh=8, downshift=True, seed=1)
        for i in range(9):
            h.insert(0, i % 2)
        assert h.mode[0] == 1
        for _ in range(8):
            h.delete(0, h.neighbors(0)[0])
        assert h.mode[0] == 0
        assert h.degree(0) == 1

    def test_no_downshift_by_default(self):
        h = HybridAdjacency(2, degree_thresh=4, seed=1)
        for i in range(5):
            h.insert(0, i % 2)
        while h.degree(0):
            h.delete(0, int(h.neighbors(0)[0]))
        assert h.mode[0] == 1

    def test_invalid_threshold(self):
        with pytest.raises(GraphError):
            HybridAdjacency(3, degree_thresh=0)


class TestOperations:
    def test_routes_by_mode(self):
        h = HybridAdjacency(4, degree_thresh=2, seed=1)
        h.insert(0, 1)  # array side
        for i in range(4):
            h.insert(1, i % 4)  # treap side after migration
        assert h.has_arc(0, 1)
        assert h.has_arc(1, 0)
        assert not h.has_arc(0, 2)
        assert h.delete(1, 0)
        assert h.delete(0, 1)
        assert h.n_arcs == 3

    def test_n_treap_vertices(self):
        h = HybridAdjacency(4, degree_thresh=2, seed=1)
        for i in range(3):
            h.insert(0, i % 4)
        for i in range(3):
            h.insert(1, i % 4)
        h.insert(2, 0)
        assert h.n_treap_vertices() == 2

    def test_to_arrays_spans_both_sides(self):
        h = HybridAdjacency(4, degree_thresh=2, seed=1)
        h.insert(0, 1, 5)
        for i in range(3):
            h.insert(1, i, ts=i)
        src, dst, ts = h.to_arrays()
        assert len(src) == 4
        assert set(src.tolist()) == {0, 1}

    def test_memory_includes_both(self):
        h = HybridAdjacency(10, seed=1)
        assert h.memory_bytes() >= h.arr.memory_bytes() + h.treap.memory_bytes()

    def test_reset_stats_resets_all(self):
        h = HybridAdjacency(3, degree_thresh=1, seed=1)
        for i in range(4):
            h.insert(0, i % 3)
        h.reset_stats()
        assert h.stats.migrations == 0
        assert h.arr.stats.inserts == 0
        assert h.treap.stats.inserts == 0


class TestPhase:
    def test_mixed_sync_model(self):
        h = HybridAdjacency(4, degree_thresh=2, seed=1)
        h.insert(0, 1)  # array: atomic
        for i in range(4):
            h.insert(1, i % 4)  # treap: locks
        ph = h.phase("x")
        assert ph.atomics > 0
        assert ph.locks > 0
        assert ph.footprint_bytes == float(h.memory_bytes())

    def test_pure_array_phase_has_no_locks(self):
        h = HybridAdjacency(4, degree_thresh=100, seed=1)
        h.insert(0, 1)
        h.insert(0, 2)
        ph = h.phase("x")
        assert ph.locks == 0.0
