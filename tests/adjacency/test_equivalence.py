"""Scalar vs vectorised equivalence for every registry representation.

The contract of :mod:`repro.adjacency.bulkops` is *bit-identical observable
state*: for the same update stream, the vectorised kernels must leave every
representation with exactly the same adjacency contents (per-vertex order
included), the same miss count, the same ``UpdateStats`` counters (inserts,
deletes, misses, probe words, resize events/copied words, treap counters,
migrations), the same live-arc count and the same ``memory_bytes``.  These
tests drive a scalar and a vectorised instance through identical streams —
seeded sweeps across all seven kinds, plus hypothesis-generated adversarial
streams for the dyn-arr family — and diff all of it.

The same contract extends to the ``compiled`` kernel tier
(:mod:`repro.kernels`): every stream here re-runs with
``rep.kernel_tier = "compiled"`` under
:func:`repro.kernels.force_available`, which drives the exact loop bodies
numba would compile (as pure Python when numba is absent), so the fused
:func:`repro.kernels.loops.delete_match` path is diffed against the scalar
reference on every interpreter.
"""

from contextlib import contextmanager, nullcontext
from dataclasses import asdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.adjacency.batch import BatchedAdjacency
from repro.adjacency.csr import csr_from_arrays, csr_from_representation
from repro.adjacency.dynarr import DynArrAdjacency
from repro.adjacency.epart import EPartAdjacency
from repro.adjacency.hybrid import HybridAdjacency
from repro.adjacency.treap import TreapAdjacency
from repro.adjacency.vpart import VPartAdjacency

KINDS = ["dynarr", "dynarr-nr", "treap", "hybrid", "vpart", "epart", "batched"]

#: The non-reference kernel tiers the equivalence contract covers; the
#: scalar instance in every pair *is* the "scalar" tier.
TIERS = ["vectorised", "compiled"]


@contextmanager
def tier_ctx(tier):
    """Make ``tier`` dispatchable: force kernel availability for compiled."""
    with kernels.force_available() if tier == "compiled" else nullcontext():
        yield


def build(kind, n, seed=7):
    """Two structurally identical instances (same seeds where relevant)."""
    if kind == "dynarr":
        return DynArrAdjacency(n, initial_capacity=2)
    if kind == "dynarr-nr":
        return DynArrAdjacency.preallocated(n, np.full(n, 2048))
    if kind == "treap":
        return TreapAdjacency(n, seed=seed)
    if kind == "hybrid":
        return HybridAdjacency(n, degree_thresh=5, seed=seed)
    if kind == "vpart":
        return VPartAdjacency(n)
    if kind == "epart":
        return EPartAdjacency(n, split_thresh=4)
    if kind == "batched":
        return BatchedAdjacency(n)
    raise AssertionError(kind)


def full_stats(rep):
    combined = getattr(rep, "combined_stats", None)
    return asdict(combined() if callable(combined) else rep.stats)


def observable_state(rep):
    """Everything the equivalence contract promises, as one comparable dict."""
    return {
        "n_arcs": rep.n_arcs,
        "memory_bytes": rep.memory_bytes(),
        "stats": full_stats(rep),
        "adjacency": [
            tuple(map(tuple, map(np.ndarray.tolist, rep.neighbors_with_ts(u))))
            for u in range(rep.n)
        ],
    }


def run_pair(kind, op, src, dst, ts, tier="vectorised"):
    """Apply one stream to a ``tier`` instance and a scalar instance."""
    n = max(int(src.max(initial=0)) + 1, int(dst.max(initial=0)) + 1, 2)
    vec, ref = build(kind, n), build(kind, n)
    vec.use_bulkops = True
    vec.kernel_tier = tier
    ref.use_bulkops = False
    m_vec = vec.apply_arcs(op, src, dst, ts)
    m_ref = ref.apply_arcs_scalar(op, src, dst, ts)
    return vec, ref, m_vec, m_ref


def check_stream(kind, op, src, dst, ts, tier="vectorised"):
    """Full equivalence check of one stream at one kernel tier."""
    with tier_ctx(tier):
        assert_equivalent(*run_pair(kind, op, src, dst, ts, tier))


def assert_equivalent(vec, ref, m_vec, m_ref):
    assert m_vec == m_ref, "miss counts differ"
    sv, sr = observable_state(vec), observable_state(ref)
    assert sv["stats"] == sr["stats"], {
        k: (sv["stats"][k], sr["stats"][k])
        for k in sv["stats"]
        if sv["stats"][k] != sr["stats"][k]
    }
    assert sv == sr
    # to_arrays must agree element-for-element with the scalar export.
    for a, b in zip(vec.to_arrays(), ref.to_arrays_scalar()):
        assert np.array_equal(a, b)


def make_stream(rng, n, k, insert_frac):
    op = np.where(rng.random(k) < insert_frac, 1, -1).astype(np.int8)
    src = rng.integers(0, n, size=k)
    dst = rng.integers(0, n, size=k)
    ts = rng.integers(0, 1000, size=k)
    return op, src, dst, ts


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("kind", KINDS)
class TestSeededEquivalence:
    def test_mixed_stream(self, kind, tier):
        for trial in range(8):
            rng = np.random.default_rng(100 * trial + 1)
            op, src, dst, ts = make_stream(rng, 10, 500, 0.6)
            check_stream(kind, op, src, dst, ts, tier)

    def test_insert_only_stream(self, kind, tier):
        rng = np.random.default_rng(2)
        op, src, dst, ts = make_stream(rng, 16, 800, 1.1)  # all inserts
        check_stream(kind, op, src, dst, ts, tier)

    def test_delete_heavy_stream(self, kind, tier):
        # Mostly deletes against a sparse structure: exercises the miss path.
        rng = np.random.default_rng(3)
        op, src, dst, ts = make_stream(rng, 8, 400, 0.25)
        check_stream(kind, op, src, dst, ts, tier)

    def test_duplicates_and_self_loops(self, kind, tier):
        # Heavy duplication (tiny value range) plus forced self-loops: the
        # delete matcher must consume duplicate occurrences in FIFO order.
        rng = np.random.default_rng(4)
        k = 600
        op = np.where(rng.random(k) < 0.55, 1, -1).astype(np.int8)
        src = rng.integers(0, 3, size=k)
        dst = rng.integers(0, 3, size=k)
        loops = rng.random(k) < 0.3
        dst[loops] = src[loops]
        ts = rng.integers(0, 50, size=k)
        check_stream(kind, op, src, dst, ts, tier)

    def test_interleaved_same_key_stream(self, kind, tier):
        # Insert/delete/insert/delete on one (u, v) pair — the worst case for
        # the batch-internal supply/demand matching.
        k = 120
        op = np.tile(np.array([1, -1, 1, 1, -1, -1], dtype=np.int8), k // 6)
        src = np.zeros(k, dtype=np.int64)
        dst = np.ones(k, dtype=np.int64)
        ts = np.arange(k, dtype=np.int64)
        check_stream(kind, op, src, dst, ts, tier)

    def test_multi_batch_accumulation(self, kind, tier):
        # Several consecutive batches: later batches start from non-empty
        # structures, exercising the pre-existing-supply path.
        n = 6
        with tier_ctx(tier):
            vec, ref = build(kind, n), build(kind, n)
            vec.use_bulkops = True
            vec.kernel_tier = tier
            ref.use_bulkops = False
            for trial in range(5):
                rng = np.random.default_rng(50 + trial)
                op, src, dst, ts = make_stream(rng, n, 200, 0.55)
                m_vec = vec.apply_arcs(op, src, dst, ts)
                m_ref = ref.apply_arcs_scalar(op, src, dst, ts)
                assert_equivalent(vec, ref, m_vec, m_ref)


hypothesis_stream = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=200,
)


@pytest.mark.parametrize("tier", TIERS)
class TestHypothesisEquivalence:
    @given(hypothesis_stream)
    @settings(max_examples=60, deadline=None)
    def test_dynarr(self, tier, stream):
        self._run("dynarr", stream, tier)

    @given(hypothesis_stream)
    @settings(max_examples=40, deadline=None)
    def test_hybrid(self, tier, stream):
        self._run("hybrid", stream, tier)

    @given(hypothesis_stream)
    @settings(max_examples=30, deadline=None)
    def test_epart(self, tier, stream):
        self._run("epart", stream, tier)

    @staticmethod
    def _run(kind, stream, tier):
        op = np.array([1 if i else -1 for i, _, _ in stream], dtype=np.int8)
        src = np.array([u for _, u, _ in stream], dtype=np.int64)
        dst = np.array([v for _, _, v in stream], dtype=np.int64)
        ts = np.arange(op.size, dtype=np.int64)
        check_stream(kind, op, src, dst, ts, tier)


class TestSnapshotPipeline:
    def test_grouped_csr_equals_sorted_csr(self):
        rng = np.random.default_rng(9)
        rep = DynArrAdjacency(50)
        op, src, dst, ts = make_stream(rng, 50, 2000, 0.7)
        rep.use_bulkops = True
        rep.apply_arcs(op, src, dst, ts)
        a_src, a_dst, a_ts = rep.to_arrays()
        fast = csr_from_arrays(rep.n, a_src, a_dst, a_ts, assume_grouped=True)
        slow = csr_from_arrays(rep.n, a_src, a_dst, a_ts, assume_grouped=False)
        assert np.array_equal(fast.offsets, slow.offsets)
        assert np.array_equal(fast.targets, slow.targets)
        assert np.array_equal(fast.ts, slow.ts)

    def test_misdeclared_grouping_falls_back(self):
        src = np.array([3, 0, 1], dtype=np.int64)
        dst = np.array([1, 2, 0], dtype=np.int64)
        g = csr_from_arrays(4, src, dst, assume_grouped=True)
        assert g.neighbors(0).tolist() == [2]
        assert g.neighbors(3).tolist() == [1]

    @pytest.mark.parametrize("kind", KINDS)
    def test_representation_snapshot_consistent(self, kind):
        rng = np.random.default_rng(11)
        rep = build(kind, 9)
        rep.use_bulkops = True
        op, src, dst, ts = make_stream(rng, 9, 300, 0.65)
        rep.apply_arcs(op, src, dst, ts)
        g = csr_from_representation(rep)
        assert g.n_arcs == rep.n_arcs
        for u in range(rep.n):
            nbr, t = rep.neighbors_with_ts(u)
            cn, ct = g.neighbors_with_ts(u)
            assert nbr.tolist() == cn.tolist()
            assert t.tolist() == ct.tolist()
