"""Conformance tests every representation must pass (parametrised).

A plain Python dict-of-multisets serves as the reference model; every
structure is driven through the same operation sequences and must agree on
degrees, neighbour multisets, membership and arc counts.
"""

from collections import Counter

import numpy as np
import pytest

from repro.adjacency.registry import make_representation
from repro.errors import VertexError

KINDS = ["dynarr", "dynarr-nr", "treap", "hybrid", "vpart", "epart", "batched"]
N = 12


def build(kind, n=N):
    if kind == "dynarr-nr":
        # generous capacities so the no-resize variant can absorb any test stream
        return make_representation(kind, n, degrees=np.full(n, 512))
    if kind == "hybrid":
        return make_representation(kind, n, degree_thresh=4, seed=1)
    if kind == "treap":
        return make_representation(kind, n, seed=1)
    return make_representation(kind, n)


class Model:
    """Reference dict-of-multiset adjacency."""

    def __init__(self, n):
        self.adj = [Counter() for _ in range(n)]

    def insert(self, u, v):
        self.adj[u][v] += 1

    def delete(self, u, v):
        if self.adj[u][v] > 0:
            self.adj[u][v] -= 1
            if self.adj[u][v] == 0:
                del self.adj[u][v]
            return True
        return False

    def degree(self, u):
        return sum(self.adj[u].values())

    def neighbors(self, u):
        return sorted(self.adj[u].elements())

    def n_arcs(self):
        return sum(self.degree(u) for u in range(len(self.adj)))


def run_ops(rep, model, ops):
    for kind, u, v in ops:
        if kind == "i":
            rep.insert(u, v)
            model.insert(u, v)
        else:
            assert rep.delete(u, v) == model.delete(u, v)


def assert_agree(rep, model):
    assert rep.n_arcs == model.n_arcs()
    for u in range(rep.n):
        assert rep.degree(u) == model.degree(u), f"degree mismatch at {u}"
        assert sorted(rep.neighbors(u).tolist()) == model.neighbors(u)


@pytest.mark.parametrize("kind", KINDS)
class TestConformance:
    def test_insert_only(self, kind):
        rep, model = build(kind), Model(N)
        rng = np.random.default_rng(10)
        ops = [("i", int(u), int(v)) for u, v in
               zip(rng.integers(0, N, 200), rng.integers(0, N, 200))]
        run_ops(rep, model, ops)
        assert_agree(rep, model)

    def test_mixed_ops(self, kind):
        rep, model = build(kind), Model(N)
        rng = np.random.default_rng(11)
        ops = []
        for _ in range(400):
            u, v = int(rng.integers(0, N)), int(rng.integers(0, N))
            ops.append(("i" if rng.random() < 0.65 else "d", u, v))
        run_ops(rep, model, ops)
        assert_agree(rep, model)

    def test_delete_everything(self, kind):
        rep, model = build(kind), Model(N)
        rng = np.random.default_rng(12)
        pairs = [(int(u), int(v)) for u, v in
                 zip(rng.integers(0, N, 100), rng.integers(0, N, 100))]
        run_ops(rep, model, [("i", u, v) for u, v in pairs])
        run_ops(rep, model, [("d", u, v) for u, v in pairs])
        assert rep.n_arcs == 0
        assert_agree(rep, model)

    def test_bulk_insert_agrees(self, kind):
        rep, model = build(kind), Model(N)
        rng = np.random.default_rng(13)
        src = rng.integers(0, N, 150)
        dst = rng.integers(0, N, 150)
        rep.bulk_insert(src, dst)
        for u, v in zip(src.tolist(), dst.tolist()):
            model.insert(u, v)
        assert_agree(rep, model)

    def test_apply_arcs_agrees(self, kind):
        rep, model = build(kind), Model(N)
        rng = np.random.default_rng(14)
        k = 300
        src = rng.integers(0, N, k)
        dst = rng.integers(0, N, k)
        op = np.where(rng.random(k) < 0.7, 1, -1).astype(np.int8)
        rep.apply_arcs(op, src, dst)
        for o, u, v in zip(op.tolist(), src.tolist(), dst.tolist()):
            if o == 1:
                model.insert(u, v)
            else:
                model.delete(u, v)
        assert_agree(rep, model)

    def test_to_arrays_roundtrip(self, kind):
        rep, model = build(kind), Model(N)
        rng = np.random.default_rng(15)
        for u, v in zip(rng.integers(0, N, 80), rng.integers(0, N, 80)):
            rep.insert(int(u), int(v), ts=int(u + v))
            model.insert(int(u), int(v))
        src, dst, ts = rep.to_arrays()
        assert len(src) == model.n_arcs()
        got = Counter(zip(src.tolist(), dst.tolist()))
        want = Counter()
        for u in range(N):
            for v, c in model.adj[u].items():
                want[(u, v)] = c
        assert got == want

    def test_vertex_validation(self, kind):
        rep = build(kind)
        with pytest.raises(VertexError):
            rep.insert(N, 0)
        with pytest.raises(VertexError):
            rep.delete(0, N)
        with pytest.raises(VertexError):
            rep.degree(-1)

    def test_degrees_vector(self, kind):
        rep = build(kind)
        rep.insert(0, 1)
        rep.insert(0, 2)
        rep.insert(3, 1)
        deg = rep.degrees()
        assert deg.tolist()[:4] == [2, 0, 0, 1]

    def test_phase_builds(self, kind):
        rep = build(kind)
        rng = np.random.default_rng(16)
        for u, v in zip(rng.integers(0, N, 50), rng.integers(0, N, 50)):
            rep.insert(int(u), int(v))
        ph = rep.phase("construction")
        assert ph.footprint_bytes > 0
        assert ph.alu_ops > 0

    def test_stats_reset(self, kind):
        rep = build(kind)
        rep.insert(0, 1)
        rep.reset_stats()
        assert rep.stats.inserts == 0
