"""Property-based tests (hypothesis) for the adjacency structures.

Random operation sequences against the dict-of-multiset reference model;
treap structural invariants under arbitrary interleavings; pool accounting
invariants.
"""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adjacency.dynarr import DynArrAdjacency
from repro.adjacency.hybrid import HybridAdjacency
from repro.adjacency.mempool import IntPool
from repro.adjacency.treap import TreapAdjacency, _NIL

N = 8

# An operation: (is_insert, u, v)
ops_strategy = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=0, max_value=N - 1),
    ),
    max_size=120,
)


def apply_both(rep, ops):
    model = [Counter() for _ in range(N)]
    for is_insert, u, v in ops:
        if is_insert:
            rep.insert(u, v)
            model[u][v] += 1
        else:
            found = rep.delete(u, v)
            if model[u][v] > 0:
                assert found
                model[u][v] -= 1
                if model[u][v] == 0:
                    del model[u][v]
            else:
                assert not found
    return model


def assert_matches(rep, model):
    for u in range(N):
        assert rep.degree(u) == sum(model[u].values())
        assert sorted(rep.neighbors(u).tolist()) == sorted(model[u].elements())


class TestDynArrModel:
    @given(ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, ops):
        rep = DynArrAdjacency(N, initial_capacity=1)
        model = apply_both(rep, ops)
        assert_matches(rep, model)

    @given(ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_live_counts_consistent(self, ops):
        rep = DynArrAdjacency(N, initial_capacity=2)
        apply_both(rep, ops)
        assert rep.n_arcs == int(rep.live.sum())
        assert np.all(rep.live <= rep.cnt)
        assert np.all(rep.cnt <= np.maximum(rep.cap, 0))


class TestTreapModel:
    @given(ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, ops):
        rep = TreapAdjacency(N, seed=5)
        model = apply_both(rep, ops)
        assert_matches(rep, model)

    @given(ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold(self, ops):
        rep = TreapAdjacency(N, seed=5)
        apply_both(rep, ops)
        for u in range(N):
            self._check(rep, rep.root[u])

    @staticmethod
    def _check(t, root):
        def rec(node, lo, hi, max_prio):
            if node == _NIL:
                return
            assert lo <= t._key[node] <= hi
            assert t._prio[node] <= max_prio
            rec(t._left[node], lo, t._key[node], t._prio[node])
            rec(t._right[node], t._key[node], hi, t._prio[node])

        rec(root, -(1 << 62), 1 << 62, 1 << 63)


class TestHybridModel:
    @given(ops_strategy, st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_any_threshold(self, ops, thresh):
        rep = HybridAdjacency(N, degree_thresh=thresh, seed=5)
        model = apply_both(rep, ops)
        assert_matches(rep, model)

    @given(ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_downshift_preserves_content(self, ops):
        rep = HybridAdjacency(N, degree_thresh=6, downshift=True, seed=5)
        model = apply_both(rep, ops)
        assert_matches(rep, model)


class TestPoolProperties:
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_allocations_disjoint_and_in_bounds(self, sizes):
        pool = IntPool(4)
        blocks = []
        for s in sizes:
            off = pool.alloc(s)
            blocks.append((off, s))
        # within capacity
        assert all(off + s <= pool.capacity for off, s in blocks)
        # pairwise disjoint
        spans = sorted(blocks)
        for (o1, s1), (o2, _s2) in zip(spans, spans[1:]):
            assert o1 + s1 <= o2
        assert pool.used == sum(sizes)

    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_growth_preserves_written_data(self, sizes):
        pool = IntPool(2, columns=2)
        stamps = []
        for i, s in enumerate(sizes):
            off = pool.alloc(s)
            pool.column(0)[off] = i
            pool.column(1)[off] = -i
            stamps.append((off, i))
        for off, i in stamps:
            assert pool.column(0)[off] == i
            assert pool.column(1)[off] == -i
