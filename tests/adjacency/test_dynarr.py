"""Tests for the Dyn-arr representation."""

import numpy as np
import pytest

from repro.adjacency.dynarr import DynArrAdjacency
from repro.errors import GraphError, VertexError


class TestInsert:
    def test_basic(self):
        r = DynArrAdjacency(4)
        r.insert(0, 1, 10)
        r.insert(0, 2, 11)
        assert r.degree(0) == 2
        assert r.neighbors(0).tolist() == [1, 2]
        nbr, ts = r.neighbors_with_ts(0)
        assert ts.tolist() == [10, 11]

    def test_duplicates_allowed(self):
        r = DynArrAdjacency(3)
        r.insert(0, 1)
        r.insert(0, 1)
        assert r.degree(0) == 2

    def test_self_loop_arc(self):
        r = DynArrAdjacency(3)
        r.insert(1, 1)
        assert r.neighbors(1).tolist() == [1]

    def test_vertex_range_checked(self):
        r = DynArrAdjacency(3)
        with pytest.raises(VertexError):
            r.insert(3, 0)
        with pytest.raises(VertexError):
            r.insert(0, -1)

    def test_resize_doubles(self):
        r = DynArrAdjacency(2, initial_capacity=2)
        for v in range(10):
            r.insert(0, v % 2)
        assert r.stats.resize_events > 0
        assert int(r.cap[0]) >= 10
        assert r.degree(0) == 10

    def test_resize_preserves_content(self):
        r = DynArrAdjacency(2, initial_capacity=1)
        expect = []
        for i in range(20):
            r.insert(0, i % 2, ts=i)
            expect.append(i % 2)
        assert r.neighbors(0).tolist() == expect
        _, ts = r.neighbors_with_ts(0)
        assert ts.tolist() == list(range(20))

    def test_counters(self):
        r = DynArrAdjacency(3)
        r.insert(0, 1)
        r.insert(0, 2)
        assert r.stats.inserts == 2
        assert r.n_arcs == 2

    def test_km_over_n_rule(self):
        r = DynArrAdjacency(10, expected_m=100, k=2)
        assert int(r._cap0[0]) == 20

    def test_growth_factor_validated(self):
        with pytest.raises(GraphError):
            DynArrAdjacency(3, growth_factor=1)


class TestDelete:
    def test_tombstone(self):
        r = DynArrAdjacency(3)
        r.insert(0, 1)
        r.insert(0, 2)
        assert r.delete(0, 1)
        assert r.degree(0) == 1
        assert r.neighbors(0).tolist() == [2]
        # Slot is tombstoned, not compacted: occupancy stays at 2.
        assert int(r.cnt[0]) == 2

    def test_missing_edge(self):
        r = DynArrAdjacency(3)
        r.insert(0, 1)
        assert not r.delete(0, 2)
        assert r.stats.delete_misses == 1
        assert r.degree(0) == 1

    def test_delete_from_empty_vertex(self):
        r = DynArrAdjacency(3)
        assert not r.delete(1, 0)

    def test_deletes_one_occurrence(self):
        r = DynArrAdjacency(3)
        r.insert(0, 1)
        r.insert(0, 1)
        assert r.delete(0, 1)
        assert r.degree(0) == 1

    def test_probe_words_measured(self):
        r = DynArrAdjacency(3)
        for v in [1, 2, 1, 2, 2]:
            r.insert(0, v)
        r.delete(0, 2)  # first match at position 1 -> 2 words probed
        assert r.stats.probe_words == 2
        r.stats.reset()
        r.delete(0, 0)  # miss -> scans all 5 slots
        assert r.stats.probe_words == 5

    def test_reinsert_after_delete(self):
        r = DynArrAdjacency(3)
        r.insert(0, 1)
        r.delete(0, 1)
        r.insert(0, 1)
        assert r.degree(0) == 1
        assert r.has_arc(0, 1)


class TestDynArrNR:
    def test_preallocated_no_resizes(self):
        deg = np.array([3, 2, 0])
        r = DynArrAdjacency.preallocated(3, deg)
        assert r.kind == "dynarr-nr"
        for _ in range(3):
            r.insert(0, 1)
        assert r.stats.resize_events == 0

    def test_capacity_exceeded_raises(self):
        r = DynArrAdjacency.preallocated(2, np.array([1, 1]))
        r.insert(0, 1)
        with pytest.raises(GraphError, match="capacity exceeded"):
            r.insert(0, 1)

    def test_bulk_capacity_exceeded_raises(self):
        r = DynArrAdjacency.preallocated(2, np.array([1, 1]))
        with pytest.raises(GraphError, match="capacity exceeded"):
            r.bulk_insert(np.array([0, 0]), np.array([1, 1]))

    def test_slack(self):
        r = DynArrAdjacency.preallocated(2, np.array([1, 1]), slack=2)
        for _ in range(3):
            r.insert(0, 1)
        assert r.degree(0) == 3


class TestBulkInsert:
    def _random_arcs(self, n, k, seed):
        rng = np.random.default_rng(seed)
        return (
            rng.integers(0, n, k),
            rng.integers(0, n, k),
            rng.integers(0, 100, k),
        )

    @pytest.mark.parametrize("initial", [1, 2, 16])
    def test_matches_sequential(self, initial):
        src, dst, ts = self._random_arcs(20, 500, 3)
        bulk = DynArrAdjacency(20, initial_capacity=initial)
        seq = DynArrAdjacency(20, initial_capacity=initial)
        bulk.bulk_insert(src, dst, ts)
        for u, v, t in zip(src.tolist(), dst.tolist(), ts.tolist()):
            seq.insert(u, v, t)
        for u in range(20):
            assert bulk.neighbors(u).tolist() == seq.neighbors(u).tolist()
            b_ts = bulk.neighbors_with_ts(u)[1].tolist()
            s_ts = seq.neighbors_with_ts(u)[1].tolist()
            assert b_ts == s_ts

    def test_counter_parity_with_sequential(self):
        from dataclasses import asdict

        src, dst, ts = self._random_arcs(16, 800, 5)
        bulk = DynArrAdjacency(16, initial_capacity=2)
        seq = DynArrAdjacency(16, initial_capacity=2)
        bulk.bulk_insert(src, dst, ts)
        for u, v, t in zip(src.tolist(), dst.tolist(), ts.tolist()):
            seq.insert(u, v, t)
        assert asdict(bulk.stats) == asdict(seq.stats)

    def test_incremental_bulk_after_inserts(self):
        r = DynArrAdjacency(4, initial_capacity=2)
        r.insert(0, 3)
        r.bulk_insert(np.array([0, 0, 1]), np.array([1, 2, 0]))
        assert r.neighbors(0).tolist() == [3, 1, 2]
        assert r.n_arcs == 4

    def test_empty_bulk(self):
        r = DynArrAdjacency(4)
        r.bulk_insert(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert r.n_arcs == 0

    def test_apply_arcs_all_insert_fast_path(self):
        r = DynArrAdjacency(4)
        misses = r.apply_arcs(
            np.array([1, 1], dtype=np.int8), np.array([0, 1]), np.array([1, 2])
        )
        assert misses == 0 and r.n_arcs == 2

    def test_apply_arcs_mixed_falls_back(self):
        r = DynArrAdjacency(4)
        misses = r.apply_arcs(
            np.array([1, -1, -1], dtype=np.int8),
            np.array([0, 0, 0]),
            np.array([1, 1, 2]),
        )
        assert misses == 1
        assert r.degree(0) == 0


class TestMemory:
    def test_memory_bytes_grows(self):
        r = DynArrAdjacency(100, initial_capacity=2)
        before = r.memory_bytes()
        for i in range(1000):
            r.insert(i % 100, (i + 1) % 100)
        assert r.memory_bytes() >= before

    def test_pool_abandonment_tracked(self):
        r = DynArrAdjacency(2, initial_capacity=1)
        for _ in range(8):
            r.insert(0, 1)
        assert r.pool.abandoned > 0
