"""Tests for the chunked memory pool."""

import pytest

from repro.adjacency.mempool import IntPool
from repro.errors import GraphError


class TestAlloc:
    def test_bump_pointer(self):
        p = IntPool(16)
        assert p.alloc(4) == 0
        assert p.alloc(4) == 4
        assert p.used == 8

    def test_zero_alloc(self):
        p = IntPool(16)
        off = p.alloc(0)
        assert off == 0 and p.used == 0

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            IntPool(16).alloc(-1)

    def test_grows_by_doubling(self):
        p = IntPool(4)
        p.alloc(3)
        p.alloc(3)  # forces growth
        assert p.capacity >= 6
        assert p.grow_events == 1

    def test_growth_preserves_data(self):
        p = IntPool(4)
        off = p.alloc(3)
        p.data[0, off : off + 3] = [7, 8, 9]
        p.alloc(100)  # grow
        assert p.data[0, off : off + 3].tolist() == [7, 8, 9]

    def test_large_single_request(self):
        p = IntPool(2)
        p.alloc(1000)
        assert p.capacity >= 1000


class TestColumns:
    def test_parallel_columns_share_offsets(self):
        p = IntPool(8, columns=2)
        off = p.alloc(3)
        p.column(0)[off] = 1
        p.column(1)[off] = 2
        assert p.data[0, off] == 1 and p.data[1, off] == 2

    def test_growth_preserves_all_columns(self):
        p = IntPool(4, columns=3)
        off = p.alloc(2)
        for c in range(3):
            p.column(c)[off] = c + 10
        p.alloc(50)
        assert [int(p.column(c)[off]) for c in range(3)] == [10, 11, 12]

    def test_invalid_columns(self):
        with pytest.raises(GraphError):
            IntPool(4, columns=0)


class TestAccounting:
    def test_fill_value(self):
        p = IntPool(4, fill_value=-1)
        assert p.data[0, 0] == -1

    def test_abandon(self):
        p = IntPool(16)
        p.alloc(8)
        p.abandon(3)
        assert p.abandoned == 3
        assert p.live_bytes() == (8 - 3) * 8

    def test_abandon_negative_rejected(self):
        with pytest.raises(GraphError):
            IntPool(4).abandon(-1)

    def test_memory_bytes(self):
        p = IntPool(10, columns=2)
        assert p.memory_bytes() == 2 * 10 * 8

    def test_invalid_capacity(self):
        with pytest.raises(GraphError):
            IntPool(0)
