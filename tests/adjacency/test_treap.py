"""Tests for the treap representation, including its structural invariants."""

import numpy as np
import pytest

from repro.adjacency.treap import TreapAdjacency, _NIL


def check_treap_invariants(t: TreapAdjacency, u: int) -> int:
    """Validate BST-by-key and heap-by-priority for vertex u; returns size."""
    count = 0

    def rec(node, lo, hi, max_prio):
        nonlocal count
        if node == _NIL:
            return
        count += 1
        key = t._key[node]
        assert lo <= key <= hi, "BST order violated"
        assert t._prio[node] <= max_prio, "heap order violated"
        rec(t._left[node], lo, key, t._prio[node])
        rec(t._right[node], key, hi, t._prio[node])

    rec(t.root[u], -(1 << 62), 1 << 62, 1 << 63)
    return count


class TestInsertDelete:
    def test_basic(self):
        t = TreapAdjacency(4, seed=1)
        t.insert(0, 3, 30)
        t.insert(0, 1, 10)
        t.insert(0, 2, 20)
        assert t.degree(0) == 3
        assert t.neighbors(0).tolist() == [1, 2, 3]  # in-order = sorted
        nbr, ts = t.neighbors_with_ts(0)
        assert ts.tolist() == [10, 20, 30]

    def test_invariants_after_many_ops(self):
        t = TreapAdjacency(64, seed=2)
        rng = np.random.default_rng(0)
        live = []
        for _ in range(300):
            v = int(rng.integers(0, 50))
            if rng.random() < 0.6 or not live:
                t.insert(0, v)
                live.append(v)
            else:
                target = live[int(rng.integers(0, len(live)))]
                assert t.delete(0, target)
                live.remove(target)
            assert check_treap_invariants(t, 0) == len(live)
        assert t.neighbors(0).tolist() == sorted(live)

    def test_delete_missing(self):
        t = TreapAdjacency(3, seed=1)
        t.insert(0, 1)
        assert not t.delete(0, 2)
        assert t.stats.delete_misses == 1

    def test_duplicate_keys(self):
        t = TreapAdjacency(3, seed=1)
        t.insert(0, 1)
        t.insert(0, 1)
        t.insert(0, 1)
        assert t.degree(0) == 3
        assert t.delete(0, 1)
        assert t.degree(0) == 2
        assert t.neighbors(0).tolist() == [1, 1]

    def test_node_reuse_from_freelist(self):
        t = TreapAdjacency(3, seed=1)
        t.insert(0, 1)
        t.delete(0, 1)
        pool_size = t.n_nodes
        t.insert(0, 2)
        assert t.n_nodes == pool_size  # free-listed node reused

    def test_has_arc(self):
        t = TreapAdjacency(3, seed=1)
        t.insert(0, 2)
        assert t.has_arc(0, 2)
        assert not t.has_arc(0, 1)
        assert not t.has_arc(2, 0)

    def test_counters_measure_depth(self):
        t = TreapAdjacency(256, seed=3)
        for v in range(200):
            t.insert(0, v)
        assert t.stats.nodes_visited > 200  # descents visit interior nodes
        assert t.stats.rotations > 0

    def test_deterministic_given_seed(self):
        a = TreapAdjacency(16, seed=7)
        b = TreapAdjacency(16, seed=7)
        for v in [5, 3, 8, 1]:
            a.insert(0, v)
            b.insert(0, v)
        assert a._key == b._key and a._prio == b._prio


class TestSetOperations:
    @pytest.fixture
    def t(self):
        t = TreapAdjacency(16, seed=4)
        for v in [1, 3, 5, 7]:
            t.insert(0, v)
        for v in [3, 4, 5, 9]:
            t.insert(1, v)
        return t

    def test_union(self, t):
        assert t.union_neighbors(0, 1).tolist() == [1, 3, 4, 5, 7, 9]

    def test_intersection(self, t):
        assert t.intersect_neighbors(0, 1).tolist() == [3, 5]

    def test_difference(self, t):
        assert t.difference_neighbors(0, 1).tolist() == [1, 7]

    def test_ops_do_not_mutate_operands(self, t):
        t.union_neighbors(0, 1)
        assert t.neighbors(0).tolist() == [1, 3, 5, 7]
        assert t.neighbors(1).tolist() == [3, 4, 5, 9]

    def test_empty_operand(self, t):
        assert t.union_neighbors(0, 2).tolist() == [1, 3, 5, 7]
        assert t.intersect_neighbors(0, 2).size == 0
        assert t.difference_neighbors(2, 0).size == 0

    def test_multiset_collapsed_to_set(self):
        t = TreapAdjacency(8, seed=5)
        for v in [1, 1, 2]:
            t.insert(0, v)
        t.insert(1, 2)
        assert t.union_neighbors(0, 1).tolist() == [1, 2]

    def test_random_against_python_sets(self):
        rng = np.random.default_rng(6)
        t = TreapAdjacency(64, seed=6)
        a = set(rng.integers(0, 40, 25).tolist())
        b = set(rng.integers(0, 40, 25).tolist())
        for v in a:
            t.insert(0, v)
        for v in b:
            t.insert(1, v)
        assert t.union_neighbors(0, 1).tolist() == sorted(a | b)
        assert t.intersect_neighbors(0, 1).tolist() == sorted(a & b)
        assert t.difference_neighbors(0, 1).tolist() == sorted(a - b)


class TestAccounting:
    def test_memory_model(self):
        t = TreapAdjacency(10, seed=1)
        for v in range(5):
            t.insert(0, v)
        assert t.memory_bytes() == (5 * 5 + 10) * 8

    def test_sync_uses_locks_not_atomics(self):
        t = TreapAdjacency(3, seed=1)
        t.insert(0, 1)
        ph = t.phase("x")
        assert ph.locks == 1.0
        assert ph.atomics == 0.0
        assert ph.lock_hold_cycles > 0
