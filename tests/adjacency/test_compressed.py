"""Tests for the compressed adjacency snapshot and vertex reordering."""

import numpy as np
import pytest

from repro.adjacency.compressed import CompressedCSR, _decode_varint, _encode_varint
from repro.adjacency.csr import build_csr
from repro.adjacency.reorder import apply_order, bfs_order, degree_order, locality_gap
from repro.edgelist import EdgeList
from repro.errors import GraphError, VertexError
from repro.generators.rmat import rmat_graph
from repro.generators.reference import path_graph, star_graph


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 1 << 20, (1 << 40) + 7])
    def test_roundtrip(self, value):
        buf = bytearray()
        _encode_varint(value, buf)
        decoded, pos = _decode_varint(np.frombuffer(bytes(buf), np.uint8), 0)
        assert decoded == value
        assert pos == len(buf)

    def test_small_values_one_byte(self):
        buf = bytearray()
        _encode_varint(100, buf)
        assert len(buf) == 1

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            _encode_varint(-1, bytearray())

    def test_stream_of_values(self):
        buf = bytearray()
        values = [3, 200, 0, 123456]
        for v in values:
            _encode_varint(v, buf)
        data = np.frombuffer(bytes(buf), np.uint8)
        pos = 0
        out = []
        while pos < len(data):
            v, pos = _decode_varint(data, pos)
            out.append(v)
        assert out == values


class TestCompressedCSR:
    def test_roundtrip_er(self, er_csr):
        comp = CompressedCSR.from_csr(er_csr)
        for u in range(er_csr.n):
            assert comp.neighbors(u).tolist() == sorted(
                set(er_csr.neighbors(u).tolist())
            )

    def test_roundtrip_rmat(self):
        g = rmat_graph(9, 8, seed=71)
        csr = build_csr(g)
        comp = CompressedCSR.from_csr(csr)
        back = comp.to_csr()
        for u in range(csr.n):
            assert back.neighbors(u).tolist() == sorted(set(csr.neighbors(u).tolist()))

    def test_duplicates_collapsed(self):
        g = EdgeList(3, np.array([0, 0]), np.array([1, 1]), directed=True)
        comp = CompressedCSR.from_csr(build_csr(g))
        assert comp.neighbors(0).tolist() == [1]
        assert comp.degree(0) == 1

    def test_interval_encoding_wins_on_runs(self):
        # a complete graph's rows are one long run: ~2 bytes per row
        from repro.generators.reference import complete_graph

        csr = build_csr(complete_graph(64))
        comp = CompressedCSR.from_csr(csr)
        assert comp.bits_per_arc() < 1.0

    def test_compression_beats_csr_on_rmat(self):
        g = rmat_graph(10, 10, seed=72)
        csr = build_csr(g)
        comp = CompressedCSR.from_csr(csr)
        assert comp.bits_per_arc() < 32.0  # far below CSR's 64 bits
        assert comp.memory_bytes() < csr.memory_bytes()

    def test_has_arc(self):
        csr = build_csr(path_graph(4))
        comp = CompressedCSR.from_csr(csr)
        assert comp.has_arc(1, 2) and comp.has_arc(1, 0)
        assert not comp.has_arc(0, 3)

    def test_empty_vertices(self):
        g = EdgeList(5, np.array([0]), np.array([1]))
        comp = CompressedCSR.from_csr(build_csr(g))
        assert comp.neighbors(3).size == 0
        assert comp.degree(3) == 0

    def test_vertex_validation(self, er_csr):
        comp = CompressedCSR.from_csr(er_csr)
        with pytest.raises(VertexError):
            comp.neighbors(er_csr.n)

    def test_scan_phase(self, er_csr):
        comp = CompressedCSR.from_csr(er_csr)
        ph = comp.scan_phase()
        assert ph.seq_bytes == float(comp.data.nbytes)
        assert ph.alu_ops > 0
        assert ph.footprint_bytes < float(er_csr.memory_bytes())


class TestReorder:
    def test_bfs_order_is_permutation(self, er_csr):
        perm = bfs_order(er_csr)
        assert np.array_equal(np.sort(perm), np.arange(er_csr.n))

    def test_bfs_order_root_first(self, er_csr):
        root = int(np.argmax(er_csr.degrees()))
        perm = bfs_order(er_csr)
        assert perm[root] == 0

    def test_degree_order_hubs_first(self):
        csr = build_csr(star_graph(10))
        perm = degree_order(csr)
        assert perm[0] == 0  # the hub gets id 0

    def test_apply_order_preserves_structure(self):
        g = path_graph(5)
        perm = np.array([4, 3, 2, 1, 0])
        out = apply_order(g, perm)
        # still a path, same degree sequence
        assert sorted(out.degrees().tolist()) == sorted(g.degrees().tolist())

    def test_apply_order_validates(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            apply_order(g, np.array([0, 0, 1]))
        with pytest.raises(GraphError):
            apply_order(g, np.array([0, 1]))

    def test_bfs_reorder_improves_locality_and_compression(self):
        """The paper's hypothesis: reordering helps compression."""
        rng = np.random.default_rng(5)
        g = rmat_graph(10, 10, seed=73)
        # scramble ids first so the generator's natural clustering is gone
        scramble = rng.permutation(g.n)
        scrambled = apply_order(g, scramble)
        csr_scrambled = build_csr(scrambled)
        perm = bfs_order(csr_scrambled)
        reordered = apply_order(scrambled, perm)

        assert locality_gap(reordered) < locality_gap(scrambled)
        bits_scrambled = CompressedCSR.from_csr(csr_scrambled).bits_per_arc()
        bits_reordered = CompressedCSR.from_csr(build_csr(reordered)).bits_per_arc()
        assert bits_reordered < bits_scrambled

    def test_disconnected_graph_covered(self):
        g = EdgeList(6, np.array([0, 3]), np.array([1, 4]))
        perm = bfs_order(build_csr(g))
        assert np.array_equal(np.sort(perm), np.arange(6))

    def test_locality_gap_empty(self):
        g = EdgeList(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert locality_gap(g) == 0.0
