"""Tests for the Vpart and Epart execution-scheme representations."""

import numpy as np
import pytest

from repro.adjacency.epart import EPartAdjacency
from repro.adjacency.vpart import VPartAdjacency
from repro.errors import GraphError


class TestVPart:
    def test_storage_matches_dynarr(self):
        r = VPartAdjacency(4)
        r.insert(0, 1)
        r.insert(0, 2)
        r.delete(0, 1)
        assert r.neighbors(0).tolist() == [2]

    def test_owner_deterministic(self):
        r = VPartAdjacency(16)
        assert r.owner(5, 4) == 1
        assert r.owner(5, 4) == r.owner(5, 4)

    def test_owner_partitions_all_vertices(self):
        r = VPartAdjacency(64)
        owners = {r.owner(v, 8) for v in range(64)}
        assert owners == set(range(8))

    def test_owner_invalid_threads(self):
        with pytest.raises(ValueError):
            VPartAdjacency(4).owner(0, 0)

    def test_phase_has_no_sync_but_replicated_reads(self):
        r = VPartAdjacency(4)
        for i in range(10):
            r.insert(i % 4, (i + 1) % 4)
        ph = r.phase("x")
        assert ph.atomics == 0.0 and ph.locks == 0.0
        assert ph.seq_bytes_per_thread == pytest.approx(32.0 * 10)
        assert ph.alu_ops_per_thread > 0

    def test_replicated_reads_cost_scales_with_threads(self):
        from repro.machine.cost import CostModel
        from repro.machine.spec import ULTRASPARC_T2

        r = VPartAdjacency(64)
        rng = np.random.default_rng(0)
        for u, v in zip(rng.integers(0, 64, 5000), rng.integers(0, 64, 5000)):
            r.insert(int(u), int(v))
        cm = CostModel(ULTRASPARC_T2)
        ph = r.phase("x")
        # Scaling must flatten well below the Dyn-arr cap.
        speedup = cm.phase_cost(ph, 1).total / cm.phase_cost(ph, 64).total
        assert speedup < 20


class TestEPart:
    def test_storage_matches_dynarr(self):
        r = EPartAdjacency(4, split_thresh=2)
        for v in [1, 2, 3, 1]:
            r.insert(0, v)
        assert r.neighbors(0).tolist() == [1, 2, 3, 1]

    def test_hi_arcs_counted(self):
        r = EPartAdjacency(4, split_thresh=2)
        for v in [1, 2, 3, 1]:
            r.insert(0, v)
        assert r.hi_arcs == 2  # the 3rd and 4th arcs exceed the threshold

    def test_hi_arcs_bulk_matches_sequential(self):
        src = np.array([0] * 6 + [1] * 2)
        dst = np.arange(8) % 4
        seq = EPartAdjacency(4, split_thresh=3)
        for u, v in zip(src.tolist(), dst.tolist()):
            seq.insert(u, v)
        bulk = EPartAdjacency(4, split_thresh=3)
        bulk.bulk_insert(src, dst)
        assert bulk.hi_arcs == seq.hi_arcs == 3

    def test_merge_words(self):
        r = EPartAdjacency(4, split_thresh=1)
        r.insert(0, 1)
        r.insert(0, 2)
        assert r.merged_arc_words() == 1

    def test_space_overhead_reported(self):
        a = EPartAdjacency(4, split_thresh=1)
        b = EPartAdjacency(4, split_thresh=100)
        for rep in (a, b):
            for i in range(10):
                rep.insert(0, i % 4)
        assert a.memory_bytes() > b.memory_bytes()

    def test_phase_removes_hot_serialisation(self):
        from repro.adjacency.base import HotStats

        r = EPartAdjacency(4, split_thresh=2)
        for i in range(10):
            r.insert(0, i % 4)
        ph = r.phase("x", HotStats(10, 10, 1.0))
        assert ph.atomic_max_addr == 0.0
        assert ph.max_unit_frac == 0.0
        assert ph.barriers == 1.0  # the merge step

    def test_invalid_threshold(self):
        with pytest.raises(GraphError):
            EPartAdjacency(4, split_thresh=0)
