"""Tests for CSR snapshots."""

import numpy as np
import pytest

from repro.adjacency.csr import CSRGraph, build_csr, csr_from_representation
from repro.adjacency.dynarr import DynArrAdjacency
from repro.edgelist import EdgeList
from repro.errors import GraphError, VertexError
from repro.generators.reference import path_graph


class TestBuildCsr:
    def test_undirected_symmetrised(self):
        csr = build_csr(path_graph(4))
        assert csr.n_arcs == 6
        assert sorted(csr.neighbors(1).tolist()) == [0, 2]

    def test_directed_as_is(self):
        g = EdgeList(3, np.array([0, 1]), np.array([1, 2]), directed=True)
        csr = build_csr(g)
        assert csr.n_arcs == 2
        assert csr.neighbors(1).tolist() == [2]
        assert csr.neighbors(2).size == 0

    def test_explicit_symmetrize_override(self):
        g = EdgeList(3, np.array([0]), np.array([1]), directed=True)
        csr = build_csr(g, symmetrize=True)
        assert csr.n_arcs == 2

    def test_ts_parallel_to_targets(self):
        g = EdgeList(3, np.array([0, 1]), np.array([1, 2]), ts=np.array([7, 9]),
                     directed=True)
        csr = build_csr(g)
        nbr, ts = csr.neighbors_with_ts(1)
        assert nbr.tolist() == [2] and ts.tolist() == [9]

    def test_arc_order_stable(self):
        g = EdgeList(3, np.array([0, 0, 0]), np.array([2, 1, 2]), directed=True)
        csr = build_csr(g)
        assert csr.neighbors(0).tolist() == [2, 1, 2]

    def test_empty_graph(self):
        g = EdgeList(4, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        csr = build_csr(g)
        assert csr.n_arcs == 0 and csr.degrees().tolist() == [0, 0, 0, 0]


class TestCSRGraphValidation:
    def test_bad_offsets_shape(self):
        with pytest.raises(GraphError):
            CSRGraph(2, np.array([0, 1]), np.array([0]))

    def test_offsets_must_cover_targets(self):
        with pytest.raises(GraphError):
            CSRGraph(2, np.array([0, 1, 5]), np.array([0]))

    def test_decreasing_offsets(self):
        with pytest.raises(GraphError):
            CSRGraph(2, np.array([0, 2, 1]), np.array([0, 1]))

    def test_targets_in_range(self):
        with pytest.raises(GraphError):
            CSRGraph(2, np.array([0, 1, 1]), np.array([5]))

    def test_vertex_range_checked(self):
        csr = build_csr(path_graph(3))
        with pytest.raises(VertexError):
            csr.neighbors(3)
        with pytest.raises(VertexError):
            csr.degree(-1)


class TestDerived:
    def test_degrees(self):
        csr = build_csr(path_graph(4))
        assert csr.degrees().tolist() == [1, 2, 2, 1]

    def test_memory_bytes(self):
        csr = build_csr(path_graph(4))
        assert csr.memory_bytes() == (5 + 6) * 8

    def test_to_edgelist_roundtrip(self):
        g = EdgeList(4, np.array([0, 2]), np.array([1, 3]), ts=np.array([4, 5]),
                     directed=True)
        back = build_csr(g).to_edgelist()
        assert sorted(zip(back.src, back.dst, back.ts)) == [(0, 1, 4), (2, 3, 5)]


class TestFromRepresentation:
    def test_snapshot_matches_structure(self):
        rep = DynArrAdjacency(4)
        rep.insert(0, 1, 5)
        rep.insert(0, 2, 6)
        rep.insert(3, 0, 7)
        csr = csr_from_representation(rep)
        assert csr.n_arcs == 3
        assert sorted(csr.neighbors(0).tolist()) == [1, 2]
        _, ts = csr.neighbors_with_ts(3)
        assert ts.tolist() == [7]

    def test_tombstones_excluded(self):
        rep = DynArrAdjacency(3)
        rep.insert(0, 1)
        rep.insert(0, 2)
        rep.delete(0, 1)
        csr = csr_from_representation(rep)
        assert csr.neighbors(0).tolist() == [2]
