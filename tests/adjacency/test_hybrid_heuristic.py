"""Tests for the runtime degree-threshold heuristic (paper section 2.1.5)."""

import pytest

from repro.adjacency.hybrid import (
    DEFAULT_DEGREE_THRESH,
    HybridAdjacency,
    recommend_degree_thresh,
)
from repro.errors import GraphError


class TestRecommendDegreeThresh:
    def test_equal_mix_matches_paper(self):
        assert recommend_degree_thresh(0.5) == DEFAULT_DEGREE_THRESH

    def test_monotone_in_insert_fraction(self):
        values = [recommend_degree_thresh(f) for f in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_insert_only_maximal(self):
        assert recommend_degree_thresh(1.0) == 512

    def test_delete_only_minimal(self):
        assert recommend_degree_thresh(0.0) == 4

    def test_clipping(self):
        assert recommend_degree_thresh(0.999, hi=256) == 256
        assert recommend_degree_thresh(0.001, lo=8) == 8

    def test_invalid_fraction(self):
        with pytest.raises(GraphError):
            recommend_degree_thresh(1.5)
        with pytest.raises(GraphError):
            recommend_degree_thresh(-0.1)

    def test_usable_to_construct(self):
        thresh = recommend_degree_thresh(0.75)
        rep = HybridAdjacency(16, degree_thresh=thresh, seed=1)
        for i in range(thresh + 2):
            rep.insert(0, i % 16)
        assert rep.mode[0] == 1  # migrated right past the threshold

    def test_reference_anchor_scales(self):
        assert recommend_degree_thresh(0.5, reference=64) == 64
