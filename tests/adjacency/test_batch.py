"""Tests for batched semi-sorted updates."""

import numpy as np
import pytest

from repro.adjacency.batch import BatchedAdjacency, apply_batched, semisort_phase
from repro.adjacency.dynarr import DynArrAdjacency
from repro.errors import GraphError


class TestSemisortPhase:
    def test_linear_work(self):
        a = semisort_phase(1000, 100)
        b = semisort_phase(2000, 100)
        assert b.alu_ops == pytest.approx(2 * a.alu_ops)
        assert b.rand_accesses == pytest.approx(2 * a.rand_accesses)

    def test_passes_grow_with_key_bits(self):
        small = semisort_phase(1000, 1 << 8)
        large = semisort_phase(1000, 1 << 24)
        assert large.alu_ops > small.alu_ops

    def test_has_barriers(self):
        assert semisort_phase(10, 10).barriers >= 2

    def test_invalid(self):
        with pytest.raises(GraphError):
            semisort_phase(-1, 10)
        with pytest.raises(GraphError):
            semisort_phase(10, 0)


class TestBatchedAdjacency:
    def test_batched_matches_inorder_application(self):
        rng = np.random.default_rng(1)
        k = 400
        src = rng.integers(0, 10, k)
        dst = rng.integers(0, 10, k)
        op = np.where(rng.random(k) < 0.8, 1, -1).astype(np.int8)
        ts = rng.integers(0, 50, k)

        batched = BatchedAdjacency(10)
        plain = DynArrAdjacency(10)
        m_b = batched.apply_arcs(op, src, dst, ts)
        m_p = plain.apply_arcs(op, src, dst, ts)
        assert m_b == m_p
        for u in range(10):
            assert sorted(batched.neighbors(u).tolist()) == sorted(
                plain.neighbors(u).tolist()
            )

    def test_single_op_interface(self):
        b = BatchedAdjacency(4)
        b.insert(0, 1, 5)
        assert b.degree(0) == 1
        assert b.has_arc(0, 1)
        assert b.delete(0, 1)
        assert b.n_arcs == 0

    def test_counts_batches(self):
        b = BatchedAdjacency(4)
        op = np.ones(3, dtype=np.int8)
        b.apply_arcs(op, np.array([0, 1, 0]), np.array([1, 2, 2]))
        b.apply_arcs(op[:1], np.array([2]), np.array([3]))
        assert b.batches == 2
        assert b.batched_updates == 4

    def test_phase_includes_sort_and_drops_hot_serialisation(self):
        from repro.adjacency.base import HotStats

        b = BatchedAdjacency(8)
        op = np.ones(100, dtype=np.int8)
        rng = np.random.default_rng(2)
        b.apply_arcs(op, rng.integers(0, 8, 100), rng.integers(0, 8, 100))
        ph = b.phase("x", HotStats(100, 60, 0.6))
        assert ph.barriers >= 2  # the sort passes
        assert ph.atomic_max_addr == 0.0  # per-vertex ownership in a batch
        assert ph.max_unit_frac == pytest.approx(0.6)  # imbalance remains

    def test_inner_vertex_mismatch(self):
        with pytest.raises(GraphError):
            BatchedAdjacency(4, inner=DynArrAdjacency(5))

    def test_reset_stats(self):
        b = BatchedAdjacency(4)
        b.apply_arcs(np.ones(2, dtype=np.int8), np.array([0, 1]), np.array([1, 2]))
        b.reset_stats()
        assert b.batched_updates == 0 and b.batches == 0
        assert b.inner.stats.inserts == 0


class TestApplyBatched:
    def test_partitions_and_applies(self):
        rep = DynArrAdjacency(6)
        rng = np.random.default_rng(3)
        k = 250
        src = rng.integers(0, 6, k)
        dst = rng.integers(0, 6, k)
        op = np.ones(k, dtype=np.int8)
        misses = apply_batched(rep, op, src, dst, batch_size=64)
        assert misses == 0
        assert rep.n_arcs == k

    def test_invalid_batch_size(self):
        with pytest.raises(GraphError):
            apply_batched(DynArrAdjacency(4), np.ones(1, dtype=np.int8),
                          np.array([0]), np.array([1]), batch_size=0)
