"""Unit tests for the shared vectorised bulk-update kernels.

Covers the grouping primitives (:func:`segment_ranks`, :func:`group_runs`,
:func:`gather_index`), the pool's :meth:`alloc_many`, the dispatch gate
:func:`enabled`, and the sentinel/constant invariants the kernels rely on.
The scalar-vs-vectorised *equivalence* checks live in test_equivalence.py.
"""

import numpy as np
import pytest

from repro.adjacency import bulkops
from repro.adjacency.dynarr import DynArrAdjacency, TOMBSTONE
from repro.adjacency.mempool import IntPool
from repro.errors import GraphError


class TestPrimitives:
    def test_segment_ranks_basic(self):
        counts = np.array([3, 1, 0, 2], dtype=np.int64)
        assert bulkops.segment_ranks(counts).tolist() == [0, 1, 2, 0, 0, 1]

    def test_segment_ranks_empty(self):
        assert bulkops.segment_ranks(np.array([], dtype=np.int64)).size == 0

    def test_group_runs(self):
        keys = np.array([2, 2, 5, 7, 7, 7], dtype=np.int64)
        vals, starts, counts = bulkops.group_runs(keys)
        assert vals.tolist() == [2, 5, 7]
        assert starts.tolist() == [0, 2, 3]
        assert counts.tolist() == [2, 1, 3]

    def test_group_runs_single_and_empty(self):
        vals, starts, counts = bulkops.group_runs(np.array([9], dtype=np.int64))
        assert (vals.tolist(), starts.tolist(), counts.tolist()) == ([9], [0], [1])
        vals, starts, counts = bulkops.group_runs(np.array([], dtype=np.int64))
        assert vals.size == starts.size == counts.size == 0

    def test_gather_index(self):
        offsets = np.array([10, 50], dtype=np.int64)
        counts = np.array([2, 3], dtype=np.int64)
        assert bulkops.gather_index(offsets, counts).tolist() == [10, 11, 50, 51, 52]

    def test_gather_index_matches_scalar_loop(self):
        rng = np.random.default_rng(3)
        offsets = rng.integers(0, 1000, size=20)
        counts = rng.integers(0, 8, size=20)
        expected = [o + j for o, c in zip(offsets, counts) for j in range(int(c))]
        assert bulkops.gather_index(offsets, counts).tolist() == expected


class TestAllocMany:
    def test_matches_sequential_allocs(self):
        sizes = np.array([4, 0, 7, 1], dtype=np.int64)
        a, b = IntPool(4), IntPool(4)
        offs = a.alloc_many(sizes)
        seq = [b.alloc(int(s)) for s in sizes]
        assert offs.tolist() == seq
        assert a.used == b.used

    def test_blocks_disjoint(self):
        pool = IntPool(2)
        sizes = np.array([3, 5, 2, 8], dtype=np.int64)
        offs = pool.alloc_many(sizes)
        spans = sorted(zip(offs.tolist(), sizes.tolist()))
        for (o1, s1), (o2, _s2) in zip(spans, spans[1:]):
            assert o1 + s1 <= o2

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            IntPool(4).alloc_many(np.array([2, -1], dtype=np.int64))

    def test_empty(self):
        pool = IntPool(4)
        assert pool.alloc_many(np.array([], dtype=np.int64)).size == 0
        assert pool.used == 0


class TestDispatchGate:
    def test_tombstone_matches_dynarr(self):
        # bulkops re-declares the sentinel to avoid an import cycle; the two
        # must never drift apart.
        assert bulkops.TOMBSTONE == TOMBSTONE

    def test_explicit_flag_wins(self):
        rep = DynArrAdjacency(4)
        rep.use_bulkops = True
        assert bulkops.enabled(rep, 1)
        rep.use_bulkops = False
        assert not bulkops.enabled(rep, 10**6)

    def test_default_threshold(self):
        rep = DynArrAdjacency(4)
        assert rep.use_bulkops is None
        if bulkops.ENABLED_DEFAULT:
            assert not bulkops.enabled(rep, bulkops.MIN_BULK_SIZE - 1)
            assert bulkops.enabled(rep, bulkops.MIN_BULK_SIZE)

    def test_empty_batch_never_vectorised(self):
        rep = DynArrAdjacency(4)
        rep.use_bulkops = True
        assert not bulkops.enabled(rep, 0)

    def test_huge_vertex_count_falls_back(self):
        rep = DynArrAdjacency.__new__(DynArrAdjacency)
        rep.n = bulkops.MAX_KEY_N + 1
        rep.use_bulkops = True
        assert not bulkops.enabled(rep, 100)


class TestMutationCounter:
    def test_counter_moves_on_every_structural_change(self):
        rep = DynArrAdjacency(4)
        k0 = rep.mutation_count
        rep.insert(0, 1)
        k1 = rep.mutation_count
        assert k1 > k0
        rep.delete(0, 1)
        assert rep.mutation_count > k1

    def test_counter_moves_on_balanced_mix(self):
        # The stale-snapshot bug: arc count returns to its old value, the
        # mutation counter must not.
        rep = DynArrAdjacency(4)
        rep.insert(0, 1)
        before = rep.mutation_count
        n_arcs = rep.n_arcs
        rep.apply_arcs(
            np.array([1, -1], dtype=np.int8),
            np.array([2, 0], dtype=np.int64),
            np.array([3, 1], dtype=np.int64),
            np.zeros(2, dtype=np.int64),
        )
        assert rep.n_arcs == n_arcs
        assert rep.mutation_count > before

    def test_miss_only_stream_may_cache(self):
        rep = DynArrAdjacency(4)
        rep.insert(0, 1)
        rep.delete(3, 2)  # miss: no structural change required
        assert rep.degree(3) == 0
