"""Tests for the representation registry."""

import numpy as np
import pytest

from repro.adjacency.registry import REPRESENTATIONS, make_representation
from repro.errors import GraphError


class TestMakeRepresentation:
    @pytest.mark.parametrize(
        "kind", ["dynarr", "treap", "hybrid", "vpart", "epart", "batched"]
    )
    def test_builds_each_kind(self, kind):
        rep = make_representation(kind, 8)
        assert rep.n == 8
        rep.insert(0, 1)
        assert rep.degree(0) == 1

    def test_dynarr_nr_needs_degrees(self):
        with pytest.raises(GraphError, match="degrees"):
            make_representation("dynarr-nr", 8)

    def test_dynarr_nr_with_degrees(self):
        rep = make_representation("dynarr-nr", 4, degrees=np.array([2, 1, 0, 0]))
        rep.insert(0, 1)
        rep.insert(0, 2)
        assert rep.kind == "dynarr-nr"

    def test_name_normalisation(self):
        assert make_representation("Dynarr_NR", 4, degrees=np.ones(4)).kind == "dynarr-nr"
        assert make_representation("HYBRID", 4).kind == "hybrid"

    def test_kwargs_forwarded(self):
        rep = make_representation("hybrid", 4, degree_thresh=7)
        assert rep.degree_thresh == 7

    def test_unknown_kind(self):
        with pytest.raises(GraphError, match="unknown representation"):
            make_representation("btree", 4)

    def test_registry_keys(self):
        assert set(REPRESENTATIONS) == {
            "dynarr", "dynarr-nr", "treap", "hybrid", "vpart", "epart", "batched",
        }
