"""Tests for the DynamicGraph facade."""

import numpy as np
import pytest

from repro.adjacency.dynarr import DynArrAdjacency
from repro.api import DynamicGraph
from repro.errors import GraphError
from repro.generators.rmat import rmat_graph
from repro.generators.streams import mixed_stream


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(9, 8, seed=31, ts_range=(1, 60))


class TestConstruction:
    def test_from_edgelist(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        assert g.n == graph.n
        assert g.n_edges == graph.m
        assert g.rep.kind == "hybrid"

    def test_from_edges(self):
        g = DynamicGraph.from_edges(4, [0, 1], [1, 2], representation="dynarr")
        assert g.n_edges == 2
        assert g.has_edge(1, 0)  # symmetrised

    def test_directed(self):
        g = DynamicGraph.from_edges(4, [0], [1], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_ready_made_representation(self):
        rep = DynArrAdjacency(5)
        g = DynamicGraph(5, rep)
        assert g.rep is rep

    def test_representation_mismatch(self):
        with pytest.raises(GraphError):
            DynamicGraph(5, DynArrAdjacency(6))

    @pytest.mark.parametrize("kind", ["dynarr", "treap", "hybrid", "batched"])
    def test_kinds(self, kind):
        g = DynamicGraph(6, kind)
        g.insert_edge(0, 1)
        assert g.n_edges == 1


class TestUpdates:
    def test_insert_and_delete(self):
        g = DynamicGraph(5)
        g.insert_edge(0, 1, ts=3)
        assert g.degree(0) == 1 and g.degree(1) == 1
        assert g.delete_edge(0, 1)
        assert g.n_edges == 0
        assert not g.delete_edge(0, 1)

    def test_self_loop_stored_once(self):
        g = DynamicGraph(3)
        g.insert_edge(1, 1)
        assert g.degree(1) == 1

    def test_apply_stream(self, graph):
        g = DynamicGraph.from_edgelist(graph, representation="dynarr")
        stream = mixed_stream(graph, 100, 0.5, seed=2)
        res = g.apply(stream)
        assert res.n_updates == 100
        assert res.profile.meta["representation"] == "dynarr"


class TestSnapshotsAndKernels:
    def test_snapshot_cached(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        a = g.snapshot()
        assert g.snapshot() is a
        g.insert_edge(0, 1)
        assert g.snapshot() is not a

    def test_snapshot_refresh_forced(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        a = g.snapshot()
        assert g.snapshot(refresh=True) is not a

    def test_snapshot_forced_rebuild_counter_split(self, graph):
        # Regression: refresh=True on an *unchanged* structure used to tick
        # api.snapshot_rebuilds, polluting the staleness signal epoch-lag
        # accounting reads.  Forced rebuilds get their own counter.
        from repro.obs import METRICS

        g = DynamicGraph.from_edgelist(graph)
        rebuilds = METRICS.counter("api.snapshot_rebuilds")
        forced = METRICS.counter("api.snapshot_forced_rebuilds")
        g.snapshot()  # cold cache: a real rebuild
        r0, f0 = rebuilds.value, forced.value
        g.snapshot(refresh=True)  # unchanged structure: forced only
        assert rebuilds.value == r0
        assert forced.value == f0 + 1
        g.insert_edge(0, 1)
        g.snapshot(refresh=True)  # stale cache: a real rebuild even if forced
        assert rebuilds.value == r0 + 1
        assert forced.value == f0 + 1

    def test_snapshot_not_stale_after_balanced_mix(self):
        # Regression: the cache used to key on the live arc count, so an
        # insert+delete mix that left the count unchanged returned a stale
        # snapshot.  The mutation-counter key must rebuild it.
        g = DynamicGraph(4, "dynarr", directed=True)
        g.insert_edge(0, 1)
        a = g.snapshot()
        assert a.neighbors(0).tolist() == [1]
        g.insert_edge(0, 2)
        g.delete_edge(0, 1)
        assert g.rep.n_arcs == a.n_arcs  # balanced: count unchanged
        b = g.snapshot()
        assert b is not a
        assert b.neighbors(0).tolist() == [2]

    def test_bfs(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        res = g.bfs(0)
        assert res.dist[0] == 0

    def test_components_and_forest_agree(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        comps = g.connected_components()
        idx = g.spanning_forest()
        rng = np.random.default_rng(0)
        for _ in range(50):
            u, v = (int(x) for x in rng.integers(0, g.n, 2))
            assert idx.query(u, v) == comps.same_component(u, v)

    def test_st_connectivity(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        comps = g.connected_components()
        u, v = 0, int(np.argmax(comps.labels == comps.labels[0]))
        assert g.st_connectivity(0, 0).connected

    def test_induced_interval(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        res = g.induced_interval(10, 50)
        assert res.graph.n == g.n
        assert np.all((res.graph.ts > 10) & (res.graph.ts < 50))

    def test_betweenness(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        res = g.betweenness(sources=8, seed=1, temporal=True)
        assert res.scores.shape == (g.n,)
        assert res.temporal

    def test_betweenness_static(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        res = g.betweenness(sources=8, seed=1, temporal=False)
        assert not res.temporal

    def test_connectivity_after_deletion(self):
        g = DynamicGraph(4)
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            g.insert_edge(u, v)
        assert g.spanning_forest().query(0, 3)
        g.delete_edge(1, 2)
        assert not g.spanning_forest().query(0, 3)

    def test_closeness(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        res = g.closeness(sources=4, seed=1)
        assert res.scores.shape == (g.n,)
        assert res.meta["kind"] == "closeness"

    def test_stress(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        res = g.stress(sources=4, seed=1)
        assert res.meta["kind"] == "stress"

    def test_shortest_paths(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        res = g.shortest_paths(0)
        assert res.dist[0] == 0.0
        # unweighted: distances equal BFS hop counts
        b = g.bfs(0)
        import numpy as _np

        mine = _np.where(_np.isfinite(res.dist), res.dist, -1).astype(_np.int64)
        assert _np.array_equal(mine, b.dist)

    def test_earliest_arrival(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        res = g.earliest_arrival(0)
        assert res.reachable(0)
        # temporal reachability is a subset of plain reachability
        plain = set(g.bfs(0).reached().tolist())
        assert set(res.reached().tolist()) <= plain

    def test_pagerank(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        res = g.pagerank()
        assert res.scores.sum() == pytest.approx(1.0)

    def test_communities(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        res = g.communities(seed=1)
        assert res.labels.shape == (g.n,)
        assert res.n_communities >= 1

    def test_degree_stats(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        s = g.degree_stats()
        assert s.n == g.n
        assert s.mean > 0

    def test_memory_bytes(self, graph):
        g = DynamicGraph.from_edgelist(graph)
        assert g.memory_bytes() > 0

    def test_repr(self, graph):
        text = repr(DynamicGraph.from_edgelist(graph))
        assert "hybrid" in text and "undirected" in text
