"""The warmup contract: compile cost measured once, reported separately.

Benchmark plumbing (``benchmarks/conftest.py``, ``repro trace``) calls
:func:`repro.kernels.warmup` before any timed section and stamps
``bench_meta()`` into recorded rows, so first-call JIT compilation can
never contaminate kernel timings — it is ledgered as ``compile_seconds``
instead.
"""

import numpy as np

from repro import kernels


def test_warmup_shape_and_caching():
    info = kernels.warmup(force=True)
    assert info["available"] == kernels.numba_available()
    assert info["tier"] == kernels.default_tier()
    for key in ("cold_seconds", "warm_seconds", "compile_seconds"):
        assert info[key] >= 0.0
    assert info["cached"] is False
    again = kernels.warmup()
    assert again["cached"] is True
    assert again["compile_seconds"] == info["compile_seconds"]


def test_warmup_without_numba_is_a_noop():
    if kernels.numba_available():
        return  # the compiled branch is covered by the numba CI leg
    info = kernels.warmup(force=True)
    assert info["kernels"] == {}
    assert info["compile_seconds"] == 0.0


def test_warmup_compiles_every_kernel():
    if not kernels.numba_available():
        return
    info = kernels.warmup(force=True)
    assert set(info["kernels"]) == set(kernels.KERNEL_NAMES)
    # Cold (compile) vs warm (steady-state) recorded separately per kernel.
    for stats in info["kernels"].values():
        assert stats["cold_seconds"] >= stats["warm_seconds"] >= 0.0
        assert stats["compile_seconds"] == max(
            stats["cold_seconds"] - stats["warm_seconds"], 0.0
        )


def test_bench_meta_keys():
    meta = kernels.bench_meta()
    assert meta["kernel_tier"] == kernels.default_tier()
    assert isinstance(meta["compile_seconds"], float)
    assert meta["compile_seconds"] >= 0.0


def test_warmup_calls_are_valid_invocations():
    # The tiny warmup inputs must satisfy every kernel's contract when run
    # through the pure-Python bodies (so a numba compile of the same calls
    # cannot type-fail either).
    for name, args in kernels._warmup_calls():
        fn = getattr(kernels.loops, name)
        fn = fn.py_func if hasattr(fn, "py_func") else fn
        result = fn(*[a.copy() if isinstance(a, np.ndarray) else a for a in args])
        if name == "delete_match":
            n_miss, n_succ, probe = result
            assert (n_miss, n_succ) == (0, 1)  # the delete consumes the insert
