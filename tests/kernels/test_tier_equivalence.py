"""End-to-end compiled-vs-default bit-identity through the public APIs.

Each test runs a whole workload twice — once at the explicitly-pinned
``vectorised`` tier, once at ``compiled`` (under ``force_available`` so the
path is driven with or without numba) — and diffs every observable:
labels, parents, hop totals, counters, profile metadata.
"""

import numpy as np

from repro import kernels
from repro.adjacency.csr import build_csr
from repro.core.components import connected_components
from repro.core.connectivity import ConnectivityIndex
from repro.core.linkcut import LinkCutForest
from repro.generators.rmat import rmat_graph


def _csr(scale=9, seed=17):
    return build_csr(rmat_graph(scale=scale, edge_factor=8, seed=seed))


def test_connected_components_tiers(monkeypatch):
    g = _csr()
    monkeypatch.setenv(kernels.ENV_VAR, "vectorised")
    ref = connected_components(g)
    monkeypatch.setenv(kernels.ENV_VAR, "compiled")
    with kernels.force_available():
        jit = connected_components(g)
    np.testing.assert_array_equal(jit.labels, ref.labels)
    assert (jit.n_passes, jit.jump_rounds, jit.arcs_processed) == (
        ref.n_passes,
        ref.jump_rounds,
        ref.arcs_processed,
    )
    assert ref.meta["kernel_tier"] == "vectorised"
    assert jit.meta["kernel_tier"] == "compiled"
    # The tier rides into the work profile's meta.
    assert jit.profile(g).meta["kernel_tier"] == "compiled"


def test_forest_construction_and_queries_tiers(monkeypatch):
    g = _csr(seed=23)
    monkeypatch.setenv(kernels.ENV_VAR, "vectorised")
    f_ref, rec_ref = LinkCutForest.from_csr(g)
    monkeypatch.setenv(kernels.ENV_VAR, "compiled")
    with kernels.force_available():
        f_jit, rec_jit = LinkCutForest.from_csr(g)
    np.testing.assert_array_equal(f_jit.parent, f_ref.parent)
    assert rec_jit.max_depth == rec_ref.max_depth

    rng = np.random.default_rng(2)
    us = rng.integers(0, g.n, 4000).astype(np.int64)
    vs = rng.integers(0, g.n, 4000).astype(np.int64)
    monkeypatch.setenv(kernels.ENV_VAR, "vectorised")
    ref = ConnectivityIndex(f_ref).query_batch(us, vs)
    monkeypatch.setenv(kernels.ENV_VAR, "compiled")
    with kernels.force_available():
        jit = ConnectivityIndex(f_jit).query_batch(us, vs)
    np.testing.assert_array_equal(jit.connected, ref.connected)
    assert jit.total_hops == ref.total_hops
    assert ref.profile.meta["kernel_tier"] == "vectorised"
    assert jit.profile.meta["kernel_tier"] == "compiled"


def test_insert_batch_tiers(monkeypatch):
    g = _csr(scale=8, seed=29)
    rng = np.random.default_rng(5)
    us = rng.integers(0, g.n, 1500).astype(np.int64)
    vs = rng.integers(0, g.n, 1500).astype(np.int64)
    for rule, comp in (("rank", "halving"), ("size", "none"), ("rem", "splitting")):
        monkeypatch.setenv(kernels.ENV_VAR, "vectorised")
        idx_ref = ConnectivityIndex.from_csr(g)
        ref = idx_ref.insert_batch(us, vs, union_rule=rule, compaction=comp)
        monkeypatch.setenv(kernels.ENV_VAR, "compiled")
        with kernels.force_available():
            idx_jit = ConnectivityIndex.from_csr(g)
            jit = idx_jit.insert_batch(us, vs, union_rule=rule, compaction=comp)
        np.testing.assert_array_equal(jit.linked, ref.linked)
        np.testing.assert_array_equal(idx_jit.forest.parent, idx_ref.forest.parent)
        assert jit.total_hops == ref.total_hops
        assert jit.profile.meta["counters"] == ref.profile.meta["counters"]
        assert jit.profile.meta["kernel_tier"] == "compiled"


def test_scalar_tier_findroot_batch_matches(monkeypatch):
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    g = _csr(scale=8, seed=31)
    f_ref, _ = LinkCutForest.from_csr(g)
    f_sca, _ = LinkCutForest.from_csr(g)
    f_sca.kernel_tier = "scalar"
    rng = np.random.default_rng(9)
    q = rng.integers(0, g.n, 700).astype(np.int64)
    h_ref, h_sca = f_ref.hops, f_sca.hops
    np.testing.assert_array_equal(f_sca.findroot_batch(q), f_ref.findroot_batch(q))
    assert f_sca.hops - h_sca == f_ref.hops - h_ref
