"""Tests for the compiled kernel tier (:mod:`repro.kernels`)."""
