"""Dispatch semantics of the three-level kernel tier.

Precedence (env var > instance attribute > auto-probe), validation errors,
the silent import probe, and the interaction with the ``use_bulkops``
dispatch the tier extends.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro import kernels
from repro.adjacency import bulkops
from repro.adjacency.dynarr import DynArrAdjacency
from repro.connectit.unionfind import UnionFind
from repro.core.linkcut import LinkCutForest
from repro.errors import GraphError

#: Skip marker for tests that need a real numba (the uninstalled path is
#: covered by everything else in this package via ``force_available``).
requires_numba = pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed (pip install repro[jit])"
)


class TestPrecedence:
    def test_default_is_probe_result(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        expected = "compiled" if kernels.numba_available() else "vectorised"
        assert kernels.default_tier() == expected
        assert kernels.resolve_tier() == expected
        assert kernels.resolve_tier(object()) == expected

    def test_attribute_beats_probe(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        uf = UnionFind(4)
        uf.kernel_tier = "scalar"
        assert kernels.resolve_tier(uf) == "scalar"

    def test_env_beats_attribute(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "vectorised")
        forest = LinkCutForest(4)
        forest.kernel_tier = "scalar"
        assert kernels.resolve_tier(forest) == "vectorised"

    def test_none_attribute_falls_through(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        rep = DynArrAdjacency(4)
        assert rep.kernel_tier is None
        assert kernels.resolve_tier(rep) == kernels.default_tier()

    def test_forced_availability_flips_default(self):
        with kernels.force_available():
            assert kernels.default_tier() == "compiled"
            assert kernels.resolve_tier() == "compiled"


class TestValidation:
    def test_unknown_tier_attribute(self):
        uf = UnionFind(4)
        uf.kernel_tier = "turbo"
        with pytest.raises(GraphError, match="unknown kernel tier"):
            kernels.resolve_tier(uf)

    def test_unknown_tier_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "turbo")
        with pytest.raises(GraphError, match="unknown kernel tier"):
            kernels.resolve_tier()

    @pytest.mark.skipif(
        kernels.numba_available(), reason="needs the numba-less environment"
    )
    def test_compiled_without_numba_is_a_clear_error(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "compiled")
        with pytest.raises(GraphError, match=r"repro\[jit\]"):
            kernels.resolve_tier()

    def test_unknown_kernel_name(self):
        with pytest.raises(GraphError, match="unknown kernel"):
            kernels.get("frobnicate")


class TestProbe:
    def test_import_emits_no_warnings(self):
        # The satellite contract: `import repro` is silent without numba.
        code = "import warnings; warnings.simplefilter('error'); import repro"
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr.strip() == ""

    def test_probe_state_is_consistent(self):
        if kernels.numba_available():
            assert kernels.probe_error() is None
            assert kernels.numba_version()
        else:
            assert kernels.probe_error()
            assert kernels.numba_version() is None

    def test_describe_shape(self):
        d = kernels.describe()
        assert set(d["kernels"]) == set(kernels.KERNEL_NAMES)
        assert d["default_tier"] in kernels.TIERS
        assert d["available"] == kernels.numba_available()

    @requires_numba
    def test_compiled_kernels_are_dispatchers(self):
        # With numba installed every kernel must be a JIT Dispatcher.
        for name in kernels.KERNEL_NAMES:
            assert hasattr(kernels.get(name), "py_func"), name


class TestBulkopsInteraction:
    def test_scalar_tier_overrides_use_bulkops(self):
        rep = DynArrAdjacency(8)
        rep.use_bulkops = True
        rep.kernel_tier = "scalar"
        assert not bulkops.enabled(rep, 10_000)

    def test_vectorised_tier_keeps_bulkops_dispatch(self):
        rep = DynArrAdjacency(8)
        rep.use_bulkops = True
        rep.kernel_tier = "vectorised"
        assert bulkops.enabled(rep, 10_000)

    def test_scalar_tier_applies_scalar_semantics(self):
        rng = np.random.default_rng(0)
        op = np.where(rng.random(300) < 0.6, 1, -1).astype(np.int8)
        src = rng.integers(0, 8, 300)
        dst = rng.integers(0, 8, 300)
        a = DynArrAdjacency(8)
        a.use_bulkops = True
        a.kernel_tier = "scalar"
        b = DynArrAdjacency(8)
        m_a = a.apply_arcs(op, src, dst)
        m_b = b.apply_arcs_scalar(op, src, dst)
        assert m_a == m_b
        from dataclasses import asdict

        assert asdict(a.stats) == asdict(b.stats)
