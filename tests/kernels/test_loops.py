"""Direct loop-vs-reference equivalence for the fused kernel bodies.

These exercise :mod:`repro.kernels.loops` head-on (through
:func:`repro.kernels.get`, so a real numba Dispatcher is covered when
installed): the union-find loops against the scalar :class:`UnionFind`
across all 12 rule × compaction combinations, the pointer chase against the
level-synchronous batch, and the SV loop against the numpy pass structure.
The ``apply_mixed`` delete-matching path has its own end-to-end coverage in
``tests/adjacency/test_equivalence.py``.
"""

import numpy as np
import pytest

from repro import kernels
from repro.connectit.unionfind import COMPACTION_RULES, UNION_RULES, UnionFind
from repro.core.components import connected_components
from repro.core.linkcut import LinkCutForest
from repro.generators.rmat import rmat_graph
from repro.adjacency.csr import build_csr


def random_arcs(seed, n, k):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, n, k).astype(np.int64),
        rng.integers(0, n, k).astype(np.int64),
    )


@pytest.mark.parametrize("rule", UNION_RULES)
@pytest.mark.parametrize("comp", COMPACTION_RULES)
def test_union_arcs_matches_scalar(rule, comp):
    n = 200
    src, dst = random_arcs(13, n, 1500)
    ref = UnionFind(n, union_rule=rule, compaction=comp)
    hooks_ref = ref.union_arcs(src, dst)

    jit = UnionFind(n, union_rule=rule, compaction=comp)
    with kernels.force_available():
        linked = jit.union_arcs_compiled(src, dst)
    assert int(np.count_nonzero(linked)) == hooks_ref
    np.testing.assert_array_equal(jit.parent, ref.parent)
    if rule == "rank":
        np.testing.assert_array_equal(jit.rank, ref.rank)
    if rule == "size":
        np.testing.assert_array_equal(jit.size, ref.size)
    assert jit.counters.to_dict() == ref.counters.to_dict()


@pytest.mark.parametrize("rule", UNION_RULES)
def test_union_arcs_pre_resolved_convention(rule):
    # Equal endpoints with pre_resolved: one union attempt, nothing else —
    # the insert_batch contract for edges its findroot pass resolved.
    n = 10
    src = np.array([3, 3, 4], dtype=np.int64)
    dst = np.array([3, 5, 4], dtype=np.int64)
    uf = UnionFind(n, union_rule=rule)
    with kernels.force_available():
        linked = uf.union_arcs_compiled(src, dst, pre_resolved=True)
    assert linked.tolist() == [False, True, False]
    c = uf.counters
    assert c.unions == 3
    assert c.hooks == 1
    if rule != "rem":
        assert c.finds == 2  # only the genuine union performed finds


def test_findroot_batch_matches_vectorised():
    g = build_csr(rmat_graph(scale=9, edge_factor=8, seed=3))
    forest, _ = LinkCutForest.from_csr(g)
    rng = np.random.default_rng(1)
    queries = rng.integers(0, g.n, 2000).astype(np.int64)

    before = forest.hops
    ref_roots = forest.findroot_batch(queries)
    ref_hops = forest.hops - before

    v = queries.copy()
    with kernels.force_available():
        hops = int(kernels.get("findroot_batch")(forest.parent, v))
    np.testing.assert_array_equal(v, ref_roots)
    assert hops == ref_hops


def test_sv_components_matches_numpy():
    for seed in (3, 4, 5):
        g = build_csr(rmat_graph(scale=8, edge_factor=6, seed=seed))
        ref = connected_components(g)
        labels = np.arange(g.n, dtype=np.int64)
        src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees())
        limit = 2 * int(np.ceil(np.log2(g.n + 1))) + 4
        with kernels.force_available():
            passes, jumps, arcs = kernels.get("sv_components")(
                labels, src, g.targets, limit
            )
        np.testing.assert_array_equal(labels, ref.labels)
        assert (int(passes), int(jumps), int(arcs)) == (
            ref.n_passes,
            ref.jump_rounds,
            ref.arcs_processed,
        )


def test_sv_components_respects_max_passes():
    # A long path needs many passes; the limit must clip identically.
    n = 120
    src = np.concatenate(
        [np.arange(n - 1, dtype=np.int64), np.arange(1, n, dtype=np.int64)]
    )
    dst = np.concatenate(
        [np.arange(1, n, dtype=np.int64), np.arange(n - 1, dtype=np.int64)]
    )
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.add.at(offsets, src + 1, 1)
    order = np.argsort(src, kind="stable")
    from repro.adjacency.csr import CSRGraph

    g = CSRGraph(n, np.cumsum(offsets), dst[order])
    ref = connected_components(g, max_passes=1)
    with kernels.force_available():
        jit = connected_components(g, max_passes=1, kernel_tier="compiled")
    np.testing.assert_array_equal(jit.labels, ref.labels)
    assert jit.n_passes == ref.n_passes == 1
    assert jit.jump_rounds == ref.jump_rounds
