"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.errors import GraphError, VertexError
from repro.util.validation import (
    as_index_array,
    check_positive,
    check_probability,
    check_same_length,
    check_vertex_ids,
)


class TestAsIndexArray:
    def test_list(self):
        out = as_index_array([1, 2, 3])
        assert out.dtype == np.int64
        assert out.tolist() == [1, 2, 3]

    def test_integral_floats_ok(self):
        assert as_index_array([1.0, 2.0]).tolist() == [1, 2]

    def test_fractional_floats_rejected(self):
        with pytest.raises(GraphError):
            as_index_array([1.5])

    def test_scalar_rejected(self):
        with pytest.raises(GraphError):
            as_index_array(5)

    def test_2d_rejected(self):
        with pytest.raises(GraphError):
            as_index_array([[1, 2]])

    def test_bool_rejected(self):
        with pytest.raises(GraphError):
            as_index_array([True, False])

    def test_string_rejected(self):
        with pytest.raises(GraphError):
            as_index_array(["a"])

    def test_uint_accepted(self):
        out = as_index_array(np.array([1, 2], dtype=np.uint32))
        assert out.dtype == np.int64

    def test_empty_ok(self):
        assert as_index_array([]).size == 0


class TestCheckVertexIds:
    def test_in_range(self):
        assert check_vertex_ids([0, 4], 5).tolist() == [0, 4]

    def test_too_large(self):
        with pytest.raises(VertexError, match="out of range"):
            check_vertex_ids([5], 5)

    def test_negative(self):
        with pytest.raises(VertexError):
            check_vertex_ids([-1], 5)

    def test_empty(self):
        assert check_vertex_ids([], 5).size == 0


class TestCheckSameLength:
    def test_equal(self):
        a = np.zeros(3)
        assert check_same_length([("a", a), ("b", a)]) == 3

    def test_mismatch(self):
        with pytest.raises(GraphError, match="length mismatch"):
            check_same_length([("a", np.zeros(3)), ("b", np.zeros(4))])

    def test_empty_iterable(self):
        assert check_same_length([]) == 0


class TestScalarChecks:
    def test_positive(self):
        assert check_positive(2.0, "x") == 2.0
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.1, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")
