"""Tests for repro.util.seeding."""

import numpy as np
import pytest

from repro.util.seeding import DEFAULT_SEED, make_rng, mix_seed, spawn_rngs


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1 << 30, 10)
        b = make_rng(DEFAULT_SEED).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_int_seed_reproducible(self):
        assert np.array_equal(
            make_rng(5).integers(0, 100, 20), make_rng(5).integers(0, 100, 20)
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            make_rng(5).integers(0, 1 << 40, 20), make_rng(6).integers(0, 1 << 40, 20)
        )

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 5)) == 5
        assert spawn_rngs(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_streams_independent_and_reproducible(self):
        a1, b1 = spawn_rngs(9, 2)
        a2, b2 = spawn_rngs(9, 2)
        xa1 = a1.integers(0, 1 << 40, 50)
        assert np.array_equal(xa1, a2.integers(0, 1 << 40, 50))
        assert not np.array_equal(xa1, b1.integers(0, 1 << 40, 50))
        # b-stream reproducible too
        b1_fresh = spawn_rngs(9, 2)[1]
        assert np.array_equal(
            b1_fresh.integers(0, 100, 10), b2.integers(0, 100, 10)
        )

    def test_spawn_from_generator(self):
        g = np.random.default_rng(3)
        children = spawn_rngs(g, 3)
        assert len(children) == 3


class TestMixSeed:
    def test_deterministic(self):
        assert mix_seed(1, "a", 2) == mix_seed(1, "a", 2)

    def test_order_sensitive(self):
        assert mix_seed(1, "a", "b") != mix_seed(1, "b", "a")

    def test_component_changes_value(self):
        assert mix_seed(1) != mix_seed(1, "x")
        assert mix_seed(1, "x") != mix_seed(1, "y")

    def test_result_is_valid_numpy_seed(self):
        s = mix_seed(DEFAULT_SEED, "timestamps")
        assert 0 <= s < (1 << 63)
        np.random.default_rng(s)  # must not raise

    def test_large_seed_no_overflow_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            mix_seed((1 << 62) + 12345, "tag")
