"""Tests for repro.util.mups."""

import numpy as np
import pytest

from repro.util.mups import format_rate, mups, speedup_series, updates_per_second


class TestRates:
    def test_updates_per_second(self):
        assert updates_per_second(1000, 2.0) == 500.0

    def test_mups(self):
        assert mups(25_000_000, 1.0) == pytest.approx(25.0)

    def test_zero_updates_ok(self):
        assert mups(0, 1.0) == 0.0

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            updates_per_second(10, 0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            updates_per_second(10, -1.0)

    def test_negative_updates_rejected(self):
        with pytest.raises(ValueError):
            updates_per_second(-1, 1.0)


class TestFormatRate:
    @pytest.mark.parametrize(
        "rate,expect",
        [
            (25e6, "25.00 MUPS"),
            (2.5e9, "2.50 GUPS"),
            (1500.0, "1.50 KUPS"),
            (3.0, "3.00 UPS"),
        ],
    )
    def test_units(self, rate, expect):
        assert format_rate(rate) == expect

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_rate(-1.0)


class TestSpeedupSeries:
    def test_basic(self):
        s = speedup_series([8.0, 4.0, 2.0, 1.0])
        assert np.allclose(s, [1, 2, 4, 8])

    def test_starts_at_one(self):
        assert speedup_series([3.7])[0] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            speedup_series([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            speedup_series([1.0, 0.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            speedup_series(np.ones((2, 2)))
