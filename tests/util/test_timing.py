"""Tests for repro.util.timing."""

import time

import pytest

from repro.util.timing import Timer, format_seconds


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_frozen_after_exit(self):
        with Timer() as t:
            pass
        e1 = t.elapsed
        time.sleep(0.005)
        assert t.elapsed == e1

    def test_live_while_running(self):
        with Timer() as t:
            first = t.elapsed
            time.sleep(0.005)
            assert t.elapsed > first

    def test_survives_exception(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t:
                raise RuntimeError("boom")
        assert t.elapsed >= 0.0


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expect",
        [
            (0.0, "0 s"),
            (5e-9, "5.0 ns"),
            (5e-6, "5.0 us"),
            (5e-3, "5.0 ms"),
            (5.0, "5.00 s"),
            (300.0, "5.0 min"),
        ],
    )
    def test_units(self, value, expect):
        assert format_seconds(value) == expect

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)
