"""Tests for repro.util.timing."""

import time

import pytest

from repro.util.timing import Timer, format_seconds


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_frozen_after_exit(self):
        with Timer() as t:
            pass
        e1 = t.elapsed
        time.sleep(0.005)
        assert t.elapsed == e1

    def test_live_while_running(self):
        with Timer() as t:
            first = t.elapsed
            time.sleep(0.005)
            assert t.elapsed > first

    def test_survives_exception(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t:
                raise RuntimeError("boom")
        assert t.elapsed >= 0.0
        assert not t.running


class TestTimerReuse:
    def test_repeated_blocks_accumulate(self):
        t = Timer()
        with t:
            time.sleep(0.005)
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed > first
        assert t.laps == 2

    def test_accumulation_is_additive(self):
        t = Timer()
        for _ in range(3):
            with t:
                time.sleep(0.003)
        assert 0.009 <= t.elapsed < 1.0
        assert t.laps == 3

    def test_nested_counts_outermost_once(self):
        t = Timer()
        with t:
            with t:
                time.sleep(0.005)
            inner_done = t.elapsed
            assert t.running  # still inside the outer block
        assert t.laps == 1
        assert t.elapsed >= inner_done >= 0.005

    def test_live_elapsed_includes_accumulated(self):
        t = Timer()
        with t:
            time.sleep(0.003)
        with t:
            assert t.elapsed >= 0.003  # prior lap included while running

    def test_reset(self):
        t = Timer()
        with t:
            time.sleep(0.002)
        t.reset()
        assert t.elapsed == 0.0 and t.laps == 0

    def test_reset_while_running_rejected(self):
        t = Timer()
        with t:
            with pytest.raises(RuntimeError):
                t.reset()

    def test_unmatched_exit_is_ignored(self):
        t = Timer()
        t.__exit__(None, None, None)
        assert t.elapsed == 0.0 and t.laps == 0 and not t.running


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expect",
        [
            (0.0, "0 s"),
            (5e-9, "5.0 ns"),
            (5e-6, "5.0 us"),
            (5e-3, "5.0 ms"),
            (5.0, "5.00 s"),
            (300.0, "5.0 min"),
        ],
    )
    def test_units(self, value, expect):
        assert format_seconds(value) == expect

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)
