"""Tests for graph persistence (npz and text edge lists)."""

import numpy as np
import pytest

from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.rmat import rmat_graph
from repro.io import load_npz, read_edgelist, save_npz, write_edgelist


@pytest.fixture
def stamped():
    return EdgeList(
        6,
        np.array([0, 2, 4]),
        np.array([1, 3, 5]),
        ts=np.array([7, 8, 9]),
        w=np.array([1, 2, 3]),
        meta={"generator": "test"},
    )


class TestNpz:
    def test_roundtrip_full(self, tmp_path, stamped):
        p = tmp_path / "g.npz"
        save_npz(p, stamped)
        back = load_npz(p)
        assert back.n == stamped.n
        assert np.array_equal(back.src, stamped.src)
        assert np.array_equal(back.dst, stamped.dst)
        assert np.array_equal(back.ts, stamped.ts)
        assert np.array_equal(back.w, stamped.w)
        assert back.directed == stamped.directed
        assert back.meta["generator"] == "test"

    def test_roundtrip_minimal(self, tmp_path):
        g = EdgeList(3, np.array([0]), np.array([1]), directed=True)
        p = tmp_path / "g.npz"
        save_npz(p, g)
        back = load_npz(p)
        assert back.ts is None and back.w is None
        assert back.directed

    def test_roundtrip_rmat(self, tmp_path):
        g = rmat_graph(8, 6, seed=91, ts_range=(1, 10))
        p = tmp_path / "rmat.npz"
        save_npz(p, g)
        back = load_npz(p)
        assert back.m == g.m
        assert np.array_equal(back.ts, g.ts)
        assert back.meta["scale"] == 8

    def test_empty_graph(self, tmp_path):
        g = EdgeList(4, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        p = tmp_path / "empty.npz"
        save_npz(p, g)
        assert load_npz(p).m == 0


class TestText:
    def test_roundtrip_full(self, tmp_path, stamped):
        p = tmp_path / "g.txt"
        write_edgelist(p, stamped)
        back = read_edgelist(p)
        assert back.n == stamped.n  # from the header
        assert np.array_equal(back.src, stamped.src)
        assert np.array_equal(back.ts, stamped.ts)
        assert np.array_equal(back.w, stamped.w)

    def test_roundtrip_no_header(self, tmp_path, stamped):
        p = tmp_path / "g.txt"
        write_edgelist(p, stamped, header=False)
        back = read_edgelist(p)
        assert back.n == 6  # max id + 1

    def test_explicit_n(self, tmp_path, stamped):
        p = tmp_path / "g.txt"
        write_edgelist(p, stamped, header=False)
        assert read_edgelist(p, n=100).n == 100

    def test_two_column_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n1 2\n")
        back = read_edgelist(p)
        assert back.m == 2 and back.ts is None

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# comment\n\n0 1\n# another\n1 2\n")
        assert read_edgelist(p).m == 2

    def test_directed_from_header(self, tmp_path):
        g = EdgeList(3, np.array([0]), np.array([1]), directed=True)
        p = tmp_path / "g.txt"
        write_edgelist(p, g)
        assert read_edgelist(p).directed

    def test_inconsistent_columns_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n1 2 3\n")
        with pytest.raises(GraphError, match="inconsistent"):
            read_edgelist(p)

    def test_non_integer_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 x\n")
        with pytest.raises(GraphError, match="non-integer"):
            read_edgelist(p)

    def test_too_many_columns_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 2 3 4\n")
        with pytest.raises(GraphError, match="columns"):
            read_edgelist(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("")
        back = read_edgelist(p)
        assert back.m == 0 and back.n == 0

    def test_three_columns_are_ts(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 5\n")
        back = read_edgelist(p)
        assert back.ts.tolist() == [5] and back.w is None
