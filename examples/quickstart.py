#!/usr/bin/env python
"""Quickstart: the library in five minutes.

Builds a small-world temporal graph with the paper's R-MAT parameters,
ingests it through the hybrid dynamic representation, applies a live update
stream, and runs every analysis kernel once.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import DynamicGraph
from repro.generators import mixed_stream, rmat_graph
from repro.util.timing import Timer, format_seconds


def main() -> None:
    # 1. A synthetic interaction network: 2^12 entities, ~10 interactions
    #    each, time-stamped 1..100 (paper section 1.2 setup, small scale).
    graph = rmat_graph(scale=12, edge_factor=10, seed=7, ts_range=(1, 100))
    print(f"generated {graph}")

    # 2. Ingest through the paper's Hybrid-arr-treap structure.
    with Timer() as t:
        g = DynamicGraph.from_edgelist(graph, representation="hybrid")
    print(f"ingested into {g!r} in {format_seconds(t.elapsed)}")
    print(f"  structure footprint: {g.memory_bytes() / 1e6:.1f} MB, "
          f"{g.rep.n_treap_vertices()} vertices migrated to treaps")

    # 3. Apply a live stream: 5000 updates, 75% insertions / 25% deletions.
    stream = mixed_stream(graph, 5000, insert_frac=0.75, seed=11)
    res = g.apply(stream)
    print(f"applied {res.n_updates} updates "
          f"({stream.n_inserts} ins / {stream.n_deletes} del), "
          f"{res.misses} deletes missed, host {format_seconds(res.host_seconds)}")

    # 4. Connectivity: spanning forest + queries (paper section 3.1).
    index = g.spanning_forest()
    comps = g.connected_components()
    print(f"components: {comps.n_components} "
          f"(largest has {comps.largest()[1]} vertices)")
    print(f"query(0, 1) = {index.query(0, 1)}")
    queries = index.random_query_batch(10_000, seed=3)
    print(f"10k random queries: {queries.hops_per_query:.1f} pointer hops each")

    # 5. Traversal with a time filter (section 3.3).
    bfs = g.bfs(0, ts_range=(20, 70))
    print(f"time-filtered BFS from 0: reached {bfs.n_reached} vertices "
          f"in {bfs.n_levels} levels")

    # 6. A temporal snapshot (section 3.2).
    snap = g.induced_interval(20, 70)
    print(f"induced snapshot (20,70): {snap.n_affected} edges kept "
          f"via the {snap.strategy!r} strategy")

    # 7. Who matters? Approximate temporal betweenness (section 3.4).
    bc = g.betweenness(sources=64, seed=5, temporal=True)
    top = bc.top(5)
    print("top-5 temporal betweenness:")
    for v, score in top:
        print(f"  vertex {v:5d}  score {score:10.1f}  degree {g.degree(v)}")


if __name__ == "__main__":
    main()
