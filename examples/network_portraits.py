#!/usr/bin/env python
"""Network portraits: the small-world fingerprint across graph models.

The paper's premise (section 1): real-world networks share "a low graph
diameter, unbalanced degree distributions, self-similarity, and the presence
of dense sub-graphs", and algorithms should exploit that topology.  This
example measures the fingerprint on three classical models with the full
analysis toolkit — R-MAT (the paper's generator), Watts–Strogatz (the
small-world original) and Erdős–Rényi (the unstructured control) — and shows
why the R-MAT column is the one that stresses dynamic structures.

Run:  python examples/network_portraits.py
"""

from __future__ import annotations

from repro.adjacency.csr import build_csr
from repro.core.community import label_propagation_communities, modularity
from repro.core.metrics import (
    average_clustering,
    core_numbers,
    degree_stats,
    effective_diameter,
    giant_component_fraction,
)
from repro.core.pagerank import pagerank
from repro.generators.reference import erdos_renyi, watts_strogatz
from repro.generators.rmat import rmat_graph

N_SCALE = 11  # 2048 vertices
AVG_DEG = 8


def portrait(name, graph):
    csr = build_csr(graph)
    stats = degree_stats(csr)
    eff, _ = effective_diameter(csr, samples=8, seed=1)
    cc = average_clustering(csr, samples=min(300, csr.n), seed=1)
    comm = label_propagation_communities(csr, seed=1)
    pr = pagerank(csr)
    cores = core_numbers(csr)
    return {
        "model": name,
        "max_deg": stats.max,
        "mean_deg": round(stats.mean, 1),
        "top1%_arcs": f"{100 * stats.top1pct_arc_share:.0f}%",
        "eff_diam": round(eff, 1),
        "clustering": round(cc, 3),
        "giant%": f"{100 * giant_component_fraction(csr):.0f}%",
        "max_core": int(cores.max()),
        "communities": comm.n_communities,
        "modularity": round(modularity(csr, comm.labels), 3),
        "pr_top_share": f"{100 * sorted(pr.scores)[-20:][0] * 20:.0f}%~",
    }


def main() -> None:
    n = 1 << N_SCALE
    graphs = [
        ("R-MAT (paper)", rmat_graph(N_SCALE, AVG_DEG // 2 * 2, seed=7)),
        ("Watts-Strogatz", watts_strogatz(n, AVG_DEG, 0.1, seed=7)),
        ("Erdos-Renyi", erdos_renyi(n, AVG_DEG / (n - 1), seed=7)),
    ]
    rows = [portrait(name, g) for name, g in graphs]
    cols = list(rows[0].keys())
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols}
    print(" ".join(c.rjust(widths[c]) for c in cols))
    for r in rows:
        print(" ".join(str(r[c]).rjust(widths[c]) for c in cols))

    print(
        "\nreading the table: the R-MAT column pairs a tiny effective "
        "diameter with an extreme\ndegree skew (one hub can hold a double-"
        "digit share of all arcs) — the combination the\npaper's hybrid "
        "structure (hot vertices in treaps) and degree-split BFS exist for.\n"
        "Watts-Strogatz is small-world but degree-balanced; Erdos-Renyi is "
        "neither skewed nor\nclustered, which is why static CSR handles it "
        "without any of the paper's machinery."
    )


if __name__ == "__main__":
    main()
