#!/usr/bin/env python
"""Machine room: watch one workload scale across the paper's three machines.

Runs a real construction + deletion workload once, extracts its measured
work profile, scales it to the paper's 33.5M-vertex instance, and sweeps it
over the UltraSPARC T1, UltraSPARC T2 and IBM Power 570 models — printing
the same time / speedup / MUPS tables the experiment harness uses for the
figures, plus a per-component cycle breakdown that shows *why* each machine
behaves as it does.

Run:  python examples/machine_room.py
"""

from __future__ import annotations


from repro.adjacency.dynarr import DynArrAdjacency
from repro.adjacency.hybrid import HybridAdjacency
from repro.core.update_engine import apply_stream, construct
from repro.experiments.common import footprint_coefficients
from repro.generators.rmat import rmat_graph
from repro.generators.streams import deletion_stream
from repro.machine import (
    POWER_570,
    ULTRASPARC_T1,
    ULTRASPARC_T2,
    SimulatedMachine,
)
from repro.machine.scale import ScaledInstance, scale_profile

SCALE = 13
TARGET_N = 1 << 25
TARGET_M = 268_000_000


def main() -> None:
    graph = rmat_graph(SCALE, 10, seed=5)
    print(f"measured workload: construction of {graph} plus 7.5% deletions\n")

    rep = HybridAdjacency(graph.n, seed=1)
    res = construct(rep, graph)
    bpv, bpe = footprint_coefficients(rep, graph.n, 2 * graph.m)
    inst = ScaledInstance(
        n_measured=graph.n, m_measured=graph.m,
        n_target=TARGET_N, m_target=TARGET_M,
        ops_measured=graph.m, ops_target=TARGET_M,
        bytes_per_vertex=bpv, bytes_per_edge=2 * bpe,
    )
    profile = scale_profile(res.profile, inst, logdeg_correction=True)
    print(f"profile scaled to n={TARGET_N:,} / m={TARGET_M:,} "
          f"(footprint {inst.footprint_target_bytes / 1e9:.1f} GB)\n")

    for spec in (ULTRASPARC_T1, ULTRASPARC_T2, POWER_570):
        sim = SimulatedMachine(spec)
        sweep = sim.sweep(profile, n_items=TARGET_M)
        print(sweep.table())
        best_p, best_t = sweep.best()
        print(f"  -> best: {best_t:.2f}s at {best_p} threads "
              f"(cache: {spec.cache_bytes >> 20} MB, "
              f"MLP cap: {spec.memory_concurrency(spec.max_threads):.0f})\n")

    # Why does the T2 stop scaling? Show the component breakdown.
    sim = SimulatedMachine(ULTRASPARC_T2)
    print("UltraSPARC T2 cycle breakdown (construction phase):")
    print(f"{'threads':>8} {'alu':>10} {'rand_mem':>10} {'seq_mem':>10} "
          f"{'sync':>10} {'barrier':>10}")
    for p in (1, 8, 64):
        pc = sim.breakdown(profile, p)[0]
        print(f"{p:>8} {pc.alu:>10.3g} {pc.rand_mem:>10.3g} "
              f"{pc.seq_mem:>10.3g} {pc.sync:>10.3g} {pc.barrier:>10.3g}")
    print("\nrandom-memory latency dominates; its overlap is capped by the "
          "core's outstanding-miss budget,\nwhich is the Niagara latency-"
          "hiding story behind the paper's speedup curves.")

    # And the Figure-5 effect: the same deletions on two structures.
    print("\n-- deletion shootout at paper scale (simulated T2, 64 threads) --")
    dels = deletion_stream(graph, graph.m // 13, seed=9)
    from repro.machine.scale import rmat_size_biased_growth

    growth = rmat_size_biased_growth(SCALE, 25)
    for label, structure in (
        ("Dyn-arr", DynArrAdjacency(graph.n, expected_m=2 * graph.m)),
        ("Hybrid-arr-treap", HybridAdjacency(graph.n, seed=1)),
    ):
        construct(structure, graph)
        dres = apply_stream(
            structure, dels,
            phase_name="deletions",
            probe_scale=growth if label == "Dyn-arr" else 1.0,
        )
        dinst = ScaledInstance(
            n_measured=graph.n, m_measured=graph.m,
            n_target=TARGET_N, m_target=TARGET_M,
            ops_measured=len(dels), ops_target=20_000_000,
            bytes_per_vertex=bpv, bytes_per_edge=2 * bpe,
        )
        dprofile = scale_profile(dres.profile, dinst)
        print(f"  {label:18s} {sim.mups_at(dprofile, 64, 20_000_000):8.2f} MUPS")


if __name__ == "__main__":
    main()
