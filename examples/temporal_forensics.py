#!/usr/bin/env python
"""Temporal forensics: who connected two entities, and when?

The paper's intelligence/surveillance motivation ([9], [18]) as a runnable
analysis: given an interaction log and two entities of interest, find

1. the earliest time window in which the entities become connected,
2. the temporal path structure between them (respecting time ordering,
   section 3.4's temporal-path semantics), and
3. the broker entities that carry the most temporal shortest paths in the
   critical window (temporal betweenness).

Run:  python examples/temporal_forensics.py
"""

from __future__ import annotations


from repro.api import DynamicGraph
from repro.core.connectivity import ConnectivityIndex
from repro.generators.rmat import rmat_graph

SCALE = 11
T_MAX = 100
SUSPECT_A, SUSPECT_B = 17, 1337


def main() -> None:
    log = rmat_graph(SCALE, 10, seed=2026, ts_range=(1, T_MAX))
    g = DynamicGraph.from_edgelist(log, representation="hybrid")
    print(f"interaction log: {log.m} events over t=1..{T_MAX}, "
          f"{g.n} entities")
    print(f"subjects: A={SUSPECT_A}, B={SUSPECT_B}\n")

    # --- 1. earliest connecting window: binary search over prefixes -------
    lo, hi = 1, T_MAX
    if not _connected_by(g, hi):
        print("subjects are never connected in this log")
        return
    while lo < hi:
        mid = (lo + hi) // 2
        if _connected_by(g, mid):
            hi = mid
        else:
            lo = mid + 1
    t_connect = lo
    print(f"A and B first become connected using events up to t={t_connect}")

    # --- 2. temporal reachability at the critical time --------------------
    res = g.bfs(SUSPECT_A, ts_range=(0, t_connect))
    print(f"at t={t_connect}: B is {int(res.dist[SUSPECT_B])} hops from A "
          f"(within-window path); {res.n_reached} entities reachable from A")
    # Reconstruct one connecting path from the BFS tree.
    path = [SUSPECT_B]
    while path[-1] != SUSPECT_A:
        path.append(int(res.parent[path[-1]]))
    print("connecting chain: " + " -> ".join(map(str, reversed(path))))

    # --- 3. brokers in the critical window --------------------------------
    window = g.induced_interval(0, t_connect + 1)
    print(f"\ncritical window holds {window.n_affected} events "
          f"({window.strategy} strategy)")
    from repro.core.betweenness import temporal_betweenness

    bc = temporal_betweenness(window.graph, sources=128, seed=8, temporal=True)
    print("top broker entities by temporal betweenness in the window:")
    for v, score in bc.top(5):
        marker = ""
        if v in path:
            marker = "   <-- on the A-B chain"
        print(f"  entity {v:5d}  score {score:10.1f}{marker}")

    # --- sanity: connectivity index agrees with the window analysis -------
    idx = ConnectivityIndex.from_csr(window.graph)
    assert idx.query(SUSPECT_A, SUSPECT_B)
    early = g.induced_interval(0, t_connect - 1, inclusive=True)
    idx_early = ConnectivityIndex.from_csr(early.graph)
    # Note: induced_interval(0, t-1, inclusive) keeps labels <= t-1 < t_connect.
    assert not idx_early.query(SUSPECT_A, SUSPECT_B)
    print("\nverified: removing the final tick disconnects the subjects")


def _connected_by(g: DynamicGraph, t: int) -> bool:
    """Are the subjects connected using only events with label <= t?"""
    snap = g.induced_interval(0, t + 1)  # open interval -> labels 1..t
    idx = ConnectivityIndex.from_csr(snap.graph)
    return idx.query(SUSPECT_A, SUSPECT_B)


if __name__ == "__main__":
    main()
