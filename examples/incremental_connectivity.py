#!/usr/bin/env python
"""Incremental connectivity: maintain, don't recompute.

The point of the paper's section 3.1 — "a dynamic graph algorithm should
process queries related to a graph property faster than recomputing from
scratch, and also perform topological updates quickly" — demonstrated
head-to-head: a :class:`DynamicConnectivity` index (link-cut forest kept in
sync with the adjacency structure) versus rebuilding the spanning forest
after every batch of updates.

Run:  python examples/incremental_connectivity.py
"""

from __future__ import annotations

import numpy as np

from repro.adjacency.csr import csr_from_representation
from repro.core.connectivity import ConnectivityIndex
from repro.core.dynamic_connectivity import DynamicConnectivity
from repro.generators.rmat import rmat_graph
from repro.generators.streams import iter_batches, mixed_stream
from repro.util.seeding import make_rng
from repro.util.timing import Timer

SCALE = 10
BATCHES = 20
BATCH_SIZE = 400


def main() -> None:
    base = rmat_graph(SCALE, 8, seed=123).without_self_loops()
    stream = mixed_stream(base, BATCHES * BATCH_SIZE, 0.6, seed=7)
    rng = make_rng(42)

    # --- incremental index -------------------------------------------------
    dyn = DynamicConnectivity(base.n, seed=1)
    with Timer() as t_build:
        for u, v, ts in zip(base.src.tolist(), base.dst.tolist(),
                            base.timestamps().tolist()):
            dyn.insert_edge(u, v, ts)
    print(f"base graph: {base}")
    print(f"incremental index built in {t_build.elapsed:.2f}s "
          f"({dyn.n_components()} components)\n")

    print(f"{'batch':>6} {'edges':>7} {'comps':>6} {'incr ms':>8} "
          f"{'rebuild ms':>11} {'agree':>6}")
    total_incr = total_rebuild = 0.0
    for i, batch in enumerate(iter_batches(stream, BATCH_SIZE)):
        with Timer() as t_incr:
            dyn.apply(batch)
            queries = rng.integers(0, base.n, (50, 2))
            incr_answers = dyn.connected_batch(queries[:, 0], queries[:, 1])
        with Timer() as t_rebuild:
            index = ConnectivityIndex.from_csr(csr_from_representation(dyn.rep))
            rebuild_answers = index.forest.connected_batch(
                queries[:, 0], queries[:, 1]
            )
        agree = bool(np.array_equal(incr_answers, rebuild_answers))
        assert agree, f"divergence at batch {i}"
        total_incr += t_incr.elapsed
        total_rebuild += t_rebuild.elapsed
        print(f"{i:>6} {dyn.n_edges:>7} {dyn.n_components():>6} "
              f"{1e3 * t_incr.elapsed:>8.1f} {1e3 * t_rebuild.elapsed:>11.1f} "
              f"{'yes' if agree else 'NO'}")

    dyn.validate()
    print(f"\nmaintenance stats: {dyn.stats.tree_links} links, "
          f"{dyn.stats.tree_cuts} cuts, "
          f"{dyn.stats.replacements_found} replacements found, "
          f"{dyn.stats.replacement_scan_arcs} arcs scanned for replacements")
    speedup = total_rebuild / total_incr if total_incr else float("inf")
    print(f"host time: incremental {total_incr:.2f}s vs rebuild "
          f"{total_rebuild:.2f}s per-batch ({speedup:.1f}x)")
    print("(the simulated-machine gap is far larger: a rebuild is a full "
          "components+BFS pass, an increment is O(depth) pointer work)")


if __name__ == "__main__":
    main()
