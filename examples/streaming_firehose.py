#!/usr/bin/env python
"""Streaming firehose: a sliding-window interaction monitor.

The scenario the paper's introduction motivates — "temporal data streams
from socio-economic interactions, social networking web sites, communication
traffic" — as a runnable pipeline:

* interactions arrive in batches (a firehose of R-MAT-distributed edges);
* the monitor keeps only the *last W ticks* via
  :class:`repro.core.window.SlidingWindowGraph`: new edges insert, expired
  edges delete — exactly the sustained insert+delete mix the paper's
  Hybrid-arr-treap structure is built for — while an incremental
  connectivity index (link-cut forest) stays current;
* after every batch the monitor answers connectivity questions about
  watched entity pairs and reports component structure;
* the whole run is *live-instrumented*: per-batch metrics feed the
  background :class:`~repro.obs.live.TelemetryCollector`, and with
  ``--serve`` an OpenMetrics endpoint stays up for the duration — point
  ``python -m repro obs scrape <url> --check`` (or a real Prometheus
  agent) at it while the firehose runs.

Run:  python examples/streaming_firehose.py [--serve]
"""

from __future__ import annotations

import sys

from repro import obs
from repro.core.window import SlidingWindowGraph
from repro.generators.rmat import rmat_edges
from repro.util.seeding import make_rng
from repro.util.timing import Timer

SCALE = 11                 # 2048 entities
BATCH = 2_000              # interactions per tick
WINDOW = 8                 # ticks an interaction stays relevant
TICKS = 24
WATCHED = [(0, 1), (2, 3), (10, 500)]


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    serve = "--serve" in argv
    n = 1 << SCALE
    rng = make_rng(99)
    monitor = SlidingWindowGraph(
        n, window=WINDOW, representation="hybrid",
        track_connectivity=True, seed=1,
    )

    # Live telemetry: the collector scrapes the metrics the loop below
    # ticks into windowed time series (rates, p50/p99) as the run goes.
    obs.METRICS.reset()
    collector = obs.enable_live_telemetry(interval=0.25)
    server = None
    if serve:
        server = obs.TelemetryServer(collector=collector).start()
        print(f"live metrics: {server.url}/metrics  (scrape with "
              f"python -m repro obs scrape {server.url} --check)")

    print(f"monitoring {n} entities, window = {WINDOW} ticks x {BATCH} interactions")
    print(f"{'tick':>5} {'edges':>8} {'comps':>6} {'expired':>8} {'mem MB':>7} "
          + " ".join(f"{u}~{v}" for u, v in WATCHED))

    with Timer() as total:
        for tick in range(TICKS):
            src, dst = rmat_edges(SCALE, BATCH + 256, seed=rng)
            keep = src != dst
            src, dst = src[keep][:BATCH], dst[keep][:BATCH]
            with Timer() as batch_t:
                expired = monitor.advance(src, dst)
            answers = " ".join(
                "Y" if monitor.connected(u, v) else "." for u, v in WATCHED
            )
            obs.METRICS.inc("firehose.batches")
            obs.METRICS.inc("firehose.interactions", len(src))
            obs.METRICS.inc("firehose.expired", int(expired))
            obs.METRICS.set("firehose.live_edges", float(monitor.n_edges))
            obs.METRICS.set("firehose.components", float(monitor.n_components()))
            obs.METRICS.observe("firehose.batch_seconds", batch_t.elapsed)
            print(
                f"{tick:>5} {monitor.n_edges:>8} {monitor.n_components():>6} "
                f"{expired:>8} {monitor.rep.memory_bytes() / 1e6:>7.2f}   {answers}"
            )

    monitor.validate()
    collector.tick()  # final scrape so the summary below sees every batch
    batch_roll = collector.store.rollup("firehose.batches")
    lat = obs.METRICS.histogram("firehose.batch_seconds")
    print(f"\nlive telemetry: {len(collector.store)} series, "
          f"{collector.n_ticks} scrapes; batch rate p50 "
          f"{batch_roll.get('p50', 0.0):.1f}/s; batch latency p50 "
          f"{1e3 * lat.quantile(0.5):.0f}ms p99 {1e3 * lat.quantile(0.99):.0f}ms")
    if server is not None:
        print(f"served {server.n_scrapes} scrape(s)")
        server.stop()
    obs.disable_live_telemetry()
    assert monitor.n_edges == WINDOW * BATCH
    print(f"\nsteady state: {monitor.n_edges} live edges "
          f"({monitor.rep.n_treap_vertices()} hot vertices in treaps); "
          f"processed {TICKS * BATCH} insertions and "
          f"{(TICKS - WINDOW) * BATCH} deletions in {total.elapsed:.1f}s host time")

    # What would this churn cost on the paper's 64-thread UltraSPARC T2?
    from repro.core.update_engine import apply_stream
    from repro.edgelist import EdgeList
    from repro.generators.streams import mixed_stream
    from repro.machine.sim import SimulatedMachine
    from repro.adjacency.hybrid import HybridAdjacency

    probe = HybridAdjacency(n, seed=2)
    src, dst = rmat_edges(SCALE, 20_000, seed=rng)
    base = EdgeList(n, src, dst)
    probe_res = apply_stream(
        probe, mixed_stream(base, 20_000, 0.5, seed=4), phase_name="window-churn"
    )
    t2 = SimulatedMachine("t2")
    print(f"simulated steady-state churn rate on UltraSPARC T2 (64 threads): "
          f"{t2.mups_at(probe_res.profile, 64, 20_000):.1f} MUPS")


if __name__ == "__main__":
    main()
