"""The service's single writer: drain batched update streams, rotate epochs.

One :class:`UpdateDrainer` owns the dynamic graph.  Producers (the CLI's
stream feeder, a test, an ingest pipeline) :meth:`~UpdateDrainer.submit`
bounded :class:`~repro.generators.streams.UpdateStream` batches — typically
straight from :func:`repro.generators.parallel.iter_update_chunks` — onto a
bounded queue; the drain loop applies each batch through the vectorised /
compiled ``apply_arcs`` path (:func:`repro.core.update_engine.apply_stream`)
and publishes a fresh epoch to the :class:`~repro.service.epoch.EpochStore`
at batch boundaries.

Because the snapshot pipeline is sort-free (grouped ``to_arrays`` →
``csr_from_arrays(assume_grouped=True)``) a rotation costs one gathered
export, so the default policy publishes after **every** batch: epoch lag is
then exactly zero at each batch boundary.  ``rotate_min_interval`` coalesces
rotations for very small batches; the ``service.epoch.lag_updates`` gauge
and :attr:`UpdateDrainer.max_observed_lag` record how far the live
structure ever ran ahead, so an unbounded rebuild backlog is visible (and
gated in ``benchmarks/test_service.py``).

The queue gives backpressure, not loss: a full queue blocks the *producer*,
never the readers — queries keep running against the pinned epochs while
the writer catches up.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Optional

from repro.api import DynamicGraph
from repro.core.update_engine import apply_stream
from repro.errors import ServiceError
from repro.generators.streams import UpdateStream
from repro.obs import METRICS, span
from repro.obs.reqtrace import RequestTracer, activate, rspan
from repro.obs.slo import SloTracker
from repro.service.epoch import Epoch, EpochStore

__all__ = ["UpdateDrainer"]

#: Queue sentinel asking the drain loop to finish and exit.
_CLOSE = object()


class UpdateDrainer:
    """Single-writer drain loop: batched updates in, epochs out.

    Parameters
    ----------
    graph:
        The :class:`~repro.api.DynamicGraph` absorbing the stream.  The
        drainer is its only mutator once :meth:`start` has run.
    store:
        The :class:`~repro.service.epoch.EpochStore` rotations publish to.
    max_queue:
        Bounded queue depth (batches); a full queue blocks producers.
    rotate_min_interval:
        Minimum seconds between epoch publishes (0 = publish after every
        batch).  A final rotation always happens when the drainer closes,
        so no applied update is ever left unpublished.
    undirected:
        Whether edge updates symmetrise into two arcs; defaults to the
        graph's own directedness.
    reqtrace:
        Optional :class:`~repro.obs.reqtrace.RequestTracer`: each batch
        application becomes a ``kind="update"`` request trace, so slow
        batches land in the same slow-query store as slow queries.
    slo:
        Optional :class:`~repro.obs.slo.SloTracker` fed one latency sample
        per batch (the write-path objective).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        store: EpochStore,
        *,
        max_queue: int = 8,
        rotate_min_interval: float = 0.0,
        undirected: Optional[bool] = None,
        reqtrace: Optional[RequestTracer] = None,
        slo: Optional[SloTracker] = None,
    ) -> None:
        self.graph = graph
        self.store = store
        self.rotate_min_interval = float(rotate_min_interval)
        self.undirected = (not graph.directed) if undirected is None else bool(undirected)
        self.reqtrace = reqtrace
        self.slo = slo
        #: Test/fault-injection hook: seconds to sleep inside each batch
        #: application (counted into the batch latency the SLO sees).
        self.throttle = 0.0
        self._q: "queue.Queue[object]" = queue.Queue(maxsize=int(max_queue))
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._last_rotate = 0.0
        self.n_batches = 0
        self.n_updates = 0
        self.n_misses = 0
        self.max_observed_lag = 0
        #: Set when the drain loop died on an unexpected exception.
        self.error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "UpdateDrainer":
        """Publish the initial epoch and launch the drain thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        # Epoch 0: queries are answerable from the moment the service is up,
        # even before the first batch lands.
        self.rotate(force=True)
        self._thread = threading.Thread(
            target=self._run, name="repro-service-drainer", daemon=True
        )
        self._thread.start()
        return self

    def close(self, *, timeout: float = 30.0) -> None:
        """Stop accepting batches, drain the queue, rotate once more, join."""
        if self._closed:
            self._join(timeout)
            return
        self._closed = True
        self._q.put(_CLOSE)
        self._join(timeout)

    def _join(self, timeout: float) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():  # pragma: no cover - hung drain
                raise ServiceError("drainer did not stop within the timeout")
            self._thread = None
        if self.error is not None:
            raise ServiceError(f"drainer died: {self.error!r}") from self.error

    def __enter__(self) -> "UpdateDrainer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #

    def submit(self, stream: UpdateStream, *, timeout: Optional[float] = None) -> None:
        """Enqueue one update batch (blocks while the queue is full).

        Backpressure by design: producers wait, readers never do.  Raises
        :class:`~repro.errors.ServiceError` once the drainer is closed.
        """
        if self._closed:
            raise ServiceError("drainer is closed; no further batches accepted")
        try:
            self._q.put(stream, timeout=timeout)
        except queue.Full:
            raise ServiceError(
                f"update queue stayed full for {timeout}s (depth {self._q.maxsize})"
            ) from None
        depth = float(self._q.qsize())
        METRICS.set("service.queue.depth", depth)
        METRICS.set("service.update_queue.depth", depth)

    @property
    def queue_depth(self) -> int:
        """Batches currently waiting to be applied."""
        return self._q.qsize()

    # ------------------------------------------------------------------ #
    # writer side
    # ------------------------------------------------------------------ #

    def rotate(self, *, force: bool = False) -> Epoch:
        """Publish the current structure as a fresh epoch (writer thread).

        Keyed on ``mutation_count``: an unchanged structure republishes
        nothing (the store returns the current epoch).  ``force`` bypasses
        the time-coalescing policy, not the key.
        """
        now = time.monotonic()
        if not force and (now - self._last_rotate) < self.rotate_min_interval:
            lag = self.store.lag_of(self.graph.rep.mutation_count)
            self.max_observed_lag = max(self.max_observed_lag, lag)
            METRICS.set("service.epoch.lag_updates", float(lag))
            cur = self.store.current
            if cur is not None:
                return cur
        epoch = self.store.publish(self.graph.snapshot(), self.graph.rep.mutation_count)
        self._last_rotate = now
        METRICS.set("service.epoch.lag_updates", 0.0)
        return epoch

    def _apply(self, stream: UpdateStream) -> None:
        tracer = self.reqtrace
        trace = (
            tracer.start("service.apply_batch", kind="update", updates=len(stream))
            if tracer is not None
            else None
        )
        t_batch = time.perf_counter()
        error: Optional[str] = None
        try:
            with activate(trace):
                if self.throttle > 0:
                    time.sleep(self.throttle)
                with span("service.apply_batch", updates=len(stream)) as sp, rspan(
                    "service.drain.apply", updates=len(stream)
                ):
                    t0 = time.perf_counter()
                    res = apply_stream(
                        self.graph.rep, stream, undirected=self.undirected, reset_stats=True
                    )
                    elapsed = time.perf_counter() - t0
                    self.n_batches += 1
                    self.n_updates += res.n_updates
                    self.n_misses += res.misses
                    METRICS.inc("service.updates.batches")
                    METRICS.inc("service.updates.applied", res.n_updates)
                    METRICS.observe("service.updates.batch_seconds", elapsed)
                    if elapsed > 0:
                        METRICS.observe("service.updates.mups", res.n_updates / elapsed / 1e6)
                    sp.set(misses=res.misses, seconds=elapsed)
                with rspan("service.drain.rotate"):
                    epoch = self.rotate()
                if trace is not None:
                    trace.attrs["epoch"] = epoch.id
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            batch_seconds = time.perf_counter() - t_batch
            if tracer is not None and trace is not None:
                tracer.finish(trace, status=500 if error else 200, error=error)
            if self.slo is not None:
                self.slo.record(batch_seconds, error=error is not None)

    def _run(self) -> None:
        try:
            while True:
                item = self._q.get()
                depth = float(self._q.qsize())
                METRICS.set("service.queue.depth", depth)
                METRICS.set("service.update_queue.depth", depth)
                if item is _CLOSE:
                    break
                assert isinstance(item, UpdateStream)
                self._apply(item)
            # Final rotation: whatever was applied is published, even when
            # the coalescing policy skipped the last batch boundary.
            self.rotate(force=True)
        except BaseException as exc:  # pragma: no cover - surfaced via close()
            self.error = exc
            METRICS.inc("service.drainer.errors")
