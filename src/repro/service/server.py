"""Asyncio HTTP front end: concurrent graph queries over pinned epochs.

One :class:`GraphService` ties the service pieces together — the
:class:`~repro.service.epoch.EpochStore` readers pin, the
:class:`~repro.service.drainer.UpdateDrainer` that is the structure's only
writer, and an optional :class:`~repro.service.shards.ShardRouter` for
process-sharded components queries.  The event loop only parses requests
and shapes responses; every graph kernel runs on a small thread pool
(``run_in_executor``) with its epoch pinned for exactly the kernel's
duration, so a slow query neither blocks the accept loop nor the writer.

Endpoints (GET, JSON unless noted):

* ``/healthz`` — liveness + current epoch id
* ``/stats`` — epochs published/live, queue depth, update/query counters
* ``/connected?u=&v=`` — same-component test via the epoch's cached labels
* ``/components[?full=1]`` — component count/largest (``full`` adds labels)
* ``/component?v=`` — one vertex's label and component size
* ``/bfs?source=[&ts_lo=&ts_hi=][&full=1]`` — traversal summary
  (``full`` adds the distance array)
* ``/metrics`` — OpenMetrics text exposition of the process registry
  (with latency exemplars naming recent trace ids)
* ``/debug/slow`` — the bounded slow-query store: full span trees of
  requests that breached the latency threshold (``?sampled=1`` adds the
  deterministic head samples)
* ``/slo`` — burn-rate state of the query/update SLO trackers

Every routed query runs under a :class:`~repro.obs.reqtrace.RequestTrace`
(deterministic head sampling + always-keep tail sampling); the context is
bound across the executor hop explicitly, the epoch-pinned kernels open
``service.epoch.read`` spans, and sharded ``/components`` queries adopt
the per-shard worker spans shipped back through the pool envelope — one
connected tree per request, exportable via the Chrome-trace exporter.

Errors map onto status codes: bad input (unknown vertex, malformed
parameter) is a 400 carrying the :class:`~repro.errors.GraphError` message;
an unknown path is a 404; service-protocol failures are 503.  A crashed
shard worker is recovered transparently (``pool.restart()`` + one retry,
then serial fallback) — the query still answers.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Union
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.api import DynamicGraph
from repro.core.bfs import bfs
from repro.core.components import connected_components
from repro.errors import GraphError, ServiceError, WorkerCrashError
from repro.obs import METRICS, to_openmetrics
from repro.obs.reqtrace import RequestTrace, RequestTracer, bind, rspan
from repro.obs.slo import SloTracker
from repro.service.drainer import UpdateDrainer
from repro.service.epoch import Epoch, EpochStore
from repro.service.shards import ShardRouter

__all__ = ["GraphService", "ServiceHandle"]

_MAX_REQUEST_BYTES = 65536


class GraphService:
    """The serving runtime: one graph, one writer, many pinned readers.

    Parameters
    ----------
    graph:
        The :class:`~repro.api.DynamicGraph` to serve.  Once the service
        starts, all mutation must go through :meth:`submit`.
    router:
        Optional :class:`~repro.service.shards.ShardRouter` to execute
        ``/components`` across worker processes (serial kernel otherwise).
    kernel_tier:
        Forwarded to the serial kernels (None = env var / auto-probe).
    query_threads:
        Executor width for query kernels (default 4).
    max_queue / rotate_min_interval:
        Forwarded to the :class:`~repro.service.drainer.UpdateDrainer`.
    reqtrace:
        Request tracing: None/True builds a default
        :class:`~repro.obs.reqtrace.RequestTracer` (head sampling every
        10th request, 250 ms tail threshold), False disables tracing
        entirely, or pass a configured tracer.
    slo_query / slo_update:
        :class:`~repro.obs.slo.SloTracker` instances for the read and
        write paths (defaults are built when not given).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        *,
        router: Optional[ShardRouter] = None,
        kernel_tier: Optional[str] = None,
        query_threads: int = 4,
        max_queue: int = 8,
        rotate_min_interval: float = 0.0,
        reqtrace: Union[RequestTracer, bool, None] = None,
        slo_query: Optional[SloTracker] = None,
        slo_update: Optional[SloTracker] = None,
    ) -> None:
        self.graph = graph
        self.store = EpochStore()
        if reqtrace is False:
            self.reqtrace: Optional[RequestTracer] = None
        elif reqtrace is None or reqtrace is True:
            self.reqtrace = RequestTracer()
        else:
            self.reqtrace = reqtrace
        self.slo_query = (
            slo_query if slo_query is not None else SloTracker("service.query")
        )
        self.slo_update = (
            slo_update
            if slo_update is not None
            else SloTracker("service.update", latency_threshold_seconds=1.0)
        )
        self.drainer = UpdateDrainer(
            graph, self.store, max_queue=max_queue,
            rotate_min_interval=rotate_min_interval,
            reqtrace=self.reqtrace, slo=self.slo_update,
        )
        self.router = router
        self.kernel_tier = kernel_tier
        self._executor = ThreadPoolExecutor(
            max_workers=int(query_threads), thread_name_prefix="repro-query"
        )
        self.n_queries = 0
        self._inflight = 0

    # ------------------------------------------------------------------ #
    # writer path
    # ------------------------------------------------------------------ #

    def submit(self, stream: Any, *, timeout: Optional[float] = None) -> None:
        """Enqueue one update batch onto the drainer (producer backpressure)."""
        self.drainer.submit(stream, timeout=timeout)

    # ------------------------------------------------------------------ #
    # query kernels (run on executor threads, epoch pinned inside)
    # ------------------------------------------------------------------ #

    def _labels(self, epoch: Epoch) -> np.ndarray:
        """Component labels of one epoch, computed once and memoised."""

        def compute() -> np.ndarray:
            """Run sharded components, recovering once, else serial fallback."""
            snap = epoch.snapshot
            if self.router is not None:
                try:
                    return self.router.components(snap)
                except WorkerCrashError:
                    self.router.recover()
                    try:
                        return self.router.components(snap)
                    except WorkerCrashError:
                        METRICS.inc("service.shard.fallbacks")
            return connected_components(snap, kernel_tier=self.kernel_tier).labels

        labels = epoch.cached("components.labels", compute)
        assert isinstance(labels, np.ndarray)
        return labels

    @contextmanager
    def _pinned(self) -> Iterator[Epoch]:
        """Pin an epoch for one kernel, under a ``service.epoch.read`` span."""
        with self.store.reading() as epoch:
            with rspan(
                "service.epoch.read", epoch=epoch.id, mutations=epoch.mutation_count
            ):
                yield epoch

    def _q_connected(self, u: int, v: int) -> dict:
        with self._pinned() as epoch:
            snap = epoch.snapshot
            for name, x in (("u", u), ("v", v)):
                if not 0 <= x < snap.n:
                    raise GraphError(f"vertex {name}={x} out of range [0, {snap.n})")
            labels = self._labels(epoch)
            return {
                "u": u, "v": v,
                "connected": bool(labels[u] == labels[v]),
                "epoch": epoch.id, "mutations": epoch.mutation_count,
            }

    def _q_components(self, full: bool) -> dict:
        with self._pinned() as epoch:
            labels = self._labels(epoch)
            roots, counts = (
                np.unique(labels, return_counts=True)
                if labels.size else (np.empty(0, np.int64), np.empty(0, np.int64))
            )
            i = int(np.argmax(counts)) if counts.size else -1
            out = {
                "n": epoch.snapshot.n,
                "n_components": int(roots.size),
                "largest": ([int(roots[i]), int(counts[i])] if i >= 0 else None),
                "epoch": epoch.id, "mutations": epoch.mutation_count,
            }
            if full:
                out["labels"] = labels.tolist()
            return out

    def _q_component(self, v: int) -> dict:
        with self._pinned() as epoch:
            snap = epoch.snapshot
            if not 0 <= v < snap.n:
                raise GraphError(f"vertex v={v} out of range [0, {snap.n})")
            labels = self._labels(epoch)
            label = int(labels[v])
            return {
                "v": v, "label": label,
                "size": int(np.count_nonzero(labels == label)),
                "epoch": epoch.id,
            }

    def _q_bfs(self, source: int, ts_range: Optional[tuple], full: bool) -> dict:
        with self._pinned() as epoch:
            res = bfs(epoch.snapshot, source, ts_range=ts_range)
            out = {
                "source": source,
                "n_reached": res.n_reached,
                "n_levels": res.n_levels,
                "edges_scanned": res.total_edges_scanned,
                "epoch": epoch.id, "mutations": epoch.mutation_count,
            }
            if full:
                out["dist"] = res.dist.tolist()
            return out

    def _q_stats(self) -> dict:
        cur = self.store.current
        return {
            "epoch": cur.id if cur is not None else None,
            "mutations": cur.mutation_count if cur is not None else None,
            "arcs": cur.snapshot.n_arcs if cur is not None else None,
            "epochs_published": self.store.n_published,
            "epochs_live": self.store.n_live,
            "epoch_lag": self.store.lag_of(self.graph.rep.mutation_count),
            "queue_depth": self.drainer.queue_depth,
            "update_queue_depth": self.drainer.queue_depth,
            "batches_applied": self.drainer.n_batches,
            "updates_applied": self.drainer.n_updates,
            "queries": self.n_queries,
            "queries_inflight": self._inflight,
            "sharded": self.router is not None,
            "reqtrace": self.reqtrace is not None,
            "slow_captured": len(self.reqtrace.slow()) if self.reqtrace is not None else 0,
        }

    def _q_debug_slow(self, params: dict) -> dict:
        """The slow-query store (``GET /debug/slow``): full span trees."""
        tracer = self.reqtrace
        if tracer is None:
            return {"enabled": False, "config": {}, "slow": [], "recent": []}
        out: dict[str, Any] = {
            "enabled": True,
            "config": tracer.config(),
            "slow": tracer.slow(),
            "recent": tracer.recent(),
        }
        if params.get("sampled", ["0"])[0] not in ("0", "", "false"):
            out["sampled"] = tracer.sampled()
        return out

    def _q_slo(self) -> dict:
        """Burn-rate state of both trackers (``GET /slo``), checking first."""
        slos: dict[str, Any] = {}
        for tracker in (self.slo_query, self.slo_update):
            tracker.check()
            slos[tracker.name] = tracker.state()
        return {"slos": slos}

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _dispatch(self, path: str, params: dict) -> tuple[int, str, str]:
        """Route one request; returns (status, content_type, body)."""

        def qint(name: str) -> int:
            """Parse a required integer query parameter or raise GraphError."""
            vals = params.get(name)
            if not vals:
                raise GraphError(f"missing required parameter {name!r}")
            try:
                return int(vals[0])
            except ValueError:
                raise GraphError(f"parameter {name!r} must be an integer") from None

        full = params.get("full", ["0"])[0] not in ("0", "", "false")
        fn: Optional[Callable[[], dict]] = None
        if path == "/healthz":
            cur = self.store.current
            return 200, "application/json", json.dumps(
                {"ok": True, "epoch": cur.id if cur is not None else None}
            )
        if path == "/metrics":
            return 200, "application/openmetrics-text", to_openmetrics(METRICS)
        if path == "/stats":
            return 200, "application/json", json.dumps(self._q_stats())
        if path == "/debug/slow":
            return 200, "application/json", json.dumps(self._q_debug_slow(params))
        if path == "/slo":
            return 200, "application/json", json.dumps(self._q_slo())
        if path == "/connected":
            u, v = qint("u"), qint("v")
            fn = lambda: self._q_connected(u, v)  # noqa: E731
        elif path == "/components":
            fn = lambda: self._q_components(full)  # noqa: E731
        elif path == "/component":
            v = qint("v")
            fn = lambda: self._q_component(v)  # noqa: E731
        elif path == "/bfs":
            source = qint("source")
            ts_range = None
            if "ts_lo" in params or "ts_hi" in params:
                ts_range = (qint("ts_lo"), qint("ts_hi"))
            fn = lambda: self._q_bfs(source, ts_range, full)  # noqa: E731
        if fn is None:
            return 404, "application/json", json.dumps({"error": f"no route {path}"})
        loop = asyncio.get_running_loop()
        tracer = self.reqtrace
        route = path.replace("/", ".")
        trace = (
            tracer.start(f"service{route}", kind="query", route=path)
            if tracer is not None
            else None
        )
        self._inflight += 1
        METRICS.set("service.queries.inflight", float(self._inflight))
        t0 = time.perf_counter()
        try:
            # contextvars don't cross run_in_executor: bind the trace into
            # the executor thread explicitly so kernel rspans attach to it.
            run = fn if trace is None else bind(trace, self._exec_traced(trace, route, fn))
            body = await loop.run_in_executor(self._executor, run)
        except BaseException as exc:
            elapsed = time.perf_counter() - t0
            status = (
                400 if isinstance(exc, GraphError)
                else 503 if isinstance(exc, ServiceError)
                else 500
            )
            if tracer is not None and trace is not None:
                tracer.finish(trace, status=status, error=type(exc).__name__)
            self.slo_query.record(elapsed, error=status >= 500)
            raise
        finally:
            self._inflight -= 1
            METRICS.set("service.queries.inflight", float(self._inflight))
        elapsed = time.perf_counter() - t0
        self.n_queries += 1
        METRICS.inc("service.queries")
        METRICS.inc(f"service.query{route}")
        METRICS.observe("service.query.seconds", elapsed)
        if tracer is not None and trace is not None:
            epoch_id = body.get("epoch") if isinstance(body, dict) else None
            if epoch_id is not None:
                trace.attrs["epoch"] = epoch_id
            tracer.finish(trace, status=200)
            tracer.exemplars.observe("service.query.seconds", elapsed, trace.trace_id)
        self.slo_query.record(elapsed)
        return 200, "application/json", json.dumps(body)

    def _exec_traced(
        self, trace: RequestTrace, route: str, fn: Callable[[], dict]
    ) -> Callable[[], dict]:
        """Wrap a query kernel in the executor-level span of ``trace``."""

        def run() -> dict:
            with trace.span(
                f"service.exec{route}", thread=threading.current_thread().name
            ):
                return fn()

        return run

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """One connection, one request (``Connection: close`` semantics)."""
        status, ctype, body = 500, "application/json", json.dumps({"error": "internal"})
        try:
            raw = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
            if len(raw) > _MAX_REQUEST_BYTES:
                raise GraphError("request too large")
            line = raw.split(b"\r\n", 1)[0].decode("latin-1")
            parts = line.split()
            if len(parts) != 3 or parts[0] != "GET":
                status, body = 405, json.dumps({"error": "GET only"})
            else:
                url = urlsplit(parts[1])
                params = parse_qs(url.query)
                status, ctype, body = await self._dispatch(url.path, params)
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                asyncio.TimeoutError, UnicodeDecodeError):
            status, body = 400, json.dumps({"error": "malformed request"})
        except GraphError as exc:
            status, body = 400, json.dumps({"error": str(exc)})
        except ServiceError as exc:
            status, body = 503, json.dumps({"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - last-resort 500, keep serving
            METRICS.inc("service.http.errors")
            status, body = 500, json.dumps({"error": f"{type(exc).__name__}: {exc}"})
        try:
            payload = body.encode("utf-8")
            writer.write(
                f"HTTP/1.1 {status} {'OK' if status == 200 else 'ERR'}\r\n"
                f"Content-Type: {ctype}; charset=utf-8\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n".encode("latin-1") + payload
            )
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass
        finally:
            writer.close()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.AbstractServer:
        """Publish epoch 0, start the drainer, and bind the asyncio server."""
        self.drainer.start()
        return await asyncio.start_server(self._handle, host, port)

    def start_background(self, host: str = "127.0.0.1", port: int = 0) -> "ServiceHandle":
        """Run the server on a daemon event-loop thread; returns a handle."""
        return ServiceHandle(self, host, port)

    def close(self) -> None:
        """Drain and stop the writer, query threads, and shard pool."""
        try:
            self.drainer.close()
        finally:
            self._executor.shutdown(wait=True)
            if self.router is not None:
                self.router.close()


class ServiceHandle:
    """A running :class:`GraphService` on its own event-loop thread.

    Gives synchronous callers (tests, the CLI's stream feeder, the CI
    smoke driver) a bound ``url``, pass-through :meth:`submit`, and a
    clean :meth:`close` that drains the writer before tearing down.
    """

    def __init__(self, service: GraphService, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        fut = asyncio.run_coroutine_threadsafe(service.start(host, port), self._loop)
        self._server = fut.result(timeout=30.0)
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], int(sock[1])
        self.url = f"http://{self.host}:{self.port}"

    def submit(self, stream: Any, *, timeout: Optional[float] = None) -> None:
        """Enqueue one update batch (same backpressure as the service)."""
        self.service.submit(stream, timeout=timeout)

    def close(self) -> None:
        """Stop accepting, drain pending updates, stop the loop thread."""

        async def _shutdown() -> None:
            self._server.close()
            await self._server.wait_closed()

        asyncio.run_coroutine_threadsafe(_shutdown(), self._loop).result(timeout=30.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        self._loop.close()
        self.service.close()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
