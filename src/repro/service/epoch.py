"""Epoch-rotated snapshot store: the service's reader/writer protocol.

The streaming service has one writer (the update drainer) and many
concurrent readers (query handlers).  Readers must never block the writer
and the writer must never mutate what a reader is looking at.  Both follow
from one rule: **snapshots are immutable and epochs are refcounted**.

* The writer *publishes*: it builds a fresh zero-copy CSR snapshot of the
  dynamic structure (``csr_from_arrays(assume_grouped=True)`` via the
  grouped ``to_arrays`` export) and installs it as the new current
  :class:`Epoch`, keyed on the representation's monotonic
  ``mutation_count``.  Publishing takes a short O(1) critical section and
  never waits for readers.
* A reader *pins*: :meth:`EpochStore.pin` hands it the current epoch with
  its reader count incremented; every query the reader runs against that
  epoch sees one frozen, internally consistent graph.  Releasing the pin
  retires the epoch once it is no longer current and its reader count has
  drained — the store never accumulates unpinned history.

Consistency model (documented for queries in ``docs/SERVICE.md``): a query
observes the graph *as of the last published batch boundary*.  Updates are
applied in batches by the drainer; a snapshot is never published mid-batch,
so a reader sees either all or none of any batch — batch atomicity, with
staleness bounded by the publish cadence (the ``service.epoch.lag_updates``
gauge tracks how far the live structure has run ahead).

Per-epoch caches (:meth:`Epoch.cached`) memoise derived results — component
labels, notably — so heavy traffic on one epoch pays each kernel once.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator, Optional, TYPE_CHECKING
from contextlib import contextmanager

from repro.errors import ServiceError
from repro.obs import METRICS

if TYPE_CHECKING:  # imported for annotations only; keeps import light
    from repro.adjacency.csr import CSRGraph

__all__ = ["Epoch", "EpochStore"]


class Epoch:
    """One immutable published snapshot plus its reader bookkeeping.

    ``id`` increases by one per publish; ``mutation_count`` is the value of
    the representation's monotonic mutation counter at publish time — the
    key that ties the epoch back to a precise structural state.  The
    snapshot (a frozen :class:`~repro.adjacency.csr.CSRGraph`) is shared by
    every reader pinned to the epoch; derived results are memoised in a
    per-epoch cache so concurrent queries compute them once.
    """

    __slots__ = ("id", "mutation_count", "snapshot", "published_at", "pins",
                 "_cache", "_cache_lock")

    def __init__(self, epoch_id: int, mutation_count: int, snapshot: "CSRGraph") -> None:
        self.id = int(epoch_id)
        self.mutation_count = int(mutation_count)
        self.snapshot = snapshot
        self.published_at = time.monotonic()
        #: Live reader count; guarded by the owning store's lock.
        self.pins = 0
        self._cache: dict[str, Any] = {}
        self._cache_lock = threading.Lock()

    def cached(self, key: str, compute: Callable[[], Any]) -> Any:
        """Memoise ``compute()`` under ``key`` for this epoch's lifetime.

        The per-epoch lock serialises the *first* computation of each key
        (one components run per epoch, not one per concurrent query);
        subsequent reads return the stored value without recomputing.
        """
        with self._cache_lock:
            if key not in self._cache:
                self._cache[key] = compute()
                METRICS.inc("service.epoch.cache_misses")
            else:
                METRICS.inc("service.epoch.cache_hits")
            return self._cache[key]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Epoch(id={self.id}, mutations={self.mutation_count}, "
                f"arcs={self.snapshot.n_arcs}, pins={self.pins})")


class EpochStore:
    """Refcounted epoch rotation: one writer publishes, readers pin.

    All state transitions run under one short lock; neither side ever
    holds it across a kernel, a snapshot build, or any other O(graph)
    work, which is the non-blocking guarantee the concurrency suite
    (``tests/service/test_epoch.py``) exercises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: Optional[Epoch] = None
        #: Superseded epochs still pinned by in-flight readers, by id.
        self._retired: dict[int, Epoch] = {}
        self._next_id = 0
        self.n_published = 0
        self.n_retired = 0

    # ------------------------------------------------------------------ #
    # writer side
    # ------------------------------------------------------------------ #

    def publish(self, snapshot: "CSRGraph", mutation_count: int) -> Epoch:
        """Install ``snapshot`` as the new current epoch (writer only).

        A publish whose ``mutation_count`` equals the current epoch's is a
        no-op returning the current epoch — rotation is keyed on structural
        change, so an idle writer loop cannot churn identical epochs.  The
        superseded epoch is dropped immediately when unpinned, or parked in
        the retired set until its last reader releases.
        """
        with self._lock:
            cur = self._current
            if cur is not None and cur.mutation_count == int(mutation_count):
                return cur
            epoch = Epoch(self._next_id, mutation_count, snapshot)
            self._next_id += 1
            self._current = epoch
            self.n_published += 1
            if cur is not None:
                if cur.pins > 0:
                    self._retired[cur.id] = cur
                else:
                    self.n_retired += 1
                    METRICS.inc("service.epoch.retired")
            METRICS.inc("service.epoch.published")
            METRICS.set("service.epoch.current", float(epoch.id))
            METRICS.set("service.epoch.live", float(self._n_live_locked()))
            return epoch

    # ------------------------------------------------------------------ #
    # reader side
    # ------------------------------------------------------------------ #

    def pin(self) -> Epoch:
        """Pin and return the current epoch (raises before the first publish).

        The caller must pair every pin with exactly one :meth:`release`;
        prefer the :meth:`reading` context manager, which cannot leak.
        """
        with self._lock:
            if self._current is None:
                raise ServiceError("no epoch published yet — the service has not started")
            self._current.pins += 1
            METRICS.inc("service.epoch.pins")
            return self._current

    def release(self, epoch: Epoch) -> None:
        """Drop one reader pin; retire the epoch when it drains.

        An epoch is freed once it is no longer current *and* its reader
        count has reached zero — the no-leak invariant
        (:meth:`n_live` returns to 1 after all readers finish).
        """
        with self._lock:
            if epoch.pins <= 0:
                raise ServiceError(f"unbalanced release of epoch {epoch.id}")
            epoch.pins -= 1
            if epoch.pins == 0 and epoch is not self._current:
                if self._retired.pop(epoch.id, None) is not None:
                    self.n_retired += 1
                    METRICS.inc("service.epoch.retired")
                    METRICS.set("service.epoch.live", float(self._n_live_locked()))

    @contextmanager
    def reading(self) -> Iterator[Epoch]:
        """``with store.reading() as epoch:`` — pin for the block's duration."""
        epoch = self.pin()
        try:
            yield epoch
        finally:
            self.release(epoch)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def current(self) -> Optional[Epoch]:
        """The latest published epoch (None before the first publish)."""
        with self._lock:
            return self._current

    def _n_live_locked(self) -> int:
        return (1 if self._current is not None else 0) + len(self._retired)

    @property
    def n_live(self) -> int:
        """Epochs currently held in memory (current + pinned retired)."""
        with self._lock:
            return self._n_live_locked()

    def lag_of(self, mutation_count: int) -> int:
        """Mutations the live structure has run ahead of the current epoch."""
        with self._lock:
            if self._current is None:
                return int(mutation_count)
            return max(0, int(mutation_count) - self._current.mutation_count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            cur = self._current.id if self._current is not None else None
            return (f"EpochStore(current={cur}, live={self._n_live_locked()}, "
                    f"published={self.n_published})")
