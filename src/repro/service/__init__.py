"""Streaming connectivity service: epoch-rotated snapshot serving.

The long-running server leg of the paper's premise — a dynamic structure
absorbing a high-rate update stream while answering concurrent
connectivity/BFS/components queries.  Readers never block the writer:

* :mod:`repro.service.epoch` — refcounted immutable snapshot epochs
  (:class:`EpochStore`), keyed on the representation's mutation counter;
* :mod:`repro.service.drainer` — the single writer
  (:class:`UpdateDrainer`) applying batched update streams through the
  vectorised/compiled ``apply_arcs`` path and rotating epochs;
* :mod:`repro.service.shards` — optional Vpart-sharded components
  execution over :class:`~repro.parallel.pool.WorkerPool` processes
  (:class:`ShardRouter`), bit-identical to the serial kernel;
* :mod:`repro.service.server` — the asyncio HTTP front end
  (:class:`GraphService`) and its thread-backed :class:`ServiceHandle`.

See ``docs/SERVICE.md`` for the architecture and consistency model, and
``python -m repro serve --help`` for the CLI entry point.
"""

from repro.service.drainer import UpdateDrainer
from repro.service.epoch import Epoch, EpochStore
from repro.service.server import GraphService, ServiceHandle
from repro.service.shards import ShardRouter, shard_components

__all__ = [
    "Epoch",
    "EpochStore",
    "UpdateDrainer",
    "ShardRouter",
    "shard_components",
    "GraphService",
    "ServiceHandle",
]
