"""Sharded components execution for the service (Vpart over worker processes).

The optional process backend for ``/components`` queries: the arc set of a
pinned snapshot is partitioned by *source-vertex ownership* —
:func:`repro.parallel.partition.vpart_owner`, the paper's Vpart scheme
(``owner(u, p) = u % p``) — and each :class:`~repro.parallel.pool.WorkerPool`
process runs min-label propagation to a fixpoint over its own shard's arcs.

A worker's fixpoint labels encode, for every vertex it touched, "``v`` is
connected to ``root``"; those ``(v, root)`` pairs are a sparse spanning
certificate of the shard subgraph's connectivity.  The union of all shards'
pairs therefore has exactly the connected components of the full graph (each
pair joins vertices connected in the full graph; each full-graph arc lives in
some shard, whose certificate joins its endpoints).  The parent merges by
running the *serial* :func:`~repro.core.components.connected_components`
kernel over the tiny pairs graph, which yields canonical min-vertex-id
labels — **bit-identical** to running the serial kernel on the whole
snapshot, at every shard count.

Crash behaviour: a worker death surfaces as
:class:`~repro.errors.WorkerCrashError` from the pool;
:meth:`ShardRouter.recover` rebuilds the workers via ``pool.restart()`` so
the service layer can retry the query (and fall back to the serial kernel if
the retry fails too).
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.adjacency.csr import CSRGraph, csr_from_arrays
from repro.core.components import connected_components
from repro.errors import ServiceError
from repro.obs import METRICS, span
from repro.obs.reqtrace import rspan
from repro.parallel.pool import TaskSpec, WorkerPool, task
from repro.parallel.shm import ShmArena

__all__ = ["ShardRouter", "shard_components"]


@task("service.shard_components")
def _shard_components(views: dict, payload: dict) -> dict:
    """One shard's connectivity certificate (worker side).

    Selects the arcs this shard owns (``vpart_owner(src) == shard``), runs
    min-label propagation with pointer jumping to a fixpoint over them, and
    returns the sparse ``(vertex, root)`` pairs where the label moved.
    """
    if payload.get("fault") == "exit":  # test hook: simulated hard crash
        os._exit(1)
    shard = int(payload["shard"])
    n_shards = int(payload["n_shards"])
    n = int(payload["n"])
    mine = (views["src"] % n_shards) == shard
    s = views["src"][mine]
    d = views["dst"][mine]
    labels = np.arange(n, dtype=np.int64)
    while True:
        prev = labels
        local = labels.copy()
        np.minimum.at(local, s, labels[d])
        np.minimum.at(local, d, labels[s])
        while True:
            jumped = local[local]
            if np.array_equal(jumped, local):
                break
            local = jumped
        if np.array_equal(local, prev):
            break
        labels = local
    moved = np.nonzero(labels != np.arange(n, dtype=np.int64))[0]
    METRICS.inc("service.shard.arcs", int(s.size))
    return {
        "idx": np.ascontiguousarray(moved),
        "val": np.ascontiguousarray(labels[moved]),
        "arcs": int(s.size),
    }


def shard_components(
    snapshot: CSRGraph, pool: WorkerPool, *, n_shards: Optional[int] = None,
    fault: Optional[str] = None,
) -> np.ndarray:
    """Component labels of ``snapshot`` via Vpart-sharded workers.

    Returns canonical min-vertex-id labels, bit-identical to the serial
    kernel.  Raises :class:`~repro.errors.WorkerCrashError` if a shard
    worker dies; the caller decides between :meth:`ShardRouter.recover`
    and a serial fallback.  ``fault`` is a test-only injection forwarded to
    shard 0's payload.
    """
    n = snapshot.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    p = int(n_shards) if n_shards else pool.workers
    if p <= 0:
        raise ServiceError(f"shard count must be positive, got {p}")
    pool.start()
    src = np.repeat(np.arange(n, dtype=np.int64), snapshot.degrees())
    arrays = {"src": src, "dst": snapshot.targets}
    with span("service.shard_components", n=n, arcs=snapshot.n_arcs, shards=p), rspan(
        "service.shard_components", n=n, arcs=snapshot.n_arcs, shards=p
    ):
        with ShmArena.create(arrays) as arena:
            specs = []
            for shard in range(p):
                payload = {"shard": shard, "n_shards": p, "n": n}
                if fault is not None and shard == 0:
                    payload["fault"] = fault
                specs.append(
                    TaskSpec("service.shard_components", payload, arenas=(arena.descriptor,))
                )
            outs = pool.run_tasks(specs)
        pair_src = np.concatenate([o["idx"] for o in outs]) if outs else np.empty(0, np.int64)
        pair_dst = np.concatenate([o["val"] for o in outs]) if outs else np.empty(0, np.int64)
        # Merge: serial canonical-label kernel over the pairs certificate
        # (symmetrised; tiny — at most one pair per non-root vertex per shard).
        merged = csr_from_arrays(
            n, np.concatenate([pair_src, pair_dst]), np.concatenate([pair_dst, pair_src])
        )
        labels = connected_components(merged).labels
    METRICS.inc("service.shard.queries")
    return labels


class ShardRouter:
    """Owns (or borrows) a worker pool and routes sharded components queries.

    Parameters
    ----------
    pool:
        An existing :class:`~repro.parallel.pool.WorkerPool` to borrow, or
        None to create (and own) one with ``workers`` processes.
    workers:
        Worker count when the router creates its own pool.
    n_shards:
        Vertex-space shard count (default: the pool's worker count).
    """

    def __init__(
        self,
        pool: Optional[WorkerPool] = None,
        *,
        workers: Optional[int] = None,
        n_shards: Optional[int] = None,
    ) -> None:
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else WorkerPool(workers)
        self.n_shards = n_shards
        self.n_crashes = 0

    def components(self, snapshot: CSRGraph, *, fault: Optional[str] = None) -> np.ndarray:
        """Sharded component labels (raises ``WorkerCrashError`` on a crash)."""
        return shard_components(
            snapshot, self.pool, n_shards=self.n_shards, fault=fault
        )

    def recover(self) -> None:
        """Replace crashed workers with a fresh generation (``pool.restart()``)."""
        self.n_crashes += 1
        METRICS.inc("service.shard.crashes")
        self.pool.restart()

    def close(self) -> None:
        """Shut the pool down if this router created it (borrowed pools stay up)."""
        if self._owns_pool:
            self.pool.shutdown()

    def __enter__(self) -> "ShardRouter":
        self.pool.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
