"""Shared-memory multiprocess execution backend (docs/PARALLEL.md).

The paper's parallel connectivity and BFS kernels ran on Niagara/Power5
SMPs; the simulator in :mod:`repro.machine` predicts those curves, and this
package *measures* real ones: a pool of worker processes
(:mod:`~repro.parallel.pool`) operating over the CSR arrays through
``multiprocessing.shared_memory`` (:mod:`~repro.parallel.shm`), with
deterministic work partitioning (:mod:`~repro.parallel.partition`) and
drivers for the hottest kernels — level-synchronous BFS, connected
components by multi-round hooking, and batched connectivity queries.

Every driver is bit-identical to its serial counterpart at any worker
count; ``backend="process"`` is an execution policy, never a semantics
change.  Select it through :func:`resolve_backend` /
:class:`ProcessBackend`, or at the API layer::

    >>> from repro.api import DynamicGraph
    >>> g = DynamicGraph.from_edges(4, [0, 1], [1, 2])
    >>> g.connected_components(backend="serial").n_components
    2
"""

from repro.parallel.backend import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    resolve_backend,
)
from repro.parallel.bfs import parallel_bfs, parallel_bfs_profile
from repro.parallel.components import parallel_connected_components
from repro.parallel.partition import range_chunks, vpart_owner, weighted_chunks
from repro.parallel.pool import TaskSpec, WorkerPool, default_workers
from repro.parallel.queries import parallel_query_batch
from repro.parallel.shm import ArenaDescriptor, ArraySpec, ShmArena

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "resolve_backend",
    "parallel_bfs",
    "parallel_bfs_profile",
    "parallel_connected_components",
    "parallel_query_batch",
    "WorkerPool",
    "TaskSpec",
    "default_workers",
    "ShmArena",
    "ArenaDescriptor",
    "ArraySpec",
    "range_chunks",
    "weighted_chunks",
    "vpart_owner",
]
