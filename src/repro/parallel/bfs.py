"""Level-synchronous BFS over shared memory (process backend).

The parent process runs the level loop of :func:`repro.core.bfs.bfs`
unchanged; each level's edge gather — the O(m) hot part — fans out to the
worker pool.  The frontier (always sorted, as in the serial kernel) is
split into contiguous degree-balanced chunks (:func:`weighted_chunks`, the
paper's unbalanced-degree optimisation at partition granularity); each
worker gathers its chunk's adjacencies from the shared CSR arrays, applies
the time-stamp filter and the not-yet-visited test against the shared
``dist`` array, and returns only the surviving ``(neighbour, parent)``
candidate pairs.  The parent concatenates the chunks *in order* — restoring
exactly the serial kernel's flattened gather order — and applies the same
``np.unique`` visit commit, so distances, parents and per-level statistics
are bit-identical to the serial backend at every worker count.

Workers also return a per-partition work-profile fragment (edges scanned,
frontier vertices, heaviest vertex); the driver folds these into per-level
partition records that ride along in the profile metadata
(:func:`parallel_bfs_profile`) while the phase totals remain exactly the
serial profile's.
"""

from __future__ import annotations

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.core.bfs import BFSResult, bfs_profile
from repro.errors import VertexError
from repro.machine.profile import WorkProfile
from repro.obs import METRICS, span
from repro.parallel.partition import weighted_chunks
from repro.parallel.pool import TaskSpec, WorkerPool, task
from repro.parallel.shm import ShmArena

__all__ = ["parallel_bfs", "parallel_bfs_profile"]


@task("bfs.level")
def _bfs_level(views: dict, payload: dict) -> dict:
    """Gather one frontier chunk's adjacencies (worker side)."""
    lo, hi = payload["lo"], payload["hi"]
    frontier = views["frontier"][lo:hi]
    offsets = views["offsets"]
    targets = views["targets"]
    dist = views["dist"]
    ts_range = payload["ts_range"]

    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    fragment = {
        "vertices": int(frontier.size),
        "edges": total,
        "max_degree": int(counts.max()) if counts.size else 0,
    }
    # Distinct from the canonical ``bfs.edges_scanned`` (ticked once per
    # traversal by the parent): this one counts per gather call, so fanned
    # out levels surface per-worker under ``worker{i}.bfs.level.edges``
    # while inlined levels land in the parent registry directly.
    METRICS.inc("bfs.level.edges", total)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return {"nbrs": empty, "reps": empty, "fragment": fragment}
    reps = np.repeat(frontier, counts)
    base = np.repeat(starts, counts)
    offs = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    idx = base + offs
    nbrs = targets[idx]
    if ts_range is not None:
        ts = views["ts"]
        lo_t, hi_t = ts_range
        keep = (ts[idx] >= lo_t) & (ts[idx] <= hi_t)
        nbrs = nbrs[keep]
        reps = reps[keep]
    unvisited = dist[nbrs] < 0
    # Copy out of shared memory: the parent writes dist/frontier after the
    # round, and the result crosses the process boundary by pickle anyway.
    return {
        "nbrs": np.ascontiguousarray(nbrs[unvisited]),
        "reps": np.ascontiguousarray(reps[unvisited]),
        "fragment": fragment,
    }


#: Levels scanning fewer edges than this run inline in the parent: a queue
#: round-trip costs more than the gather itself.  Small-world graphs have a
#: handful of wide levels (fanned out) and many narrow ones (inlined); the
#: result is identical either way — the inline path is the same numpy math.
SMALL_LEVEL_EDGES = 4096


def parallel_bfs(
    graph: CSRGraph,
    source: int,
    pool: WorkerPool,
    *,
    ts_range: tuple[int, int] | None = None,
    max_levels: int | None = None,
    small_level_edges: int = SMALL_LEVEL_EDGES,
    fragments_out: list | None = None,
) -> BFSResult:
    """Multiprocess BFS, bit-identical to :func:`repro.core.bfs.bfs`.

    ``fragments_out``, when given, receives one list per level of the
    per-partition work fragments the workers reported (levels below
    ``small_level_edges`` scanned edges carry a single parent-side
    fragment marked ``"inline"``).
    """
    if not 0 <= source < graph.n:
        raise VertexError(f"source {source} out of range [0, {graph.n})")
    if ts_range is not None and graph.ts is None:
        raise VertexError("graph has no time-stamps; cannot filter by ts_range")
    pool.start()

    dist = np.full(graph.n, -1, dtype=np.int64)
    parent = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0

    arrays = {
        "offsets": graph.offsets,
        "targets": graph.targets,
        "dist": dist,
        # Frontier scratch buffer: at most n vertices per level.
        "frontier": np.zeros(max(graph.n, 1), dtype=np.int64),
    }
    if graph.ts is not None:
        arrays["ts"] = graph.ts

    res = BFSResult(source=source, dist=dist, parent=parent, ts_range=ts_range)
    level = 0
    with ShmArena.create(arrays) as arena:
        descriptor = arena.descriptor
        shared_dist = arena.view("dist")
        shared_frontier = arena.view("frontier")
        res.dist = shared_dist  # live view during the traversal
        frontier = np.array([source], dtype=np.int64)
        with span(
            "parallel.bfs",
            source=int(source),
            n=graph.n,
            workers=pool.workers,
            filtered=ts_range is not None,
        ) as sp:
            while frontier.size:
                counts = graph.offsets[frontier + 1] - graph.offsets[frontier]
                total = int(counts.sum())
                res.frontier_sizes.append(int(frontier.size))
                res.edges_scanned.append(total)
                res.max_frontier_degree.append(int(counts.max()) if counts.size else 0)
                if max_levels is not None and level >= max_levels:
                    break
                if total == 0:
                    break
                shared_frontier[: frontier.size] = frontier
                if total <= small_level_edges or pool.workers == 1:
                    views = {
                        "frontier": shared_frontier,
                        "offsets": graph.offsets,
                        "targets": graph.targets,
                        "dist": shared_dist,
                    }
                    if graph.ts is not None:
                        views["ts"] = graph.ts
                    outs = [
                        _bfs_level(
                            views,
                            {"lo": 0, "hi": frontier.size, "ts_range": ts_range},
                        )
                    ]
                    outs[0]["fragment"]["inline"] = True
                else:
                    chunks = weighted_chunks(counts, pool.workers)
                    outs = pool.run_tasks(
                        [
                            TaskSpec(
                                "bfs.level",
                                {"lo": lo, "hi": hi, "ts_range": ts_range},
                                arenas=(descriptor,),
                            )
                            for lo, hi in chunks
                        ]
                    )
                if fragments_out is not None:
                    fragments_out.append([o["fragment"] for o in outs])
                nbrs = np.concatenate([o["nbrs"] for o in outs])
                reps = np.concatenate([o["reps"] for o in outs])
                if nbrs.size == 0:
                    break
                uniq, first = np.unique(nbrs, return_index=True)
                level += 1
                shared_dist[uniq] = level
                parent[uniq] = reps[first]
                frontier = uniq
            sp.set(
                levels=res.n_levels,
                reached=res.n_reached,
                edges_scanned=res.total_edges_scanned,
            )
        # Detach from shared memory before the arena is unlinked.
        res.dist = shared_dist.copy()
    METRICS.inc("bfs.runs")
    METRICS.inc("bfs.levels", res.n_levels)
    METRICS.inc("bfs.edges_scanned", res.total_edges_scanned)
    METRICS.inc("parallel.bfs_runs")
    return res


def parallel_bfs_profile(
    graph: CSRGraph,
    result: BFSResult,
    fragments: list[list[dict]],
    *,
    workers: int,
    name: str = "bfs",
    degree_split: bool = True,
) -> WorkProfile:
    """The serial work profile plus per-partition fragment metadata.

    Phase totals come from :func:`repro.core.bfs.bfs_profile` over the
    (bit-identical) result, so simulated numbers are unchanged by the
    backend; the fragments record how the measured run actually divided per
    level, which the scaling figures surface next to the simulated curves.
    """
    profile = bfs_profile(graph, result, name=name, degree_split=degree_split)
    return profile.with_meta(
        backend="process",
        workers=workers,
        partitions=[
            {
                "level": i,
                "chunks": len(frags),
                "edges": [f["edges"] for f in frags],
                "vertices": [f["vertices"] for f in frags],
            }
            for i, frags in enumerate(fragments)
        ],
    )
