"""Connected components by multi-round parallel hooking (process backend).

Each pass of the serial kernel (:func:`repro.core.components
.connected_components`) hooks every vertex's label to the minimum label
among its neighbours and then pointer-jumps all chains.  The hook is a
concurrent-min over arcs — associative and commutative — so it partitions
cleanly: the arc array is split into contiguous ranges, each worker computes
its range's min-label proposals against the shared ``labels`` snapshot, and
the parent folds the proposals together with ``np.minimum.at``.  A min of
mins over a partition of the arcs equals the min over all arcs, so the
merged labels are bit-identical to the serial pass at every worker count;
pointer jumping (O(n), cheap, and already vectorised) stays in the parent.

Workers return only the entries their range actually improved — for a
small-world graph the proposal set shrinks geometrically with the pass
number, so later rounds ship almost nothing.
"""

from __future__ import annotations

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.core.components import ComponentsResult
from repro.obs import METRICS, span
from repro.parallel.partition import range_chunks
from repro.parallel.pool import TaskSpec, WorkerPool, task
from repro.parallel.shm import ShmArena

__all__ = ["parallel_connected_components"]


@task("components.hook")
def _components_hook(views: dict, payload: dict) -> dict:
    """One arc range's min-label proposals (worker side)."""
    lo, hi = payload["lo"], payload["hi"]
    src = views["src"][lo:hi]
    dst = views["dst"][lo:hi]
    prev = views["labels"]
    local = prev.copy()
    np.minimum.at(local, src, prev[dst])
    np.minimum.at(local, dst, prev[src])
    changed = np.nonzero(local != prev)[0]
    return {
        "idx": np.ascontiguousarray(changed),
        "val": np.ascontiguousarray(local[changed]),
        "fragment": {"arcs": int(hi - lo), "proposals": int(changed.size)},
    }


def parallel_connected_components(
    graph: CSRGraph,
    pool: WorkerPool,
    *,
    max_passes: int | None = None,
) -> ComponentsResult:
    """Multiprocess components, bit-identical to the serial kernel.

    The per-pass partition fragments land in ``result.meta`` (and therefore
    in the work profile built from it).
    """
    n = graph.n
    labels = np.arange(n, dtype=np.int64)
    if n == 0:
        return ComponentsResult(labels, 0, 0, 0)
    pool.start()
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    dst = graph.targets
    passes = 0
    jumps = 0
    arcs_processed = 0
    fragments: list[list[dict]] = []
    limit = max_passes if max_passes is not None else 2 * int(np.ceil(np.log2(n + 1))) + 4
    arrays = {"src": src, "dst": dst, "labels": labels}
    with ShmArena.create(arrays) as arena:
        descriptor = arena.descriptor
        shared_labels = arena.view("labels")
        chunks = range_chunks(int(dst.size), pool.workers)
        with span("parallel.components", n=n, arcs=int(dst.size), workers=pool.workers) as sp:
            while True:
                passes += 1
                prev = shared_labels.copy()
                if chunks:
                    outs = pool.run_tasks(
                        [
                            TaskSpec(
                                "components.hook",
                                {"lo": lo, "hi": hi},
                                arenas=(descriptor,),
                            )
                            for lo, hi in chunks
                        ]
                    )
                else:
                    outs = []
                fragments.append([o["fragment"] for o in outs])
                labels = prev.copy()
                for o in outs:
                    np.minimum.at(labels, o["idx"], o["val"])
                arcs_processed += 2 * dst.size
                while True:
                    jumped = labels[labels]
                    jumps += 1
                    if np.array_equal(jumped, labels):
                        break
                    labels = jumped
                if np.array_equal(labels, prev):
                    break
                if passes >= limit:
                    break
                shared_labels[...] = labels
            sp.set(passes=passes, components=int(np.unique(labels).size))
    METRICS.inc("parallel.components_runs")
    return ComponentsResult(
        labels,
        passes,
        jumps,
        arcs_processed,
        meta={
            "backend": "process",
            "workers": pool.workers,
            "partitions": [
                {"pass": i, "chunks": len(f), "proposals": [x["proposals"] for x in f]}
                for i, f in enumerate(fragments)
            ],
        },
    )
