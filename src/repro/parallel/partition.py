"""Deterministic work partitioning for the process backend.

The paper's update partitioning schemes (section 2.1.3) assign work to
threads by *vertex ownership* (:mod:`repro.adjacency.vpart`, ``owner(u, p) =
u % p``) or by *splitting edge work* across threads
(:mod:`repro.adjacency.epart`).  The process backend reuses both ideas as
pure, deterministic index arithmetic:

* :func:`vpart_owner` — the Vpart ownership function, bit-compatible with
  :meth:`repro.adjacency.vpart.VPartAdjacency.owner`;
* :func:`range_chunks` — contiguous equal-count ranges (edge/arc/query
  partitioning, the Epart spirit: one hot vertex's arcs may span chunks);
* :func:`weighted_chunks` — contiguous ranges balanced by a per-item weight
  (frontier vertices weighted by degree, so one high-degree vertex cannot
  serialise a BFS level's partner chunks — the paper's unbalanced-degree
  optimisation at partition granularity).

Determinism matters doubly here: partitions must be reproducible run to run
(profiles and traces are compared across commits), and the drivers in this
package merge partial results *in chunk order* so that the merged output is
bit-identical to the serial kernel regardless of worker count.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParallelError

__all__ = ["vpart_owner", "range_chunks", "weighted_chunks"]


def vpart_owner(u: int, p: int) -> int:
    """Owning worker of vertex ``u`` among ``p`` workers (Vpart scheme)."""
    if p <= 0:
        raise ParallelError(f"worker count must be positive, got {p}")
    return int(u) % int(p)


def range_chunks(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``parts`` contiguous chunks.

    Chunk sizes differ by at most one; empty chunks are dropped, so fewer
    than ``parts`` chunks come back when ``total < parts``.
    """
    if parts <= 0:
        raise ParallelError(f"partition count must be positive, got {parts}")
    if total < 0:
        raise ParallelError(f"cannot partition a negative range ({total})")
    bounds = np.linspace(0, total, num=min(parts, max(total, 1)) + 1, dtype=np.int64)
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def weighted_chunks(weights: np.ndarray, parts: int) -> list[tuple[int, int]]:
    """Split ``range(len(weights))`` into contiguous weight-balanced chunks.

    Boundary ``i`` of chunk ``k`` is the first index whose weight prefix sum
    reaches ``k/parts`` of the total — ``np.searchsorted`` over the prefix
    sum, so the split is deterministic and O(len + parts log len).  Items
    with zero weight ride along with their neighbours; a single item is
    never split (its whole weight lands in one chunk).
    """
    if parts <= 0:
        raise ParallelError(f"partition count must be positive, got {parts}")
    w = np.asarray(weights, dtype=np.int64)
    n = int(w.size)
    if n == 0:
        return []
    if np.any(w < 0):
        raise ParallelError("partition weights must be non-negative")
    total = int(w.sum())
    if total == 0:
        return range_chunks(n, parts)
    prefix = np.cumsum(w)
    targets = (np.arange(1, parts, dtype=np.int64) * total) // parts
    cuts = np.searchsorted(prefix, targets, side="left") + 1
    bounds = np.concatenate(([0], cuts, [n]))
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]
