"""Execution-backend selection: ``serial`` vs ``process``.

One small indirection layer so that every entry point — :class:`repro.api
.DynamicGraph`, the figure experiments, the ``repro trace`` CLI — takes a
``backend="serial"|"process"`` parameter and threads it down to the kernel
drivers without caring which one runs:

* :class:`SerialBackend` delegates to the in-process numpy kernels
  (:mod:`repro.core`), unchanged;
* :class:`ProcessBackend` owns a lazy :class:`~repro.parallel.pool
  .WorkerPool` and dispatches to the shared-memory drivers in this package.

Both produce bit-identical results (the process drivers' contract), so
``backend`` is purely an execution policy.  Pass a backend *instance* to
amortise the pool across many calls; pass the string form for one-shot
convenience (the API layer shuts a string-created process backend down
after the call).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.core.bfs import BFSResult, bfs
from repro.core.components import ComponentsResult, connected_components
from repro.core.linkcut import LinkCutForest
from repro.errors import ParallelError
from repro.parallel.bfs import parallel_bfs
from repro.parallel.components import parallel_connected_components
from repro.parallel.pool import WorkerPool
from repro.parallel.queries import parallel_query_batch

if TYPE_CHECKING:  # import cycles: these modules import this one (or the pool)
    from repro.connectit.framework import ConnectItResult, ConnectItSpec
    from repro.generators.rmat import RMATParams

__all__ = ["BACKENDS", "ExecutionBackend", "SerialBackend", "ProcessBackend", "resolve_backend"]

BACKENDS = ("serial", "process")


class ExecutionBackend:
    """Common interface of the execution backends."""

    name: str = "abstract"

    def bfs(
        self,
        graph: CSRGraph,
        source: int,
        *,
        ts_range: tuple[int, int] | None = None,
        max_levels: int | None = None,
    ) -> BFSResult:
        """Level-synchronous BFS from ``source`` (optionally time-filtered)."""
        raise NotImplementedError

    def connected_components(
        self, graph: CSRGraph, *, max_passes: int | None = None
    ) -> ComponentsResult:
        """Shiloach-Vishkin connected components with canonical labels."""
        raise NotImplementedError

    def query_batch(
        self, forest: LinkCutForest, us: np.ndarray, vs: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Connectivity answers plus the pointer-hop count of the batch."""
        raise NotImplementedError

    def connectit_components(self, graph: CSRGraph, spec: "ConnectItSpec") -> "ConnectItResult":
        """Sample-finish connectivity (:mod:`repro.connectit`) on this backend."""
        raise NotImplementedError

    def rmat_edges(
        self,
        scale: int,
        m: int,
        *,
        params: "RMATParams | None" = None,
        seed: int | None = None,
        n_slices: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """R-MAT edge generation on this backend (bit-identical across backends)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker processes); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """The in-process numpy kernels (the default)."""

    name = "serial"

    def bfs(
        self,
        graph: CSRGraph,
        source: int,
        *,
        ts_range: tuple[int, int] | None = None,
        max_levels: int | None = None,
    ) -> BFSResult:
        """Run the in-process BFS kernel."""
        return bfs(graph, source, ts_range=ts_range, max_levels=max_levels)

    def connected_components(
        self, graph: CSRGraph, *, max_passes: int | None = None
    ) -> ComponentsResult:
        """Run the in-process Shiloach-Vishkin kernel."""
        return connected_components(graph, max_passes=max_passes)

    def query_batch(
        self, forest: LinkCutForest, us: np.ndarray, vs: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Serial batched findroots, hop-counted via the forest's counter."""
        before = forest.hops
        answers = forest.connected_batch(us, vs)
        return answers, forest.hops - before

    def connectit_components(self, graph: CSRGraph, spec: "ConnectItSpec") -> "ConnectItResult":
        """Run the serial sample-finish driver."""
        from repro.connectit.framework import _serial_connect

        return _serial_connect(graph, spec)

    def rmat_edges(
        self,
        scale: int,
        m: int,
        *,
        params: "RMATParams | None" = None,
        seed: int | None = None,
        n_slices: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run the in-process serial generator (``n_slices`` is irrelevant here)."""
        from repro.generators.rmat import PAPER_RMAT, rmat_edges

        return rmat_edges(scale, m, params if params is not None else PAPER_RMAT, seed)


class ProcessBackend(ExecutionBackend):
    """Shared-memory multiprocess execution (see docs/PARALLEL.md)."""

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        *,
        method: str | None = None,
        timeout: float = 300.0,
    ) -> None:
        self.pool = WorkerPool(workers, method=method, timeout=timeout)

    @property
    def workers(self) -> int:
        """The pool's worker-process count."""
        return self.pool.workers

    def bfs(
        self,
        graph: CSRGraph,
        source: int,
        *,
        ts_range: tuple[int, int] | None = None,
        max_levels: int | None = None,
    ) -> BFSResult:
        """Run the shared-memory BFS driver on the worker pool."""
        return parallel_bfs(graph, source, self.pool, ts_range=ts_range, max_levels=max_levels)

    def connected_components(
        self, graph: CSRGraph, *, max_passes: int | None = None
    ) -> ComponentsResult:
        """Run the shared-memory Shiloach-Vishkin driver on the pool."""
        return parallel_connected_components(graph, self.pool, max_passes=max_passes)

    def query_batch(
        self, forest: LinkCutForest, us: np.ndarray, vs: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Fan the query batch out over the worker pool."""
        return parallel_query_batch(forest, us, vs, self.pool)

    def connectit_components(self, graph: CSRGraph, spec: "ConnectItSpec") -> "ConnectItResult":
        """Run the sample-finish driver with the finish phase on the pool."""
        from repro.connectit.framework import _process_connect

        return _process_connect(graph, spec, self.pool)

    def rmat_edges(
        self,
        scale: int,
        m: int,
        *,
        params: "RMATParams | None" = None,
        seed: int | None = None,
        n_slices: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate slices communication-free on the worker pool (shared memory).

        Lazy import: :mod:`repro.generators.parallel` imports the pool
        machinery at module load, so importing it here at call time keeps
        the ``backend -> generators -> parallel`` edge out of import time.
        """
        from repro.generators.parallel import rmat_edges_parallel
        from repro.generators.rmat import PAPER_RMAT

        src, dst, _ = rmat_edges_parallel(
            scale,
            m,
            params=params if params is not None else PAPER_RMAT,
            seed=seed,
            pool=self.pool,
            n_slices=n_slices,
        )
        return src, dst

    def close(self) -> None:
        """Shut the owned worker pool down."""
        self.pool.shutdown()


def resolve_backend(
    backend: str | ExecutionBackend,
    *,
    workers: int | None = None,
) -> tuple[ExecutionBackend, bool]:
    """Turn a backend spec into an instance.

    Returns ``(backend, owned)``: ``owned`` is True when this call created
    the instance (a string spec), in which case the caller is responsible
    for closing it — the pattern in :mod:`repro.api` is
    ``try: ... finally: if owned: be.close()``.
    """
    if isinstance(backend, ExecutionBackend):
        if workers is not None and backend.name == "process":
            got = getattr(backend, "workers", None)
            if got is not None and got != workers:
                raise ParallelError(
                    f"backend instance has {got} workers; cannot re-shape to {workers}"
                )
        return backend, False
    if backend == "serial":
        return SerialBackend(), True
    if backend == "process":
        return ProcessBackend(workers), True
    raise ParallelError(f"unknown backend {backend!r}; available: {BACKENDS}")
