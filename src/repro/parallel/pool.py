"""Persistent process pool for the shared-memory execution backend.

One :class:`WorkerPool` holds ``p`` long-lived worker processes.  Tasks are
small picklable descriptors — a registered task name, the
:class:`~repro.parallel.shm.ArenaDescriptor` of the shared arrays it reads,
and a payload of scalars/index bounds — so the per-task traffic is bytes
while the graph data crosses the process boundary exactly once, through
shared memory.

Design points:

* **Deterministic routing** — task ``i`` of a round goes to worker
  ``i % p`` and results are re-ordered by task index before they are
  returned, so callers can merge partial results in submission order.
* **Crash resilience** — the parent polls worker liveness while draining
  results; a worker that dies mid-round raises
  :class:`~repro.errors.WorkerCrashError` (and a worker that raises
  re-raises here with the worker traceback attached) instead of hanging on
  a queue that will never fill.
* **Trace adoption** — when the parent has tracing enabled, workers record
  spans into a private in-memory sink and ship the events back with their
  result; :meth:`WorkerPool.run_tasks` re-emits them under the parent's
  tracer (fresh span ids, parented at the current open span, tagged with
  the worker id) so one JSONL trace shows the whole fan-out under the
  parent's run manifest.  When a request trace
  (:mod:`repro.obs.reqtrace`) is active in the dispatching context, its
  ``trace_id``/``request_id`` additionally ride the task envelope, workers
  record spans even without an ambient tracer, and the shipped events are
  folded into the requesting trace (:meth:`RequestTrace.adopt`) — after
  the stale-round filter, so an abandoned round's spans never orphan into
  a newer request.
* **Heartbeats** — with ``heartbeat_interval`` set, each worker runs a
  tiny daemon thread posting liveness beats (current task, busy time,
  RSS, tasks completed) onto the result queue.  The parent records the
  latest beat per worker while draining rounds (and on demand via
  :meth:`WorkerPool.poll_heartbeats`); the
  :class:`~repro.obs.live.Watchdog` reads them through
  :meth:`WorkerPool.heartbeats` / :meth:`WorkerPool.worker_health` to
  flag stalled, dead, or memory-leaking workers *before* the round's
  timeout matures into a :class:`~repro.errors.WorkerCrashError`.  The
  default (``None``) sends nothing — identical traffic and cost to a
  pool without the feature.
* **Telemetry aggregation** — each worker ships the delta of its own
  ``METRICS`` registry (and, when the parent has memory profiling on, its
  task's heap/RSS peaks) back with every result.  The parent merges the
  delta under a ``worker{i}.`` prefix *and* a combined ``workers.``
  rollup (:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`), so
  for deterministic kernels ``workers.<counter>`` equals the counter a
  serial run would have ticked.  The pool also maintains health metrics:
  ``parallel.pool.tasks_dispatched`` / ``.tasks_completed`` /
  ``.task_errors`` counters, a ``parallel.pool.workers`` gauge, and
  ``parallel.pool.task_seconds`` / ``.queue_wait_seconds`` histograms
  (wait = round-trip latency minus worker execution time).

Worker-side task functions are registered with :func:`task` at import time;
``_worker_main`` imports the kernel modules explicitly so registration also
happens under the ``spawn`` start method.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Any, Callable, Sequence

from repro.errors import ParallelError, WorkerCrashError
from repro.obs import METRICS, current_tracer, disable_tracing, enable_tracing, span
from repro.obs.metrics import snapshot_delta
from repro.obs.reqtrace import current_trace as current_request_trace
from repro.obs.prof import (
    disable_memory_profiling,
    enable_memory_profiling,
    measure_block,
    memory_profiling_enabled,
)
from repro.obs.sink import MemorySink
from repro.parallel.shm import ArenaDescriptor, ShmArena

__all__ = ["TaskSpec", "WorkerPool", "task", "default_workers"]

#: Registered worker-side task functions: name -> fn(views, payload) -> result.
_TASKS: dict[str, Callable[[dict, dict], Any]] = {}

#: Seconds a result drain waits between liveness polls.
_POLL_SECONDS = 0.05


def task(name: str) -> Callable[[Callable[[dict, dict], Any]], Callable[[dict, dict], Any]]:
    """Decorator registering a worker-side task function under ``name``."""

    def register(fn: Callable[[dict, dict], Any]) -> Callable[[dict, dict], Any]:
        """Record ``fn`` in the task registry and return it unchanged."""
        _TASKS[name] = fn
        return fn

    return register


def default_workers() -> int:
    """Worker count when the caller does not choose: the visible CPUs."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class TaskSpec:
    """One unit of work: a task name, its shared arrays, and a payload."""

    __slots__ = ("name", "arenas", "payload")

    def __init__(
        self,
        name: str,
        payload: dict,
        arenas: Sequence[ArenaDescriptor] = (),
    ) -> None:
        self.name = name
        self.payload = payload
        self.arenas = tuple(arenas)


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #


def _worker_views(
    cache: dict[str, ShmArena], descriptors: Sequence[ArenaDescriptor]
) -> dict[str, Any]:
    views: dict[str, Any] = {}
    for d in descriptors:
        arena = cache.get(d.shm_name or repr(d.specs))
        if arena is None:
            arena = ShmArena.attach(d)
            cache[d.shm_name or repr(d.specs)] = arena
        views.update(arena.views())
    return views


def _heartbeat_loop(
    worker_id: int, result_q: Any, state: dict, interval: float, stop: Any
) -> None:
    """Worker-side beat: post liveness onto the result queue until told to stop.

    Beats reuse the result-message shape with the sentinel task id ``-1``
    and status ``"heartbeat"`` so the parent's drain loop needs no second
    channel.  ``busy_seconds`` is computed worker-side (clock-skew free);
    the parent adds queue-delivery staleness from its own receive time.
    """
    from repro.obs.prof import rss_bytes

    while not stop.wait(interval):
        busy_since = state["busy_since"]
        beat = {
            "worker": worker_id,
            "task_id": state["task_id"],
            "task": state["task"],
            "busy_seconds": (
                time.monotonic() - busy_since if state["task_id"] is not None else 0.0
            ),
            "n_done": state["n_done"],
            "rss_bytes": rss_bytes(),
        }
        try:
            result_q.put((-1, worker_id, "heartbeat", beat, [], {}))
        except (OSError, ValueError):  # pragma: no cover - queue torn down
            return


def _worker_main(
    worker_id: int, task_q: Any, result_q: Any, heartbeat_interval: float | None = None
) -> None:
    # Explicit imports populate the task registry under the spawn method.
    import repro.connectit.framework  # noqa: F401
    import repro.generators.parallel  # noqa: F401
    import repro.parallel.bfs  # noqa: F401
    import repro.parallel.components  # noqa: F401
    import repro.parallel.queries  # noqa: F401
    import repro.service.shards  # noqa: F401

    state: dict[str, Any] = {"task_id": None, "task": None, "busy_since": 0.0, "n_done": 0}
    hb_stop: Any = None
    if heartbeat_interval:
        import threading

        hb_stop = threading.Event()
        threading.Thread(
            target=_heartbeat_loop,
            args=(worker_id, result_q, state, float(heartbeat_interval), hb_stop),
            name=f"repro-heartbeat-{worker_id}",
            daemon=True,
        ).start()

    arenas: dict[str, ShmArena] = {}
    while True:
        msg = task_q.get()
        if msg is None:
            break
        task_id, name, descriptors, payload, traced, memprof, trace_ctx = msg
        state["busy_since"] = time.monotonic()
        state["task"] = name
        state["task_id"] = task_id
        events: list[dict] = []
        telemetry: dict = {}
        try:
            fn = _TASKS.get(name)
            if fn is None:
                raise ParallelError(f"worker has no task {name!r}; registered: {sorted(_TASKS)}")
            sink = None
            # A request-trace context piggybacks span recording even when the
            # parent has no ambient tracer: the shipped events become the
            # request's per-shard worker spans (RequestTrace.adopt).
            if traced or trace_ctx is not None:
                sink = MemorySink()
                enable_tracing(sink)
            if memprof:
                enable_memory_profiling()
            span_attrs: dict[str, Any] = {"worker": worker_id, "task": task_id}
            if trace_ctx is not None:
                span_attrs["trace_id"] = trace_ctx.get("trace_id")
            before = METRICS.snapshot()
            t0 = time.perf_counter()
            try:
                with measure_block() as mem:
                    with span(f"parallel.{name}", **span_attrs):
                        out = fn(_worker_views(arenas, descriptors), payload)
            finally:
                telemetry = snapshot_delta(before, METRICS.snapshot())
                telemetry["exec_seconds"] = time.perf_counter() - t0
                if mem.enabled:
                    telemetry["memory"] = mem.meta()
                if memprof:
                    disable_memory_profiling()
                if sink is not None:
                    events = list(sink.events)
                    disable_tracing()
            result_q.put((task_id, worker_id, "ok", out, events, telemetry))
        except BaseException as exc:  # noqa: BLE001 - relayed to the parent
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            result_q.put((task_id, worker_id, "error", detail, events, telemetry))
        state["task_id"] = None
        state["task"] = None
        state["n_done"] += 1
    if hb_stop is not None:
        hb_stop.set()
    for arena in arenas.values():
        arena.close()


#: Self-test tasks used by the pool's own test-suite.


@task("selftest.echo")
def _selftest_echo(views: dict, payload: dict) -> dict:
    """Echo the payload back (used by pool round-trip tests)."""
    with span("parallel.selftest.echo.inner"):
        return {"echo": payload.get("value"), "arrays": sorted(views)}


@task("selftest.tick")
def _selftest_tick(views: dict, payload: dict) -> int:
    """Tick worker-side metrics (and optionally allocate) for telemetry tests."""
    n = int(payload.get("n", 1))
    METRICS.inc("selftest.ticks", n)
    METRICS.observe("selftest.lat", float(n))
    blob = bytearray(int(payload.get("alloc_bytes", 0)))
    del blob
    return n


@task("selftest.exit")
def _selftest_exit(views: dict, payload: dict) -> None:
    # Simulates a hard worker crash (segfault/OOM-kill): no exception, no
    # result, the process just disappears.
    os._exit(int(payload.get("code", 1)))


@task("selftest.fail")
def _selftest_fail(views: dict, payload: dict) -> None:
    # A task that raises: the worker survives and relays the traceback.
    raise ValueError(str(payload.get("message", "selftest failure")))


@task("selftest.sleep")
def _selftest_sleep(views: dict, payload: dict) -> float:
    # Simulates a stalled worker: busy on one task long enough for the
    # watchdog to notice, while the heartbeat thread keeps beating.
    seconds = float(payload.get("seconds", 1.0))
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        time.sleep(0.01)
    return seconds


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #


class WorkerPool:
    """``p`` persistent worker processes executing registered tasks.

    Parameters
    ----------
    workers:
        Process count (default: visible CPUs).
    method:
        ``multiprocessing`` start method; default ``fork`` where available
        (cheap, inherits the import state), otherwise ``spawn``.
    timeout:
        Per-round ceiling in seconds while draining results; a round that
        exceeds it raises :class:`~repro.errors.WorkerCrashError` naming the
        outstanding tasks (hang protection for CI).
    heartbeat_interval:
        Seconds between worker liveness beats, or None (default) for no
        heartbeat traffic at all.  Enable it when a
        :class:`~repro.obs.live.Watchdog` monitors the pool.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        method: str | None = None,
        timeout: float = 300.0,
        heartbeat_interval: float | None = None,
    ) -> None:
        import multiprocessing as mp

        self.workers = int(workers) if workers else default_workers()
        if self.workers <= 0:
            raise ParallelError(f"worker count must be positive, got {workers}")
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(method)
        self.method = method
        self.timeout = float(timeout)
        self.heartbeat_interval = (
            float(heartbeat_interval) if heartbeat_interval else None
        )
        self._procs: list[Any] = []
        self._task_qs: list[Any] = []
        self._result_q: Any = None
        self._started = False
        self._closed = False
        #: Latest heartbeat per worker id (parent receive time under
        #: ``"received"``); empty unless ``heartbeat_interval`` is set.
        self._heartbeats: dict[int, dict] = {}
        #: Monotonic task ids across rounds, so a late result from a timed-out
        #: round can never be mistaken for one of the current round's.
        self._task_counter = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "WorkerPool":
        """Launch the worker processes (idempotent; returns ``self``)."""
        if self._closed:
            raise ParallelError("pool has been shut down")
        if self._started:
            return self
        self._result_q = self._ctx.Queue()
        for wid in range(self.workers):
            tq = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(wid, tq, self._result_q, self.heartbeat_interval),
                name=f"repro-worker-{wid}",
                daemon=True,
            )
            proc.start()
            self._task_qs.append(tq)
            self._procs.append(proc)
        self._started = True
        METRICS.inc("parallel.pools_started")
        METRICS.set("parallel.pool.workers", self.workers)
        return self

    def shutdown(self) -> None:
        """Stop the workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        for tq in self._task_qs:
            try:
                tq.put(None)
            except (OSError, ValueError):  # pragma: no cover - dead queue
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        for q in (*self._task_qs, self._result_q):
            if q is not None:
                q.close()
        self._procs.clear()
        self._task_qs.clear()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run_tasks(self, tasks: Sequence[TaskSpec]) -> list[Any]:
        """Execute a round of tasks; results in submission order.

        Task ``i`` runs on worker ``i % p``.  Raises
        :class:`~repro.errors.WorkerCrashError` if any worker dies or
        reports an exception; remaining results of the round are drained
        best-effort first so the pool stays usable after a task error.
        """
        if not tasks:
            return []
        self.start()
        traced = current_tracer() is not None
        rtrace = current_request_trace()
        trace_ctx = rtrace.context() if rtrace is not None else None
        memprof = memory_profiling_enabled()
        base = self._task_counter
        self._task_counter += len(tasks)
        dispatched_at: dict[int, float] = {}
        for i, spec in enumerate(tasks):
            if spec.name not in _TASKS:
                raise ParallelError(f"unknown task {spec.name!r}")
            dispatched_at[base + i] = self._now()
            self._task_qs[i % self.workers].put(
                (base + i, spec.name, spec.arenas, spec.payload, traced, memprof, trace_ctx)
            )
        METRICS.inc("parallel.pool.tasks_dispatched", len(tasks))
        results: dict[int, Any] = {}
        errors: dict[int, str] = {}
        deadline = self._now() + self.timeout
        while len(results) + len(errors) < len(tasks):
            got = self._drain_one(
                deadline, n_expected=len(tasks), n_done=len(results) + len(errors)
            )
            task_id, worker_id, status, out, events, telemetry = got
            if status == "heartbeat":
                self._record_heartbeat(worker_id, out)
                continue
            if not base <= task_id < base + len(tasks):
                continue  # stale result from an abandoned round
            if events:
                self._adopt_events(events, worker_id)
                if rtrace is not None:
                    # After the staleness filter on purpose: an abandoned
                    # round's spans never orphan into a newer request trace.
                    rtrace.adopt(events, worker=worker_id)
            if telemetry:
                self._merge_telemetry(worker_id, telemetry, dispatched_at.get(task_id))
            if status == "ok":
                METRICS.inc("parallel.pool.tasks_completed")
                results[task_id - base] = out
            else:
                METRICS.inc("parallel.pool.task_errors")
                errors[task_id - base] = out
        METRICS.inc("parallel.tasks", len(tasks))
        if errors:
            first = min(errors)
            raise WorkerCrashError(
                f"{len(errors)} task(s) failed in round of {len(tasks)}; "
                f"task {first} reported:\n{errors[first]}"
            )
        return [results[i] for i in range(len(tasks))]

    # ------------------------------------------------------------------ #
    # health
    # ------------------------------------------------------------------ #

    def heartbeats(self) -> dict[int, dict]:
        """Latest heartbeat per worker id (empty until beats arrive).

        Each beat carries ``task_id``/``task`` (None when idle),
        ``busy_seconds`` (worker-side time on the current task),
        ``n_done``, ``rss_bytes``, and ``received`` — the parent's
        monotonic clock at delivery, from which consumers derive beat
        staleness.  Beats are recorded while :meth:`run_tasks` drains a
        round; between rounds, call :meth:`poll_heartbeats` first.
        """
        return {wid: dict(beat) for wid, beat in self._heartbeats.items()}

    def poll_heartbeats(self) -> dict[int, dict]:
        """Drain pending heartbeats without blocking; returns :meth:`heartbeats`.

        Only safe *between* rounds: any stale task results still sitting
        in the queue (from a timed-out, abandoned round) are discarded —
        exactly what :meth:`run_tasks` would do with them.
        """
        import queue as queue_mod

        while self._result_q is not None:
            try:
                got = self._result_q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                break
            if got[2] == "heartbeat":
                self._record_heartbeat(got[1], got[3])
        return self.heartbeats()

    def worker_health(self) -> list[dict]:
        """Process liveness per worker: ``{"worker", "alive", "exitcode"}``."""
        return [
            {"worker": wid, "alive": proc.is_alive(), "exitcode": proc.exitcode}
            for wid, proc in enumerate(self._procs)
        ]

    def restart(self) -> "WorkerPool":
        """Replace all workers with fresh processes (clean recovery).

        Usable both on a healthy pool and after a crash/timeout teardown
        marked it closed; round state (the task counter) survives so stale
        results from the previous generation are still filtered out.
        """
        if self._started:
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for q in (*self._task_qs, self._result_q):
                if q is not None:
                    q.close()
        self._procs.clear()
        self._task_qs.clear()
        self._result_q = None
        self._heartbeats.clear()
        self._started = False
        self._closed = False
        METRICS.inc("parallel.pool.restarts")
        return self.start()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _record_heartbeat(self, worker_id: int, beat: dict) -> None:
        beat = dict(beat)
        beat["received"] = self._now()
        self._heartbeats[worker_id] = beat
        METRICS.inc("parallel.pool.heartbeats")

    @staticmethod
    def _now() -> float:
        import time

        return time.monotonic()

    def _drain_one(self, deadline: float, *, n_expected: int, n_done: int) -> tuple:
        import queue as queue_mod

        while True:
            try:
                return self._result_q.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                dead = [(p.name, p.exitcode) for p in self._procs if not p.is_alive()]
                if dead:
                    names = ", ".join(f"{n} (exit {c})" for n, c in dead)
                    self._teardown_after_crash()
                    raise WorkerCrashError(
                        f"worker process died mid-round: {names}; "
                        f"{n_done}/{n_expected} results received"
                    ) from None
                if self._now() > deadline:
                    raise WorkerCrashError(
                        f"round timed out after {self.timeout:.0f}s with "
                        f"{n_done}/{n_expected} results"
                    ) from None

    def _teardown_after_crash(self) -> None:
        """Kill the survivors: round integrity is gone once one worker dies."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for q in (*self._task_qs, self._result_q):
            if q is not None:
                q.close()
        self._procs.clear()
        self._task_qs.clear()
        self._result_q = None
        self._started = False
        self._closed = True

    def _merge_telemetry(
        self, worker_id: int, telemetry: dict, dispatched: float | None
    ) -> None:
        """Fold one task's worker telemetry into the parent ``METRICS``.

        Kernel counters land twice: once under ``worker{i}.`` (per-worker
        series) and once under ``workers.`` (the combined rollup that is
        comparable with a serial run's counters).  Execution time and
        queue wait feed the pool-health histograms; worker memory peaks
        (shipped only when the parent has memory profiling enabled) land
        as per-worker gauges with a max rollup.
        """
        METRICS.merge_snapshot(
            {k: telemetry.get(k, {}) for k in ("counters", "gauges", "histograms")},
            prefix=f"worker{worker_id}",
            rollup="workers",
        )
        exec_seconds = telemetry.get("exec_seconds")
        if exec_seconds is not None:
            METRICS.observe("parallel.pool.task_seconds", float(exec_seconds))
            if dispatched is not None:
                wait = (self._now() - dispatched) - float(exec_seconds)
                METRICS.observe("parallel.pool.queue_wait_seconds", max(0.0, wait))
        memory = telemetry.get("memory") or {}
        peak = memory.get("peak_bytes")
        if peak is not None:
            METRICS.set(f"worker{worker_id}.memory.peak_bytes", float(peak))
            rollup = METRICS.gauge("workers.memory.peak_bytes")
            rollup.set(max(rollup.value, float(peak)))

    def _adopt_events(self, events: list[dict], worker_id: int) -> None:
        """Re-emit worker span events under the parent tracer."""
        tracer = current_tracer()
        if tracer is None:
            return
        parent_open = tracer._stack[-1] if tracer._stack else None
        remap: dict[int, int] = {}
        for ev in events:
            remap[ev["span_id"]] = next(tracer._ids)
        for ev in events:
            adopted = dict(ev)
            adopted["span_id"] = remap[ev["span_id"]]
            pid = ev.get("parent_id")
            adopted["parent_id"] = remap.get(pid, parent_open) if pid is not None else parent_open
            attrs = dict(ev.get("attrs", {}))
            attrs.setdefault("worker", worker_id)
            adopted["attrs"] = attrs
            if tracer.manifest is not None:
                adopted["manifest_id"] = tracer.manifest.id
            tracer.n_events += 1
            tracer.sink.emit(adopted)
