"""Parallel connectivity queries over the shared link-cut forest.

The paper's observation for section 3.1 — *"the queries can be processed in
parallel, as they only involve memory reads"* — maps directly onto the
process backend: the forest's parent array goes into shared memory once,
the query pairs are split into contiguous ranges, and each worker runs the
same vectorised root-chase as :meth:`repro.core.linkcut
.LinkCutForest.findroot_batch` over its slice.  A query's answer and its
hop count depend only on its two endpoints' depths, so partition boundaries
change neither: answers concatenate back in submission order and the hop
total is the exact sum the serial batch would have counted.
"""

from __future__ import annotations

import numpy as np

from repro.core.linkcut import LinkCutForest
from repro.errors import GraphError
from repro.obs import METRICS, span
from repro.parallel.partition import range_chunks
from repro.parallel.pool import TaskSpec, WorkerPool, task
from repro.parallel.shm import ShmArena

__all__ = ["parallel_query_batch"]

_NIL = -1


def _chase_roots(parent: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, int]:
    """Vectorised findroot over ``v`` (copy); returns (roots, hops)."""
    v = v.copy()
    hops = 0
    active = parent[v] != _NIL
    while np.any(active):
        v[active] = parent[v[active]]
        hops += int(np.count_nonzero(active))
        active = parent[v] != _NIL
    return v, hops


@task("queries.connected")
def _queries_connected(views: dict, payload: dict) -> dict:
    """Answer one contiguous slice of the query batch (worker side)."""
    lo, hi = payload["lo"], payload["hi"]
    parent = views["parent"]
    us = views["us"][lo:hi]
    vs = views["vs"][lo:hi]
    ru, hops_u = _chase_roots(parent, us)
    rv, hops_v = _chase_roots(parent, vs)
    # Worker-side mirror of the oracle's parent-side ticks: the pool ships
    # these back as telemetry, so the parent's ``workers.connectivity.*``
    # rollup equals the serial backend's counters for the same batch.
    METRICS.inc("connectivity.queries", int(hi - lo))
    METRICS.inc("connectivity.hops", hops_u + hops_v)
    return {
        "connected": np.ascontiguousarray(ru == rv),
        "hops": hops_u + hops_v,
        "fragment": {"queries": int(hi - lo), "hops": hops_u + hops_v},
    }


def parallel_query_batch(
    forest: LinkCutForest,
    us: np.ndarray,
    vs: np.ndarray,
    pool: WorkerPool,
    *,
    fragments_out: list | None = None,
) -> tuple[np.ndarray, int]:
    """Answer ``(us[i], vs[i])`` connectivity queries with the pool.

    Returns ``(connected, hops)`` where ``connected`` is bit-identical to
    :meth:`LinkCutForest.connected_batch` and ``hops`` equals the pointer
    work the serial batch would have accumulated (each endpoint is chased
    exactly its depth, independent of partitioning).  The forest's ``hops``
    counter is advanced by the same amount so downstream profiles agree.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if us.shape != vs.shape or us.ndim != 1:
        raise GraphError("query endpoint arrays must be 1-D and equal length")
    for arr in (us, vs):
        if arr.size and (arr.min() < 0 or arr.max() >= forest.n):
            raise GraphError("query endpoint out of range")
    if us.size == 0:
        return np.zeros(0, dtype=bool), 0
    pool.start()
    arrays = {"parent": forest.parent, "us": us, "vs": vs}
    with ShmArena.create(arrays) as arena:
        descriptor = arena.descriptor
        chunks = range_chunks(int(us.size), pool.workers)
        with span("parallel.query_batch", n_queries=int(us.size), workers=pool.workers) as sp:
            outs = pool.run_tasks(
                [
                    TaskSpec(
                        "queries.connected", {"lo": lo, "hi": hi}, arenas=(descriptor,)
                    )
                    for lo, hi in chunks
                ]
            )
            connected = np.concatenate([o["connected"] for o in outs])
            hops = int(sum(o["hops"] for o in outs))
            sp.set(hops=hops)
    if fragments_out is not None:
        fragments_out.extend(o["fragment"] for o in outs)
    forest.hops += hops
    METRICS.inc("parallel.query_batches")
    return connected, hops
