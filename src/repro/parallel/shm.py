"""Shared-memory arenas: zero-copy numpy arrays across processes.

A :class:`ShmArena` packs a set of named numpy arrays into one
``multiprocessing.shared_memory.SharedMemory`` segment.  The parent process
creates the arena (copying each array in once); workers attach via the
picklable :class:`ArenaDescriptor` and get numpy views directly onto the
segment — no serialisation, no per-task copies.  This is what lets the
process backend traverse multi-megabyte CSR adjacency arrays from every
worker at memory speed (the paper's shared-memory SMP model, recovered in
Python).

Mutability is part of the contract: the parent's view of an array and every
worker's view alias the same bytes, so e.g. the BFS ``dist`` array updated
by the parent between levels is immediately visible to workers at the next
level.  Synchronisation is the caller's job (the drivers in this package
only ever write from the parent between task rounds).

Zero-length arrays are carried in the descriptor but not backed by the
segment (POSIX shared memory cannot be empty); attaching yields an ordinary
empty array, which is semantically identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator, Mapping

import numpy as np

from repro.errors import ParallelError

__all__ = ["ArraySpec", "ArenaDescriptor", "ShmArena"]

#: Alignment of each array within the segment (cache-line friendly).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one named array inside the shared segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        """Size of the array's payload in bytes."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class ArenaDescriptor:
    """Picklable handle a worker uses to attach to an existing arena."""

    shm_name: str
    specs: tuple[ArraySpec, ...]

    @property
    def names(self) -> tuple[str, ...]:
        """The arena's array names, in placement order."""
        return tuple(s.name for s in self.specs)


class ShmArena:
    """A set of named numpy arrays living in one shared-memory segment.

    Create with :meth:`create` (parent, owns the segment) or :meth:`attach`
    (worker, borrows it).  The owner must eventually call :meth:`unlink`;
    both sides should :meth:`close`.  Usable as a context manager — exit
    closes, and unlinks when owning.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory | None,
        specs: tuple[ArraySpec, ...],
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._specs = {s.name: s for s in specs}
        self._owner = owner
        self._views: dict[str, np.ndarray] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "ShmArena":
        """Copy ``arrays`` into a fresh shared segment (parent side)."""
        if not arrays:
            raise ParallelError("cannot create an empty shared arena")
        specs: list[ArraySpec] = []
        offset = 0
        for name, arr in arrays.items():
            a = np.ascontiguousarray(arr)
            offset = _aligned(offset)
            specs.append(ArraySpec(name, a.dtype.str, tuple(a.shape), offset))
            offset += a.nbytes
        shm = None
        if offset > 0:
            shm = shared_memory.SharedMemory(create=True, size=offset)
        arena = cls(shm, tuple(specs), owner=True)
        for name, arr in arrays.items():
            view = arena.view(name)
            if view.size:
                view[...] = arr
        return arena

    @classmethod
    def attach(cls, descriptor: ArenaDescriptor) -> "ShmArena":
        """Open an existing arena from its descriptor (worker side)."""
        shm = None
        if descriptor.shm_name:
            # Attaching would register the segment with the resource tracker,
            # which (a) double-unlinks it at exit, (b) warns about "leaked"
            # objects, and (c) under the fork start method shares the parent's
            # tracker, so an unregister here would strip the *owner's*
            # registration.  Lifetime is owned by the creating process: make
            # registration a no-op for the duration of the attach instead.
            from multiprocessing import resource_tracker

            def _no_register(*args: object, **kwargs: object) -> None:
                return None

            orig_register = resource_tracker.register
            resource_tracker.register = _no_register
            try:
                shm = shared_memory.SharedMemory(name=descriptor.shm_name)
            finally:
                resource_tracker.register = orig_register
        return cls(shm, descriptor.specs, owner=False)

    @property
    def descriptor(self) -> ArenaDescriptor:
        """The picklable handle workers attach with (a few hundred bytes)."""
        name = self._shm.name if self._shm is not None else ""
        return ArenaDescriptor(name, tuple(self._specs.values()))

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def view(self, name: str) -> np.ndarray:
        """Zero-copy numpy view of one array (cached per arena)."""
        if self._closed:
            raise ParallelError("arena is closed")
        got = self._views.get(name)
        if got is not None:
            return got
        try:
            spec = self._specs[name]
        except KeyError:
            raise ParallelError(
                f"arena has no array {name!r}; available: {sorted(self._specs)}"
            ) from None
        if spec.nbytes == 0 or self._shm is None:
            arr = np.empty(spec.shape, dtype=np.dtype(spec.dtype))
        else:
            arr = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf,
                offset=spec.offset,
            )
        self._views[name] = arr
        return arr

    def views(self) -> dict[str, np.ndarray]:
        """All arrays, keyed by name."""
        return {name: self.view(name) for name in self._specs}

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    @property
    def nbytes(self) -> int:
        """Total size of the shared segment (0 when all arrays are empty)."""
        return self._shm.size if self._shm is not None else 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release this process's mapping (views become invalid)."""
        if self._closed:
            return
        # Views hold exported buffers into the mapping; drop ours first.
        self._views.clear()
        self._closed = True
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                # A caller still holds a view; the mapping is released when
                # the last view is garbage-collected instead.
                pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after every close)."""
        if self._shm is not None and self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShmArena(arrays={sorted(self._specs)}, nbytes={self.nbytes}, "
            f"owner={self._owner})"
        )
