"""Synthetic input generators.

* :mod:`repro.generators.rmat` — the R-MAT recursive-matrix generator with the
  paper's shaping parameters (0.6, 0.15, 0.15, 0.10), section 1.2.
* :mod:`repro.generators.timestamps` — uniform random edge time labels.
* :mod:`repro.generators.streams` — structural-update streams (insertions,
  deletions, mixes, batching, semi-sorting), section 2.1.
* :mod:`repro.generators.reference` — small deterministic and classical random
  graphs used for validation and examples.
"""

from repro.edgelist import EdgeList
from repro.generators.rmat import RMATParams, rmat_edges, rmat_graph, PAPER_RMAT
from repro.generators.timestamps import uniform_timestamps, assign_timestamps
from repro.generators.streams import (
    UpdateStream,
    INSERT,
    DELETE,
    insertion_stream,
    deletion_stream,
    mixed_stream,
    semisort,
    iter_batches,
)
from repro.generators.reference import (
    path_graph,
    cycle_graph,
    star_graph,
    complete_graph,
    grid_graph,
    erdos_renyi,
    watts_strogatz,
    to_networkx,
)

__all__ = [
    "EdgeList",
    "RMATParams",
    "rmat_edges",
    "rmat_graph",
    "PAPER_RMAT",
    "uniform_timestamps",
    "assign_timestamps",
    "UpdateStream",
    "INSERT",
    "DELETE",
    "insertion_stream",
    "deletion_stream",
    "mixed_stream",
    "semisort",
    "iter_batches",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "erdos_renyi",
    "watts_strogatz",
    "to_networkx",
]
