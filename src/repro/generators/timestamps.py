"""Edge time-stamp assignment.

The paper assigns uniform random integer time-stamps to edges for its
experimental study (section 1.2): λ(e) ∈ [lo, hi].  Figure 9 uses [1, 100],
Figure 11 uses [0, 20].
"""

from __future__ import annotations

import numpy as np

from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.util.seeding import make_rng

__all__ = ["uniform_timestamps", "assign_timestamps"]


def uniform_timestamps(
    m: int,
    lo: int,
    hi: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``m`` integer time labels uniformly from ``[lo, hi]`` inclusive.

    Labels must be non-negative per the temporal-network definition
    (Kempe et al., paper section 2).
    """
    if m < 0:
        raise GraphError(f"count must be >= 0, got {m}")
    if lo < 0:
        raise GraphError(f"time labels must be non-negative, got lo={lo}")
    if hi < lo:
        raise GraphError(f"empty time range [{lo}, {hi}]")
    rng = make_rng(seed)
    return rng.integers(lo, hi + 1, size=m, dtype=np.int64)


def assign_timestamps(
    graph: EdgeList,
    lo: int,
    hi: int,
    seed: int | np.random.Generator | None = None,
) -> EdgeList:
    """Return a copy of ``graph`` with fresh uniform time-stamps attached."""
    return graph.with_timestamps(uniform_timestamps(graph.m, lo, hi, seed))
