"""Structural-update streams (paper section 2.1).

An :class:`UpdateStream` is a sequence of edge insertions and deletions, the
input to every representation's update path.  Builders cover the paper's
workloads:

* graph construction "treated as a series of insertions" (Figures 1–4);
* random deletions after construction (Figure 5, 20M deletions);
* mixed streams with a given insertion fraction (Figure 6, 75%/25%);
* semi-sorting by source vertex, the lower bound for batched processing
  (Figure 3);
* random shuffling, the paper's remedy for hot-vertex insertion bursts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.edgelist import EdgeList
from repro.errors import StreamError
from repro.util.seeding import make_rng
from repro.util.validation import check_probability, check_same_length, check_vertex_ids

__all__ = [
    "INSERT",
    "DELETE",
    "UpdateStream",
    "insertion_stream",
    "deletion_stream",
    "mixed_stream",
    "semisort",
    "iter_batches",
]

#: Op codes stored in :attr:`UpdateStream.op`.
INSERT: int = 1
DELETE: int = -1


@dataclass(frozen=True)
class UpdateStream:
    """A sequence of structural updates in arrival order.

    ``op`` holds :data:`INSERT` / :data:`DELETE` codes (int8); ``src``,
    ``dst`` the edge endpoints; ``ts`` the time label carried by insertions
    (ignored for deletions, kept for symmetry).
    """

    n: int
    op: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    ts: np.ndarray
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        op = np.asarray(self.op, dtype=np.int8)
        if op.ndim != 1:
            raise StreamError("op must be 1-D")
        bad = np.setdiff1d(np.unique(op), [INSERT, DELETE])
        if bad.size:
            raise StreamError(f"invalid op codes: {bad.tolist()}")
        src = check_vertex_ids(self.src, self.n, "src")
        dst = check_vertex_ids(self.dst, self.n, "dst")
        ts = np.asarray(self.ts, dtype=np.int64)
        check_same_length([("op", op), ("src", src), ("dst", dst), ("ts", ts)])
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        object.__setattr__(self, "ts", ts)

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self.op.size)

    @property
    def n_inserts(self) -> int:
        """Number of insertion updates in the stream."""
        return int(np.count_nonzero(self.op == INSERT))

    @property
    def n_deletes(self) -> int:
        """Number of deletion updates in the stream."""
        return int(np.count_nonzero(self.op == DELETE))

    def select(self, index: np.ndarray) -> "UpdateStream":
        """Subsequence by integer index array (order preserved)."""
        return replace(
            self,
            op=self.op[index],
            src=self.src[index],
            dst=self.dst[index],
            ts=self.ts[index],
        )

    def shuffled(self, seed: int | np.random.Generator | None = None) -> "UpdateStream":
        """Uniform random permutation of the update order."""
        rng = make_rng(seed)
        return self.select(rng.permutation(len(self)))

    def concatenated(self, other: "UpdateStream") -> "UpdateStream":
        """This stream followed by ``other`` (vertex spaces must match)."""
        if other.n != self.n:
            raise StreamError(f"vertex-count mismatch: {self.n} vs {other.n}")
        return UpdateStream(
            self.n,
            np.concatenate([self.op, other.op]),
            np.concatenate([self.src, other.src]),
            np.concatenate([self.dst, other.dst]),
            np.concatenate([self.ts, other.ts]),
            meta=dict(self.meta),
        )

    def inserts_only(self) -> "UpdateStream":
        """The insertion subsequence, order preserved."""
        return self.select(np.nonzero(self.op == INSERT)[0])

    def deletes_only(self) -> "UpdateStream":
        """The deletion subsequence, order preserved."""
        return self.select(np.nonzero(self.op == DELETE)[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UpdateStream(n={self.n}, len={len(self)}, "
            f"+{self.n_inserts}/-{self.n_deletes})"
        )


# ---------------------------------------------------------------------- #
# builders
# ---------------------------------------------------------------------- #


def insertion_stream(
    graph: EdgeList,
    *,
    shuffle: bool = False,
    seed: int | np.random.Generator | None = None,
) -> UpdateStream:
    """Graph construction as a stream of insertions (Figures 1–4).

    Edge order follows the generator unless ``shuffle`` is set — the paper
    shuffles to avoid bursts of insertions to one high-degree vertex.
    """
    stream = UpdateStream(
        graph.n,
        np.full(graph.m, INSERT, dtype=np.int8),
        graph.src,
        graph.dst,
        graph.timestamps(),
        meta={"kind": "insertion", **dict(graph.meta)},
    )
    return stream.shuffled(seed) if shuffle else stream


def deletion_stream(
    graph: EdgeList,
    k: int,
    seed: int | np.random.Generator | None = None,
) -> UpdateStream:
    """``k`` random deletions of distinct existing edges (Figure 5).

    Samples edge *positions* without replacement, so every deletion refers
    to an edge that is actually present after construction.
    """
    if k < 0:
        raise StreamError(f"deletion count must be >= 0, got {k}")
    if k > graph.m:
        raise StreamError(f"cannot delete {k} edges from a graph with {graph.m}")
    rng = make_rng(seed)
    idx = rng.choice(graph.m, size=k, replace=False)
    return UpdateStream(
        graph.n,
        np.full(k, DELETE, dtype=np.int8),
        graph.src[idx],
        graph.dst[idx],
        graph.timestamps()[idx],
        meta={"kind": "deletion", "base_m": graph.m},
    )


def mixed_stream(
    graph: EdgeList,
    n_updates: int,
    insert_frac: float = 0.75,
    seed: int | np.random.Generator | None = None,
    *,
    insert_edges: EdgeList | None = None,
    delete_mode: str = "existing",
) -> UpdateStream:
    """Random mix of insertions and deletions (Figure 6: 50M at 75%/25%).

    ``delete_mode`` selects what the deletions target:

    * ``"existing"`` — random existing edges (degree-biased endpoints, the
      expensive case for linear-scan structures; Figure 5's workload);
    * ``"uniform"`` — uniform random vertex pairs, which in a sparse graph
      mostly name absent edges (cheap misses on short blocks).  This is the
      reading of Figure 6's "random selection of 50 million updates" that
      reconciles it with Figure 5 (see EXPERIMENTS.md).

    Insertions come from ``insert_edges`` when provided (e.g. freshly
    generated R-MAT edges); otherwise they re-sample the base graph's edges
    with replacement, which preserves the power-law hot-spot structure of
    the arrival process — repeated interactions between the same entities,
    the common case in the interaction networks the paper targets.
    """
    check_probability(insert_frac, "insert_frac")
    if n_updates < 0:
        raise StreamError(f"update count must be >= 0, got {n_updates}")
    if delete_mode not in ("existing", "uniform"):
        raise StreamError(f"delete_mode must be 'existing' or 'uniform', got {delete_mode!r}")
    rng = make_rng(seed)
    n_ins = int(round(n_updates * insert_frac))
    n_del = n_updates - n_ins
    if delete_mode == "existing" and n_del > graph.m:
        raise StreamError(
            f"{n_del} deletions requested but the base graph has {graph.m} edges"
        )

    if insert_edges is not None:
        if insert_edges.n != graph.n:
            raise StreamError("insert_edges vertex count must match the base graph")
        if insert_edges.m < n_ins:
            raise StreamError(
                f"{n_ins} insertions requested but insert_edges has {insert_edges.m}"
            )
        pick = rng.choice(insert_edges.m, size=n_ins, replace=False)
        ins_src = insert_edges.src[pick]
        ins_dst = insert_edges.dst[pick]
        ins_ts = insert_edges.timestamps()[pick]
    else:
        pick = rng.integers(0, graph.m, size=n_ins)
        ins_src = graph.src[pick]
        ins_dst = graph.dst[pick]
        ins_ts = graph.timestamps()[pick]

    if delete_mode == "existing":
        del_idx = rng.choice(graph.m, size=n_del, replace=False)
        del_src = graph.src[del_idx]
        del_dst = graph.dst[del_idx]
        del_ts = graph.timestamps()[del_idx]
    else:
        del_src = rng.integers(0, graph.n, size=n_del, dtype=np.int64)
        del_dst = rng.integers(0, graph.n, size=n_del, dtype=np.int64)
        del_ts = np.zeros(n_del, dtype=np.int64)
    op = np.concatenate(
        [np.full(n_ins, INSERT, dtype=np.int8), np.full(n_del, DELETE, dtype=np.int8)]
    )
    src = np.concatenate([ins_src, del_src])
    dst = np.concatenate([ins_dst, del_dst])
    ts = np.concatenate([ins_ts, del_ts])
    stream = UpdateStream(
        graph.n, op, src, dst, ts,
        meta={"kind": "mixed", "insert_frac": insert_frac, "delete_mode": delete_mode},
    )
    return stream.shuffled(rng)


def semisort(stream: UpdateStream) -> tuple[UpdateStream, np.ndarray]:
    """Stable sort of the updates by source vertex (paper section 2.1.2).

    Returns the reordered stream and the permutation applied.  The sort
    itself is the paper's lower bound on batched-update cost; the experiment
    harness charges its work separately.
    """
    perm = np.argsort(stream.src, kind="stable")
    return stream.select(perm), perm


def iter_batches(stream: UpdateStream, batch_size: int) -> Iterator[UpdateStream]:
    """Split a stream into contiguous batches of at most ``batch_size``."""
    if batch_size <= 0:
        raise StreamError(f"batch size must be positive, got {batch_size}")
    for start in range(0, len(stream), batch_size):
        yield stream.select(np.arange(start, min(start + batch_size, len(stream))))
