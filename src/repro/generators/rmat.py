"""R-MAT recursive-matrix graph generator (Chakrabarti, Zhan & Faloutsos 2004).

The paper's experimental setup (section 1.2): R-MAT with n = 2^scale
vertices, shaping parameters (a, b, c, d) = (0.6, 0.15, 0.15, 0.10), which
yields a power-law degree distribution with maximum out-degree O(n^0.6), and
m = 10 n edges unless stated otherwise.

The implementation is fully vectorised: one pass per recursion level over the
whole edge batch, drawing each edge's quadrant from the (possibly noised)
probabilities and shifting the corresponding bit into the endpoint ids.
Memory is O(m) int64 plus one float64 scratch per level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.generators.timestamps import uniform_timestamps
from repro.util.seeding import DEFAULT_SEED, make_rng, mix_seed
from repro.util.validation import check_probability

if TYPE_CHECKING:  # runtime import would cycle through repro.parallel
    from repro.parallel.backend import ExecutionBackend

__all__ = ["RMATParams", "PAPER_RMAT", "rmat_edges", "rmat_graph"]


@dataclass(frozen=True)
class RMATParams:
    """R-MAT quadrant probabilities.

    ``a`` is the top-left (both high bits 0) quadrant; ``b`` top-right
    (destination high bit 1); ``c`` bottom-left; ``d`` bottom-right.  They
    must sum to 1.  ``noise`` optionally jitters the probabilities per level
    (a common de-striping refinement; the paper uses none, so 0 by default).
    """

    a: float = 0.6
    b: float = 0.15
    c: float = 0.15
    d: float = 0.10
    noise: float = 0.0

    def __post_init__(self) -> None:
        for name in ("a", "b", "c", "d"):
            check_probability(getattr(self, name), name)
        check_probability(self.noise, "noise")
        total = self.a + self.b + self.c + self.d
        if abs(total - 1.0) > 1e-9:
            raise GraphError(f"R-MAT probabilities must sum to 1, got {total}")

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The quadrant probabilities as an ``(a, b, c, d)`` tuple."""
        return (self.a, self.b, self.c, self.d)


#: The parameterisation used throughout the paper's evaluation.
PAPER_RMAT = RMATParams(0.6, 0.15, 0.15, 0.10)


def rmat_edges(
    scale: int,
    m: int,
    params: RMATParams = PAPER_RMAT,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``m`` directed edges of a 2^scale-vertex R-MAT graph.

    Returns ``(src, dst)`` int64 arrays.  Self-loops and duplicates are NOT
    removed here — callers choose (the paper's update streams treat repeats
    as genuine repeated interactions, while CSR snapshots deduplicate).
    """
    if scale <= 0 or scale > 62:
        raise GraphError(f"scale must be in [1, 62], got {scale}")
    if m < 0:
        raise GraphError(f"edge count must be >= 0, got {m}")
    rng = make_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    a, b, c, d = params.as_tuple()
    # Cumulative thresholds for quadrant selection.
    for level in range(scale):
        if params.noise > 0.0:
            # Multiplicative jitter, renormalised, one draw per level.
            jitter = 1.0 + params.noise * (2.0 * rng.random(4) - 1.0)
            pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
            s = pa + pb + pc + pd
            pa, pb, pc = pa / s, pb / s, pc / s
        else:
            pa, pb, pc = a, b, c
        u = rng.random(m)
        dst_bit = ((u >= pa) & (u < pa + pb)) | (u >= pa + pb + pc)
        src_bit = u >= pa + pb
        bit = np.int64(1) << np.int64(scale - 1 - level)
        src += bit * src_bit
        dst += bit * dst_bit
    return src, dst


def rmat_graph(
    scale: int,
    edge_factor: int = 10,
    *,
    m: int | None = None,
    params: RMATParams = PAPER_RMAT,
    seed: int | np.random.Generator | None = None,
    ts_range: tuple[int, int] | None = None,
    directed: bool = False,
    drop_self_loops: bool = False,
    deduplicate: bool = False,
    shuffle: bool = False,
    backend: str | "ExecutionBackend" = "serial",
    workers: int | None = None,
) -> EdgeList:
    """Generate a full R-MAT :class:`~repro.edgelist.EdgeList`.

    Parameters mirror the paper's setup: ``m = edge_factor * 2**scale`` by
    default (the paper uses edge_factor 10; Figure 9 uses an explicit m).
    ``ts_range=(lo, hi)`` assigns uniform integer time-stamps in [lo, hi]
    from an independent stream derived from the seed.  ``shuffle`` randomly
    permutes edge order, as the paper does before the induced-subgraph
    experiment to remove generator locality.

    ``backend`` selects the execution policy for the topology draw:
    ``"serial"`` (default) runs in-process; ``"process"`` (or an
    :class:`~repro.parallel.backend.ExecutionBackend` instance) generates
    slices communication-free on a worker pool (see docs/GENERATORS.md).
    Output is bit-identical either way, but non-serial backends need an
    integer (or None) ``seed`` — the slice protocol jumps the seed's
    PCG64 stream, which an opaque Generator does not allow.
    """
    n = 1 << scale
    if m is None:
        m = edge_factor * n
    if backend is None or backend == "serial":
        rng = make_rng(seed)
        src, dst = rmat_edges(scale, m, params, rng)
    else:
        from repro.generators.parallel import _generator_at, _level_stride, _require_int_seed
        from repro.parallel.backend import resolve_backend

        seed_int = _require_int_seed(seed)
        be, owned = resolve_backend(backend, workers=workers)
        try:
            src, dst = be.rmat_edges(scale, m, params=params, seed=seed_int)
        finally:
            if owned:
                be.close()
        # Reposition the local rng exactly where the serial path leaves it
        # (scale levels of draws), so ``shuffle`` below permutes
        # identically to a serial run with the same seed.
        rng = _generator_at(seed_int, scale * _level_stride(params, m))
    ts = None
    if ts_range is not None:
        lo, hi = ts_range
        if isinstance(seed, np.random.Generator):
            ts_seed: int | np.random.Generator = rng
        else:
            ts_seed = mix_seed(DEFAULT_SEED if seed is None else seed, "timestamps")
        ts = uniform_timestamps(m, lo, hi, ts_seed)
    g = EdgeList(
        n,
        src,
        dst,
        ts=ts,
        directed=directed,
        meta={"generator": "rmat", "scale": scale, "params": params.as_tuple()},
    )
    if drop_self_loops:
        g = g.without_self_loops()
    if deduplicate:
        g = g.deduplicated()
    if shuffle:
        g = g.shuffled(rng)
    return g
