"""Deterministic and classical random reference graphs.

These are the validation substrate: structures with known connectivity,
diameters, and centrality values that the test suite checks the kernels
against, plus Erdős–Rényi and Watts–Strogatz generators for property-based
tests.  ``to_networkx`` bridges to the independent reference implementation
used in integration tests.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.util.seeding import make_rng
from repro.util.validation import check_probability

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "erdos_renyi",
    "watts_strogatz",
    "to_networkx",
]


def path_graph(n: int) -> EdgeList:
    """Path 0-1-2-…-(n-1); diameter n-1, the worst case for findroot."""
    if n < 0:
        raise GraphError(f"n must be >= 0, got {n}")
    idx = np.arange(max(n - 1, 0), dtype=np.int64)
    return EdgeList(n, idx, idx + 1, meta={"generator": "path"})


def cycle_graph(n: int) -> EdgeList:
    """Cycle on n vertices (n >= 3)."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    idx = np.arange(n, dtype=np.int64)
    return EdgeList(n, idx, (idx + 1) % n, meta={"generator": "cycle"})


def star_graph(n: int) -> EdgeList:
    """Star with centre 0 and n-1 leaves; the extreme degree-skew case."""
    if n < 1:
        raise GraphError(f"star needs n >= 1, got {n}")
    leaves = np.arange(1, n, dtype=np.int64)
    return EdgeList(n, np.zeros(n - 1, dtype=np.int64), leaves, meta={"generator": "star"})


def complete_graph(n: int) -> EdgeList:
    """K_n, each undirected edge stored once."""
    if n < 1:
        raise GraphError(f"complete graph needs n >= 1, got {n}")
    src, dst = np.triu_indices(n, k=1)
    return EdgeList(
        n, src.astype(np.int64), dst.astype(np.int64), meta={"generator": "complete"}
    )


def grid_graph(rows: int, cols: int) -> EdgeList:
    """rows x cols 4-neighbour grid; a high-diameter contrast to small worlds."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs positive dimensions, got {rows}x{cols}")
    n = rows * cols
    ids = np.arange(n, dtype=np.int64).reshape(rows, cols)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    return EdgeList(
        n,
        np.concatenate([right_src, down_src]),
        np.concatenate([right_dst, down_dst]),
        meta={"generator": "grid", "rows": rows, "cols": cols},
    )


def erdos_renyi(
    n: int,
    p: float,
    seed: int | np.random.Generator | None = None,
) -> EdgeList:
    """G(n, p) with each undirected pair included independently.

    Vectorised over all C(n, 2) pairs, so intended for test-scale n.
    """
    if n < 0:
        raise GraphError(f"n must be >= 0, got {n}")
    check_probability(p, "p")
    rng = make_rng(seed)
    if n < 2:
        return EdgeList(n, np.empty(0, np.int64), np.empty(0, np.int64))
    src, dst = np.triu_indices(n, k=1)
    keep = rng.random(src.size) < p
    return EdgeList(
        n,
        src[keep].astype(np.int64),
        dst[keep].astype(np.int64),
        meta={"generator": "erdos_renyi", "p": p},
    )


def watts_strogatz(
    n: int,
    k: int,
    beta: float,
    seed: int | np.random.Generator | None = None,
) -> EdgeList:
    """Watts–Strogatz small-world ring: n vertices, k nearest neighbours,
    rewiring probability beta (the model behind the paper's 'small-world
    phenomenon' reference [26]).

    ``k`` must be even and < n.  Rewiring keeps the source endpoint and
    redraws the destination uniformly, avoiding self-loops; duplicate edges
    may result (as in the classical construction) and can be removed with
    :meth:`EdgeList.deduplicated`.
    """
    if n <= 0:
        raise GraphError(f"n must be positive, got {n}")
    if k <= 0 or k % 2 != 0 or k >= n:
        raise GraphError(f"k must be even and in (0, n), got k={k}, n={n}")
    check_probability(beta, "beta")
    rng = make_rng(seed)
    base = np.arange(n, dtype=np.int64)
    srcs, dsts = [], []
    for hop in range(1, k // 2 + 1):
        srcs.append(base)
        dsts.append((base + hop) % n)
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    rewire = rng.random(src.size) < beta
    new_dst = rng.integers(0, n, size=int(rewire.sum()), dtype=np.int64)
    # Redraw any self-loop the rewiring produced.
    loop = new_dst == src[rewire]
    while np.any(loop):
        new_dst[loop] = rng.integers(0, n, size=int(loop.sum()), dtype=np.int64)
        loop = new_dst == src[rewire]
    dst = dst.copy()
    dst[rewire] = new_dst
    return EdgeList(n, src, dst, meta={"generator": "watts_strogatz", "k": k, "beta": beta})


def to_networkx(graph: EdgeList, *, multigraph: bool = False) -> Any:
    """Convert to a networkx graph (test/validation helper).

    Imports networkx lazily — it is a test-only dependency.  Time-stamps are
    attached as the ``ts`` edge attribute when present.
    """
    import networkx as nx

    if multigraph:
        G = nx.MultiDiGraph() if graph.directed else nx.MultiGraph()
    else:
        G = nx.DiGraph() if graph.directed else nx.Graph()
    G.add_nodes_from(range(graph.n))
    if graph.ts is not None:
        G.add_edges_from(
            (int(u), int(v), {"ts": int(t)})
            for u, v, t in zip(graph.src, graph.dst, graph.ts)
        )
    else:
        G.add_edges_from((int(u), int(v)) for u, v in zip(graph.src, graph.dst))
    return G
