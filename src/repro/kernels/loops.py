"""Fused single-pass loop kernels behind the compiled tier.

Every function here is written in the numba ``nopython`` subset — plain
``for``/``while`` loops over pre-validated int64 arrays, no Python objects,
no fancy indexing — so :mod:`repro.kernels` can wrap each one in
``numba.njit(cache=True)`` when numba is installed and fall back to calling
the identical pure-Python definition when it is not.  That duality is the
testing contract: the equivalence suites exercise these exact loop bodies
(via :func:`repro.kernels.force_available`) even on interpreters without
numba, so the compiled tier never runs logic the CI cannot check.

The loops mirror, counter for counter, the vectorised reference kernels
they replace:

* :func:`delete_match` — the segmented running-max miss detection and
  ballot-style FIFO delete matching of
  :func:`repro.adjacency.bulkops.apply_mixed`, fused into one pass over the
  key-ordered op stream (the numpy form needs ~12 full-array passes).
* :func:`findroot_batch` — the parallel pointer chase of
  :meth:`repro.core.linkcut.LinkCutForest.findroot_batch`, one dependent
  chase per query instead of one full-vector pass per tree level.
* :func:`union_arcs` (with :func:`find_root` / :func:`rem_union`) — the
  union-by-rank / union-by-size / Rem's-splice inner loops of
  :class:`repro.connectit.unionfind.UnionFind`, including the
  ``WorkCounters`` accounting, over a whole arc batch.
* :func:`sv_components` — the Shiloach–Vishkin hook + pointer-jump rounds
  of :func:`repro.core.components.connected_components`, with the hooking
  min-accumulate and the synchronous jump rounds fused per pass.

Counter accounting uses a 5-slot int64 array (see the ``C_*`` constants in
:mod:`repro.kernels`): ``[finds, unions, hooks, pointer_chases,
compaction_writes]``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "delete_match",
    "findroot_batch",
    "find_root",
    "rem_union",
    "union_arcs",
    "sv_components",
]


def delete_match(
    key_s: np.ndarray,
    ins_s: np.ndarray,
    e_op: np.ndarray,
    lo_op: np.ndarray,
    gslot_s: np.ndarray,
    vins_s: np.ndarray,
    cnt0_s: np.ndarray,
    off_s: np.ndarray,
    scratch: np.ndarray,
    tomb_out: np.ndarray,
    succ_out: np.ndarray,
) -> tuple:
    """Fused delete matching over a key-ordered mixed op stream.

    All inputs are int64 and ordered by the packed ``(owner, target)`` key
    (ties in arrival order): ``key_s`` the keys, ``ins_s`` 1 for inserts,
    ``e_op``/``lo_op`` the pre-existing same-key supply and its start in
    ``gslot_s`` (the ascending live-slot index per key), ``vins_s`` the
    same-*vertex* batch inserts before each op, ``cnt0_s`` the pre-batch
    occupancy and ``off_s`` the block offset of each op's owner.

    ``scratch`` (>= total inserts), ``tomb_out`` and ``succ_out`` (>= total
    deletes) are caller-allocated workspaces; the function fills the first
    ``n_succ`` entries of ``tomb_out`` (pool slots to tombstone) and
    ``succ_out`` (key-order op indices of successful deletes) and returns
    ``(n_miss, n_succ, probe_words)`` — bit-identical to the vectorised
    ballot construction in :mod:`repro.adjacency.bulkops`.
    """
    n_miss = 0
    n_succ = 0
    probe = 0
    a = 0  # same-key inserts strictly before the current op
    b = 0  # same-key deletes through the current op (inclusive)
    m_incl = 0  # same-key misses through the current op (inclusive)
    wmax = 0  # running max of w over the key group so far
    first = True
    for j in range(key_s.size):
        if j > 0 and key_s[j] != key_s[j - 1]:
            a = 0
            b = 0
            m_incl = 0
            first = True
        if ins_s[j] == 1:
            w = b - a
            scratch[a] = cnt0_s[j] + vins_s[j]
            a += 1
        else:
            b += 1
            w = b - a
            e = e_op[j]
            if w > e and (first or w > wmax):
                # Demand exceeds both the pre-existing supply and every
                # earlier demand: a miss, scanning the occupied block.
                n_miss += 1
                m_incl += 1
                probe += cnt0_s[j] + vins_s[j]
            else:
                r = b - m_incl  # 1-based rank in the key's FIFO queue
                if r <= e:
                    slot = gslot_s[lo_op[j] + r - 1]
                else:
                    slot = scratch[r - e - 1]
                tomb_out[n_succ] = off_s[j] + slot
                succ_out[n_succ] = j
                n_succ += 1
                probe += slot + 1
        if first:
            wmax = w
            first = False
        elif w > wmax:
            wmax = w
    return n_miss, n_succ, probe


def findroot_batch(parent: np.ndarray, vertices: np.ndarray) -> int:
    """Chase each query to its root in place; returns the total hop count.

    ``parent[v] == -1`` marks a root (``repro.core.linkcut._NIL``).  The
    per-query dependent chase performs exactly one load per hop, so the
    returned total equals the sum of query depths — the same number the
    level-synchronous vectorised form accumulates one tree level at a time.
    """
    hops = 0
    for i in range(vertices.size):
        x = vertices[i]
        while parent[x] != -1:
            x = parent[x]
            hops += 1
        vertices[i] = x
    return hops


def find_root(parent: np.ndarray, x: int, comp: int, c: np.ndarray) -> int:
    """Root of ``x`` applying compaction rule ``comp``; ticks counters ``c``.

    ``comp`` codes: 0 none, 1 halving, 2 splitting, 3 full (two-pass) —
    see ``repro.kernels.COMP_CODES``.  Counter slots follow the module
    convention (finds / unions / hooks / pointer_chases /
    compaction_writes); the tick pattern is copied line for line from
    :meth:`repro.connectit.unionfind.UnionFind.find`.
    """
    c[0] += 1
    if comp == 0:  # none
        while True:
            p = parent[x]
            if p == x:
                return x
            c[3] += 1
            x = p
    if comp == 1:  # halving
        while True:
            p = parent[x]
            if p == x:
                return x
            g = parent[p]
            c[3] += 2
            parent[x] = g
            c[4] += 1
            x = g
    if comp == 2:  # splitting
        while True:
            p = parent[x]
            if p == x:
                return x
            g = parent[p]
            c[3] += 2
            parent[x] = g
            c[4] += 1
            x = p
    # full: walk to the root, then re-point the whole path at it.
    root = x
    while True:
        p = parent[root]
        if p == root:
            break
        c[3] += 1
        root = p
    while x != root:
        p = parent[x]
        parent[x] = root
        c[3] += 1
        c[4] += 1
        x = p
    return root


def rem_union(parent: np.ndarray, u: int, v: int, c: np.ndarray) -> bool:
    """Rem's algorithm union walk (splices as it goes; no separate finds).

    Counter-for-counter copy of
    :meth:`repro.connectit.unionfind.UnionFind._union_rem`.
    """
    while True:
        pu = parent[u]
        pv = parent[v]
        c[3] += 2
        if pu == pv:
            return False
        if pu > pv:
            if u == pu:  # u is a root: hook it below the lower parent
                parent[u] = pv
                c[2] += 1
                return True
            parent[u] = pv
            c[4] += 1
            u = pu
        else:
            if v == pv:
                parent[v] = pu
                c[2] += 1
                return True
            parent[v] = pu
            c[4] += 1
            v = pv


def union_arcs(
    parent: np.ndarray,
    rank: np.ndarray,
    size: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    rule: int,
    comp: int,
    linked: np.ndarray,
    pre_resolved: bool,
    c: np.ndarray,
) -> None:
    """Union every ``(src[i], dst[i])`` pair in order, recording successes.

    ``rule`` codes: 0 rank, 1 size, 2 rem (``repro.kernels.RULE_CODES``);
    ``rank``/``size`` are the matching auxiliary arrays (a 0-length dummy
    when the rule does not use one).  ``linked[i]`` is set True exactly when
    the pair merged two distinct trees.  With ``pre_resolved`` True, equal
    endpoints are counted as examined union attempts but perform no finds —
    the :meth:`repro.core.connectivity.ConnectivityIndex.insert_batch`
    convention for edges already resolved by the batch findroot pass.
    """
    for i in range(src.size):
        u = src[i]
        v = dst[i]
        c[1] += 1
        if pre_resolved and u == v:
            linked[i] = False
            continue
        if rule == 2:  # rem
            linked[i] = rem_union(parent, u, v, c)
            continue
        ru = find_root(parent, u, comp, c)
        rv = find_root(parent, v, comp, c)
        if ru == rv:
            linked[i] = False
            continue
        if rule == 0:  # rank
            if rank[ru] < rank[rv]:
                t = ru
                ru = rv
                rv = t
            elif rank[ru] == rank[rv]:
                rank[ru] += 1
            parent[rv] = ru
        else:  # size
            if size[ru] < size[rv] or (size[ru] == size[rv] and rv < ru):
                t = ru
                ru = rv
                rv = t
            size[ru] += size[rv]
            parent[rv] = ru
        c[2] += 1
        linked[i] = True


def sv_components(
    labels: np.ndarray, src: np.ndarray, dst: np.ndarray, limit: int
) -> tuple:
    """Shiloach–Vishkin hook + synchronous pointer-jump rounds, in place.

    ``labels`` starts as ``arange(n)`` and is left holding each vertex's
    minimum-id component label.  Returns ``(passes, jumps, arcs_processed)``
    with exactly the pass/jump-round/arc accounting of the vectorised
    :func:`repro.core.components.connected_components`: hooking is a
    min-accumulate against the pass-start snapshot (order-independent, both
    arc directions), and each jump round is the synchronous
    ``labels[labels]`` map with its convergence check fused into the same
    pass.
    """
    n = labels.size
    prev = np.empty(n, np.int64)
    jumped = np.empty(n, np.int64)
    passes = 0
    jumps = 0
    arcs = 0
    while True:
        passes += 1
        for i in range(n):
            prev[i] = labels[i]
        for i in range(src.size):
            t = prev[dst[i]]
            if t < labels[src[i]]:
                labels[src[i]] = t
        for i in range(src.size):
            t = prev[src[i]]
            if t < labels[dst[i]]:
                labels[dst[i]] = t
        arcs += 2 * dst.size
        # Pointer jumping until every label is a fixed point (synchronous
        # rounds; the final converged round counts, as in the numpy form).
        while True:
            jumps += 1
            equal = True
            for i in range(n):
                jv = labels[labels[i]]
                jumped[i] = jv
                if jv != labels[i]:
                    equal = False
            if equal:
                break
            for i in range(n):
                labels[i] = jumped[i]
        changed = False
        for i in range(n):
            if labels[i] != prev[i]:
                changed = True
                break
        if not changed:
            break
        if passes >= limit:
            break
    return passes, jumps, arcs
