"""Opt-in compiled kernel tier: numba JIT for the hot numpy-bound loops.

The bulk-update work (:mod:`repro.adjacency.bulkops`) replaced interpreter
loops with numpy passes, but the hottest kernels are still *sequences* of
full-array passes with temporaries.  This package supplies the third tier —
fused single-pass loops (:mod:`repro.kernels.loops`) compiled with
``numba.njit(cache=True)`` when numba is installed (``pip install
repro[jit]``) — behind a three-level dispatch that extends the existing
``use_bulkops`` / ``REPRO_BULKOPS`` pattern:

========== =============================================================
tier       meaning
========== =============================================================
scalar     the per-op reference loops (forces ``bulkops`` off too)
vectorised the numpy bulk kernels (the default without numba)
compiled   the fused numba loops (the default when numba imports)
========== =============================================================

Selection precedence, checked at every dispatch point by
:func:`resolve_tier`:

1. the ``REPRO_KERNEL_TIER`` environment variable (read live);
2. the consulted object's ``kernel_tier`` attribute (representations,
   :class:`~repro.core.linkcut.LinkCutForest`,
   :class:`~repro.connectit.unionfind.UnionFind` all default it to None);
3. the import-time auto-probe: ``compiled`` when numba is importable,
   else ``vectorised``.

Requesting ``compiled`` when numba is absent raises a clear
:class:`~repro.errors.GraphError`; the probe itself is silent (no
warnings) so ``import repro`` stays clean without the extra installed.
Every compiled kernel is bit-identical — counters included — to its
vectorised reference; the equivalence suites re-run over tiers enforce it
(using :func:`force_available` to drive the same loop bodies in pure
Python when numba is missing).

First-call JIT compilation is *not* free: callers that time kernels must
call :func:`warmup` first (``benchmarks/conftest.py`` and ``python -m
repro trace`` do), which compiles everything once and reports the cold/warm
split so compile cost lands in ``compile_seconds`` instead of the measured
numbers.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import GraphError
from repro.kernels import loops

__all__ = [
    "TIERS",
    "ENV_VAR",
    "KERNEL_NAMES",
    "numba_available",
    "numba_version",
    "probe_error",
    "default_tier",
    "resolve_tier",
    "get",
    "force_available",
    "warmup",
    "bench_meta",
    "describe",
    "RULE_CODES",
    "COMP_CODES",
    "C_FINDS",
    "C_UNIONS",
    "C_HOOKS",
    "C_CHASES",
    "C_COMPACTIONS",
]

#: The dispatch levels, slowest-reference first.
TIERS = ("scalar", "vectorised", "compiled")

#: Global tier override (highest precedence; read at every resolve).
ENV_VAR = "REPRO_KERNEL_TIER"

#: The ported hot kernels, keyed as :func:`get` expects.
KERNEL_NAMES = ("delete_match", "findroot_batch", "union_arcs", "sv_components")

#: Union-rule codes for :func:`loops.union_arcs`.
RULE_CODES = {"rank": 0, "size": 1, "rem": 2}

#: Compaction-rule codes for :func:`loops.find_root`.
COMP_CODES = {"none": 0, "halving": 1, "splitting": 2, "full": 3}

#: Slots of the 5-wide int64 counter array the union-find kernels tick.
C_FINDS, C_UNIONS, C_HOOKS, C_CHASES, C_COMPACTIONS = 0, 1, 2, 3, 4

#: Where each kernel is dispatched from (shown by ``python -m repro kernels``).
KERNEL_SITES = {
    "delete_match": "repro.adjacency.bulkops.apply_mixed",
    "findroot_batch": "repro.core.linkcut.LinkCutForest.findroot_batch",
    "union_arcs": (
        "repro.connectit.unionfind.UnionFind.union_arcs / "
        "repro.core.connectivity.ConnectivityIndex.insert_batch"
    ),
    "sv_components": "repro.core.components.connected_components",
}

_available = False
_numba_version: str | None = None
_probe_error: str | None = None
_impls: dict[str, Callable[..., Any]] = {
    "delete_match": loops.delete_match,
    "findroot_batch": loops.findroot_batch,
    "union_arcs": loops.union_arcs,
    "sv_components": loops.sv_components,
}

try:  # pragma: no cover - exercised only with numba installed
    import numba

    # The union kernel calls the find/rem helpers through the module
    # globals, so those must become Dispatchers before the outer wrap.
    loops.find_root = numba.njit(cache=True)(loops.find_root)
    loops.rem_union = numba.njit(cache=True)(loops.rem_union)
    _impls = {name: numba.njit(cache=True)(fn) for name, fn in _impls.items()}
    _available = True
    _numba_version = str(numba.__version__)
except Exception as exc:  # noqa: BLE001 - any import/instrumentation failure
    # Silent and exact: no numba simply means the tier resolves to
    # "vectorised"; the reason is kept for describe()/error messages.
    _probe_error = f"{type(exc).__name__}: {exc}"


def numba_available() -> bool:
    """True when the import probe found a working numba."""
    return _available


def numba_version() -> str | None:
    """The probed numba version, or None without numba."""
    return _numba_version


def probe_error() -> str | None:
    """Why the import probe failed (None when numba imported cleanly)."""
    return _probe_error


def default_tier() -> str:
    """The auto-probed tier: ``compiled`` with numba, else ``vectorised``."""
    return "compiled" if _available else "vectorised"


def _validate(tier: str, source: str) -> str:
    """Check ``tier`` is known and satisfiable; fail loud, naming ``source``."""
    if tier not in TIERS:
        raise GraphError(f"unknown kernel tier {tier!r} from {source}; available: {TIERS}")
    if tier == "compiled" and not _available:
        detail = f" (import probe: {_probe_error})" if _probe_error else ""
        raise GraphError(
            f"kernel tier 'compiled' requested via {source} but numba is not "
            f"installed{detail}; install the extra with `pip install repro[jit]` "
            "or select 'vectorised'"
        )
    return tier


def resolve_tier(obj: object | None = None) -> str:
    """The tier in effect for ``obj`` (env var > attribute > auto-probe).

    ``obj`` is whatever structure the dispatch point owns — an adjacency
    representation, a forest, a union-find — consulted for its
    ``kernel_tier`` attribute; None (or an object without the attribute)
    falls through to the auto-probed default.
    """
    env = os.environ.get(ENV_VAR)
    if env:
        return _validate(env, f"environment variable {ENV_VAR}")
    tier = getattr(obj, "kernel_tier", None)
    if tier is not None:
        return _validate(str(tier), f"{type(obj).__name__}.kernel_tier")
    return default_tier()


def get(name: str) -> Callable[..., Any]:
    """The compiled (or, without numba, pure-Python) kernel ``name``."""
    try:
        return _impls[name]
    except KeyError:
        raise GraphError(f"unknown kernel {name!r}; available: {KERNEL_NAMES}") from None


@contextlib.contextmanager
def force_available() -> Iterator[None]:
    """Treat the kernels as available inside the block (testing hook).

    Without numba the ``compiled`` tier dispatches to the pure-Python loop
    bodies — byte-for-byte the code numba would compile — which is how the
    tier-parametrised equivalence suites cover the compiled dispatch path
    on interpreters without the ``[jit]`` extra.  A no-op when numba is
    genuinely available.
    """
    global _available
    prev = _available
    _available = True
    try:
        yield
    finally:
        _available = prev


# --------------------------------------------------------------------- #
# warmup (keeps JIT compile time out of every timed section)
# --------------------------------------------------------------------- #

_warmup_info: dict[str, Any] | None = None


def _warmup_calls() -> list[tuple[str, tuple[Any, ...]]]:
    """Tiny representative invocations that force one compile per kernel."""
    i64 = np.int64
    return [
        (
            "delete_match",
            (
                np.array([0, 0], dtype=i64),  # key_s: one group
                np.array([1, 0], dtype=i64),  # insert then delete
                np.zeros(2, dtype=i64),  # e_op
                np.zeros(2, dtype=i64),  # lo_op
                np.zeros(1, dtype=i64),  # gslot_s
                np.zeros(2, dtype=i64),  # vins_s
                np.zeros(2, dtype=i64),  # cnt0_s
                np.zeros(2, dtype=i64),  # off_s
                np.zeros(1, dtype=i64),  # scratch
                np.zeros(1, dtype=i64),  # tomb_out
                np.zeros(1, dtype=i64),  # succ_out
            ),
        ),
        (
            "findroot_batch",
            (np.array([-1, 0], dtype=i64), np.array([1, 0], dtype=i64)),
        ),
        (
            "union_arcs",
            (
                np.arange(4, dtype=i64),
                np.zeros(4, dtype=np.int8),
                np.ones(4, dtype=i64),
                np.array([0, 2], dtype=i64),
                np.array([1, 3], dtype=i64),
                0,
                1,
                np.zeros(2, dtype=np.bool_),
                False,
                np.zeros(5, dtype=i64),
            ),
        ),
        (
            "sv_components",
            (
                np.arange(3, dtype=i64),
                np.array([0, 1], dtype=i64),
                np.array([1, 2], dtype=i64),
                8,
            ),
        ),
    ]


def warmup(force: bool = False) -> dict[str, Any]:
    """Compile every kernel now, so timed sections never pay JIT cost.

    Each kernel is invoked twice on tiny inputs: the first (cold) call
    triggers compilation, the second (warm) call measures steady-state
    dispatch, and the difference is reported as ``compile_seconds`` — the
    quantity benchmark plumbing records separately from kernel timings.
    Results are cached (``cached`` is True on repeat calls) unless
    ``force``; without numba this is a cheap no-op reporting zeros.
    """
    global _warmup_info
    if _warmup_info is not None and not force:
        return dict(_warmup_info, cached=True)
    kernels: dict[str, dict[str, float]] = {}
    cold_total = 0.0
    warm_total = 0.0
    if _available:
        for name, args in _warmup_calls():
            fn = get(name)
            t0 = time.perf_counter()
            fn(*args)
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            fn(*args)
            warm = time.perf_counter() - t0
            kernels[name] = {
                "cold_seconds": cold,
                "warm_seconds": warm,
                "compile_seconds": max(cold - warm, 0.0),
            }
            cold_total += cold
            warm_total += warm
    _warmup_info = {
        "available": _available,
        "tier": default_tier(),
        "cold_seconds": cold_total,
        "warm_seconds": warm_total,
        "compile_seconds": max(cold_total - warm_total, 0.0),
        "kernels": kernels,
        "cached": False,
    }
    return dict(_warmup_info)


def bench_meta() -> dict[str, Any]:
    """Tier provenance for benchmark rows (warms up as a side effect).

    The dict — ``kernel_tier`` plus the warmup's ``compile_seconds`` —
    is what ``benchmarks/conftest.py`` and the trace CLI stamp into
    ``BENCH_repro.json`` entries so timings across tiers stay comparable
    and compile cost is visible but never mixed into kernel seconds.
    """
    info = warmup()
    return {
        "kernel_tier": default_tier(),
        "compile_seconds": float(info["compile_seconds"]),
    }


def describe() -> dict[str, Any]:
    """Resolved dispatch state, per kernel (behind ``repro kernels``)."""
    try:
        tier: str | None = resolve_tier()
        error = None
    except GraphError as exc:
        tier = None
        error = str(exc)
    return {
        "available": _available,
        "numba_version": _numba_version,
        "probe_error": _probe_error,
        "env": os.environ.get(ENV_VAR),
        "default_tier": default_tier(),
        "resolved_tier": tier,
        "resolve_error": error,
        "kernels": {
            name: {"tier": tier, "dispatched_from": KERNEL_SITES[name]}
            for name in KERNEL_NAMES
        },
    }
