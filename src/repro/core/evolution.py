"""Network-evolution timelines (paper section 1's "Grand Challenge").

*"Understanding the dynamics and evolution of real-world networks is a
'Grand Challenge' science and mathematics problem."*  This module provides
the basic instrument: slice a time-stamped edge list into windows (tumbling
or sliding), compute a structural portrait per window with the metrics
toolkit, and return the timeline — how the giant component grows, when
clustering emerges, how the degree skew develops.

Built on the induced-subgraph kernel (section 3.2): each window is one
temporal interval extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import build_csr
from repro.core.components import connected_components
from repro.core.metrics import degree_stats
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.util.seeding import make_rng

__all__ = ["WindowStats", "EvolutionTimeline", "evolution_timeline"]


@dataclass(frozen=True)
class WindowStats:
    """Structural portrait of one time window."""

    t_lo: int
    t_hi: int
    n_edges: int
    n_active_vertices: int
    n_components: int
    giant_fraction: float
    max_degree: int
    mean_degree: float
    clustering: float

    def as_dict(self) -> dict:
        return {
            "t_lo": self.t_lo,
            "t_hi": self.t_hi,
            "edges": self.n_edges,
            "active": self.n_active_vertices,
            "components": self.n_components,
            "giant_frac": round(self.giant_fraction, 4),
            "max_deg": self.max_degree,
            "mean_deg": round(self.mean_degree, 3),
            "clustering": round(self.clustering, 4),
        }


@dataclass(frozen=True)
class EvolutionTimeline:
    """A sequence of window portraits over a temporal edge list."""

    windows: tuple[WindowStats, ...]
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.windows)

    def series(self, attr: str) -> np.ndarray:
        """One attribute as a numpy series (e.g. ``'giant_fraction'``)."""
        return np.asarray([getattr(w, attr) for w in self.windows])

    def table(self) -> str:
        """Aligned text table of the timeline."""
        if not self.windows:
            return "(empty timeline)"
        rows = [w.as_dict() for w in self.windows]
        cols = list(rows[0].keys())
        widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols}
        lines = [" ".join(c.rjust(widths[c]) for c in cols)]
        for r in rows:
            lines.append(" ".join(str(r[c]).rjust(widths[c]) for c in cols))
        return "\n".join(lines)


def evolution_timeline(
    edges: EdgeList,
    *,
    window: int,
    step: int | None = None,
    cumulative: bool = False,
    clustering_samples: int = 128,
    seed=None,
) -> EvolutionTimeline:
    """Portraits of ``[t, t + window)`` slices across the edge list's span.

    ``step`` defaults to ``window`` (tumbling windows); smaller steps give
    sliding windows.  ``cumulative=True`` grows every window from the start
    of time instead (the "network formation" view: each portrait covers
    ``[t_min, t)``).  Clustering is sampled for speed; pass
    ``clustering_samples=0`` to skip it.
    """
    if edges.ts is None:
        raise GraphError("evolution_timeline needs time-stamped edges")
    if window < 1:
        raise GraphError(f"window must be >= 1, got {window}")
    step = window if step is None else step
    if step < 1:
        raise GraphError(f"step must be >= 1, got {step}")
    if edges.m == 0:
        return EvolutionTimeline((), {"window": window, "step": step})

    rng = make_rng(seed)
    t_min = int(edges.ts.min())
    t_max = int(edges.ts.max())
    out: list[WindowStats] = []
    t = t_min
    while t <= t_max:
        lo = t_min if cumulative else t
        hi = t + window  # exclusive
        keep = (edges.ts >= lo) & (edges.ts < hi)
        sub = edges.select(np.nonzero(keep)[0])
        csr = build_csr(sub)
        deg = csr.degrees()
        active = int(np.count_nonzero(deg))
        comps = connected_components(csr)
        _, giant = comps.largest()
        # components among *active* vertices only: total components minus
        # the isolated (inactive) singletons
        n_comp_active = comps.n_components - (edges.n - active)
        stats = degree_stats(csr)
        if clustering_samples > 0 and active > 0:
            pool = np.nonzero(deg)[0]
            take = min(clustering_samples, pool.size)
            sample = rng.choice(pool, size=take, replace=False)
            from repro.core.metrics import clustering_coefficient

            cc = float(clustering_coefficient(csr, sample).mean())
        else:
            cc = 0.0
        out.append(
            WindowStats(
                t_lo=lo,
                t_hi=hi - 1,
                n_edges=sub.m,
                n_active_vertices=active,
                n_components=max(n_comp_active, 0 if active == 0 else 1),
                giant_fraction=giant / active if active else 0.0,
                max_degree=stats.max,
                mean_degree=float(deg[deg > 0].mean()) if active else 0.0,
                clustering=cc,
            )
        )
        t += step
    return EvolutionTimeline(
        tuple(out),
        {"window": window, "step": step, "cumulative": cumulative,
         "t_min": t_min, "t_max": t_max},
    )
