"""Sliding-window graph maintenance.

The streaming pattern the paper's applications imply (communication traffic,
interaction monitoring): only the last W time units of interactions matter.
:class:`SlidingWindowGraph` packages it — each arriving batch of time-stamped
edges is inserted into a dynamic representation, and batches that age out of
the window are deleted, exactly the sustained insert+delete churn the
Hybrid-arr-treap structure exists for (sections 2.1.5, Figure 6).

Optionally maintains a :class:`~repro.core.dynamic_connectivity.DynamicConnectivity`
index so connectivity queries stay current without per-query rebuilds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.adjacency.base import AdjacencyRepresentation
from repro.adjacency.csr import CSRGraph, csr_from_representation
from repro.adjacency.registry import make_representation
from repro.core.dynamic_connectivity import DynamicConnectivity
from repro.errors import GraphError, StreamError
from repro.util.validation import check_vertex_ids

__all__ = ["SlidingWindowGraph", "WindowBatch"]


@dataclass(frozen=True)
class WindowBatch:
    """One ingested batch, retained until it ages out."""

    tick: int
    src: np.ndarray
    dst: np.ndarray
    ts: np.ndarray

    @property
    def size(self) -> int:
        return int(self.src.size)


class SlidingWindowGraph:
    """A graph of the most recent ``window`` ticks of an edge stream.

    Parameters
    ----------
    n:
        Number of vertices.
    window:
        Number of ticks a batch stays live.
    representation:
        Adjacency structure (default ``hybrid`` — the sustained mixed
        workload is its design point).
    track_connectivity:
        Maintain an incremental connectivity index alongside the
        representation (costlier ingestion, O(depth) queries).
    """

    def __init__(
        self,
        n: int,
        window: int,
        *,
        representation: str | AdjacencyRepresentation = "hybrid",
        track_connectivity: bool = False,
        **rep_kwargs,
    ) -> None:
        if window < 1:
            raise GraphError(f"window must be >= 1, got {window}")
        self.n = int(n)
        self.window = int(window)
        self._batches: deque[WindowBatch] = deque()
        self._tick = -1
        self._conn: DynamicConnectivity | None = None
        if track_connectivity:
            self._conn = DynamicConnectivity(n, representation, **rep_kwargs)
            self.rep = self._conn.rep
        elif isinstance(representation, AdjacencyRepresentation):
            if representation.n != n:
                raise GraphError("representation vertex count mismatch")
            self.rep = representation
        else:
            self.rep = make_representation(representation, n, **rep_kwargs)

    # ------------------------------------------------------------------ #

    @property
    def tick(self) -> int:
        """The most recent tick ingested (-1 before the first batch)."""
        return self._tick

    @property
    def n_live_batches(self) -> int:
        return len(self._batches)

    @property
    def n_edges(self) -> int:
        """Live undirected edges (self-loops excluded on ingest)."""
        return sum(b.size for b in self._batches)

    def advance(self, src, dst, ts=None) -> int:
        """Ingest one tick's batch; returns the number of edges expired.

        Self-loops are dropped (they carry no connectivity information and
        would break the arc arithmetic).  ``ts`` defaults to the tick
        number, preserving temporal queries over the window.
        """
        src = check_vertex_ids(src, self.n, "src")
        dst = check_vertex_ids(dst, self.n, "dst")
        if src.size != dst.size:
            raise StreamError("src and dst must be equal length")
        self._tick += 1
        if ts is None:
            ts = np.full(src.size, self._tick, dtype=np.int64)
        else:
            ts = np.asarray(ts, dtype=np.int64)
            if ts.shape != src.shape:
                raise StreamError("ts must parallel src/dst")
        keep = src != dst
        batch = WindowBatch(self._tick, src[keep], dst[keep], ts[keep])

        if self._conn is not None:
            for u, v, t in zip(batch.src.tolist(), batch.dst.tolist(),
                               batch.ts.tolist()):
                self._conn.insert_edge(u, v, t)
        else:
            both_src = np.concatenate([batch.src, batch.dst])
            both_dst = np.concatenate([batch.dst, batch.src])
            both_ts = np.concatenate([batch.ts, batch.ts])
            self.rep.bulk_insert(both_src, both_dst, both_ts)
        self._batches.append(batch)

        expired = 0
        while len(self._batches) > self.window:
            old = self._batches.popleft()
            expired += old.size
            if self._conn is not None:
                for u, v in zip(old.src.tolist(), old.dst.tolist()):
                    self._conn.delete_edge(u, v)
            else:
                for u, v in zip(old.src.tolist(), old.dst.tolist()):
                    self.rep.delete(u, v)
                    self.rep.delete(v, u)
        return expired

    # ------------------------------------------------------------------ #

    def connected(self, u: int, v: int) -> bool:
        """Connectivity within the current window.

        O(depth) with ``track_connectivity``; otherwise falls back to a
        fresh spanning forest over the snapshot (O(n + m)).
        """
        if self._conn is not None:
            return self._conn.connected(u, v)
        from repro.core.connectivity import ConnectivityIndex

        return ConnectivityIndex.from_csr(self.snapshot()).query(u, v)

    def n_components(self) -> int:
        if self._conn is not None:
            return self._conn.n_components()
        from repro.core.components import connected_components

        return connected_components(self.snapshot()).n_components

    def snapshot(self) -> CSRGraph:
        """CSR of the live window."""
        return csr_from_representation(self.rep)

    def validate(self) -> None:
        """Invariants: arc count matches live batches; index consistent."""
        expected_arcs = 2 * self.n_edges
        if self.rep.n_arcs != expected_arcs:
            raise GraphError(
                f"window holds {self.n_edges} edges but the representation "
                f"has {self.rep.n_arcs} arcs (expected {expected_arcs})"
            )
        if self._conn is not None:
            self._conn.validate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlidingWindowGraph(n={self.n}, window={self.window}, "
            f"tick={self._tick}, edges={self.n_edges})"
        )
