"""Connected components (paper section 3.1, building on Bader, Cong & Feo).

A vectorised Shiloach–Vishkin-style label-propagation algorithm: every pass
hooks each vertex's label to the minimum label among its neighbours
(``np.minimum.at`` — the PRAM concurrent-min write), then pointer-jumps all
label chains to their roots.  Small-world graphs converge in a handful of
passes; each pass is a simulated parallel phase with a barrier.

The labels returned are canonical: every vertex carries the smallest vertex
id of its component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace

import numpy as np

from repro import kernels
from repro.adjacency.csr import CSRGraph
from repro.machine.profile import Phase, WorkProfile

__all__ = ["ComponentsResult", "connected_components"]

_ALU_PER_ARC = 6.0
_ALU_PER_JUMP = 4.0


@dataclass
class ComponentsResult:
    """Component labels plus the statistics of the run.

    ``labels[v]`` is the minimum vertex id in v's component.
    """

    labels: np.ndarray
    n_passes: int
    jump_rounds: int
    arcs_processed: int
    meta: dict = field(default_factory=dict)

    @property
    def n_components(self) -> int:
        return int(np.unique(self.labels).size)

    def sizes(self) -> np.ndarray:
        """Component sizes, aligned with :meth:`roots` order."""
        _, counts = np.unique(self.labels, return_counts=True)
        return counts

    def roots(self) -> np.ndarray:
        """Canonical root (minimum vertex id) of each component."""
        return np.unique(self.labels)

    def largest(self) -> tuple[int, int]:
        """(root, size) of the largest component."""
        roots, counts = np.unique(self.labels, return_counts=True)
        i = int(np.argmax(counts))
        return int(roots[i]), int(counts[i])

    def same_component(self, u: int, v: int) -> bool:
        return bool(self.labels[u] == self.labels[v])

    def profile(self, graph: CSRGraph, name: str = "components") -> WorkProfile:
        """Simulated work: per pass, one hooking sweep + pointer jumping."""
        footprint = float(graph.memory_bytes() + self.labels.nbytes)
        phases = []
        for i in range(self.n_passes):
            phases.append(
                Phase(
                    name=f"pass{i}",
                    alu_ops=_ALU_PER_ARC * graph.n_arcs + _ALU_PER_JUMP * graph.n,
                    # Hooking reads both endpoints' labels (scattered) and
                    # performs a concurrent-min write; jumping chases labels.
                    rand_accesses=float(2 * graph.n_arcs + 2 * graph.n),
                    seq_bytes=16.0 * graph.n_arcs,
                    footprint_bytes=footprint,
                    atomics=float(graph.n_arcs),  # concurrent-min CAS per arc
                    barriers=2.0,
                )
            )
        return WorkProfile(
            name,
            tuple(phases),
            meta={"n": graph.n, "arcs": graph.n_arcs, "passes": self.n_passes, **self.meta},
        )


def connected_components(
    graph: CSRGraph, *, max_passes: int | None = None, kernel_tier: str | None = None
) -> ComponentsResult:
    """Label every vertex with its component's minimum vertex id.

    ``max_passes`` is a safety valve for adversarial graphs; label
    propagation with full pointer jumping converges in O(log n) passes.

    ``kernel_tier`` overrides the dispatch (:mod:`repro.kernels`) for this
    call; None consults the ``REPRO_KERNEL_TIER`` env var then the
    auto-probe.  Tier ``compiled`` runs the fused
    :func:`repro.kernels.loops.sv_components` loop — identical labels and
    pass/jump/arc accounting; the SV sweep is inherently vectorised, so
    tier ``scalar`` takes the numpy path too.  The resolved tier lands in
    the result's ``meta`` (and thus in the work profile).
    """
    probe = graph if kernel_tier is None else SimpleNamespace(kernel_tier=kernel_tier)
    tier = kernels.resolve_tier(probe)
    n = graph.n
    labels = np.arange(n, dtype=np.int64)
    if n == 0:
        return ComponentsResult(labels, 0, 0, 0, meta={"kernel_tier": tier})
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    dst = graph.targets
    passes = 0
    jumps = 0
    arcs_processed = 0
    limit = max_passes if max_passes is not None else 2 * int(np.ceil(np.log2(n + 1))) + 4
    if tier == "compiled":
        passes, jumps, arcs_processed = kernels.get("sv_components")(labels, src, dst, limit)
        return ComponentsResult(
            labels,
            int(passes),
            int(jumps),
            int(arcs_processed),
            meta={"kernel_tier": tier},
        )
    while True:
        passes += 1
        prev = labels.copy()
        # Hooking: concurrent min over both arc directions (CSR snapshots in
        # this library store both arcs of an undirected edge, but guard for
        # one-directional inputs by propagating both ways).
        np.minimum.at(labels, src, prev[dst])
        np.minimum.at(labels, dst, prev[src])
        arcs_processed += 2 * dst.size
        # Pointer jumping until every label is a fixed point.
        while True:
            jumped = labels[labels]
            jumps += 1
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, prev):
            break
        if passes >= limit:
            break
    return ComponentsResult(labels, passes, jumps, arcs_processed, meta={"kernel_tier": tier})
