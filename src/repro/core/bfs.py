"""Level-synchronous parallel breadth-first search (paper section 3.3).

The paper's BFS is the level-synchronous PRAM algorithm of Bader & Madduri
(ICPP 2006): O(diameter) parallel phases and optimal O(n + m) work, with a
barrier per level and an unbalanced-degree optimisation that processes high-
and low-degree frontier vertices in separate balanced partitions.  For
dynamic graphs the paper augments the traversal with a time-stamp check —
edges outside the query's time interval are filtered during the visit, which
"requires no additional memory" (section 3.3, Figure 10).

The implementation here is frontier-vectorised: each level gathers all
frontier adjacencies with numpy index arithmetic (the Python-level work per
level is O(1) calls), so correctness-scale runs are fast, and each level is
recorded as one simulated phase — frontier width, edges scanned, heaviest
frontier vertex — so the machine model sees the true level structure
(few wide levels for small-world graphs, which is what makes the paper's
Figure 10 scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.errors import VertexError
from repro.machine.profile import Phase, WorkProfile
from repro.obs import METRICS, manifest_meta, span

__all__ = ["BFSResult", "bfs", "bfs_profile"]

#: ALU ops per scanned edge: gather index arithmetic, visited test, branch.
_ALU_PER_EDGE = 8.0
#: ALU ops per frontier vertex: offset loads, degree computation.
_ALU_PER_VERTEX = 6.0


@dataclass
class BFSResult:
    """Distances, parents and per-level statistics of one traversal.

    ``dist[v] == -1`` means unreachable.  ``parent[source] == -1``.
    ``frontier_sizes[i]`` / ``edges_scanned[i]`` describe level i;
    ``max_frontier_degree[i]`` is the heaviest vertex expanded at level i
    (the load-imbalance driver when adjacency lists are not split).
    """

    source: int
    dist: np.ndarray
    parent: np.ndarray
    frontier_sizes: list[int] = field(default_factory=list)
    edges_scanned: list[int] = field(default_factory=list)
    max_frontier_degree: list[int] = field(default_factory=list)
    ts_range: tuple[int, int] | None = None

    @property
    def n_levels(self) -> int:
        return len(self.frontier_sizes)

    @property
    def n_reached(self) -> int:
        return int(np.count_nonzero(self.dist >= 0))

    @property
    def total_edges_scanned(self) -> int:
        return int(sum(self.edges_scanned))

    def reached(self) -> np.ndarray:
        """Vertex ids reachable from the source (including it)."""
        return np.nonzero(self.dist >= 0)[0]


def bfs(
    graph: CSRGraph,
    source: int,
    *,
    ts_range: tuple[int, int] | None = None,
    max_levels: int | None = None,
) -> BFSResult:
    """Breadth-first search from ``source``.

    ``ts_range=(lo, hi)`` restricts the traversal to edges whose time label
    lies in the inclusive interval — the paper's "augmented BFS with a check
    for time-stamps".  ``max_levels`` optionally truncates the traversal
    (used by bounded-depth queries).
    """
    if not 0 <= source < graph.n:
        raise VertexError(f"source {source} out of range [0, {graph.n})")
    if ts_range is not None and graph.ts is None:
        raise VertexError("graph has no time-stamps; cannot filter by ts_range")

    offsets = graph.offsets
    targets = graph.targets
    ts = graph.ts
    dist = np.full(graph.n, -1, dtype=np.int64)
    parent = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0

    res = BFSResult(source=source, dist=dist, parent=parent, ts_range=ts_range)
    frontier = np.array([source], dtype=np.int64)
    level = 0
    with span("core.bfs", source=int(source), n=graph.n, filtered=ts_range is not None) as sp:
        while frontier.size:
            starts = offsets[frontier]
            ends = offsets[frontier + 1]
            counts = ends - starts
            total = int(counts.sum())
            res.frontier_sizes.append(int(frontier.size))
            res.edges_scanned.append(total)
            res.max_frontier_degree.append(int(counts.max()) if counts.size else 0)
            if max_levels is not None and level >= max_levels:
                break
            if total == 0:
                break
            # Flatten all adjacency ranges of the frontier into one index array.
            reps = np.repeat(frontier, counts)
            base = np.repeat(starts, counts)
            offs = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            idx = base + offs
            nbrs = targets[idx]
            if ts_range is not None:
                lo, hi = ts_range
                keep = (ts[idx] >= lo) & (ts[idx] <= hi)
                nbrs = nbrs[keep]
                reps = reps[keep]
            unvisited = dist[nbrs] < 0
            nbrs = nbrs[unvisited]
            reps = reps[unvisited]
            if nbrs.size == 0:
                break
            uniq, first = np.unique(nbrs, return_index=True)
            level += 1
            dist[uniq] = level
            parent[uniq] = reps[first]
            frontier = uniq
        sp.set(levels=res.n_levels, reached=res.n_reached,
               edges_scanned=res.total_edges_scanned)
    METRICS.inc("bfs.runs")
    METRICS.inc("bfs.levels", res.n_levels)
    METRICS.inc("bfs.edges_scanned", res.total_edges_scanned)
    return res


def bfs_profile(
    graph: CSRGraph,
    result: BFSResult,
    *,
    name: str = "bfs",
    degree_split: bool = True,
) -> WorkProfile:
    """Machine-independent work profile of a completed traversal.

    One phase per BFS level, each with two barriers (frontier swap + visit
    commit, as in the level-synchronous algorithm).  ``degree_split=True``
    models the paper's unbalanced-degree optimisation ([4, 5]): high-degree
    frontier vertices' adjacency lists are split across threads, so a level's
    load-imbalance cap comes only from residual per-chunk skew; with the
    optimisation off, one hub vertex can serialise an entire level.
    """
    footprint = float(graph.memory_bytes() + result.dist.nbytes + result.parent.nbytes)
    phases = []
    for i, (fsize, escan, maxdeg) in enumerate(
        zip(result.frontier_sizes, result.edges_scanned, result.max_frontier_degree)
    ):
        if degree_split or escan == 0:
            unit_frac = 0.0
        else:
            unit_frac = min(1.0, maxdeg / max(escan, 1))
        ts_alu = 2.0 * escan if result.ts_range is not None else 0.0
        phases.append(
            Phase(
                name=f"level{i}",
                alu_ops=_ALU_PER_EDGE * escan + _ALU_PER_VERTEX * fsize + ts_alu,
                # dist check + parent/dist writes are scattered over n.
                rand_accesses=float(escan + fsize),
                # adjacency blocks stream contiguously per frontier vertex
                # (8B target + 8B time-stamp when filtering).
                seq_bytes=(16.0 if result.ts_range is not None else 8.0) * escan,
                footprint_bytes=footprint,
                barriers=2.0,
                max_unit_frac=unit_frac,
            )
        )
    if not phases:
        phases.append(Phase(name="level0", footprint_bytes=footprint))
    return WorkProfile(
        name,
        tuple(phases),
        meta={
            "n": graph.n,
            "arcs": graph.n_arcs,
            "source": result.source,
            "levels": result.n_levels,
            "reached": result.n_reached,
            "degree_split": degree_split,
            **manifest_meta(),
        },
    )
