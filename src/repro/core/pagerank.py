"""PageRank by power iteration (the paper's "Web algorithms" application).

The paper names Web algorithms among the application domains its techniques
impact (section 1); PageRank is the canonical such kernel and a natural
member of a SNAP-style toolkit.  Fully vectorised: each power-iteration
step is one sparse matvec over the CSR arcs (an embarrassingly parallel
phase with a barrier), with dangling-vertex mass redistributed uniformly —
matching networkx's convention, which the tests validate against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.errors import GraphError
from repro.machine.profile import Phase, WorkProfile

__all__ = ["PageRankResult", "pagerank"]


@dataclass(frozen=True)
class PageRankResult:
    """Scores (summing to 1) plus convergence statistics."""

    scores: np.ndarray
    iterations: int
    converged: bool
    residual: float
    profile: WorkProfile
    meta: dict = field(default_factory=dict)

    def top(self, k: int = 10) -> list[tuple[int, float]]:
        order = np.argsort(self.scores)[::-1][:k]
        return [(int(v), float(self.scores[v])) for v in order]


def pagerank(
    graph: CSRGraph,
    *,
    alpha: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    personalization: np.ndarray | None = None,
    name: str = "pagerank",
) -> PageRankResult:
    """PageRank over the stored arcs (directed semantics).

    Undirected snapshots store both arc directions, giving the undirected
    PageRank.  ``personalization`` is an optional restart distribution
    (normalised internally); convergence is L1 residual below ``tol``.
    """
    if not 0.0 < alpha < 1.0:
        raise GraphError(f"alpha must be in (0, 1), got {alpha}")
    if max_iter < 1:
        raise GraphError(f"max_iter must be >= 1, got {max_iter}")
    n = graph.n
    if n == 0:
        return PageRankResult(
            np.empty(0, dtype=np.float64), 0, True, 0.0,
            WorkProfile(name, (Phase("empty"),)),
        )
    deg = graph.degrees().astype(np.float64)
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    dst = graph.targets
    dangling = deg == 0

    if personalization is None:
        restart = np.full(n, 1.0 / n, dtype=np.float64)
    else:
        restart = np.asarray(personalization, dtype=np.float64)
        if restart.shape != (n,) or np.any(restart < 0) or restart.sum() <= 0:
            raise GraphError("personalization must be a non-negative length-n vector")
        restart = restart / restart.sum()

    x = restart.copy()
    out_w = np.zeros(n, dtype=np.float64)
    np.divide(1.0, deg, out=out_w, where=deg > 0)
    footprint = float(graph.memory_bytes() + 4 * 8 * n)
    iterations = 0
    residual = np.inf
    converged = False
    for iterations in range(1, max_iter + 1):
        contrib = x * out_w
        nxt = np.zeros(n, dtype=np.float64)
        np.add.at(nxt, dst, contrib[src])
        dangling_mass = float(x[dangling].sum())
        nxt = alpha * (nxt + dangling_mass * restart) + (1.0 - alpha) * restart
        residual = float(np.abs(nxt - x).sum())
        x = nxt
        if residual < tol:
            converged = True
            break

    profile = WorkProfile(
        name,
        (
            Phase(
                name="power-iteration",
                alu_ops=6.0 * graph.n_arcs * iterations + 8.0 * n * iterations,
                rand_accesses=float(graph.n_arcs) * iterations,
                seq_bytes=16.0 * graph.n_arcs * iterations,
                footprint_bytes=footprint,
                atomics=float(graph.n_arcs) * iterations,  # concurrent adds
                barriers=2.0 * iterations,
            ),
        ),
        meta={"n": n, "arcs": graph.n_arcs, "iterations": iterations,
              "alpha": alpha},
    )
    return PageRankResult(
        scores=x,
        iterations=iterations,
        converged=converged,
        residual=residual,
        profile=profile,
    )
