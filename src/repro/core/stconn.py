"""st-connectivity via bidirectional BFS (paper section 1, citing [4]).

Expands the smaller frontier from each endpoint alternately until the two
searches meet — for small-world graphs this touches far fewer edges than a
full single-source BFS, which is why the paper lists st-connectivity among
its fundamental kernels.  Optionally time-stamp filtered like
:func:`repro.core.bfs.bfs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.errors import VertexError
from repro.machine.profile import Phase, WorkProfile

__all__ = ["STConnResult", "st_connectivity"]


@dataclass(frozen=True)
class STConnResult:
    """Outcome of one bidirectional search."""

    connected: bool
    distance: int  # -1 when disconnected
    edges_scanned: int
    levels: int
    profile: WorkProfile
    meta: dict = field(default_factory=dict)


def _expand(frontier, offsets, targets, ts, ts_range, dist, level):
    """One BFS level; returns (new_frontier, edges_scanned)."""
    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), 0
    base = np.repeat(starts, counts)
    offs = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    idx = base + offs
    nbrs = targets[idx]
    if ts_range is not None:
        lo, hi = ts_range
        nbrs = nbrs[(ts[idx] >= lo) & (ts[idx] <= hi)]
    nbrs = nbrs[dist[nbrs] < 0]
    if nbrs.size == 0:
        return np.empty(0, dtype=np.int64), total
    uniq = np.unique(nbrs)
    dist[uniq] = level
    return uniq, total


def st_connectivity(
    graph: CSRGraph,
    s: int,
    t: int,
    *,
    ts_range: tuple[int, int] | None = None,
    name: str = "st-connectivity",
) -> STConnResult:
    """Decide whether a path connects ``s`` and ``t`` (and its hop length).

    Bidirectional: the search with the smaller pending frontier advances
    each round.  ``distance`` is exact for the unfiltered search; with a
    time-stamp filter it is the hop length of a path whose every edge lies
    in the interval (not a temporal-ordering path — see
    :mod:`repro.core.betweenness` for those).
    """
    for v, label in ((s, "s"), (t, "t")):
        if not 0 <= v < graph.n:
            raise VertexError(f"{label}={v} out of range [0, {graph.n})")
    if ts_range is not None and graph.ts is None:
        raise VertexError("graph has no time-stamps; cannot filter by ts_range")

    footprint = float(graph.memory_bytes() + 16 * graph.n)
    phases: list[Phase] = []
    meta = {"s": s, "t": t, "n": graph.n}

    if s == t:
        profile = WorkProfile(name, (Phase("trivial", footprint_bytes=footprint),), meta)
        return STConnResult(True, 0, 0, 0, profile, meta)

    dist_s = np.full(graph.n, -1, dtype=np.int64)
    dist_t = np.full(graph.n, -1, dtype=np.int64)
    dist_s[s] = 0
    dist_t[t] = 0
    frontier_s = np.array([s], dtype=np.int64)
    frontier_t = np.array([t], dtype=np.int64)
    level_s = level_t = 0
    scanned = 0
    rounds = 0

    def _phase(n_edges: int, n_vertices: int) -> Phase:
        return Phase(
            name=f"expand{rounds}",
            alu_ops=8.0 * n_edges + 6.0 * n_vertices,
            rand_accesses=float(n_edges + n_vertices),
            seq_bytes=(16.0 if ts_range is not None else 8.0) * n_edges,
            footprint_bytes=footprint,
            barriers=2.0,
        )

    connected = False
    distance = -1
    while frontier_s.size and frontier_t.size:
        rounds += 1
        if frontier_s.size <= frontier_t.size:
            level_s += 1
            frontier_s, e = _expand(
                frontier_s, graph.offsets, graph.targets, graph.ts, ts_range, dist_s, level_s
            )
            scanned += e
            phases.append(_phase(e, frontier_s.size))
            meet = frontier_s[dist_t[frontier_s] >= 0] if frontier_s.size else frontier_s
        else:
            level_t += 1
            frontier_t, e = _expand(
                frontier_t, graph.offsets, graph.targets, graph.ts, ts_range, dist_t, level_t
            )
            scanned += e
            phases.append(_phase(e, frontier_t.size))
            meet = frontier_t[dist_s[frontier_t] >= 0] if frontier_t.size else frontier_t
        if meet.size:
            connected = True
            distance = int((dist_s[meet] + dist_t[meet]).min())
            break

    if not phases:
        phases.append(Phase("expand0", footprint_bytes=footprint))
    profile = WorkProfile(name, tuple(phases), {**meta, "edges_scanned": scanned})
    return STConnResult(connected, distance, scanned, rounds, profile, meta)
