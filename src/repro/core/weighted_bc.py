"""Weighted betweenness centrality (Brandes over Dijkstra DAGs).

Completes the centrality suite for weighted graphs: the paper's section 3.4
algorithm is BFS-based (unit weights); with positive integer weights the
shortest-path DAG comes from Dijkstra instead, and the dependency
accumulation runs over vertices in order of decreasing distance (Brandes
2001, the weighted variant).  The paper's conclusions name weighted-graph
path problems as the hard open case — this kernel pairs with
:mod:`repro.core.sssp` to cover it.

Validated against ``networkx.betweenness_centrality(weight=...)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.errors import GraphError
from repro.machine.profile import Phase, WorkProfile
from repro.util.seeding import make_rng

__all__ = ["WeightedBCResult", "weighted_betweenness"]


@dataclass(frozen=True)
class WeightedBCResult:
    """Weighted betweenness scores (ordered-pair convention)."""

    scores: np.ndarray
    n_sources: int
    relaxations: int
    profile: WorkProfile
    meta: dict = field(default_factory=dict)

    def top(self, k: int = 10) -> list[tuple[int, float]]:
        order = np.argsort(self.scores)[::-1][:k]
        return [(int(v), float(self.scores[v])) for v in order]


def _brandes_dijkstra(graph: CSRGraph, s: int, scores: np.ndarray) -> int:
    """One weighted source: Dijkstra with path counting + accumulation."""
    n = graph.n
    offsets, targets = graph.offsets, graph.targets
    weights = graph.weights()
    dist = np.full(n, np.inf, dtype=np.float64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[s] = 0.0
    sigma[s] = 1.0
    preds: list[list[int]] = [[] for _ in range(n)]
    settled_order: list[int] = []
    done = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, s)]
    relaxations = 0
    while heap:
        d, u = heapq.heappop(heap)
        if done[u] or d > dist[u]:
            continue
        done[u] = True
        settled_order.append(u)
        for j in range(int(offsets[u]), int(offsets[u + 1])):
            v = int(targets[j])
            cand = d + float(weights[j])
            relaxations += 1
            if cand < dist[v] - 1e-12:
                dist[v] = cand
                sigma[v] = sigma[u]
                preds[v] = [u]
                heapq.heappush(heap, (cand, v))
            elif abs(cand - dist[v]) <= 1e-12 and not done[v]:
                sigma[v] += sigma[u]
                preds[v].append(u)
    delta = np.zeros(n, dtype=np.float64)
    for w in reversed(settled_order):
        for u in preds[w]:
            delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w])
    delta[s] = 0.0
    scores += delta
    return relaxations


def weighted_betweenness(
    graph: CSRGraph,
    *,
    sources: np.ndarray | int | None = None,
    seed=None,
    name: str = "weighted-betweenness",
) -> WeightedBCResult:
    """Betweenness under positive edge weights (ordered-pair sums).

    Unweighted snapshots (no ``w`` column) give the same result as
    :func:`repro.core.betweenness.temporal_betweenness` with
    ``temporal=False`` (tested); with weights, shortest paths are
    minimum-weight paths.  Sources follow the usual sampling convention.
    """
    n = graph.n
    if sources is None:
        src_ids = np.arange(n, dtype=np.int64)
    elif np.isscalar(sources):
        k = int(sources)
        if not 0 < k <= n:
            raise GraphError(f"source sample size must be in [1, {n}], got {k}")
        rng = make_rng(seed)
        src_ids = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
    else:
        src_ids = np.asarray(sources, dtype=np.int64)
        if src_ids.size and (src_ids.min() < 0 or src_ids.max() >= n):
            raise GraphError("source ids out of range")
    scores = np.zeros(n, dtype=np.float64)
    relaxations = 0
    for s in src_ids.tolist():
        relaxations += _brandes_dijkstra(graph, s, scores)
    if src_ids.size < n:
        scores *= n / src_ids.size
    footprint = float(graph.memory_bytes() + 6 * 8 * n)
    profile = WorkProfile(
        name,
        (
            Phase(
                name="dijkstra",
                alu_ops=30.0 * relaxations,  # heap ops dominate
                rand_accesses=float(3 * relaxations),
                seq_bytes=16.0 * relaxations,
                footprint_bytes=footprint,
                # A parallel weighted Brandes serialises on the priority
                # structure far more than the level-synchronous BFS variant
                # — the paper's "harder to parallelise" remark — modelled as
                # per-settle critical work.
                locks=float(relaxations),
                lock_hold_cycles=20.0,
            ),
        ),
        meta={"n": n, "n_sources": int(src_ids.size), "relaxations": relaxations},
    )
    return WeightedBCResult(
        scores=scores,
        n_sources=int(src_ids.size),
        relaxations=relaxations,
        profile=profile,
    )
