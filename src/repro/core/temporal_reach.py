"""Temporal reachability: earliest-arrival analysis (Kempe et al. semantics).

The paper adopts Kempe, Kleinberg & Kumar's temporal-network model
(section 2) and builds path queries that respect time ordering
(section 3.4).  This kernel answers the companion question the model makes
natural: *from a source s, what is the earliest time label by which each
vertex can be reached along a label-increasing path?*

The algorithm is the classic one-pass edge-scan: process edges grouped by
ascending time label; within a group, an arc (u, v, t) extends reachability
to v when u was reached strictly before t.  One pass, O(m log m) for the
sort then O(m) — each distinct label group is one parallel phase
(concurrent-min writes), which is also how the work profile counts it.
Strictness of the label comparison means two same-label edges can never
chain, matching the paper's temporal-path definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.edgelist import EdgeList
from repro.errors import GraphError, VertexError
from repro.machine.profile import Phase, WorkProfile

__all__ = [
    "TemporalReachResult",
    "earliest_arrival",
    "temporal_reachable_set",
    "temporal_closeness",
]

_UNREACHED = np.iinfo(np.int64).max


@dataclass(frozen=True)
class TemporalReachResult:
    """Earliest arrival labels from one source.

    ``arrival[v]`` is the smallest final edge label of any label-increasing
    path from the source to v (``t_start - 1`` for the source itself, i.e.
    "already there"); unreached vertices hold ``UNREACHED``.
    """

    source: int
    arrival: np.ndarray
    t_start: int
    edge_groups: int
    edges_scanned: int
    profile: WorkProfile
    meta: dict = field(default_factory=dict)

    UNREACHED = _UNREACHED

    def reached(self) -> np.ndarray:
        """Vertex ids temporally reachable from the source (incl. itself)."""
        return np.nonzero(self.arrival < _UNREACHED)[0]

    @property
    def n_reached(self) -> int:
        return int(np.count_nonzero(self.arrival < _UNREACHED))

    def reachable(self, v: int) -> bool:
        if not 0 <= v < self.arrival.size:
            raise VertexError(f"vertex {v} out of range")
        return bool(self.arrival[v] < _UNREACHED)


def earliest_arrival(
    edges: EdgeList,
    source: int,
    *,
    t_start: int = 0,
    symmetrize: bool | None = None,
    name: str = "earliest-arrival",
) -> TemporalReachResult:
    """Earliest arrival labels from ``source`` over a temporal edge list.

    ``t_start`` is the time the source becomes active: only edges with
    label >= ``t_start`` participate, and the first edge of a path needs
    label >= ``t_start`` (subsequent edges must strictly increase).
    """
    if edges.ts is None:
        raise GraphError("earliest_arrival needs time-stamped edges")
    if not 0 <= source < edges.n:
        raise VertexError(f"source {source} out of range [0, {edges.n})")
    if symmetrize is None:
        symmetrize = not edges.directed
    arcs = edges.symmetrized() if symmetrize else edges
    src, dst, ts = arcs.src, arcs.dst, arcs.timestamps()

    keep = ts >= t_start
    src, dst, ts = src[keep], dst[keep], ts[keep]
    order = np.argsort(ts, kind="stable")
    src, dst, ts = src[order], dst[order], ts[order]

    arrival = np.full(edges.n, _UNREACHED, dtype=np.int64)
    arrival[source] = t_start - 1  # "present from the start"

    phases: list[Phase] = []
    footprint = float(edges.memory_bytes() + arrival.nbytes)
    groups = 0
    scanned = 0
    if ts.size:
        labels, starts = np.unique(ts, return_index=True)
        bounds = np.append(starts, ts.size)
        for gi, t in enumerate(labels.tolist()):
            lo, hi = int(bounds[gi]), int(bounds[gi + 1])
            u = src[lo:hi]
            v = dst[lo:hi]
            usable = arrival[u] < t  # strict increase
            groups += 1
            scanned += hi - lo
            if np.any(usable):
                np.minimum.at(arrival, v[usable], t)
            phases.append(
                Phase(
                    name=f"label{t}",
                    alu_ops=8.0 * (hi - lo),
                    rand_accesses=2.0 * (hi - lo),
                    seq_bytes=24.0 * (hi - lo),
                    footprint_bytes=footprint,
                    atomics=float(np.count_nonzero(usable)),
                    barriers=1.0,
                )
            )
    if not phases:
        phases.append(Phase("empty", footprint_bytes=footprint))
    profile = WorkProfile(
        name,
        tuple(phases),
        meta={"n": edges.n, "m": edges.m, "source": source, "t_start": t_start},
    )
    return TemporalReachResult(
        source=source,
        arrival=arrival,
        t_start=t_start,
        edge_groups=groups,
        edges_scanned=scanned,
        profile=profile,
    )


def temporal_reachable_set(
    edges: EdgeList, source: int, *, t_start: int = 0, **kwargs
) -> np.ndarray:
    """Convenience wrapper: the set of temporally reachable vertices."""
    return earliest_arrival(edges, source, t_start=t_start, **kwargs).reached()


def temporal_closeness(
    edges: EdgeList,
    sources=None,
    *,
    t_start: int = 0,
    seed=None,
) -> np.ndarray:
    """Harmonic temporal closeness of the source vertices.

    For source s, ``Σ_v 1 / (arrival(v) - t_start + 1)`` over temporally
    reachable v ≠ s: entities that can influence many others *quickly* in
    time-respecting order score high.  Harmonic form handles unreachable
    vertices naturally (contribution 0) — the standard convention for
    temporal closeness in the temporal-network literature built on the
    Kempe et al. model the paper adopts.

    ``sources`` follows the usual convention: None = all (O(n·m log m)),
    an int = a uniform sample, an array = explicit ids.  Returns an array
    of length n with zeros at unscored vertices.
    """
    from repro.util.seeding import make_rng

    n = edges.n
    if sources is None:
        src_ids = np.arange(n, dtype=np.int64)
    elif np.isscalar(sources):
        k = int(sources)
        if not 0 < k <= n:
            raise GraphError(f"source sample size must be in [1, {n}], got {k}")
        rng = make_rng(seed)
        src_ids = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
    else:
        src_ids = np.asarray(sources, dtype=np.int64)
        if src_ids.size and (src_ids.min() < 0 or src_ids.max() >= n):
            raise GraphError("source ids out of range")
    scores = np.zeros(n, dtype=np.float64)
    for s in src_ids.tolist():
        res = earliest_arrival(edges, s, t_start=t_start)
        reached = res.reached()
        reached = reached[reached != s]
        if reached.size:
            scores[s] = float(
                (1.0 / (res.arrival[reached] - t_start + 1.0)).sum()
            )
    return scores
