"""Temporal induced subgraphs (paper section 3.2).

*"Given edge and vertex time labels, we may need to extract vertices and
edges created in a particular time interval, or analyze a snapshot of a
network."*  The paper's kernel makes one marking pass over the edge list,
keeps a running count of affected edges, and then either creates a new graph
or deletes edges from the current one depending on which is cheaper — each
edge is visited at most twice.

Both strategies produce the same snapshot; the work profile records which
one ran (Figure 9 exercises the kernel on a 20M/200M R-MAT graph with
labels in [1, 100] and the interval (20, 70)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph, csr_from_arrays
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.machine.profile import Phase, WorkProfile

__all__ = ["InducedResult", "induced_subgraph"]

_ALU_PER_EDGE_MARK = 6.0
_ALU_PER_EDGE_MOVE = 8.0


@dataclass(frozen=True)
class InducedResult:
    """The induced snapshot plus the kernel's measured work."""

    graph: CSRGraph
    n_affected: int
    strategy: str  # "rebuild" or "delete"
    profile: WorkProfile
    meta: dict = field(default_factory=dict)


def induced_subgraph(
    edges: EdgeList,
    t_lo: int,
    t_hi: int,
    *,
    inclusive: bool = False,
    name: str = "induced-subgraph",
) -> InducedResult:
    """Extract the subgraph of edges with time labels in ``(t_lo, t_hi)``.

    ``inclusive=True`` widens the interval to ``[t_lo, t_hi]``.  The default
    open interval matches the paper's "(20, 70)" notation for Figure 9.

    The returned CSR keeps the full vertex set (isolated vertices included),
    as a snapshot should; use :meth:`CSRGraph.degrees` to find the active
    vertices.
    """
    if edges.ts is None:
        raise GraphError("induced_subgraph needs time-stamped edges")
    if t_hi < t_lo:
        raise GraphError(f"empty interval ({t_lo}, {t_hi})")
    ts = edges.ts
    # Phase 1 — mark affected edges with a running count (one streaming pass).
    if inclusive:
        keep = (ts >= t_lo) & (ts <= t_hi)
    else:
        keep = (ts > t_lo) & (ts < t_hi)
    n_keep = int(np.count_nonzero(keep))
    m = edges.m

    # Phase 2 — the paper picks the cheaper of building a new graph from the
    # kept edges or deleting the complement from the current one.
    strategy = "rebuild" if n_keep <= m - n_keep else "delete"
    n_moved = n_keep if strategy == "rebuild" else m - n_keep

    sub = edges.select(np.nonzero(keep)[0])
    arcs = sub.symmetrized() if not sub.directed else sub
    csr = csr_from_arrays(edges.n, arcs.src, arcs.dst, arcs.ts,
                          meta={**dict(edges.meta), "interval": (t_lo, t_hi)})

    footprint = float(edges.memory_bytes() + csr.memory_bytes())
    mark = Phase(
        name="mark",
        alu_ops=_ALU_PER_EDGE_MARK * m,
        seq_bytes=8.0 * m,  # stream the time-stamp column
        footprint_bytes=footprint,
        atomics=1.0,  # the shared running count (reduction)
        barriers=1.0,
    )
    arcs_moved = 2 * n_moved if not sub.directed else n_moved
    apply = Phase(
        name=strategy,
        alu_ops=_ALU_PER_EDGE_MOVE * arcs_moved,
        # Moved edges scatter into the new structure (rebuild) or tombstone
        # scattered slots (delete): one random access per arc, plus the
        # streaming read of the endpoints.
        rand_accesses=float(arcs_moved),
        seq_bytes=24.0 * n_moved,
        footprint_bytes=footprint,
        atomics=float(arcs_moved),
        barriers=1.0,
    )
    profile = WorkProfile(
        name,
        (mark, apply),
        meta={
            "n": edges.n,
            "m": m,
            "kept": n_keep,
            "strategy": strategy,
            "interval": (t_lo, t_hi),
        },
    )
    return InducedResult(
        graph=csr,
        n_affected=n_keep,
        strategy=strategy,
        profile=profile,
    )
