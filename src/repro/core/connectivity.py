"""Connectivity-query processing over a link-cut forest (paper section 3.1).

*"Each connectivity query involves two findroot operations, each of which
would take O(d) time (where d is the diameter of the network). The queries
can be processed in parallel, as they only involve memory reads."*

:class:`ConnectivityIndex` bundles a graph snapshot, its spanning
:class:`~repro.core.linkcut.LinkCutForest`, and batched query execution that
measures the actual pointer-hop counts into a work profile — the basis for
Figure 8 (1M queries) and the paper's 7.3M-queries/second headline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.core.linkcut import ConstructionRecord, LinkCutForest
from repro.errors import GraphError
from repro.machine.profile import Phase, WorkProfile
from repro.obs import METRICS, manifest_meta, span
from repro.util.seeding import make_rng

__all__ = ["ConnectivityIndex", "QueryResult"]

#: ALU ops per pointer hop (load, NIL test, loop branch).
_ALU_PER_HOP = 4.0
#: ALU ops per query besides the chases (operand fetch, result store).
_ALU_PER_QUERY = 8.0


@dataclass(frozen=True)
class QueryResult:
    """Results and measured work of one query batch."""

    connected: np.ndarray
    n_queries: int
    total_hops: int
    profile: WorkProfile
    meta: dict = field(default_factory=dict)

    @property
    def hops_per_query(self) -> float:
        return self.total_hops / self.n_queries if self.n_queries else 0.0


class ConnectivityIndex:
    """Spanning-forest connectivity oracle with batched queries.

    Build with :meth:`from_csr`; query with :meth:`query_batch` (pairs) or
    :meth:`query` (single pair).  :meth:`insert_edge` / :meth:`delete_edge`
    maintain the forest under updates (the delete path searches for a
    replacement edge in the supplied adjacency source — see
    :meth:`LinkCutForest.cut_with_replacement`).
    """

    def __init__(self, forest: LinkCutForest, record: ConstructionRecord | None = None) -> None:
        self.forest = forest
        self.record = record

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "ConnectivityIndex":
        with span("connectivity.from_csr", n=graph.n, arcs=graph.n_arcs) as sp:
            forest, record = LinkCutForest.from_csr(graph)
            sp.set(trees=forest.n_trees())
        METRICS.inc("connectivity.forests_built")
        return cls(forest, record)

    @property
    def construction_profile(self) -> WorkProfile:
        if self.record is None:
            raise GraphError("index was not built from a graph; no construction record")
        return self.record.profile

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def query(self, u: int, v: int) -> bool:
        """Single s–t connectivity query (two findroots)."""
        return self.forest.connected(u, v)

    def query_batch(
        self,
        us,
        vs,
        *,
        name: str = "connectivity-queries",
        backend: str | object = "serial",
        workers: int | None = None,
    ) -> QueryResult:
        """Answer many queries and profile the measured pointer work.

        The phase is read-only (no synchronisation), perfectly divisible
        (queries are independent), and entirely dependent random accesses —
        the linked-list-traversal behaviour the paper calls out as having
        poor serial performance but excellent parallel scaling.
        ``backend="process"`` chases the pointers from a worker pool over
        the shared parent array (docs/PARALLEL.md); answers and hop counts
        are identical to the serial batch.
        """
        from repro.parallel.backend import resolve_backend

        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise GraphError("query endpoint arrays must be 1-D and equal length")
        be, owned = resolve_backend(backend, workers=workers)
        try:
            with span(
                "connectivity.query_batch", n_queries=int(us.size), backend=be.name
            ) as sp:
                answers, hops = be.query_batch(self.forest, us, vs)
                sp.set(hops=int(hops))
        finally:
            if owned:
                be.close()
        METRICS.inc("connectivity.queries", int(us.size))
        METRICS.inc("connectivity.hops", int(hops))
        footprint = float(self.forest.memory_bytes())
        phase = Phase(
            name="findroot",
            alu_ops=_ALU_PER_HOP * hops + _ALU_PER_QUERY * us.size,
            rand_accesses=float(hops + 2 * us.size),
            footprint_bytes=footprint,
        )
        profile = WorkProfile(
            name,
            (phase,),
            meta={
                "n_queries": int(us.size),
                "hops": int(hops),
                "n": self.forest.n,
                "backend": be.name,
                "workers": int(getattr(be, "workers", 1)),
                **manifest_meta(),
            },
        )
        return QueryResult(
            connected=answers,
            n_queries=int(us.size),
            total_hops=int(hops),
            profile=profile,
        )

    def random_query_batch(
        self,
        k: int,
        seed: int | np.random.Generator | None = None,
        *,
        name: str = "connectivity-queries",
        backend: str | object = "serial",
        workers: int | None = None,
    ) -> QueryResult:
        """``k`` uniform random vertex-pair queries (Figure 8's workload)."""
        if k < 0:
            raise GraphError(f"query count must be >= 0, got {k}")
        rng = make_rng(seed)
        us = rng.integers(0, self.forest.n, size=k, dtype=np.int64)
        vs = rng.integers(0, self.forest.n, size=k, dtype=np.int64)
        return self.query_batch(us, vs, name=name, backend=backend, workers=workers)

    # ------------------------------------------------------------------ #
    # maintenance under updates
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        """Inform the index of a new graph edge; True if the forest changed."""
        return self.forest.add_edge(u, v)

    def delete_edge(self, u: int, v: int, rep) -> bool:
        """Inform the index a graph edge was removed.

        ``rep`` supplies the surviving graph adjacency (``neighbors``),
        consulted for a replacement when a tree edge is cut.  Returns True
        when the deleted edge was a tree edge.
        """
        f = self.forest
        if f.parent_of(u) == v:
            child = u
        elif f.parent_of(v) == u:
            child = v
        else:
            return False  # non-tree edge: connectivity unaffected
        f.cut_with_replacement(child, rep)
        return True
