"""Connectivity-query processing over a link-cut forest (paper section 3.1).

*"Each connectivity query involves two findroot operations, each of which
would take O(d) time (where d is the diameter of the network). The queries
can be processed in parallel, as they only involve memory reads."*

:class:`ConnectivityIndex` bundles a graph snapshot, its spanning
:class:`~repro.core.linkcut.LinkCutForest`, and batched query execution that
measures the actual pointer-hop counts into a work profile — the basis for
Figure 8 (1M queries) and the paper's 7.3M-queries/second headline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import kernels
from repro.adjacency.csr import CSRGraph
from repro.core.linkcut import ConstructionRecord, LinkCutForest
from repro.errors import GraphError
from repro.machine.profile import Phase, WorkProfile
from repro.obs import METRICS, manifest_meta, span
from repro.util.seeding import make_rng

__all__ = ["ConnectivityIndex", "QueryResult", "BatchInsertResult"]

#: ALU ops per pointer hop (load, NIL test, loop branch).
_ALU_PER_HOP = 4.0
#: ALU ops per query besides the chases (operand fetch, result store).
_ALU_PER_QUERY = 8.0


@dataclass(frozen=True)
class QueryResult:
    """Results and measured work of one query batch."""

    connected: np.ndarray
    n_queries: int
    total_hops: int
    profile: WorkProfile
    meta: dict = field(default_factory=dict)

    @property
    def hops_per_query(self) -> float:
        return self.total_hops / self.n_queries if self.n_queries else 0.0


@dataclass(frozen=True)
class BatchInsertResult:
    """Outcome and measured work of one batched edge insertion.

    ``linked[i]`` is True when edge i became a spanning-tree link (it
    connected two previously separate components); the rest were redundant
    for connectivity and were never pushed into the forest.
    """

    linked: np.ndarray
    n_links: int
    n_skipped: int
    total_hops: int
    profile: WorkProfile
    meta: dict = field(default_factory=dict)


class ConnectivityIndex:
    """Spanning-forest connectivity oracle with batched queries.

    Build with :meth:`from_csr`; query with :meth:`query_batch` (pairs) or
    :meth:`query` (single pair).  :meth:`insert_edge` / :meth:`delete_edge`
    maintain the forest under updates (the delete path searches for a
    replacement edge in the supplied adjacency source — see
    :meth:`LinkCutForest.cut_with_replacement`).
    """

    def __init__(self, forest: LinkCutForest, record: ConstructionRecord | None = None) -> None:
        self.forest = forest
        self.record = record

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "ConnectivityIndex":
        with span("connectivity.from_csr", n=graph.n, arcs=graph.n_arcs) as sp:
            forest, record = LinkCutForest.from_csr(graph)
            sp.set(trees=forest.n_trees())
        METRICS.inc("connectivity.forests_built")
        return cls(forest, record)

    @property
    def construction_profile(self) -> WorkProfile:
        if self.record is None:
            raise GraphError("index was not built from a graph; no construction record")
        return self.record.profile

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def query(self, u: int, v: int) -> bool:
        """Single s–t connectivity query (two findroots)."""
        return self.forest.connected(u, v)

    def query_batch(
        self,
        us,
        vs,
        *,
        name: str = "connectivity-queries",
        backend: str | object = "serial",
        workers: int | None = None,
    ) -> QueryResult:
        """Answer many queries and profile the measured pointer work.

        The phase is read-only (no synchronisation), perfectly divisible
        (queries are independent), and entirely dependent random accesses —
        the linked-list-traversal behaviour the paper calls out as having
        poor serial performance but excellent parallel scaling.
        ``backend="process"`` chases the pointers from a worker pool over
        the shared parent array (docs/PARALLEL.md); answers and hop counts
        are identical to the serial batch.
        """
        from repro.parallel.backend import resolve_backend

        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise GraphError("query endpoint arrays must be 1-D and equal length")
        be, owned = resolve_backend(backend, workers=workers)
        try:
            with span(
                "connectivity.query_batch", n_queries=int(us.size), backend=be.name
            ) as sp:
                answers, hops = be.query_batch(self.forest, us, vs)
                sp.set(hops=int(hops))
        finally:
            if owned:
                be.close()
        METRICS.inc("connectivity.queries", int(us.size))
        METRICS.inc("connectivity.hops", int(hops))
        footprint = float(self.forest.memory_bytes())
        phase = Phase(
            name="findroot",
            alu_ops=_ALU_PER_HOP * hops + _ALU_PER_QUERY * us.size,
            rand_accesses=float(hops + 2 * us.size),
            footprint_bytes=footprint,
        )
        profile = WorkProfile(
            name,
            (phase,),
            meta={
                "n_queries": int(us.size),
                "hops": int(hops),
                "n": self.forest.n,
                "backend": be.name,
                "workers": int(getattr(be, "workers", 1)),
                "kernel_tier": kernels.resolve_tier(self.forest),
                **manifest_meta(),
            },
        )
        return QueryResult(
            connected=answers,
            n_queries=int(us.size),
            total_hops=int(hops),
            profile=profile,
        )

    def random_query_batch(
        self,
        k: int,
        seed: int | np.random.Generator | None = None,
        *,
        name: str = "connectivity-queries",
        backend: str | object = "serial",
        workers: int | None = None,
    ) -> QueryResult:
        """``k`` uniform random vertex-pair queries (Figure 8's workload)."""
        if k < 0:
            raise GraphError(f"query count must be >= 0, got {k}")
        rng = make_rng(seed)
        us = rng.integers(0, self.forest.n, size=k, dtype=np.int64)
        vs = rng.integers(0, self.forest.n, size=k, dtype=np.int64)
        return self.query_batch(us, vs, name=name, backend=backend, workers=workers)

    # ------------------------------------------------------------------ #
    # maintenance under updates
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        """Inform the index of a new graph edge; True if the forest changed."""
        return self.forest.add_edge(u, v)

    def insert_batch(
        self,
        us,
        vs,
        *,
        union_rule: str = "rank",
        compaction: str = "halving",
        name: str = "connectivity-insert-batch",
    ) -> BatchInsertResult:
        """Apply many edge insertions with a union-find fast path.

        Looping :meth:`insert_edge` pays two findroots per edge even when
        the edge is redundant for connectivity.  This path resolves all
        endpoints once with :meth:`~repro.core.linkcut.LinkCutForest
        .findroot_batch`, then replays the batch through a
        :class:`repro.connectit.unionfind.UnionFind` over those roots —
        a union succeeds exactly when the edge joins two components that
        are still separate *at its position in the batch*, which is
        precisely when sequential :meth:`insert_edge` would have linked
        the forest.  Only those edges touch the forest; the resulting
        spanning forest and connectivity are identical to the sequential
        loop, at a fraction of the pointer chases on dense batches.

        ``union_rule`` / ``compaction`` pick the union-find variant
        (:mod:`repro.connectit`); the measured forest hops and union-find
        counters land in the returned profile.
        """
        from repro.connectit.unionfind import UnionFind

        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise GraphError("insert endpoint arrays must be 1-D and equal length")
        forest = self.forest
        hops_before = forest.hops
        with span(
            "connectivity.insert_batch", n_edges=int(us.size), variant=f"{union_rule}/{compaction}"
        ) as sp:
            roots_u = forest.findroot_batch(us)
            roots_v = forest.findroot_batch(vs)
            uf = UnionFind(forest.n, union_rule=union_rule, compaction=compaction)
            tier = kernels.resolve_tier(forest)
            if tier == "compiled" and us.size:
                # The union-find replay is independent of the forest, so
                # the fused kernel resolves the whole batch first and the
                # winning edges touch the forest afterwards, in batch
                # order — identical forest, hops, counters and links.
                linked = uf.union_arcs_compiled(roots_u, roots_v, pre_resolved=True)
                for i in np.flatnonzero(linked).tolist():
                    forest.add_edge(int(us[i]), int(vs[i]))
            else:
                linked = np.zeros(us.size, dtype=bool)
                for i, (ru, rv) in enumerate(zip(roots_u.tolist(), roots_v.tolist())):
                    if ru == rv:
                        uf.counters.unions += 1  # examined; redundant before the batch
                    elif uf.union(ru, rv):
                        forest.add_edge(int(us[i]), int(vs[i]))
                        linked[i] = True
            sp.set(links=int(linked.sum()), trees=forest.n_trees())
        hops = int(forest.hops - hops_before)
        n_links = int(linked.sum())
        METRICS.inc("connectivity.batch_inserts", int(us.size))
        METRICS.inc("connectivity.batch_links", n_links)
        c = uf.counters
        phase = Phase(
            name="insert-batch",
            alu_ops=_ALU_PER_HOP * hops + _ALU_PER_QUERY * us.size + 2.0 * c.pointer_chases,
            rand_accesses=float(hops + c.pointer_chases + c.atomics),
            atomics=float(n_links),
            footprint_bytes=float(self.forest.memory_bytes() + uf.memory_bytes()),
        )
        profile = WorkProfile(
            name,
            (phase,),
            meta={
                "n_edges": int(us.size),
                "n_links": n_links,
                "hops": hops,
                "union_rule": union_rule,
                "compaction": compaction,
                "counters": c.to_dict(),
                "kernel_tier": tier,
                **manifest_meta(),
            },
        )
        return BatchInsertResult(
            linked=linked,
            n_links=n_links,
            n_skipped=int(us.size) - n_links,
            total_hops=hops,
            profile=profile,
        )

    def delete_edge(self, u: int, v: int, rep) -> bool:
        """Inform the index a graph edge was removed.

        ``rep`` supplies the surviving graph adjacency (``neighbors``),
        consulted for a replacement when a tree edge is cut.  Returns True
        when the deleted edge was a tree edge.
        """
        f = self.forest
        if f.parent_of(u) == v:
            child = u
        elif f.parent_of(v) == u:
            child = v
        else:
            return False  # non-tree edge: connectivity unaffected
        f.cut_with_replacement(child, rep)
        return True
