"""Community structure (paper section 1's analysis vocabulary).

The paper's introduction lists "identification of influential entities,
communities, and anomalous patterns" as the well-studied measures a complex-
network framework serves.  This module supplies the community half:

* :func:`label_propagation_communities` — the classic Raghavan–Albert–Kumara
  algorithm: every vertex repeatedly adopts the most frequent label among
  its neighbours until a fixed point; near-linear time, embarrassingly
  parallel per sweep (each sweep is one phase in the work profile);
* :func:`modularity` — Newman's quality measure Q for any labelling,
  validated against networkx.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.errors import GraphError
from repro.machine.profile import Phase, WorkProfile
from repro.util.seeding import make_rng

__all__ = ["CommunityResult", "label_propagation_communities", "modularity"]


@dataclass(frozen=True)
class CommunityResult:
    """A vertex labelling plus run statistics."""

    labels: np.ndarray
    n_sweeps: int
    converged: bool
    profile: WorkProfile
    meta: dict = field(default_factory=dict)

    @property
    def n_communities(self) -> int:
        return int(np.unique(self.labels).size)

    def communities(self) -> list[np.ndarray]:
        """Vertex arrays per community, largest first."""
        uniq, inv = np.unique(self.labels, return_inverse=True)
        groups = [np.nonzero(inv == i)[0] for i in range(uniq.size)]
        return sorted(groups, key=len, reverse=True)


def label_propagation_communities(
    graph: CSRGraph,
    *,
    max_sweeps: int = 100,
    seed=None,
    name: str = "label-propagation",
) -> CommunityResult:
    """Asynchronous label propagation with random vertex order per sweep.

    Ties between equally frequent neighbour labels break toward the
    smallest label (deterministic given the seed).  Returns canonicalised
    labels (each community tagged by its minimum vertex id).
    """
    if max_sweeps < 1:
        raise GraphError(f"max_sweeps must be >= 1, got {max_sweeps}")
    n = graph.n
    rng = make_rng(seed)
    labels = np.arange(n, dtype=np.int64)
    offsets, targets = graph.offsets, graph.targets
    footprint = float(graph.memory_bytes() + labels.nbytes)
    phases: list[Phase] = []
    converged = False
    sweeps = 0
    for _ in range(max_sweeps):
        sweeps += 1
        changed = 0
        scanned = 0
        for u in rng.permutation(n).tolist():
            lo, hi = int(offsets[u]), int(offsets[u + 1])
            if lo == hi:
                continue
            nbr_labels = labels[targets[lo:hi]]
            scanned += hi - lo
            values, counts = np.unique(nbr_labels, return_counts=True)
            best = values[counts == counts.max()].min()
            if best != labels[u]:
                labels[u] = best
                changed += 1
        phases.append(
            Phase(
                name=f"sweep{sweeps - 1}",
                alu_ops=12.0 * scanned,
                rand_accesses=float(scanned + n),
                seq_bytes=8.0 * scanned,
                footprint_bytes=footprint,
                barriers=1.0,
            )
        )
        if changed == 0:
            converged = True
            break
    # Canonicalise: tag each community with its minimum vertex id.
    uniq, inv = np.unique(labels, return_inverse=True)
    mins = np.full(uniq.size, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(mins, inv, np.arange(n, dtype=np.int64))
    labels = mins[inv]
    profile = WorkProfile(
        name, tuple(phases),
        meta={"n": n, "arcs": graph.n_arcs, "sweeps": sweeps, "converged": converged},
    )
    return CommunityResult(
        labels=labels, n_sweeps=sweeps, converged=converged, profile=profile
    )


def modularity(graph: CSRGraph, labels) -> float:
    """Newman modularity Q of a labelling over the undirected simple view.

    Q = Σ_c (e_c / m  -  (d_c / 2m)^2) with e_c the intra-community edge
    count and d_c the community's total degree.  Arc-level computation: the
    CSR stores both arc directions, so intra-community arcs / total arcs
    gives e_c/m directly.  Parallel arcs count with multiplicity (matching
    networkx's MultiGraph behaviour).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.n,):
        raise GraphError(f"labels must have shape ({graph.n},)")
    m2 = graph.n_arcs  # = 2m for symmetrised undirected storage
    if m2 == 0:
        return 0.0
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees())
    intra = np.count_nonzero(labels[src] == labels[graph.targets])
    deg = graph.degrees().astype(np.float64)
    uniq, inv = np.unique(labels, return_inverse=True)
    deg_c = np.zeros(uniq.size, dtype=np.float64)
    np.add.at(deg_c, inv, deg)
    return float(intra / m2 - np.square(deg_c / m2).sum())
