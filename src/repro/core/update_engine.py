"""Structural-update driver (paper section 2).

Feeds an :class:`~repro.generators.streams.UpdateStream` into any adjacency
representation, handling undirected symmetrisation (each edge update becomes
two arc updates), measuring the stream's contention statistics, and
assembling the representation's counters into the
:class:`~repro.machine.profile.WorkProfile` the simulator evaluates.

MUPS accounting note: the paper's rates count *edge* updates; with
undirected graphs each edge update performs two arc operations internally,
which simply makes the per-update work profile twice as heavy — the MUPS
figures always divide by the number of stream updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency import bulkops
from repro.adjacency.base import AdjacencyRepresentation, HotStats
from repro.edgelist import EdgeList
from repro.generators.streams import UpdateStream, insertion_stream
from repro.machine.profile import WorkProfile
from repro.obs import METRICS, manifest_meta, span
from repro.util.timing import Timer

__all__ = ["UpdateResult", "apply_stream", "construct"]


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of applying one stream to one representation."""

    rep: AdjacencyRepresentation
    n_updates: int
    n_arc_ops: int
    misses: int
    host_seconds: float
    profile: WorkProfile
    hot: HotStats
    meta: dict = field(default_factory=dict)


def _arc_stream(stream: UpdateStream, undirected: bool):
    """Expand an edge stream into arc arrays (interleaved for undirected)."""
    if not undirected:
        return stream.op, stream.src, stream.dst, stream.ts
    k = len(stream)
    op = np.empty(2 * k, dtype=np.int8)
    src = np.empty(2 * k, dtype=np.int64)
    dst = np.empty(2 * k, dtype=np.int64)
    ts = np.empty(2 * k, dtype=np.int64)
    op[0::2] = stream.op
    op[1::2] = stream.op
    src[0::2] = stream.src
    src[1::2] = stream.dst
    dst[0::2] = stream.dst
    dst[1::2] = stream.src
    ts[0::2] = stream.ts
    ts[1::2] = stream.ts
    return op, src, dst, ts


def apply_stream(
    rep: AdjacencyRepresentation,
    stream: UpdateStream,
    *,
    undirected: bool = True,
    phase_name: str = "updates",
    reset_stats: bool = True,
    probe_scale: float = 1.0,
    vectorised: bool | None = None,
) -> UpdateResult:
    """Apply ``stream`` to ``rep`` and return results plus the work profile.

    ``reset_stats`` zeroes the representation's counters first so the
    profile covers exactly this stream (the paper times construction,
    deletion and mixed phases separately).

    ``probe_scale`` multiplies the measured linear-probe word count before
    the profile is built.  Experiments that extrapolate to larger instances
    use it to apply the analytically known growth of scan lengths (see
    :func:`repro.machine.scale.rmat_size_biased_growth`); the default leaves
    measurements untouched.

    ``vectorised`` controls the :mod:`repro.adjacency.bulkops` fast path for
    the duration of this stream only (the representation's own
    ``use_bulkops`` flag is restored afterwards): ``True`` forces the
    vectorised kernels, ``False`` forces the scalar reference loops, and
    ``None`` (the default) keeps the representation's current setting.  The
    two paths are counter-equivalent (see docs/PERFORMANCE.md), so the
    simulated work profile is identical either way; only ``host_seconds``
    and the derived ``host_mups`` change.
    """
    if rep.n != stream.n:
        raise ValueError(
            f"representation has {rep.n} vertices but stream has {stream.n}"
        )
    if probe_scale < 0:
        raise ValueError(f"probe_scale must be >= 0, got {probe_scale}")
    if reset_stats:
        rep.reset_stats()
    with span(
        "update_engine.apply_stream",
        representation=rep.kind,
        n_updates=len(stream),
        phase=phase_name,
        undirected=undirected,
    ) as sp:
        op, src, dst, ts = _arc_stream(stream, undirected)
        hot = HotStats.from_keys(src) if src.size else HotStats()
        saved_flag = rep.use_bulkops
        if vectorised is not None:
            rep.use_bulkops = vectorised
        try:
            with Timer() as t:
                with span(f"adjacency.{rep.kind}.apply_arcs", n_arc_ops=int(op.size)):
                    misses = rep.apply_arcs(op, src, dst, ts)
        finally:
            fast_path = bulkops.enabled(rep, int(op.size))
            rep.use_bulkops = saved_flag
        if probe_scale != 1.0:
            # Applies to the representation's own counters only: for the hybrid
            # structure the long scans live in treaps at scale (its array probes
            # are bounded by degree_thresh), so callers pass 1.0 there.
            rep.stats.probe_words = int(rep.stats.probe_words * probe_scale)
        phase = rep.phase(phase_name, hot)
        sp.set(n_arc_ops=int(op.size), misses=misses, host_seconds=t.elapsed)
    _tick_update_metrics(rep, op.size, misses)
    profile = WorkProfile(
        phase_name,
        (phase,),
        meta={
            "representation": rep.kind,
            "n": rep.n,
            "n_updates": len(stream),
            "n_arc_ops": int(op.size),
            "inserts": stream.n_inserts,
            "deletes": stream.n_deletes,
            "undirected": undirected,
            "misses": misses,
            "vectorised": fast_path,
            "host_seconds": t.elapsed,
            "host_mups": (len(stream) / t.elapsed / 1e6) if t.elapsed > 0 else 0.0,
            **manifest_meta(),
        },
    )
    return UpdateResult(
        rep=rep,
        n_updates=len(stream),
        n_arc_ops=int(op.size),
        misses=misses,
        host_seconds=t.elapsed,
        profile=profile,
        hot=hot,
        meta={"vectorised": fast_path},
    )


def _tick_update_metrics(rep: AdjacencyRepresentation, n_arc_ops: int, misses: int) -> None:
    """Fold one stream's work counters into the process metrics registry.

    Ticked once per stream (phase granularity), never per arc — the hot
    loops stay exactly as fast as before the obs subsystem existed.
    """
    METRICS.inc("update_engine.streams")
    METRICS.inc("update_engine.arc_ops", int(n_arc_ops))
    METRICS.inc("update_engine.delete_misses", misses)
    # Composite structures (hybrid) split counters over sub-structures and
    # merge them on demand; plain structures count directly into .stats.
    combined = getattr(rep, "combined_stats", None)
    s = combined() if callable(combined) else rep.stats
    METRICS.inc_many(
        f"adjacency.{rep.kind}",
        {
            "inserts": s.inserts,
            "deletes": s.deletes,
            "probe_words": s.probe_words,
            "resize_events": s.resize_events,
            "resize_copied_words": s.resize_copied_words,
            "nodes_visited": s.nodes_visited,
            "rotations": s.rotations,
            "migrations": s.migrations,
            "migration_words": s.migration_words,
        },
    )
    METRICS.set(f"adjacency.{rep.kind}.live_arcs", rep.n_arcs)
    METRICS.set(f"adjacency.{rep.kind}.memory_bytes", rep.memory_bytes())


def construct(
    rep: AdjacencyRepresentation,
    graph: EdgeList,
    *,
    undirected: bool | None = None,
    shuffle: bool = False,
    seed=None,
    phase_name: str = "construction",
    vectorised: bool | None = None,
) -> UpdateResult:
    """Build ``rep`` from a graph "treated as a series of insertions".

    This is the workload of Figures 1–4: every edge arrives as an insertion
    (optionally shuffled, the paper's hot-burst mitigation).  All-insert
    streams route through each representation's ``bulk_insert``, which is
    vectorised for the array-backed structures (``vectorised`` is threaded
    through to :func:`apply_stream`).
    """
    if undirected is None:
        undirected = not graph.directed
    stream = insertion_stream(graph, shuffle=shuffle, seed=seed)
    return apply_stream(
        rep, stream, undirected=undirected, phase_name=phase_name,
        vectorised=vectorised,
    )
