"""Temporal betweenness centrality (paper section 3.4).

The paper defines a temporal path (after Kempe, Kleinberg & Kumar) as an
edge sequence with strictly increasing time labels, a temporal shortest path
as a minimum-length such path, and temporal betweenness BC_d(v) as the sum
over pairs (s, t) of the fraction of temporal shortest paths through v.  The
parallel algorithm augments Brandes-style BFS with the time-label check —
"the graph traversal step in this parallel approach is modified to process
temporal paths, while the dependency-accumulation stage remains unchanged" —
and approximates by traversing from a sample of sources and extrapolating
(256 sources for Figure 11).

Exactness caveat (also recorded in DESIGN.md §1): reconciling multiple
arrival times at a vertex exactly requires per-(vertex, arrival-label)
state.  This kernel keeps one label per vertex — the minimum feasible
arrival label at the vertex's shortest temporal distance, which admits the
maximal set of extensions — matching the single-pass traversal the paper
describes.  Paths it counts are genuine temporal shortest paths; in rare
configurations it can additionally count a path whose own predecessor chain
used a later label than the recorded minimum (an overcount) or settle a
vertex at a hop distance no later-labelled path could achieve (undercount of
alternatives).  :func:`temporal_bc_exact` enumerates temporal paths
exhaustively for small graphs and is used by the test suite to quantify the
divergence (zero on trees and on most sparse R-MAT instances).

With ``temporal=False`` the kernel is exactly Brandes' algorithm for
unweighted graphs (validated against networkx in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.edgelist import EdgeList
from repro.errors import GraphError
from repro.machine.profile import Phase, WorkProfile
from repro.util.seeding import make_rng

__all__ = [
    "BetweennessResult",
    "EdgeBetweennessResult",
    "temporal_betweenness",
    "edge_betweenness",
    "temporal_bc_exact",
]

_ALU_PER_EDGE = 12.0  # feasibility test + sigma accumulate + label min
_ALU_PER_EDGE_ACC = 10.0  # dependency accumulation per tree edge


@dataclass(frozen=True)
class BetweennessResult:
    """Centrality scores plus traversal statistics.

    ``scores`` are extrapolated when ``n_sources < n`` (multiplied by
    n / n_sources, the paper's approximation scheme).
    """

    scores: np.ndarray
    n_sources: int
    sources: np.ndarray
    total_levels: int
    edges_scanned: int
    profile: WorkProfile
    temporal: bool
    meta: dict = field(default_factory=dict)

    def top(self, k: int = 10) -> list[tuple[int, float]]:
        """The k highest-centrality vertices as (vertex, score) pairs."""
        order = np.argsort(self.scores)[::-1][:k]
        return [(int(v), float(self.scores[v])) for v in order]


def _brandes_from_source(
    graph: CSRGraph,
    s: int,
    scores: np.ndarray,
    *,
    temporal: bool,
    edge_scores: np.ndarray | None = None,
) -> tuple[int, int]:
    """One source traversal + accumulation; returns (levels, edges_scanned).

    Vectorised per level: the frontier's adjacency arcs are gathered with
    index arithmetic; sigma accumulation uses ``np.add.at`` (the PRAM
    concurrent-add); the per-level arc lists are retained for the backward
    dependency sweep.
    """
    offsets, targets = graph.offsets, graph.targets
    ts = graph.ts
    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    arr_min = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    dist[s] = 0
    sigma[s] = 1.0
    arr_min[s] = -1  # any non-negative first label is feasible

    frontier = np.array([s], dtype=np.int64)
    level = 0
    level_arcs: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    edges_scanned = 0
    while frontier.size:
        starts = offsets[frontier]
        counts = offsets[frontier + 1] - starts
        total = int(counts.sum())
        edges_scanned += total
        if total == 0:
            break
        base = np.repeat(starts, counts)
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        idx = base + offs
        v_arr = np.repeat(frontier, counts)
        w_arr = targets[idx]
        if temporal:
            lab = ts[idx]
            feasible = lab > arr_min[v_arr]
            v_arr, w_arr, lab, idx = (
                v_arr[feasible], w_arr[feasible], lab[feasible], idx[feasible]
            )
        else:
            lab = None
        if w_arr.size == 0:
            break
        # Discover: unvisited targets join the next level.
        fresh = w_arr[dist[w_arr] < 0]
        if fresh.size:
            fresh = np.unique(fresh)
            dist[fresh] = level + 1
        # Shortest-path arcs: feasible arcs landing exactly one level deeper
        # (covers both just-discovered vertices and multi-predecessor joins).
        on_sp = dist[w_arr] == level + 1
        v_sp, w_sp, idx_sp = v_arr[on_sp], w_arr[on_sp], idx[on_sp]
        if v_sp.size:
            np.add.at(sigma, w_sp, sigma[v_sp])
            if temporal:
                np.minimum.at(arr_min, w_sp, lab[on_sp])
            level_arcs.append((v_sp, w_sp, idx_sp))
        frontier = fresh
        level += 1

    # Backward dependency accumulation, level by level (unchanged from the
    # static algorithm, per the paper).  Each DAG arc's own contribution is
    # the edge-betweenness increment when requested.
    delta = np.zeros(n, dtype=np.float64)
    for v_sp, w_sp, idx_sp in reversed(level_arcs):
        contrib = sigma[v_sp] / sigma[w_sp] * (1.0 + delta[w_sp])
        if edge_scores is not None:
            np.add.at(edge_scores, idx_sp, contrib)
        np.add.at(delta, v_sp, contrib)
    delta[s] = 0.0
    scores += delta
    return level, edges_scanned


def temporal_betweenness(
    graph: CSRGraph,
    *,
    sources: np.ndarray | int | None = None,
    seed: int | np.random.Generator | None = None,
    temporal: bool = True,
    name: str = "temporal-betweenness",
) -> BetweennessResult:
    """(Approximate) temporal betweenness centrality.

    Parameters
    ----------
    graph:
        CSR snapshot; must carry time-stamps when ``temporal=True``.
    sources:
        Either an explicit array of source vertices, an integer sample size
        (drawn uniformly without replacement — the paper samples 256), or
        None for the exact all-sources computation.
    temporal:
        When False, time labels are ignored and the result is classical
        (unnormalised, directed-pair-sum) betweenness.
    """
    if temporal and graph.ts is None:
        raise GraphError("temporal betweenness needs a time-stamped graph")
    n = graph.n
    if sources is None:
        src_ids = np.arange(n, dtype=np.int64)
    elif np.isscalar(sources):
        k = int(sources)
        if not 0 < k <= n:
            raise GraphError(f"source sample size must be in [1, {n}], got {k}")
        rng = make_rng(seed)
        src_ids = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
    else:
        src_ids = np.asarray(sources, dtype=np.int64)
        if src_ids.size and (src_ids.min() < 0 or src_ids.max() >= n):
            raise GraphError("source ids out of range")

    scores = np.zeros(n, dtype=np.float64)
    total_levels = 0
    edges_scanned = 0
    for s in src_ids.tolist():
        levels, scanned = _brandes_from_source(graph, s, scores, temporal=temporal)
        total_levels += levels
        edges_scanned += scanned

    if src_ids.size < n:
        scores *= n / src_ids.size  # the paper's extrapolation

    footprint = float(graph.memory_bytes() + 5 * 8 * n)
    traversal = Phase(
        name="traversal",
        alu_ops=_ALU_PER_EDGE * edges_scanned,
        rand_accesses=float(2 * edges_scanned),
        seq_bytes=(16.0 if temporal else 8.0) * edges_scanned,
        footprint_bytes=footprint,
        atomics=float(edges_scanned),  # concurrent sigma adds
        barriers=2.0 * total_levels,
    )
    accumulation = Phase(
        name="accumulation",
        alu_ops=_ALU_PER_EDGE_ACC * edges_scanned,
        rand_accesses=float(edges_scanned),
        seq_bytes=8.0 * edges_scanned,
        footprint_bytes=footprint,
        atomics=float(edges_scanned),  # concurrent delta adds
        barriers=float(total_levels),
    )
    profile = WorkProfile(
        name,
        (traversal, accumulation),
        meta={
            "n": n,
            "arcs": graph.n_arcs,
            "n_sources": int(src_ids.size),
            "levels": total_levels,
            "temporal": temporal,
        },
    )
    return BetweennessResult(
        scores=scores,
        n_sources=int(src_ids.size),
        sources=src_ids,
        total_levels=total_levels,
        edges_scanned=edges_scanned,
        profile=profile,
        temporal=temporal,
    )


@dataclass(frozen=True)
class EdgeBetweennessResult:
    """Per-arc betweenness scores over a CSR snapshot.

    ``arc_scores[i]`` is the (extrapolated) number of shortest-path
    fractions crossing CSR arc ``i``; :meth:`edge_scores` folds the two
    directions of an undirected edge together.
    """

    arc_scores: np.ndarray
    graph: CSRGraph
    n_sources: int
    temporal: bool
    meta: dict = field(default_factory=dict)

    def edge_scores(self) -> dict[tuple[int, int], float]:
        """Scores per unordered endpoint pair (both arc directions summed)."""
        src = np.repeat(np.arange(self.graph.n, dtype=np.int64), self.graph.degrees())
        out: dict[tuple[int, int], float] = {}
        for u, v, s in zip(src.tolist(), self.graph.targets.tolist(),
                           self.arc_scores.tolist()):
            key = (u, v) if u <= v else (v, u)
            out[key] = out.get(key, 0.0) + s
        return out

    def top(self, k: int = 10) -> list[tuple[tuple[int, int], float]]:
        """The k highest-scoring unordered edges."""
        items = sorted(self.edge_scores().items(), key=lambda kv: -kv[1])
        return items[:k]


def edge_betweenness(
    graph: CSRGraph,
    *,
    sources: np.ndarray | int | None = None,
    seed=None,
    temporal: bool = False,
    name: str = "edge-betweenness",
) -> EdgeBetweennessResult:
    """Betweenness of *edges* (paper: "a particular vertex (or an edge)").

    Same traversal machinery as :func:`temporal_betweenness`; each shortest-
    path DAG arc accumulates its own dependency.  Ordered-pair convention as
    elsewhere: on undirected graphs, summing an edge's two arc directions
    gives exactly twice networkx's unordered edge betweenness (tested).
    """
    if temporal and graph.ts is None:
        raise GraphError("temporal edge betweenness needs a time-stamped graph")
    n = graph.n
    if sources is None:
        src_ids = np.arange(n, dtype=np.int64)
    elif np.isscalar(sources):
        k = int(sources)
        if not 0 < k <= n:
            raise GraphError(f"source sample size must be in [1, {n}], got {k}")
        rng = make_rng(seed)
        src_ids = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
    else:
        src_ids = np.asarray(sources, dtype=np.int64)
        if src_ids.size and (src_ids.min() < 0 or src_ids.max() >= n):
            raise GraphError("source ids out of range")
    vertex_scores = np.zeros(n, dtype=np.float64)
    arc_scores = np.zeros(graph.n_arcs, dtype=np.float64)
    for s in src_ids.tolist():
        _brandes_from_source(
            graph, s, vertex_scores, temporal=temporal, edge_scores=arc_scores
        )
    if src_ids.size < n:
        arc_scores *= n / src_ids.size
    return EdgeBetweennessResult(
        arc_scores=arc_scores,
        graph=graph,
        n_sources=int(src_ids.size),
        temporal=temporal,
        meta={"name": name},
    )


def temporal_bc_exact(edges: EdgeList, *, symmetrize: bool | None = None) -> np.ndarray:
    """Exact temporal betweenness by exhaustive temporal-path enumeration.

    Ground truth for validating the fast kernel on SMALL graphs: explores
    every strictly-increasing-label path from every source (temporal paths
    cannot repeat a label, so the search terminates), keeps the shortest
    per (s, t), and accumulates pair dependencies exactly.  Exponential in
    the worst case — guard-railed to reject graphs beyond test scale.
    """
    if edges.ts is None:
        raise GraphError("temporal_bc_exact needs time-stamped edges")
    if edges.n > 64 or edges.m > 256:
        raise GraphError(
            "temporal_bc_exact is an exponential reference for tests; "
            f"got n={edges.n}, m={edges.m} (limits: 64, 256)"
        )
    if symmetrize is None:
        symmetrize = not edges.directed
    arcs = edges.symmetrized() if symmetrize else edges
    n = edges.n
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for u, v, t in zip(arcs.src.tolist(), arcs.dst.tolist(), arcs.timestamps().tolist()):
        adj[u].append((v, t))

    scores = np.zeros(n, dtype=np.float64)
    for s in range(n):
        # best[t] = (shortest length, list of interior-vertex tuples)
        best: dict[int, tuple[int, list[tuple[int, ...]]]] = {}
        stack: list[tuple[int, int, tuple[int, ...]]] = [(s, -1, ())]
        while stack:
            v, last, interior = stack.pop()
            for w, lab in adj[v]:
                if lab <= last:
                    continue
                length = len(interior) + 1
                if w != s:
                    cur = best.get(w)
                    if cur is None or length < cur[0]:
                        best[w] = (length, [interior])
                    elif length == cur[0]:
                        cur[1].append(interior)
                # Keep exploring: longer prefixes can still yield shortest
                # paths to other targets.
                stack.append((w, lab, interior + (w,)))
        for t_vtx, (length, interiors) in best.items():
            if t_vtx == s:
                continue
            sigma_st = len(interiors)
            counts: dict[int, int] = {}
            for interior in interiors:
                # interior already excludes both endpoints by construction
                for v in interior:
                    counts[v] = counts.get(v, 0) + 1
            for v, c in counts.items():
                if v != s:
                    scores[v] += c / sigma_st
    return scores
