"""Closeness and stress centrality (paper section 3.4's metric family).

The paper names closeness, stress and betweenness as the well-known
centrality indices; betweenness gets the full treatment in
:mod:`repro.core.betweenness`, and this module completes the family:

* **closeness** — BFS-based, with the Wasserman–Faust component correction
  (the convention networkx uses, which the tests validate against), and the
  same time-stamp filtering hook as every traversal kernel here;
* **stress** — Brandes-style accumulation of *absolute* shortest-path
  counts: stress(v) = Σ_{s≠v≠t} σ_st(v).  The backward pass accumulates
  φ(v) = Σ_{w ∈ succ(v)} (1 + φ(w)) over the shortest-path DAG and adds
  σ_sv · φ(v) per source (validated against exhaustive path enumeration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.core.bfs import bfs
from repro.errors import GraphError
from repro.machine.profile import Phase, WorkProfile
from repro.util.seeding import make_rng

__all__ = ["CentralityResult", "closeness_centrality", "stress_centrality"]


@dataclass(frozen=True)
class CentralityResult:
    """Scores plus traversal statistics for a multi-source centrality run."""

    scores: np.ndarray
    n_sources: int
    edges_scanned: int
    profile: WorkProfile
    meta: dict = field(default_factory=dict)

    def top(self, k: int = 10) -> list[tuple[int, float]]:
        order = np.argsort(self.scores)[::-1][:k]
        return [(int(v), float(self.scores[v])) for v in order]


def _pick_sources(n: int, sources, seed) -> np.ndarray:
    if sources is None:
        return np.arange(n, dtype=np.int64)
    if np.isscalar(sources):
        k = int(sources)
        if not 0 < k <= n:
            raise GraphError(f"source sample size must be in [1, {n}], got {k}")
        rng = make_rng(seed)
        return np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
    src = np.asarray(sources, dtype=np.int64)
    if src.size and (src.min() < 0 or src.max() >= n):
        raise GraphError("source ids out of range")
    return src


def _traversal_profile(name, graph, edges_scanned, levels, n_sources):
    footprint = float(graph.memory_bytes() + 3 * 8 * graph.n)
    phase = Phase(
        name="traversal",
        alu_ops=10.0 * edges_scanned,
        rand_accesses=float(2 * edges_scanned),
        seq_bytes=8.0 * edges_scanned,
        footprint_bytes=footprint,
        barriers=2.0 * levels,
    )
    return WorkProfile(
        name, (phase,),
        meta={"n": graph.n, "n_sources": n_sources, "levels": levels},
    )


def closeness_centrality(
    graph: CSRGraph,
    *,
    sources: np.ndarray | int | None = None,
    seed=None,
    ts_range: tuple[int, int] | None = None,
    name: str = "closeness",
) -> CentralityResult:
    """Closeness centrality of the *source* vertices.

    For each source s with r reachable vertices and distance sum D:
    ``closeness(s) = ((r - 1) / D) * ((r - 1) / (n - 1))`` — the
    Wasserman–Faust improved formula networkx applies by default, exact for
    disconnected graphs.  Unlike the sampled betweenness (scores for all
    vertices from few traversals), closeness needs one traversal *per scored
    vertex*, so sampling scores only the sample.
    """
    n = graph.n
    src_ids = _pick_sources(n, sources, seed)
    scores = np.zeros(n, dtype=np.float64)
    edges_scanned = 0
    levels = 0
    for s in src_ids.tolist():
        res = bfs(graph, s, ts_range=ts_range)
        edges_scanned += res.total_edges_scanned
        levels += res.n_levels
        reached = res.dist >= 0
        r = int(np.count_nonzero(reached))
        if r <= 1 or n <= 1:
            continue
        total = float(res.dist[reached].sum())  # includes dist[s] = 0
        scores[s] = ((r - 1) / total) * ((r - 1) / (n - 1))
    return CentralityResult(
        scores=scores,
        n_sources=int(src_ids.size),
        edges_scanned=edges_scanned,
        profile=_traversal_profile(name, graph, edges_scanned, levels, int(src_ids.size)),
        meta={"kind": "closeness", "ts_range": ts_range},
    )


def stress_centrality(
    graph: CSRGraph,
    *,
    sources: np.ndarray | int | None = None,
    seed=None,
    name: str = "stress",
) -> CentralityResult:
    """Stress centrality: absolute shortest-path counts through each vertex.

    Sum over ordered (s, t) pairs, matching this library's betweenness
    convention.  Sampling sources extrapolates by n / n_sources, as in the
    paper's approximate betweenness.
    """
    n = graph.n
    src_ids = _pick_sources(n, sources, seed)
    offsets, targets = graph.offsets, graph.targets
    scores = np.zeros(n, dtype=np.float64)
    edges_scanned = 0
    total_levels = 0
    for s in src_ids.tolist():
        dist = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        dist[s] = 0
        sigma[s] = 1.0
        frontier = np.array([s], dtype=np.int64)
        level = 0
        level_arcs: list[tuple[np.ndarray, np.ndarray]] = []
        while frontier.size:
            starts = offsets[frontier]
            counts = offsets[frontier + 1] - starts
            total = int(counts.sum())
            edges_scanned += total
            if total == 0:
                break
            base = np.repeat(starts, counts)
            offs = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            v_arr = np.repeat(frontier, counts)
            w_arr = targets[base + offs]
            fresh = w_arr[dist[w_arr] < 0]
            if fresh.size:
                fresh = np.unique(fresh)
                dist[fresh] = level + 1
            on_sp = dist[w_arr] == level + 1
            v_sp, w_sp = v_arr[on_sp], w_arr[on_sp]
            if v_sp.size:
                np.add.at(sigma, w_sp, sigma[v_sp])
                level_arcs.append((v_sp, w_sp))
            frontier = fresh
            level += 1
        total_levels += level
        # phi(v) = sum over DAG arcs (v, w) of (1 + phi(w)): the number of
        # shortest paths from v to every downstream target.  Then
        # sigma_st(v) summed over t is sigma_sv * phi(v).
        phi = np.zeros(n, dtype=np.float64)
        for v_sp, w_sp in reversed(level_arcs):
            np.add.at(phi, v_sp, 1.0 + phi[w_sp])
        contribution = sigma * phi
        contribution[s] = 0.0
        scores += contribution

    if src_ids.size < n:
        scores *= n / src_ids.size
    return CentralityResult(
        scores=scores,
        n_sources=int(src_ids.size),
        edges_scanned=edges_scanned,
        profile=_traversal_profile(name, graph, edges_scanned, total_levels, int(src_ids.size)),
        meta={"kind": "stress"},
    )
