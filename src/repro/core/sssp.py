"""Parallel single-source shortest paths by Δ-stepping.

The paper cites its own parallel SSSP study (Madduri, Bader, Berry & Crobak,
ALENEX 2007 — reference [19]) as part of the kernel suite SNAP builds on,
and names SSSP on arbitrarily weighted graphs as a key open problem in the
conclusions.  This module supplies that kernel: the Meyer–Sanders Δ-stepping
algorithm, the basis of the ALENEX implementation.

Algorithm recap: tentative distances live in buckets of width Δ.  The
smallest non-empty bucket is emptied in *light phases* — relaxing only light
edges (w ≤ Δ), which may re-insert vertices into the same bucket — and once
it stays empty, the settled vertices' *heavy* edges (w > Δ) are relaxed in
one batch.  Each phase relaxes a whole frontier at once (the parallel step),
which is how the implementation here is vectorised and how the work profile
counts barriers.

Validated against ``scipy.sparse.csgraph.dijkstra`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.errors import GraphError, VertexError
from repro.machine.profile import Phase, WorkProfile

__all__ = ["SSSPResult", "delta_stepping"]

_INF = np.inf


@dataclass
class SSSPResult:
    """Distances plus the phase statistics of one Δ-stepping run."""

    source: int
    dist: np.ndarray
    delta: int
    buckets_processed: int
    light_phases: int
    relaxations: int
    edges_scanned: int
    profile: WorkProfile
    meta: dict = field(default_factory=dict)

    @property
    def n_reached(self) -> int:
        return int(np.count_nonzero(np.isfinite(self.dist)))


def _relax(frontier, offsets, targets, weights, mask, dist):
    """Relax ``frontier``'s arcs selected by ``mask``; returns stats.

    Vectorised: gathers all arcs of the frontier, filters by the light/heavy
    mask, applies a concurrent min (``np.minimum.at``), and reports which
    target vertices improved.
    """
    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), 0, 0
    base = np.repeat(starts, counts)
    offs = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    idx = base + offs
    sel = mask[idx]
    idx = idx[sel]
    if idx.size == 0:
        return np.empty(0, dtype=np.int64), total, 0
    srcs = np.repeat(frontier, counts)[sel]
    tgts = targets[idx]
    cand = dist[srcs] + weights[idx]
    improving = cand < dist[tgts]
    tgts = tgts[improving]
    cand = cand[improving]
    if tgts.size == 0:
        return np.empty(0, dtype=np.int64), total, 0
    np.minimum.at(dist, tgts, cand)
    return np.unique(tgts), total, int(tgts.size)


def delta_stepping(
    graph: CSRGraph,
    source: int,
    *,
    delta: int | None = None,
    name: str = "delta-stepping",
) -> SSSPResult:
    """Shortest path distances from ``source`` under positive edge weights.

    ``delta`` defaults to the mean edge weight (a standard heuristic: it
    balances light-phase re-relaxations against bucket count).  Unweighted
    graphs (no ``w`` column) degenerate to Δ = 1, where the algorithm is
    exactly level-synchronous BFS.
    """
    if not 0 <= source < graph.n:
        raise VertexError(f"source {source} out of range [0, {graph.n})")
    weights = graph.weights()
    if delta is None:
        delta = max(1, int(round(float(weights.mean()))) if weights.size else 1)
    if delta <= 0:
        raise GraphError(f"delta must be positive, got {delta}")

    offsets, targets = graph.offsets, graph.targets
    light = weights <= delta
    heavy = ~light
    dist = np.full(graph.n, _INF, dtype=np.float64)
    dist[source] = 0.0

    buckets_processed = 0
    light_phases = 0
    relaxations = 0
    edges_scanned = 0
    phases: list[Phase] = []
    footprint = float(graph.memory_bytes() + dist.nbytes)

    def record_phase(kind: str, scanned: int, frontier_size: int) -> None:
        phases.append(
            Phase(
                name=f"{kind}{len(phases)}",
                alu_ops=10.0 * scanned + 6.0 * frontier_size,
                rand_accesses=float(scanned + frontier_size),
                seq_bytes=16.0 * scanned,  # target + weight columns
                footprint_bytes=footprint,
                atomics=float(scanned),  # concurrent-min relaxations
                barriers=2.0,
            )
        )

    # Lazy bucket structure: bucket index derived from dist on demand.
    current = 0
    settled_global = np.zeros(graph.n, dtype=bool)
    max_bucket_guard = 4 * graph.n + 16  # safety valve (positive weights)
    while buckets_processed < max_bucket_guard:
        finite = np.isfinite(dist) & ~settled_global
        if not np.any(finite):
            break
        bucket_of = np.full(graph.n, -1, dtype=np.int64)
        bucket_of[finite] = (dist[finite] // delta).astype(np.int64)
        active = bucket_of[finite]
        current = int(active.min())
        buckets_processed += 1

        settled_this_bucket: list[np.ndarray] = []
        while True:
            candidates = np.nonzero(np.isfinite(dist) & ~settled_global)[0]
            if candidates.size == 0:
                break
            in_bucket = (dist[candidates] // delta).astype(np.int64) == current
            frontier = candidates[in_bucket]
            if frontier.size == 0:
                break
            light_phases += 1
            settled_global[frontier] = True
            settled_this_bucket.append(frontier)
            improved, scanned, relaxed = _relax(
                frontier, offsets, targets, weights, light, dist
            )
            edges_scanned += scanned
            relaxations += relaxed
            record_phase("light", scanned, int(frontier.size))
            # Vertices pulled (back) into the current bucket re-enter the
            # loop; anything improved into a *later* bucket waits.  A vertex
            # already settled in this bucket whose distance improved must be
            # re-processed: un-settle it.
            if improved.size:
                back = improved[
                    (dist[improved] // delta).astype(np.int64) == current
                ]
                settled_global[back] = False

        if settled_this_bucket:
            settled = np.unique(np.concatenate(settled_this_bucket))
            settled_global[settled] = True
            improved, scanned, relaxed = _relax(
                settled, offsets, targets, weights, heavy, dist
            )
            edges_scanned += scanned
            relaxations += relaxed
            record_phase("heavy", scanned, int(settled.size))

    if not phases:
        phases.append(Phase("empty", footprint_bytes=footprint))
    profile = WorkProfile(
        name,
        tuple(phases),
        meta={
            "n": graph.n,
            "arcs": graph.n_arcs,
            "source": source,
            "delta": delta,
            "buckets": buckets_processed,
        },
    )
    return SSSPResult(
        source=source,
        dist=dist,
        delta=delta,
        buckets_processed=buckets_processed,
        light_phases=light_phases,
        relaxations=relaxations,
        edges_scanned=edges_scanned,
        profile=profile,
    )
