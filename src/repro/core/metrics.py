"""Small-world network statistics (paper section 1's framing).

The paper motivates everything with the structural features of real-world
networks: "a low graph diameter, unbalanced degree distributions,
self-similarity, and the presence of dense sub-graphs".  This module
provides the measurements behind those claims — the standard complex-network
toolkit a SNAP-like framework ships:

* degree-distribution summary (max/mean/heavy-tail fit);
* clustering coefficients (exact per vertex, or sampled);
* effective diameter / eccentricity estimates via multi-source BFS;
* giant-component share.

All validated against networkx in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adjacency.csr import CSRGraph
from repro.core.bfs import bfs
from repro.core.components import connected_components
from repro.errors import GraphError
from repro.util.seeding import make_rng

__all__ = [
    "DegreeStats",
    "degree_stats",
    "clustering_coefficient",
    "average_clustering",
    "effective_diameter",
    "giant_component_fraction",
    "triangle_counts",
    "total_triangles",
    "core_numbers",
]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution."""

    n: int
    n_arcs: int
    min: int
    max: int
    mean: float
    median: float
    #: Fraction of arcs incident to the top 1% of vertices by degree —
    #: the "unbalanced degree distribution" in one number.
    top1pct_arc_share: float
    #: Least-squares slope of log-count vs log-degree (the power-law
    #: exponent estimate; meaningful for heavy-tailed inputs only).
    loglog_slope: float
    meta: dict = field(default_factory=dict)


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Degree-distribution summary of a CSR snapshot."""
    deg = graph.degrees()
    if graph.n == 0:
        return DegreeStats(0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0)
    top_k = max(1, graph.n // 100)
    top = np.sort(deg)[::-1][:top_k]
    share = float(top.sum()) / max(1, int(deg.sum()))
    # log-log fit over the positive-degree histogram
    pos = deg[deg > 0]
    slope = 0.0
    if pos.size:
        values, counts = np.unique(pos, return_counts=True)
        if values.size >= 3:
            slope = float(np.polyfit(np.log(values), np.log(counts), 1)[0])
    return DegreeStats(
        n=graph.n,
        n_arcs=graph.n_arcs,
        min=int(deg.min()),
        max=int(deg.max()),
        mean=float(deg.mean()),
        median=float(np.median(deg)),
        top1pct_arc_share=share,
        loglog_slope=slope,
    )


def clustering_coefficient(graph: CSRGraph, vertices=None) -> np.ndarray:
    """Local clustering coefficient per vertex (0 for degree < 2).

    Computed over the *simple* graph (duplicate arcs and self-loops
    ignored), matching the standard definition and networkx.  ``vertices``
    restricts the computation (sampling); default all.
    """
    if vertices is None:
        vertices = np.arange(graph.n, dtype=np.int64)
    else:
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (vertices.min() < 0 or vertices.max() >= graph.n):
            raise GraphError("vertex ids out of range")
    # Precompute simple neighbour sets once (as Python sets for O(1) probes).
    neighbor_sets: dict[int, set] = {}

    def nbr_set(u: int) -> set:
        s = neighbor_sets.get(u)
        if s is None:
            arr = graph.neighbors(u)
            s = set(arr.tolist())
            s.discard(u)
            neighbor_sets[u] = s
        return s

    out = np.zeros(vertices.size, dtype=np.float64)
    for i, u in enumerate(vertices.tolist()):
        nu = nbr_set(u)
        k = len(nu)
        if k < 2:
            continue
        links = 0
        for v in nu:
            nv = nbr_set(v)
            links += len(nu & nv)
        out[i] = links / (k * (k - 1))  # each triangle edge counted once per side
    return out


def average_clustering(
    graph: CSRGraph,
    *,
    samples: int | None = None,
    seed=None,
) -> float:
    """Mean local clustering, optionally over a uniform vertex sample."""
    if samples is None:
        vertices = None
    else:
        if not 0 < samples <= graph.n:
            raise GraphError(f"sample size must be in [1, {graph.n}], got {samples}")
        rng = make_rng(seed)
        vertices = rng.choice(graph.n, size=samples, replace=False)
    vals = clustering_coefficient(graph, vertices)
    return float(vals.mean()) if vals.size else 0.0


def effective_diameter(
    graph: CSRGraph,
    *,
    samples: int = 16,
    percentile: float = 90.0,
    seed=None,
) -> tuple[float, int]:
    """(effective diameter, max observed eccentricity) from sampled BFS.

    Effective diameter: the given percentile of finite pairwise distances
    observed from the sampled sources — the standard small-world statistic
    ("90% of pairs within d hops").  The second value is the largest
    eccentricity seen, a lower bound on the true diameter.
    """
    if graph.n == 0:
        return 0.0, 0
    if not 0 < percentile <= 100:
        raise GraphError(f"percentile must be in (0, 100], got {percentile}")
    rng = make_rng(seed)
    k = min(samples, graph.n)
    sources = rng.choice(graph.n, size=k, replace=False)
    dists = []
    max_ecc = 0
    for s in sources.tolist():
        res = bfs(graph, s)
        finite = res.dist[res.dist >= 0]
        if finite.size > 1:
            dists.append(finite[finite > 0])
            max_ecc = max(max_ecc, int(finite.max()))
    if not dists:
        return 0.0, 0
    all_d = np.concatenate(dists)
    return float(np.percentile(all_d, percentile)), max_ecc


def giant_component_fraction(graph: CSRGraph) -> float:
    """Share of vertices in the largest connected component."""
    if graph.n == 0:
        return 0.0
    comps = connected_components(graph)
    return comps.largest()[1] / graph.n


def triangle_counts(graph: CSRGraph) -> np.ndarray:
    """Triangles through each vertex (simple-graph semantics).

    The "presence of dense sub-graphs" measurement: per-vertex triangle
    participation via sorted-neighbour-set intersection, the standard
    node-iterator algorithm.  Duplicate arcs and self-loops are ignored.
    """
    # Simple sorted neighbour arrays, cached once.
    sets: list[np.ndarray] = []
    for u in range(graph.n):
        nbr = np.unique(graph.neighbors(u))
        sets.append(nbr[nbr != u])
    out = np.zeros(graph.n, dtype=np.int64)
    for u in range(graph.n):
        nu = sets[u]
        if nu.size < 2:
            continue
        links = 0
        for v in nu.tolist():
            links += int(np.intersect1d(nu, sets[v], assume_unique=True).size)
        # Every triangle {u, v, w} contributes the pair (v, w) twice to the
        # sum (once from v's side, once from w's).
        out[u] = links // 2
    return out


def total_triangles(graph: CSRGraph) -> int:
    """Total triangle count of the simple graph."""
    return int(triangle_counts(graph).sum()) // 3


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """k-core decomposition: the largest k such that each vertex survives
    in the subgraph of minimum degree k (Matula–Beck peeling).

    Simple-graph semantics; validated against ``networkx.core_number``.
    """
    # Build simple-degree view once.
    simple: list[np.ndarray] = []
    for u in range(graph.n):
        nbr = np.unique(graph.neighbors(u))
        simple.append(nbr[nbr != u])
    deg = np.array([s.size for s in simple], dtype=np.int64)
    core = deg.copy()
    removed = np.zeros(graph.n, dtype=bool)
    # Lazy-deletion min-heap peeling; adequate for analysis scale.
    import heapq

    heap = [(int(deg[v]), v) for v in range(graph.n)]
    heapq.heapify(heap)
    k = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != deg[v]:
            continue  # stale entry
        k = max(k, d)
        core[v] = k
        removed[v] = True
        for w in simple[v].tolist():
            if not removed[w]:
                deg[w] -= 1
                heapq.heappush(heap, (int(deg[w]), w))
    return core
