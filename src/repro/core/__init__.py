"""Parallel dynamic-graph analysis kernels (paper section 3).

* :mod:`repro.core.bfs` — level-synchronous breadth-first search with
  time-stamp filtering (section 3.3).
* :mod:`repro.core.components` — Shiloach–Vishkin-style connected components.
* :mod:`repro.core.linkcut` — the parent-pointer link-cut forest and its
  parallel construction (section 3.1).
* :mod:`repro.core.connectivity` — batched connectivity-query processing.
* :mod:`repro.core.induced` — temporal induced subgraphs (section 3.2).
* :mod:`repro.core.stconn` — st-connectivity via bidirectional BFS.
* :mod:`repro.core.betweenness` — temporal betweenness centrality
  (section 3.4).
* :mod:`repro.core.update_engine` — the driver that feeds update streams to
  adjacency representations and assembles their work profiles.

Extensions beyond the paper's evaluated kernels (flagged in DESIGN.md):

* :mod:`repro.core.dynamic_connectivity` — the representation and the
  link-cut forest kept in sync under arbitrary update streams.
* :mod:`repro.core.sssp` — Δ-stepping single-source shortest paths (the
  paper's reference [19] and stated future-work problem).
* :mod:`repro.core.closeness` — closeness and stress centrality, completing
  the metric family section 3.4 names.
* :mod:`repro.core.temporal_reach` — earliest-arrival temporal reachability
  under the Kempe et al. semantics the paper adopts.
"""

from repro.core.bfs import BFSResult, bfs, bfs_profile
from repro.core.components import ComponentsResult, connected_components
from repro.core.linkcut import LinkCutForest
from repro.core.connectivity import ConnectivityIndex, QueryResult
from repro.core.induced import InducedResult, induced_subgraph
from repro.core.stconn import st_connectivity, STConnResult
from repro.core.betweenness import (
    BetweennessResult,
    EdgeBetweennessResult,
    edge_betweenness,
    temporal_betweenness,
    temporal_bc_exact,
)
from repro.core.update_engine import UpdateResult, apply_stream, construct
from repro.core.dynamic_connectivity import DynamicConnectivity, MaintenanceStats
from repro.core.sssp import SSSPResult, delta_stepping
from repro.core.closeness import (
    CentralityResult,
    closeness_centrality,
    stress_centrality,
)
from repro.core.temporal_reach import (
    TemporalReachResult,
    earliest_arrival,
    temporal_closeness,
    temporal_reachable_set,
)
from repro.core.metrics import (
    DegreeStats,
    average_clustering,
    clustering_coefficient,
    core_numbers,
    degree_stats,
    effective_diameter,
    giant_component_fraction,
    total_triangles,
    triangle_counts,
)
from repro.core.community import (
    CommunityResult,
    label_propagation_communities,
    modularity,
)
from repro.core.pagerank import PageRankResult, pagerank
from repro.core.weighted_bc import WeightedBCResult, weighted_betweenness
from repro.core.window import SlidingWindowGraph, WindowBatch
from repro.core.evolution import EvolutionTimeline, WindowStats, evolution_timeline

__all__ = [
    "EdgeBetweennessResult",
    "edge_betweenness",
    "temporal_closeness",
    "CommunityResult",
    "label_propagation_communities",
    "modularity",
    "PageRankResult",
    "pagerank",
    "WeightedBCResult",
    "weighted_betweenness",
    "SlidingWindowGraph",
    "WindowBatch",
    "EvolutionTimeline",
    "WindowStats",
    "evolution_timeline",
    "core_numbers",
    "total_triangles",
    "triangle_counts",
    "DegreeStats",
    "average_clustering",
    "clustering_coefficient",
    "degree_stats",
    "effective_diameter",
    "giant_component_fraction",
    "DynamicConnectivity",
    "MaintenanceStats",
    "SSSPResult",
    "delta_stepping",
    "CentralityResult",
    "closeness_centrality",
    "stress_centrality",
    "TemporalReachResult",
    "earliest_arrival",
    "temporal_reachable_set",
    "BFSResult",
    "bfs",
    "bfs_profile",
    "ComponentsResult",
    "connected_components",
    "LinkCutForest",
    "ConnectivityIndex",
    "QueryResult",
    "InducedResult",
    "induced_subgraph",
    "st_connectivity",
    "STConnResult",
    "BetweennessResult",
    "temporal_betweenness",
    "temporal_bc_exact",
    "UpdateResult",
    "apply_stream",
    "construct",
]
