"""Link-cut forest with parent pointers (paper section 3.1).

The paper observes that for small-world networks the full self-adjusting
Sleator–Tarjan machinery is unnecessary: *"a straightforward implementation
of the link-cut tree would be to store with each vertex a pointer to its
parent. This supports the link, cut, and parent in constant time, but the
findroot operation would require a worst-case traversal of O(n) vertices for
an arbitrary tree. However ... for low-diameter graphs such as small-world
networks, this operation just requires a small number of hops, as the height
of the tree is small."*

:class:`LinkCutForest` is that structure: an int64 parent array, O(1)
link / cut / parent, findroot by pointer chasing, and connectivity queries
as two findroots.  Construction from a graph follows the paper: a lock-free
level-synchronous parallel BFS produces the spanning tree of each component
(one multi-rooted traversal covers the whole forest), with connected
components supplying the roots.

Beyond the paper's operations, :meth:`add_edge` (reroot + link, supporting
arbitrary edge insertions) and :meth:`cut_with_replacement` (spanning-forest
maintenance under deletions, searching the smaller side for a replacement
edge) round the structure out into a usable dynamic-connectivity index; both
are flagged as extensions in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.adjacency.csr import CSRGraph
from repro.core.components import ComponentsResult, connected_components
from repro.errors import GraphError, NotInForestError, VertexError
from repro.machine.profile import ProfileBuilder, WorkProfile

__all__ = ["LinkCutForest", "ConstructionRecord"]

_NIL = -1


@dataclass(frozen=True)
class ConstructionRecord:
    """What building the forest cost (feeds Figure 7's profile)."""

    profile: WorkProfile
    components: ComponentsResult
    levels: int
    max_depth: int


class LinkCutForest:
    """Rooted spanning forest with parent pointers.

    Vertices are 0..n-1; ``parent[v] == -1`` marks a root.  Every structural
    operation keeps :attr:`version` monotonically increasing so dependent
    indexes (query engines) can detect staleness.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise VertexError(f"vertex count must be >= 0, got {n}")
        self.n = int(n)
        self.parent = np.full(n, _NIL, dtype=np.int64)
        self.version = 0
        #: findroot pointer hops since the last counter reset (profiles).
        self.hops = 0
        #: Kernel-tier override for :meth:`findroot_batch`; None defers to
        #: :func:`repro.kernels.resolve_tier` (env var, then auto-probe).
        self.kernel_tier: str | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> tuple["LinkCutForest", ConstructionRecord]:
        """Build a spanning forest of ``graph`` (paper's parallel recipe).

        Connected components determine one root per component (the paper
        runs connected components to construct a forest of link-cut trees);
        a single multi-source level-synchronous BFS from all roots then
        assigns parent pointers — each BFS level is a parallel phase.
        """
        comps = connected_components(graph)
        forest = cls(graph.n)
        offsets, targets = graph.offsets, graph.targets
        dist = np.full(graph.n, -1, dtype=np.int64)
        roots = comps.roots()
        dist[roots] = 0
        frontier = roots
        builder = ProfileBuilder("linkcut-construction", n=graph.n, arcs=graph.n_arcs)
        builder.extend(comps.profile(graph).phases)
        footprint = float(graph.memory_bytes() + 2 * 8 * graph.n)
        level = 0
        while frontier.size:
            starts = offsets[frontier]
            counts = offsets[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            reps = np.repeat(frontier, counts)
            base = np.repeat(starts, counts)
            offs = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            nbrs = targets[base + offs]
            unvisited = dist[nbrs] < 0
            nbrs = nbrs[unvisited]
            reps = reps[unvisited]
            builder.phase(
                f"bfs-level{level}",
                alu_ops=8.0 * total + 6.0 * frontier.size,
                rand_accesses=float(total + frontier.size),
                seq_bytes=8.0 * total,
                footprint_bytes=footprint,
                barriers=2.0,
            )
            if nbrs.size == 0:
                break
            uniq, first = np.unique(nbrs, return_index=True)
            level += 1
            dist[uniq] = level
            forest.parent[uniq] = reps[first]
            frontier = uniq
        forest.version += 1
        max_depth = int(dist.max()) if graph.n else 0
        record = ConstructionRecord(
            profile=builder.build(),
            components=comps,
            levels=level,
            max_depth=max_depth,
        )
        return forest, record

    # ------------------------------------------------------------------ #
    # the paper's basic structural operations
    # ------------------------------------------------------------------ #

    def parent_of(self, v: int) -> int:
        """``parent(v)`` — -1 for roots (O(1))."""
        self._check(v)
        return int(self.parent[v])

    def is_root(self, v: int) -> bool:
        self._check(v)
        return self.parent[v] == _NIL

    def link(self, v: int, w: int) -> None:
        """``link(v, w)``: create an arc from root ``v`` to vertex ``w``.

        Per Sleator–Tarjan, ``v`` must currently be a root, and linking must
        not create a cycle (i.e. ``w`` must lie in a different tree).
        """
        self._check(v)
        self._check(w)
        if self.parent[v] != _NIL:
            raise GraphError(f"link source {v} is not a root")
        if self.findroot(w) == v:
            raise GraphError(f"link({v}, {w}) would create a cycle")
        self.parent[v] = w
        self.version += 1

    def cut(self, v: int) -> int:
        """``cut(v)``: delete the arc from ``v`` to its parent.

        Returns the former parent; raises if ``v`` was already a root.
        """
        self._check(v)
        p = int(self.parent[v])
        if p == _NIL:
            raise NotInForestError(f"cut({v}): vertex is a root")
        self.parent[v] = _NIL
        self.version += 1
        return p

    def findroot(self, v: int) -> int:
        """Chase parent pointers to the root; O(depth) ≈ O(diameter)."""
        self._check(v)
        parent = self.parent
        hops = 0
        while parent[v] != _NIL:
            v = int(parent[v])
            hops += 1
        self.hops += hops
        return v

    def connected(self, u: int, v: int) -> bool:
        """Connectivity query: two findroot operations (paper section 3.1)."""
        return self.findroot(u) == self.findroot(v)

    # ------------------------------------------------------------------ #
    # vectorised batch operations
    # ------------------------------------------------------------------ #

    def findroot_batch(self, vertices) -> np.ndarray:
        """Roots of many vertices at once.

        Parallel pointer chasing: all chains advance one hop per vector
        pass, so the pass count equals the maximum depth — the simulated
        machine runs the queries concurrently the same way.  The hop total
        (sum of query depths) is identical across kernel tiers: the
        ``compiled`` tier chases each query to its root in one fused loop
        (:func:`repro.kernels.loops.findroot_batch`), the ``scalar`` tier
        loops :meth:`findroot`, and both account the same hops.
        """
        v = np.asarray(vertices, dtype=np.int64).copy()
        if v.size and (v.min() < 0 or v.max() >= self.n):
            raise VertexError("vertex id out of range in findroot_batch")
        tier = kernels.resolve_tier(self)
        if tier == "compiled":
            self.hops += int(kernels.get("findroot_batch")(self.parent, v))
            return v
        if tier == "scalar":
            for i in range(v.size):
                v[i] = self.findroot(int(v[i]))
            return v
        parent = self.parent
        active = parent[v] != _NIL
        while np.any(active):
            v[active] = parent[v[active]]
            self.hops += int(np.count_nonzero(active))
            active = parent[v] != _NIL
        return v

    def connected_batch(self, us, vs) -> np.ndarray:
        """Vectorised connectivity queries (bool array)."""
        return self.findroot_batch(us) == self.findroot_batch(vs)

    def depths(self) -> np.ndarray:
        """Depth of every vertex (roots at depth 0).

        All chains advance one hop per vector pass; pass count equals the
        maximum tree depth, mirroring how the simulated machine would chase
        the pointers concurrently.
        """
        depth = np.zeros(self.n, dtype=np.int64)
        cur = self.parent.copy()
        active = cur != _NIL
        while np.any(active):
            depth[active] += 1
            cur[active] = self.parent[cur[active]]
            active = cur != _NIL
        return depth

    # ------------------------------------------------------------------ #
    # extensions: general edge insertion / deletion on the forest
    # ------------------------------------------------------------------ #

    def reroot(self, v: int) -> None:
        """Make ``v`` the root of its tree by reversing the root path."""
        self._check(v)
        prev = _NIL
        cur = v
        while cur != _NIL:
            nxt = int(self.parent[cur])
            self.parent[cur] = prev
            self.hops += 1
            prev = cur
            cur = nxt
        self.version += 1

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge (u, v) into the spanning forest if it joins two trees.

        Returns True when the forest changed (tree edge), False when u and v
        were already connected (non-tree edge — a connectivity index keeps
        it in its adjacency structure only).
        """
        self._check(u)
        self._check(v)
        if self.connected(u, v):
            return False
        self.reroot(v)
        self.link(v, u)
        return True

    def cut_with_replacement(self, child: int, rep) -> int | None:
        """Cut the tree edge above ``child`` and search for a replacement.

        ``rep`` is any adjacency source with ``neighbors(v)`` (a dynamic
        representation or CSR snapshot) holding the *graph* edges.  After
        the cut the component splits in two; the **smaller** side is swept
        for an edge crossing back (one root scan + one pass over the smaller
        side's adjacency, the classic bound).  If a crossing edge (x, y)
        with x inside is found, the forest is relinked through it and the
        far endpoint y is returned; otherwise None and the split stands.
        """
        old_parent = self.cut(child)
        roots = self.findroot_batch(np.arange(self.n, dtype=np.int64))
        child_root = roots[child]
        parent_root = roots[old_parent]
        side_child = np.nonzero(roots == child_root)[0]
        side_parent = np.nonzero(roots == parent_root)[0]
        sweep = side_child if side_child.size <= side_parent.size else side_parent
        inside = np.zeros(self.n, dtype=bool)
        inside[sweep] = True
        for x in sweep.tolist():
            nbrs = rep.neighbors(x)
            outside = nbrs[~inside[nbrs]]
            for y in outside.tolist():
                if x == child and y == old_parent:
                    continue  # the edge being deleted may still be visible
                if x == old_parent and y == child:
                    continue
                self.reroot(x)
                self.link(x, int(y))
                return int(y)
        return None

    def tree_vertices(self, v: int) -> np.ndarray:
        """All vertices in ``v``'s tree (vectorised root comparison)."""
        root = self.findroot(v)
        return np.nonzero(self.findroot_batch(np.arange(self.n)) == root)[0]

    # ------------------------------------------------------------------ #

    def roots(self) -> np.ndarray:
        """All current roots (one per tree)."""
        return np.nonzero(self.parent == _NIL)[0]

    def n_trees(self) -> int:
        return int(np.count_nonzero(self.parent == _NIL))

    def memory_bytes(self) -> int:
        return int(self.parent.nbytes)

    def validate(self) -> None:
        """Check the forest invariant: no cycles, all parents in range.

        O(n · depth); testing/debugging aid.
        """
        in_range = (self.parent >= _NIL) & (self.parent < self.n)
        if not np.all(in_range):
            raise GraphError("parent pointers out of range")
        # Every chain must terminate: depths() diverges on a cycle, so walk
        # with an explicit bound instead.
        v = np.arange(self.n, dtype=np.int64)
        for _ in range(self.n + 1):
            nxt = np.where(self.parent[v] != _NIL, self.parent[v], v)
            if np.array_equal(nxt, v):
                return
            v = nxt
        raise GraphError("cycle detected in parent pointers")

    def _check(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise VertexError(f"vertex id {v} out of range [0, {self.n})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinkCutForest(n={self.n}, trees={self.n_trees()})"
