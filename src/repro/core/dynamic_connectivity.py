"""Fully dynamic connectivity (paper section 3.1's end goal).

The paper builds the two halves of a dynamic-connectivity index — a dynamic
adjacency representation for the graph and a link-cut spanning forest for
the queries — and evaluates them separately (construction in Figure 7,
queries in Figure 8).  :class:`DynamicConnectivity` closes the loop, keeping
both structures in sync under arbitrary edge insertions and deletions:

* an inserted edge joins two trees via reroot+link when it connects them,
  and is otherwise a non-tree edge living only in the adjacency structure;
* a deleted tree edge triggers a replacement-edge search over the smaller
  side of the cut (the surviving adjacency structure supplies candidate
  edges), relinking if one exists;
* queries are the paper's two-findroot connectivity tests, batched and
  vectorised.

This is the straightforward O(smaller-side) replacement search, not
poly-log Holm–de Lichtenberg–Thorup — matching the paper's engineering
stance that small-world diameters make simple structures fast.  The
structure tolerates parallel edges (a deleted tree edge with a surviving
parallel copy keeps the link).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adjacency.base import AdjacencyRepresentation
from repro.adjacency.registry import make_representation
from repro.core.linkcut import LinkCutForest
from repro.errors import GraphError
from repro.generators.streams import UpdateStream
from repro.machine.profile import Phase, WorkProfile

__all__ = ["DynamicConnectivity", "MaintenanceStats"]


@dataclass
class MaintenanceStats:
    """Work counters for the forest-maintenance side of the index."""

    inserts: int = 0
    deletes: int = 0
    delete_misses: int = 0
    tree_links: int = 0
    tree_cuts: int = 0
    replacements_found: int = 0
    replacement_scan_arcs: int = 0
    parallel_edge_keeps: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class DynamicConnectivity:
    """A graph under updates with always-current connectivity queries.

    Parameters
    ----------
    n:
        Number of vertices.
    representation:
        Adjacency structure holding the graph edges (registry name or
        instance); the paper's ``hybrid`` by default, since maintenance
        mixes insertions with deletions.
    """

    def __init__(
        self,
        n: int,
        representation: str | AdjacencyRepresentation = "hybrid",
        **rep_kwargs,
    ) -> None:
        if isinstance(representation, AdjacencyRepresentation):
            if representation.n != n:
                raise GraphError("representation vertex count mismatch")
            self.rep = representation
        else:
            self.rep = make_representation(representation, n, **rep_kwargs)
        self.n = int(n)
        self.forest = LinkCutForest(n)
        self.stats = MaintenanceStats()

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int, ts: int = 0) -> bool:
        """Insert edge (u, v); returns True if connectivity changed."""
        self.rep.insert(u, v, ts)
        if u != v:
            self.rep.insert(v, u, ts)
        self.stats.inserts += 1
        if u == v:
            return False
        changed = self.forest.add_edge(u, v)
        if changed:
            self.stats.tree_links += 1
        return changed

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete one copy of edge (u, v); returns True if it existed.

        Maintains the spanning forest: a deleted tree edge either survives
        through a parallel copy, is replaced by another edge crossing the
        cut, or splits the component.
        """
        found = self.rep.delete(u, v)
        if not found:
            self.stats.delete_misses += 1
            return False
        if u != v:
            self.rep.delete(v, u)
        self.stats.deletes += 1
        if u == v:
            return True

        f = self.forest
        if f.parent_of(u) == v:
            child = u
        elif f.parent_of(v) == u:
            child = v
        else:
            return True  # non-tree edge: forest untouched
        if self.rep.has_arc(u, v):
            # A parallel copy of the tree edge survives; the link stands.
            self.stats.parallel_edge_keeps += 1
            return True
        self.stats.tree_cuts += 1
        hops_before = f.hops
        replacement = f.cut_with_replacement(child, self.rep)
        # The replacement search's dominant cost is pointer/adjacency work,
        # measured through the forest's hop counter plus the arcs the sweep
        # touched (approximated by the smaller side's adjacency; the hop
        # counter captures the root scan exactly).
        self.stats.replacement_scan_arcs += f.hops - hops_before
        if replacement is not None:
            self.stats.replacements_found += 1
        return True

    def apply(self, stream: UpdateStream) -> int:
        """Apply a whole update stream; returns failed-delete count."""
        if stream.n != self.n:
            raise GraphError("stream vertex count mismatch")
        misses = 0
        for o, u, v, t in zip(
            stream.op.tolist(), stream.src.tolist(), stream.dst.tolist(),
            stream.ts.tolist(),
        ):
            if o == 1:
                self.insert_edge(u, v, t)
            elif not self.delete_edge(u, v):
                misses += 1
        return misses

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def connected(self, u: int, v: int) -> bool:
        """Two findroots, always current (paper section 3.1)."""
        return self.forest.connected(u, v)

    def connected_batch(self, us, vs) -> np.ndarray:
        return self.forest.connected_batch(us, vs)

    def n_components(self) -> int:
        """Trees in the forest minus nothing — isolated vertices count."""
        return self.forest.n_trees()

    @property
    def n_edges(self) -> int:
        """Live undirected edges (exact for loop-free graphs).

        Self-loops are stored as single arcs, so with ``k`` live loops the
        true edge count is ``(arcs + k) // 2``; loop-free streams (the
        paper's workloads after cleaning) make this exact.
        """
        return self.rep.n_arcs // 2

    # ------------------------------------------------------------------ #
    # profiles and validation
    # ------------------------------------------------------------------ #

    def maintenance_phase(self, name: str = "forest-maintenance") -> Phase:
        """Work profile of the forest side of the updates.

        Links and cuts are O(depth) reroots plus O(1) pointer writes; the
        dominant term is the replacement scan, one dependent access per
        candidate arc examined.
        """
        s = self.stats
        return Phase(
            name=name,
            alu_ops=20.0 * (s.tree_links + s.tree_cuts) + 4.0 * s.replacement_scan_arcs,
            rand_accesses=float(
                2 * (s.tree_links + s.tree_cuts) + s.replacement_scan_arcs
            ),
            footprint_bytes=float(self.forest.memory_bytes() + self.rep.memory_bytes()),
            # Forest surgery serialises per affected tree: structural writes
            # to one tree cannot proceed concurrently with its queries.
            locks=float(s.tree_links + s.tree_cuts),
            lock_hold_cycles=200.0,
        )

    def profile(self, name: str = "dynamic-connectivity") -> WorkProfile:
        """Combined adjacency + forest maintenance profile."""
        return WorkProfile(
            name,
            (self.rep.phase(f"{name}/adjacency"), self.maintenance_phase(f"{name}/forest")),
            meta={"n": self.n, "edges": self.rep.n_arcs // 2},
        )

    def validate(self) -> None:
        """Check the invariant: forest connectivity == graph connectivity.

        O(n + m) — testing aid.  Raises :class:`GraphError` on divergence.
        """
        from repro.adjacency.csr import csr_from_representation
        from repro.core.components import connected_components

        self.forest.validate()
        comps = connected_components(csr_from_representation(self.rep))
        roots = self.forest.findroot_batch(np.arange(self.n))
        # Two vertices must share a component iff they share a root:
        # the root -> component-label map must be a bijection.
        by_root: dict[int, int] = {}
        for v in range(self.n):
            r = int(roots[v])
            lbl = int(comps.labels[v])
            if r in by_root:
                if by_root[r] != lbl:
                    raise GraphError(
                        f"forest tree {r} spans components {by_root[r]} and {lbl}"
                    )
            else:
                by_root[r] = lbl
        if len(by_root) != comps.n_components:
            raise GraphError(
                f"forest has {len(by_root)} trees but the graph has "
                f"{comps.n_components} components"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicConnectivity(n={self.n}, edges={self.rep.n_arcs // 2}, "
            f"components={self.n_components()})"
        )
