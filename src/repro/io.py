"""Graph persistence: numpy archives and text edge lists.

A complex-network framework needs to get data in and out; this module keeps
the formats deliberately boring:

* **`.npz`** — the fast native format: the :class:`~repro.edgelist.EdgeList`
  arrays plus metadata, via :func:`numpy.savez_compressed`;
* **text edge lists** — the lingua franca of graph datasets: one edge per
  line, whitespace-separated ``src dst [ts [w]]`` columns, ``#`` comments,
  matching what SNAP-style tools exchange.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.edgelist import EdgeList
from repro.errors import GraphError

__all__ = ["save_npz", "load_npz", "write_edgelist", "read_edgelist"]


def save_npz(path, graph: EdgeList) -> None:
    """Save an edge list to a compressed numpy archive."""
    path = Path(path)
    arrays = {
        "n": np.asarray(graph.n, dtype=np.int64),
        "src": graph.src,
        "dst": graph.dst,
        "directed": np.asarray(graph.directed),
        "meta": np.frombuffer(
            json.dumps(graph.meta, default=str).encode("utf-8"), dtype=np.uint8
        ),
    }
    if graph.ts is not None:
        arrays["ts"] = graph.ts
    if graph.w is not None:
        arrays["w"] = graph.w
    np.savez_compressed(path, **arrays)


def load_npz(path) -> EdgeList:
    """Load an edge list saved by :func:`save_npz`."""
    path = Path(path)
    with np.load(path) as z:
        meta = {}
        if "meta" in z:
            try:
                meta = json.loads(bytes(z["meta"]).decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise GraphError(f"{path}: corrupt metadata block: {exc}") from exc
        return EdgeList(
            int(z["n"]),
            z["src"],
            z["dst"],
            ts=z["ts"] if "ts" in z else None,
            w=z["w"] if "w" in z else None,
            directed=bool(z["directed"]),
            meta=meta,
        )


def write_edgelist(path, graph: EdgeList, *, header: bool = True) -> None:
    """Write a whitespace-separated text edge list.

    Columns: ``src dst``, plus ``ts`` when present, plus ``w`` when present.
    """
    path = Path(path)
    cols = [graph.src, graph.dst]
    names = ["src", "dst"]
    if graph.ts is not None:
        cols.append(graph.ts)
        names.append("ts")
    if graph.w is not None:
        cols.append(graph.w)
        names.append("w")
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# repro edge list: n={graph.n} m={graph.m} "
                     f"directed={int(graph.directed)} columns={','.join(names)}\n")
        for row in zip(*(c.tolist() for c in cols)):
            fh.write(" ".join(str(x) for x in row) + "\n")


def read_edgelist(
    path,
    *,
    n: int | None = None,
    directed: bool = False,
    has_ts: bool | None = None,
    has_w: bool | None = None,
) -> EdgeList:
    """Read a whitespace-separated text edge list.

    Column layout is inferred from the first data line when ``has_ts`` /
    ``has_w`` are not given: 2 columns = endpoints only, 3 = +ts, 4 = +ts+w.
    ``n`` defaults to ``max(id) + 1``.  Lines starting with ``#`` are
    skipped; a header written by :func:`write_edgelist` restores ``n`` and
    directedness automatically (explicit arguments win).
    """
    path = Path(path)
    header_n = None
    header_directed = None
    rows: list[list[int]] = []
    width = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "repro edge list" in line:
                    for token in line.split():
                        if token.startswith("n="):
                            header_n = int(token[2:])
                        elif token.startswith("directed="):
                            header_directed = bool(int(token[len("directed="):]))
                continue
            parts = line.split()
            if width is None:
                width = len(parts)
                if width < 2 or width > 4:
                    raise GraphError(
                        f"{path}:{lineno}: expected 2-4 columns, got {width}"
                    )
            elif len(parts) != width:
                raise GraphError(
                    f"{path}:{lineno}: inconsistent column count "
                    f"({len(parts)} vs {width})"
                )
            try:
                rows.append([int(x) for x in parts])
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: non-integer field: {exc}") from exc

    if width is None:
        width = 2
    data = np.asarray(rows, dtype=np.int64).reshape(len(rows), width)
    src, dst = data[:, 0], data[:, 1]
    if has_ts is None:
        has_ts = width >= 3
    if has_w is None:
        has_w = width >= 4
    ts = data[:, 2] if has_ts and width >= 3 else None
    w = data[:, 3] if has_w and width >= 4 else None
    if n is None:
        n = header_n
    if n is None:
        n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if len(rows) else 0
    if directed is False and header_directed is not None:
        directed = header_directed
    return EdgeList(n, src, dst, ts=ts, w=w, directed=directed,
                    meta={"source_file": str(path)})
