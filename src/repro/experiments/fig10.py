"""Figure 10 — time-stamped BFS on the IBM Power 570.

Paper setup: massive R-MAT network of 500M vertices / 4B edges with
time-stamps such that the whole graph is one giant component; augmented BFS
with a time-stamp check.  Reported: 46 seconds on 16 Power5 CPUs, with a
parallel speedup of 13.1.
"""

from __future__ import annotations

import time

import numpy as np

from repro.adjacency.csr import build_csr
from repro.core.bfs import bfs, bfs_profile
from repro.experiments.common import (
    FigureResult,
    P570_CPUS,
    attach_backend_comparison,
    measured_scale,
    scaled_sweep,
)
from repro.generators.rmat import rmat_graph
from repro.machine.scale import ScaledInstance
from repro.machine.spec import POWER_570
from repro.util.seeding import DEFAULT_SEED

__all__ = ["run", "TARGET_N", "TARGET_M"]

TARGET_N = 500_000_000
TARGET_M = 4_000_000_000
#: Paper instance density: m = 8 n.
EDGE_FACTOR = 8
TS_RANGE = (0, 1000)


def run(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    backend: str = "serial",
    workers: int | None = None,
) -> FigureResult:
    mscale = measured_scale(15, 12, quick)
    graph = rmat_graph(mscale, EDGE_FACTOR, seed=seed, ts_range=TS_RANGE)
    csr = build_csr(graph)
    n0, m0 = graph.n, graph.m

    # Start from the heaviest vertex (guaranteed inside the giant component)
    # and traverse with the time-stamp check spanning the full range, as the
    # paper does ("time-stamps on edges such that the entire graph is in one
    # giant component").
    source = int(np.argmax(csr.degrees()))
    t0 = time.perf_counter()
    result = bfs(csr, source, ts_range=TS_RANGE)
    serial_seconds = time.perf_counter() - t0
    profile = bfs_profile(csr, result, degree_split=True)

    inst = ScaledInstance(
        n_measured=n0, m_measured=m0,
        n_target=TARGET_N, m_target=TARGET_M,
        ops_measured=result.total_edges_scanned,
        ops_target=int(
            result.total_edges_scanned / max(1, 2 * m0) * 2 * TARGET_M
        ),
        bytes_per_vertex=32.0,  # offsets + dist + parent
        bytes_per_edge=32.0,    # two arcs x (target + time-stamp)
    )
    series = [
        scaled_sweep(
            profile, inst, POWER_570, P570_CPUS,
            label="time-stamped BFS",
            scale_barriers_with_diameter=True,
        )
    ]

    fig = FigureResult(
        figure="Figure 10",
        title="Time-stamped BFS on IBM Power 570 (500M vertices / 4B edges)",
        series=series,
        notes=(
            f"measured at n=2^{mscale} (m={m0}); reached "
            f"{result.n_reached}/{n0} vertices in {result.n_levels} levels "
            f"from the heaviest vertex"
        ),
        meta={"measured_scale": mscale, "levels": result.n_levels},
    )
    s = fig.get("time-stamped BFS")
    fig.check(
        "~46 s on 16 CPUs (paper: 46 s)",
        20.0 <= s.seconds_at(16) <= 100.0,
        f"{s.seconds_at(16):.1f} s",
    )
    fig.check(
        "speedup ~13.1 on 16 CPUs (paper: 13.1)",
        10.0 <= s.speedup_at(16) <= 15.9,
        f"{s.speedup_at(16):.1f}",
    )
    fig.check(
        "traversal covers the giant component (most of the graph)",
        result.n_reached >= 0.5 * n0,
        f"reached {result.n_reached} of {n0}",
    )
    if backend != "serial":
        from repro.parallel.backend import resolve_backend

        be, owned = resolve_backend(backend, workers=workers)
        try:
            t0 = time.perf_counter()
            presult = be.bfs(csr, source, ts_range=TS_RANGE)
            backend_seconds = time.perf_counter() - t0
        finally:
            if owned:
                be.close()
        identical = (
            np.array_equal(result.dist, presult.dist)
            and np.array_equal(result.parent, presult.parent)
            and result.frontier_sizes == presult.frontier_sizes
            and result.edges_scanned == presult.edges_scanned
        )
        attach_backend_comparison(
            fig,
            kernel="time-stamped BFS",
            backend_name=be.name,
            workers=getattr(be, "workers", 1),
            serial_seconds=serial_seconds,
            backend_seconds=backend_seconds,
            identical=identical,
        )
    return fig
