"""Figure 11 — approximate temporal betweenness centrality on UltraSPARC T2.

Paper setup: R-MAT network of 33M vertices / 268M edges, integer time-stamps
in [0, 20], temporal shortest paths, traversal from 256 randomly chosen
sources with extrapolation of the centrality scores.  Reported: speedup of
23 on 32 threads; the paper notes concurrency per phase is lower than plain
BFS because edges are filtered at every phase.
"""

from __future__ import annotations

from repro.adjacency.csr import build_csr
from repro.core.betweenness import temporal_betweenness
from repro.experiments.common import (
    FigureResult,
    T2_THREADS,
    measured_scale,
    scaled_sweep,
)
from repro.generators.rmat import rmat_graph
from repro.machine.scale import ScaledInstance
from repro.machine.spec import ULTRASPARC_T2
from repro.util.seeding import DEFAULT_SEED, mix_seed

__all__ = ["run", "TARGET_N", "TARGET_M", "N_SOURCES"]

TARGET_N = 33_000_000
TARGET_M = 268_000_000
N_SOURCES = 256
TS_RANGE = (0, 20)


def run(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    mscale = measured_scale(13, 11, quick)
    n_sources = 64 if quick else N_SOURCES
    graph = rmat_graph(mscale, 8, seed=seed, ts_range=TS_RANGE)
    csr = build_csr(graph)
    n0, m0 = graph.n, graph.m

    res = temporal_betweenness(
        csr, sources=n_sources, seed=mix_seed(seed, "fig11-sources"), temporal=True
    )

    # Work per source is proportional to the arcs scanned; the paper runs
    # the same 256 sources at target scale, so ops scale by the per-source
    # edge growth times the source-count ratio.
    ops_target = int(
        res.edges_scanned / max(1, n_sources) * N_SOURCES * (TARGET_M / m0)
    )
    inst = ScaledInstance(
        n_measured=n0, m_measured=m0,
        n_target=TARGET_N, m_target=TARGET_M,
        ops_measured=res.edges_scanned, ops_target=ops_target,
        bytes_per_vertex=48.0,  # dist/sigma/arr_min/delta/offsets
        bytes_per_edge=32.0,
    )
    series = [
        scaled_sweep(
            res.profile, inst, ULTRASPARC_T2, T2_THREADS,
            label="approx. temporal betweenness",
            scale_barriers_with_diameter=True,
        )
    ]

    fig = FigureResult(
        figure="Figure 11",
        title="Approximate temporal betweenness (256 sources), UltraSPARC T2",
        series=series,
        notes=(
            f"measured at n=2^{mscale} with {n_sources} sources; "
            f"{res.edges_scanned} arcs scanned over {res.total_levels} levels"
        ),
        meta={"measured_scale": mscale, "n_sources": n_sources},
    )
    s = fig.get("approx. temporal betweenness")
    fig.check(
        "speedup ~23 on 32 threads (paper: 23)",
        15.0 <= s.speedup_at(32) <= 30.0,
        f"{s.speedup_at(32):.1f}",
    )
    fig.check(
        # The paper: "the amount of concurrency per phase is comparatively
        # lower than breadth-first graph traversal" — temporal filtering
        # thins each level, so scaling should flatten past 32 threads.
        "concurrency is phase-limited (64-thread gain over 32 is modest)",
        s.speedup_at(64) <= 1.6 * s.speedup_at(32),
        f"{s.speedup_at(64):.1f} vs {s.speedup_at(32):.1f}",
    )
    fig.check(
        "temporal filtering prunes the traversal (fewer arcs than 2 BFS passes)",
        res.edges_scanned <= 2.0 * n_sources * 2 * m0,
        f"{res.edges_scanned} arcs for {n_sources} sources on {2 * m0} arcs",
    )
    return fig
