"""Figure 6 — mixed updates (75% insertions / 25% deletions).

Paper setup: construct the 33.5M / 268M R-MAT network, then apply 50 million
random updates (75% insertions, 25% deletions) on UltraSPARC T2.  Reported
shape: "the performance of Hybrid-arr-treap and Dyn-arr are comparable in
this case, while Treaps is slower.  For a large proportion of deletions, the
performance of Hybrid-arr-treap would be better than Dyn-arr" (the ratio
sweep lives in ``benchmarks/test_ablation_mix_ratio.py``).
"""

from __future__ import annotations

from repro.core.update_engine import apply_stream, construct
from repro.experiments.common import (
    FigureResult,
    T2_THREADS,
    footprint_coefficients,
    measured_scale,
    scaled_sweep,
)
from repro.experiments.fig04 import TARGET_M, TARGET_N, make_reps
from repro.generators.rmat import rmat_graph
from repro.generators.streams import mixed_stream
from repro.machine.scale import ScaledInstance
from repro.machine.spec import ULTRASPARC_T2
from repro.util.seeding import DEFAULT_SEED, mix_seed

__all__ = ["run", "TARGET_UPDATES", "INSERT_FRAC"]

TARGET_UPDATES = 50_000_000
INSERT_FRAC = 0.75


def run(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    mscale = measured_scale(14, 11, quick)
    graph = rmat_graph(mscale, 10, seed=seed)
    n0, m0 = graph.n, graph.m
    k_upd = max(4, int(round(m0 * TARGET_UPDATES / TARGET_M)))
    # Deletions name uniform random pairs (mostly absent edges, cheap misses
    # on short blocks).  This reading of the paper's "random selection of 50
    # million updates" is what reconciles Figure 6's "Dyn-arr and Hybrid are
    # comparable" with Figure 5's 20x deletion gap — degree-biased deletions
    # of existing edges would make Dyn-arr several times slower here too.
    stream = mixed_stream(
        graph, k_upd, INSERT_FRAC, seed=mix_seed(seed, "fig06"),
        delete_mode="uniform",
    )

    series = []
    for label, rep in make_reps(n0, 2 * m0, seed):
        construct(rep, graph)
        res = apply_stream(rep, stream, phase_name="mixed-updates")
        bpv, bpe = footprint_coefficients(rep, n0, 2 * m0)
        inst = ScaledInstance(
            n_measured=n0, m_measured=m0,
            n_target=TARGET_N, m_target=TARGET_M,
            ops_measured=k_upd, ops_target=TARGET_UPDATES,
            bytes_per_vertex=bpv, bytes_per_edge=2 * bpe,
        )
        series.append(
            scaled_sweep(
                res.profile, inst, ULTRASPARC_T2, T2_THREADS,
                n_items=TARGET_UPDATES, label=label,
                logdeg_correction=(label != "Dyn-arr"),
            )
        )

    fig = FigureResult(
        figure="Figure 6",
        title="Mixed updates (75% ins / 25% del): Dyn-arr vs Treaps vs Hybrid, T2",
        series=series,
        notes=f"measured at n=2^{mscale} with {k_upd} updates (paper: 50M on 268M edges)",
        meta={"measured_scale": mscale, "k_upd": k_upd},
    )
    da = fig.get("Dyn-arr")
    tr = fig.get("Treaps")
    hy = fig.get("Hybrid-arr-treap")
    ratio = max(da.mups_at(64), hy.mups_at(64)) / min(da.mups_at(64), hy.mups_at(64))
    fig.check(
        "Hybrid and Dyn-arr comparable at 75/25 (paper: 'comparable')",
        ratio <= 2.0,
        f"Dyn-arr {da.mups_at(64):.1f} vs Hybrid {hy.mups_at(64):.1f} MUPS "
        f"(ratio {ratio:.2f})",
    )
    fig.check(
        "Treaps slower than both at 75/25 (paper: 'Treaps is slower')",
        tr.mups_at(64) < da.mups_at(64) and tr.mups_at(64) < hy.mups_at(64),
        f"Treaps {tr.mups_at(64):.1f} MUPS",
    )
    return fig
