"""Machine-readable export of the experiment results.

``collect()`` runs the figure reproductions (and optionally the ablations)
and flattens every series and check into plain dictionaries;
``write_json()`` persists them — the artifact CI jobs archive next to
EXPERIMENTS.md, diffable across calibration changes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import FIGURE_MODULES, FigureResult, get_figure
from repro.obs import ensure_manifest
from repro.util.jsonify import jsonify

__all__ = ["figure_to_dict", "collect", "write_json"]


def figure_to_dict(result: FigureResult) -> dict:
    """Flatten one figure's series, rows and checks into JSON-safe dicts."""
    out: dict = {
        "figure": result.figure,
        "title": result.title,
        "notes": result.notes,
        "all_passed": result.all_passed,
        "checks": {
            desc: {"passed": ok, "detail": detail}
            for desc, (ok, detail) in result.checks.items()
        },
        "series": [],
        "rows": [_jsonify_row(r) for r in result.rows],
        "meta": jsonify(result.meta),
    }
    for s in result.series:
        r = s.result
        entry = {
            "label": s.label,
            "machine": r.machine,
            "threads": list(r.threads),
            "seconds": [float(x) for x in r.seconds],
            "speedups": [float(x) for x in r.speedups],
        }
        if r.mups is not None:
            entry["mups"] = [float(x) for x in r.mups]
        out["series"].append(entry)
    return out


def _jsonify_row(row: dict) -> dict:
    # One shared coercion path (repro.util.jsonify) — also handles np.bool_
    # and np.ndarray values, which the previous ad-hoc version passed
    # through and which broke ``json.dump``.
    return jsonify(row)


def collect(
    *,
    quick: bool = True,
    figures: list[str] | None = None,
    include_ablations: bool = False,
) -> dict:
    """Run the reproductions and return one JSON-safe document."""
    names = figures if figures is not None else list(FIGURE_MODULES)
    doc: dict = {
        "mode": "quick" if quick else "full",
        "manifest": ensure_manifest().to_dict(),
        "figures": {},
    }
    for name in names:
        doc["figures"][name] = figure_to_dict(get_figure(name)(quick=quick))
    if include_ablations:
        from repro.experiments import ablations

        doc["ablations"] = {}
        for key, fn in (
            ("resize_policy", ablations.run_resize_policy),
            ("degree_thresh", ablations.run_degree_thresh),
            ("stream_order", ablations.run_stream_order),
            ("mix_ratio", ablations.run_mix_ratio),
            ("compression", ablations.run_compression),
            ("delta_sweep", ablations.run_delta_sweep),
        ):
            doc["ablations"][key] = figure_to_dict(fn(quick=quick))
    doc["all_passed"] = all(
        f["all_passed"] for f in doc["figures"].values()
    ) and all(a["all_passed"] for a in doc.get("ablations", {}).values())
    return doc


def write_json(path, **kwargs) -> dict:
    """Collect and persist; returns the document."""
    doc = collect(**kwargs)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True))
    return doc
