"""Machine-readable export of the experiment results.

``collect()`` runs the figure reproductions (and optionally the ablations)
and flattens every series and check into plain dictionaries;
``write_json()`` persists them — the artifact CI jobs archive next to
EXPERIMENTS.md, diffable across calibration changes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import FIGURE_MODULES, FigureResult, get_figure
from repro.obs import ensure_manifest
from repro.util.jsonify import jsonify

__all__ = [
    "ABLATIONS",
    "FIGURE_INDEX",
    "ablation_runners",
    "figure_index_table",
    "figure_to_dict",
    "collect",
    "write_json",
]

#: Ordered registry of the ablation sweeps.  Key ``X`` maps to runner
#: ``repro.experiments.ablations.run_X``; both the CLI (``--ablations``) and
#: :func:`collect` iterate this tuple, so adding a sweep here is the single
#: step that wires it everywhere (the help text derives its count from it).
ABLATIONS: tuple[str, ...] = (
    "resize_policy",
    "degree_thresh",
    "stream_order",
    "mix_ratio",
    "compression",
    "delta_sweep",
    "connectit_matrix",
)

#: Static per-figure metadata: what each reproduction runs, which CLI flags
#: it understands beyond the shared ``--full``/``--json``, which execution
#: backends it can exercise, and where its pytest benchmark lives.  The
#: fig01–fig11 table in EXPERIMENTS.md is *generated* from this dict by
#: :func:`figure_index_table` (``python -m repro.experiments --figure-index``);
#: ``tests/experiments/test_figure_index.py`` asserts they stay in sync.
FIGURE_INDEX: dict[str, dict] = {
    "fig01": {
        "figure": "Figure 1",
        "title": "Dyn-arr-nr insertion MUPS vs problem size (1 core / 8 cores)",
        "backends": "serial, process",
        "benchmark": "benchmarks/test_fig01_insert_scaling.py",
    },
    "fig02": {
        "figure": "Figure 2",
        "title": "Dyn-arr vs Dyn-arr-nr construction MUPS, UltraSPARC T2",
        "backends": "serial, process",
        "benchmark": "benchmarks/test_fig02_resizing_overhead.py",
    },
    "fig03": {
        "figure": "Figure 3",
        "title": "Insertion strategies on 8 cores: Dyn-arr-nr vs batched/Vpart/Epart",
        "backends": "serial, process",
        "benchmark": "benchmarks/test_fig03_partitioning.py",
    },
    "fig04": {
        "figure": "Figure 4",
        "title": "Construction MUPS: Dyn-arr vs Treaps vs Hybrid, UltraSPARC T2",
        "backends": "serial, process",
        "benchmark": "benchmarks/test_fig04_insert_representations.py",
    },
    "fig05": {
        "figure": "Figure 5",
        "title": "Deletion MUPS after construction: Dyn-arr vs Treaps vs Hybrid, T2",
        "backends": "serial, process",
        "benchmark": "benchmarks/test_fig05_delete_representations.py",
    },
    "fig06": {
        "figure": "Figure 6",
        "title": "Mixed updates (75% ins / 25% del): Dyn-arr vs Treaps vs Hybrid, T2",
        "backends": "serial",
        "benchmark": "benchmarks/test_fig06_mixed_updates.py",
    },
    "fig07": {
        "figure": "Figure 7",
        "title": "Link-cut tree construction, UltraSPARC T2 (10M vertices / 84M edges)",
        "backends": "serial",
        "benchmark": "benchmarks/test_fig07_linkcut_construction.py",
    },
    "fig08": {
        "figure": "Figure 8",
        "title": "1M connectivity queries on the link-cut forest, UltraSPARC T2",
        "backends": "serial, process",
        "benchmark": "benchmarks/test_fig08_connectivity_queries.py",
    },
    "fig09": {
        "figure": "Figure 9",
        "title": "Induced subgraph kernel (interval (20,70)), UltraSPARC T1",
        "backends": "serial",
        "benchmark": "benchmarks/test_fig09_induced_subgraph.py",
    },
    "fig10": {
        "figure": "Figure 10",
        "title": "Time-stamped BFS on IBM Power 570 (500M vertices / 4B edges)",
        "backends": "serial, process",
        "benchmark": "benchmarks/test_fig10_bfs_power570.py",
    },
    "fig11": {
        "figure": "Figure 11",
        "title": "Approximate temporal betweenness (256 sources), UltraSPARC T2",
        "backends": "serial",
        "benchmark": "benchmarks/test_fig11_temporal_bc.py",
    },
}


def ablation_runners() -> list[tuple[str, object]]:
    """``(key, runner)`` pairs for every registered ablation, in order."""
    from repro.experiments import ablations

    return [(key, getattr(ablations, f"run_{key}")) for key in ABLATIONS]


def figure_index_table() -> str:
    """The generated fig01–fig11 markdown table (from :data:`FIGURE_INDEX`).

    ``python -m repro.experiments --figure-index`` prints it; the block in
    EXPERIMENTS.md between the ``GENERATED FIGURE INDEX`` markers is this
    output verbatim.  The sync test additionally pins each entry against
    the code: the title/figure strings against the figure module source,
    the backends column against the runner signature (``backend`` keyword
    → ``serial, process``), and the benchmark path against the filesystem.
    """
    lines = [
        "| module | figure | title | run | backends | benchmark |",
        "|---|---|---|---|---|---|",
    ]
    for name in FIGURE_MODULES:
        meta = FIGURE_INDEX[name]
        runner = f"`python -m repro.experiments {name} [--full]`"
        lines.append(
            "| `{mod}` | {figure} | {title} | {run} | {backends} | `{bench}` |".format(
                mod=f"src/repro/experiments/{name}.py",
                figure=meta["figure"],
                title=meta["title"],
                run=runner,
                backends=meta["backends"],
                bench=meta["benchmark"],
            )
        )
    return "\n".join(lines)


def figure_to_dict(result: FigureResult) -> dict:
    """Flatten one figure's series, rows and checks into JSON-safe dicts."""
    out: dict = {
        "figure": result.figure,
        "title": result.title,
        "notes": result.notes,
        "all_passed": result.all_passed,
        "checks": {
            desc: {"passed": ok, "detail": detail}
            for desc, (ok, detail) in result.checks.items()
        },
        "series": [],
        "rows": [_jsonify_row(r) for r in result.rows],
        "meta": jsonify(result.meta),
    }
    for s in result.series:
        r = s.result
        entry = {
            "label": s.label,
            "machine": r.machine,
            "threads": list(r.threads),
            "seconds": [float(x) for x in r.seconds],
            "speedups": [float(x) for x in r.speedups],
        }
        if r.mups is not None:
            entry["mups"] = [float(x) for x in r.mups]
        out["series"].append(entry)
    return out


def _jsonify_row(row: dict) -> dict:
    # One shared coercion path (repro.util.jsonify) — also handles np.bool_
    # and np.ndarray values, which the previous ad-hoc version passed
    # through and which broke ``json.dump``.
    return jsonify(row)


def collect(
    *,
    quick: bool = True,
    figures: list[str] | None = None,
    include_ablations: bool = False,
) -> dict:
    """Run the reproductions and return one JSON-safe document."""
    names = figures if figures is not None else list(FIGURE_MODULES)
    doc: dict = {
        "mode": "quick" if quick else "full",
        "manifest": ensure_manifest().to_dict(),
        "figures": {},
    }
    for name in names:
        doc["figures"][name] = figure_to_dict(get_figure(name)(quick=quick))
    if include_ablations:
        doc["ablations"] = {}
        for key, fn in ablation_runners():
            doc["ablations"][key] = figure_to_dict(fn(quick=quick))
    doc["all_passed"] = all(
        f["all_passed"] for f in doc["figures"].values()
    ) and all(a["all_passed"] for a in doc.get("ablations", {}).values())
    return doc


def write_json(path, **kwargs) -> dict:
    """Collect and persist; returns the document."""
    doc = collect(**kwargs)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True))
    return doc
