"""Ablation studies for the design choices the paper calls out.

Five sweeps, each probing a sentence of section 2.1 (DESIGN.md lists the
mapping):

* :func:`run_resize_policy` — initial adjacency size ``k`` in the km/n rule
  and the growth factor ("a value of k = 2 performs reasonably well").
* :func:`run_degree_thresh` — the hybrid's migration threshold ("a value of
  32 ... provides a reasonable insertion-deletion performance trade-off").
* :func:`run_stream_order` — sorted vs shuffled update streams ("randomly
  shuffling the updates before scheduling the insertions").
* :func:`run_mix_ratio` — insert:delete ratio crossover between Dyn-arr and
  Hybrid ("for a large proportion of deletions, the performance of
  Hybrid-arr-treap would be better than Dyn-arr").
* :func:`run_compression` — the section 2.1.6 open question: do WebGraph-
  style compression and vertex reordering carry over to these networks?
* :func:`run_connectit_matrix` — the ConnectIt design space
  (:mod:`repro.connectit`): union × compaction variants, and sampled
  sample-finish compositions against the unsampled Shiloach–Vishkin
  baseline.
"""

from __future__ import annotations

import numpy as np

from repro.adjacency.dynarr import DynArrAdjacency
from repro.adjacency.hybrid import HybridAdjacency
from repro.core.update_engine import apply_stream, construct
from repro.experiments.common import FigureResult, measured_scale
from repro.generators.rmat import rmat_graph
from repro.generators.streams import (
    deletion_stream,
    insertion_stream,
    mixed_stream,
    semisort,
)
from repro.machine.contention import windowed_hot_stats
from repro.machine.scale import rmat_size_biased_growth
from repro.machine.sim import SimulatedMachine
from repro.machine.spec import ULTRASPARC_T2
from repro.util.seeding import DEFAULT_SEED, make_rng, mix_seed

__all__ = [
    "run_resize_policy",
    "run_degree_thresh",
    "run_stream_order",
    "run_mix_ratio",
    "run_compression",
    "run_delta_sweep",
    "run_connectit_matrix",
]

_T2 = SimulatedMachine(ULTRASPARC_T2)
_FULL = 64


def run_resize_policy(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    """Sweep the km/n initial-size multiplier and the growth factor."""
    mscale = measured_scale(14, 11, quick)
    graph = rmat_graph(mscale, 10, seed=seed)
    n0, m0 = graph.n, graph.m
    rows = []
    for k in (0, 1, 2, 4, 8):
        for growth in (2, 4):
            init = max(1, int(round(k * 2 * m0 / n0))) if k else 1
            rep = DynArrAdjacency(n0, initial_capacity=init, growth_factor=growth)
            res = construct(rep, graph)
            rows.append(
                {
                    "k": k,
                    "growth": growth,
                    "initial": init,
                    "resizes": rep.stats.resize_events,
                    "copied_words": rep.stats.resize_copied_words,
                    "pool_MB": rep.pool.memory_bytes() / 1e6,
                    "MUPS@64": _T2.mups_at(res.profile, _FULL, m0),
                }
            )
    fig = FigureResult(
        figure="Ablation A1",
        title="Dyn-arr initial size (km/n) and growth factor",
        rows=rows,
        notes=f"measured construction at n=2^{mscale}",
    )
    by_k = {(r["k"], r["growth"]): r for r in rows}
    fig.check(
        "k=2 roughly minimises resize copies without large slack (paper's pick)",
        by_k[(2, 2)]["copied_words"] < by_k[(0, 2)]["copied_words"]
        and by_k[(2, 2)]["pool_MB"] <= 2.5 * by_k[(0, 2)]["pool_MB"],
        f"k=2 copies {by_k[(2, 2)]['copied_words']} vs k=0 {by_k[(0, 2)]['copied_words']}",
    )
    fig.check(
        "larger k trades memory for fewer resizes monotonically",
        by_k[(8, 2)]["resizes"] <= by_k[(2, 2)]["resizes"] <= by_k[(0, 2)]["resizes"],
    )
    return fig


def run_degree_thresh(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    """Sweep the hybrid migration threshold over a construct+delete workload."""
    mscale = measured_scale(13, 11, quick)
    graph = rmat_graph(mscale, 10, seed=seed)
    n0, m0 = graph.n, graph.m
    k_del = max(1, m0 // 13)  # the paper's 20M/268M proportion
    dels = deletion_stream(graph, k_del, seed=mix_seed(seed, "abl-thresh"))
    rows = []
    for thresh in (8, 16, 32, 64, 128, 256):
        rep = HybridAdjacency(n0, degree_thresh=thresh, seed=seed)
        ins = construct(rep, graph)
        del_res = apply_stream(rep, dels, phase_name="deletions")
        rows.append(
            {
                "degree_thresh": thresh,
                "treap_vertices": rep.n_treap_vertices(),
                "ins_MUPS@64": _T2.mups_at(ins.profile, _FULL, m0),
                "del_MUPS@64": _T2.mups_at(del_res.profile, _FULL, k_del),
            }
        )
    fig = FigureResult(
        figure="Ablation A2",
        title="Hybrid degree_thresh sweep (insert vs delete trade-off)",
        rows=rows,
        notes=f"measured at n=2^{mscale}, {k_del} deletions after construction",
    )
    ins_rates = {r["degree_thresh"]: r["ins_MUPS@64"] for r in rows}
    del_rates = {r["degree_thresh"]: r["del_MUPS@64"] for r in rows}
    fig.check(
        "higher threshold favours insertions (fewer treap vertices)",
        ins_rates[256] >= ins_rates[8] * 0.95,
        f"ins MUPS 256:{ins_rates[256]:.1f} vs 8:{ins_rates[8]:.1f}",
    )
    fig.check(
        "the paper's 32 is within 25% of the best observed delete rate",
        del_rates[32] >= 0.75 * max(del_rates.values()),
        f"del MUPS at 32: {del_rates[32]:.1f}, best {max(del_rates.values()):.1f}",
    )
    return fig


def run_stream_order(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    """Generator-order vs shuffled insertion streams: burst contention."""
    mscale = measured_scale(14, 11, quick)
    # Deliberately *unshuffled* generation keeps R-MAT's natural clustering;
    # semi-sorting maximises bursts as the worst case.
    graph = rmat_graph(mscale, 10, seed=seed)
    ordered = insertion_stream(graph)
    sorted_stream, _ = semisort(ordered)
    shuffled = ordered.shuffled(mix_seed(seed, "abl-order"))
    window = max(64, len(ordered) // 64)
    rows = []
    for label, s in (
        ("generator order", ordered),
        ("semi-sorted (worst case)", sorted_stream),
        ("shuffled", shuffled),
    ):
        burst, frac = windowed_hot_stats(s.src, window)
        rows.append(
            {"stream": label, "window": window, "peak_burst": burst, "burst_frac": frac}
        )
    fig = FigureResult(
        figure="Ablation A3",
        title="Update-stream order: time-localised hot-vertex bursts",
        rows=rows,
        notes=(
            "peak single-vertex count within any scheduling window; the "
            "simulated serial floor scales with it"
        ),
    )
    by = {r["stream"]: r for r in rows}
    fig.check(
        "shuffling reduces the peak burst vs vertex-sorted streams",
        by["shuffled"]["peak_burst"] < by["semi-sorted (worst case)"]["peak_burst"],
        f"{by['shuffled']['peak_burst']} vs {by['semi-sorted (worst case)']['peak_burst']}",
    )
    fig.check(
        # R-MAT edges are iid samples, so generator order is already
        # burst-free; the shuffle remedy matters for entity-clustered
        # arrival orders (modelled here by the semi-sorted stream).
        "generator order is near-shuffled for iid R-MAT streams",
        by["generator order"]["peak_burst"] <= 3 * by["shuffled"]["peak_burst"],
        f"{by['generator order']['peak_burst']} vs {by['shuffled']['peak_burst']}",
    )
    return fig


def run_compression(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    """Compressed adjacency + vertex reordering (paper's open question, §2.1.6).

    Compares a full adjacency scan (the edge pass of a traversal) over plain
    CSR vs gap+interval-compressed CSR, in original and BFS-reordered vertex
    orders, on the simulated T2: compression shrinks the footprint (cache
    benefit) at the price of per-byte decode ALU work, and reordering
    shrinks the gaps compression encodes.
    """
    from repro.adjacency.compressed import CompressedCSR
    from repro.adjacency.csr import build_csr
    from repro.adjacency.reorder import apply_order, bfs_order, locality_gap
    from repro.machine.profile import Phase

    mscale = measured_scale(13, 11, quick)
    graph = rmat_graph(mscale, 10, seed=seed)
    rng = make_rng(mix_seed(seed, "abl-compress"))
    scrambled = apply_order(graph, rng.permutation(graph.n))
    csr = build_csr(scrambled)
    reordered = apply_order(scrambled, bfs_order(csr))
    csr_re = build_csr(reordered)

    def csr_scan_phase(c) -> Phase:
        return Phase(
            name="csr-scan",
            alu_ops=6.0 * c.n_arcs,
            seq_bytes=8.0 * c.n_arcs,
            rand_accesses=float(c.n_arcs),
            footprint_bytes=float(c.memory_bytes()),
            barriers=2.0,
        )

    rows = []
    for label, phase, mem, bits in (
        ("CSR (scrambled)", csr_scan_phase(csr), csr.memory_bytes(), 64.0),
        (
            "Compressed (scrambled)",
            CompressedCSR.from_csr(csr).scan_phase(),
            CompressedCSR.from_csr(csr).memory_bytes(),
            CompressedCSR.from_csr(csr).bits_per_arc(),
        ),
        (
            "Compressed (BFS order)",
            CompressedCSR.from_csr(csr_re).scan_phase(),
            CompressedCSR.from_csr(csr_re).memory_bytes(),
            CompressedCSR.from_csr(csr_re).bits_per_arc(),
        ),
    ):
        from repro.machine.profile import WorkProfile

        prof = WorkProfile("scan", (phase,))
        rows.append(
            {
                "representation": label,
                "bits_per_arc": bits,
                "mem_MB": mem / 1e6,
                "scan_us@64thr": _T2.time(prof, _FULL) * 1e6,
            }
        )
    fig = FigureResult(
        figure="Ablation A5",
        title="Compressed adjacency + reordering (open question, section 2.1.6)",
        rows=rows,
        notes=(
            f"R-MAT n=2^{mscale}, full adjacency scan; locality gap "
            f"{locality_gap(scrambled):.0f} scrambled vs "
            f"{locality_gap(reordered):.0f} BFS-reordered"
        ),
    )
    by = {r["representation"]: r for r in rows}
    fig.check(
        "gap+interval compression beats 64-bit CSR storage substantially",
        by["Compressed (scrambled)"]["bits_per_arc"] < 32.0,
        f"{by['Compressed (scrambled)']['bits_per_arc']:.1f} bits/arc",
    )
    fig.check(
        "BFS reordering improves the compression ratio further",
        by["Compressed (BFS order)"]["bits_per_arc"]
        < by["Compressed (scrambled)"]["bits_per_arc"],
        f"{by['Compressed (BFS order)']['bits_per_arc']:.1f} vs "
        f"{by['Compressed (scrambled)']['bits_per_arc']:.1f} bits/arc",
    )
    fig.check(
        "compressed footprint is at least 2x smaller",
        by["Compressed (scrambled)"]["mem_MB"] < 0.5 * by["CSR (scrambled)"]["mem_MB"],
        f"{by['Compressed (scrambled)']['mem_MB']:.2f} vs "
        f"{by['CSR (scrambled)']['mem_MB']:.2f} MB",
    )
    return fig


def run_delta_sweep(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    """Δ-stepping bucket-width sweep (the [19]-lineage SSSP tuning story).

    Small Δ degenerates toward Dijkstra (many buckets, many barriers, little
    per-phase parallelism); huge Δ degenerates toward Bellman–Ford (few
    buckets, redundant re-relaxations).  The sweep shows the simulated-T2
    sweet spot sitting near the mean edge weight — the standard heuristic
    this library defaults to.
    """
    from dataclasses import replace as dc_replace

    from repro.adjacency.csr import build_csr
    from repro.core.sssp import delta_stepping

    mscale = measured_scale(12, 10, quick)
    graph = rmat_graph(mscale, 8, seed=seed)
    rng = make_rng(mix_seed(seed, "abl-delta"))
    weighted = dc_replace(graph, w=rng.integers(1, 33, graph.m, dtype=np.int64))
    csr = build_csr(weighted)
    source = int(np.argmax(csr.degrees()))

    rows = []
    for delta in (1, 4, 16, 64, 256):
        res = delta_stepping(csr, source, delta=delta)
        rows.append(
            {
                "delta": delta,
                "buckets": res.buckets_processed,
                "light_phases": res.light_phases,
                "relaxations": res.relaxations,
                "sim_ms@64": _T2.time(res.profile, _FULL) * 1e3,
            }
        )
    fig = FigureResult(
        figure="Ablation A6",
        title="Delta-stepping bucket width (Dijkstra <-> Bellman-Ford spectrum)",
        rows=rows,
        notes=(
            f"R-MAT n=2^{mscale}, weights uniform [1,32] (mean ~16), "
            f"source = heaviest vertex"
        ),
    )
    by = {r["delta"]: r for r in rows}
    fig.check(
        "bucket count falls monotonically with delta",
        by[1]["buckets"] >= by[16]["buckets"] >= by[256]["buckets"],
        f"{by[1]['buckets']} -> {by[16]['buckets']} -> {by[256]['buckets']}",
    )
    fig.check(
        "redundant relaxations grow for Bellman-Ford-sized delta",
        by[256]["relaxations"] >= by[16]["relaxations"],
        f"{by[256]['relaxations']} vs {by[16]['relaxations']}",
    )
    best = min(rows, key=lambda r: r["sim_ms@64"])
    fig.check(
        "the simulated sweet spot sits away from both extremes",
        best["delta"] in (4, 16, 64),
        f"best delta = {best['delta']} ({best['sim_ms@64']:.2f} ms)",
    )
    return fig


def run_connectit_matrix(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    """The ConnectIt variant grid: union × compaction × sampling on R-MAT.

    Two sub-grids share one table.  The *unsampled* grid (every union rule
    crossed with every compaction rule, moderate scale) characterises the
    pointer-chase economics of the union-find variants themselves.  The
    *sampled* grid (k-out and BFS sampling over two finish variants, the
    paper-regime scale) measures how much union work the sample-finish
    composition removes relative to the unsampled Shiloach–Vishkin kernel —
    ConnectIt's headline claim, asserted here as a >= 3x reduction.
    """
    from repro.adjacency.csr import build_csr
    from repro.connectit import ConnectItSpec, connect_components, variant_matrix
    from repro.core.components import connected_components

    rows = []

    # Sub-grid 1: every union x compaction variant, unsampled.
    vscale = measured_scale(13, 10, quick)
    vgraph = rmat_graph(vscale, 8, seed=seed)
    vcsr = build_csr(vgraph)
    for spec in variant_matrix():
        res = connect_components(vcsr, spec)
        c = res.counters
        rows.append(
            {
                "grid": "variants",
                "variant": spec.name,
                "scale": vscale,
                "unions": c.unions,
                "chases": c.pointer_chases,
                "chases/union": c.pointer_chases / max(1, c.unions),
                "atomics": c.atomics,
                "sim_ms@64": _T2.time(res.profile(), _FULL) * 1e3,
            }
        )

    # Sub-grid 2: sampled compositions vs the Shiloach-Vishkin baseline.
    sscale = measured_scale(16, 12, quick)
    sgraph = rmat_graph(sscale, 10, seed=seed)
    scsr = build_csr(sgraph)
    sv = connected_components(scsr)
    rows.append(
        {
            "grid": "sampled",
            "variant": "shiloach-vishkin (baseline)",
            "scale": sscale,
            "unions": sv.arcs_processed,
            "giant_frac": float(np.max(sv.sizes()) / scsr.n),
            "sim_ms@64": _T2.time(sv.profile(scsr), _FULL) * 1e3,
        }
    )
    sampled_unions = {}
    for spec in (
        ConnectItSpec(sampling="kout", union_rule="rank", compaction="halving"),
        ConnectItSpec(sampling="kout", union_rule="rem", compaction="splitting"),
        ConnectItSpec(sampling="bfs", union_rule="rank", compaction="halving"),
        ConnectItSpec(sampling="bfs", union_rule="size", compaction="full"),
    ):
        res = connect_components(scsr, spec)
        assert np.array_equal(res.labels, sv.labels)
        c = res.counters
        sampled_unions[spec.name] = c.unions
        rows.append(
            {
                "grid": "sampled",
                "variant": spec.name,
                "scale": sscale,
                "unions": c.unions,
                "sv_unions/unions": sv.arcs_processed / max(1, c.unions),
                "finish_arcs": res.meta["finish_arcs"],
                "giant_frac": res.sample.giant_fraction,
                "sim_ms@64": _T2.time(res.profile(), _FULL) * 1e3,
            }
        )

    fig = FigureResult(
        figure="Ablation A7",
        title="ConnectIt variant matrix: union x compaction x sampling",
        rows=rows,
        notes=(
            f"unsampled grid at n=2^{vscale}; sampled compositions vs "
            f"Shiloach-Vishkin at n=2^{sscale} (SV 'unions' = arc hook attempts)"
        ),
    )
    by_variant = {r["variant"]: r for r in rows if r["grid"] == "variants"}
    worst_ratio = max(
        sv.arcs_processed / max(1, u) for u in sampled_unions.values()
    )
    fig.check(
        "every sampled composition does >= 3x fewer union ops than unsampled SV",
        all(sv.arcs_processed >= 3 * u for u in sampled_unions.values()),
        f"SV {sv.arcs_processed} attempts; sampled "
        + ", ".join(f"{k}: {v}" for k, v in sampled_unions.items()),
    )
    fig.check(
        "sampling resolves the giant component (>= half the vertices) cheaply",
        all(
            r["giant_frac"] >= 0.5
            for r in rows
            if r["grid"] == "sampled" and "baseline" not in r["variant"]
        ),
        f"best reduction {worst_ratio:.0f}x",
    )
    fig.check(
        "Rem's splicing union does the fewest pointer chases (no explicit finds)",
        by_variant["rem/halving"]["chases"]
        <= min(by_variant["rank/halving"]["chases"], by_variant["size/halving"]["chases"]),
        f"rem {by_variant['rem/halving']['chases']}, "
        f"rank {by_variant['rank/halving']['chases']}, "
        f"size {by_variant['size/halving']['chases']}",
    )
    fig.check(
        # Balanced unions keep trees flat, so compaction never gets long
        # paths to shorten — chases stay O(1)/union across the whole grid
        # (the inverse-Ackermann regime ConnectIt observes in practice).
        "every variant stays in the O(1) chases-per-union regime",
        all(r["chases/union"] <= 8.0 for r in rows if r["grid"] == "variants"),
        f"max chases/union {max(r['chases/union'] for r in rows if r['grid'] == 'variants'):.2f}",
    )
    return fig


def run_mix_ratio(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    """Insert-fraction sweep: where does Hybrid overtake Dyn-arr?

    Uses degree-biased deletions of existing edges with the size-biased
    probe growth to the paper's 33.5M scale (the Figure 5 regime), so the
    crossover reflects full-scale behaviour.
    """
    mscale = measured_scale(13, 11, quick)
    graph = rmat_graph(mscale, 10, seed=seed)
    n0, m0 = graph.n, graph.m
    probe_growth = rmat_size_biased_growth(mscale, 25)
    k_upd = max(8, m0 // 5)
    rows = []
    for frac in (0.95, 0.75, 0.5, 0.25, 0.05):
        stream = mixed_stream(
            graph, k_upd, frac, seed=mix_seed(seed, "abl-mix", int(frac * 100))
        )
        rates = {}
        for label, rep in (
            ("dynarr", DynArrAdjacency(n0, expected_m=2 * m0)),
            ("hybrid", HybridAdjacency(n0, seed=seed)),
        ):
            construct(rep, graph)
            res = apply_stream(
                rep, stream, phase_name="mixed",
                probe_scale=probe_growth if label == "dynarr" else 1.0,
            )
            rates[label] = _T2.mups_at(res.profile, _FULL, k_upd)
        rows.append(
            {
                "insert_frac": frac,
                "dynarr_MUPS@64": rates["dynarr"],
                "hybrid_MUPS@64": rates["hybrid"],
                "hybrid/dynarr": rates["hybrid"] / rates["dynarr"],
            }
        )
    fig = FigureResult(
        figure="Ablation A4",
        title="Insert:delete ratio crossover, Dyn-arr vs Hybrid (at 33.5M scale)",
        rows=rows,
        notes=f"measured at n=2^{mscale}, {k_upd} updates, probe growth x{probe_growth:.0f}",
    )
    first, last = rows[0], rows[-1]
    fig.check(
        "hybrid's advantage grows as the deletion share grows (paper's claim)",
        last["hybrid/dynarr"] > first["hybrid/dynarr"],
        f"ratio {first['hybrid/dynarr']:.2f} at 95% ins -> {last['hybrid/dynarr']:.2f} at 5% ins",
    )
    fig.check(
        "hybrid wins outright for deletion-heavy streams",
        last["hybrid/dynarr"] > 1.5,
        f"{last['hybrid/dynarr']:.2f}x at 5% insertions",
    )
    return fig
