"""Figure 2 — resizing overhead: Dyn-arr vs Dyn-arr-nr construction.

Paper setup: R-MAT, 33.5M vertices / 268M edges, construction as a series of
insertions on UltraSPARC T2, threads 1..64, Dyn-arr initial array size 16.
Reported shape: "the impact of resizing is not very pronounced" — Dyn-arr
tracks Dyn-arr-nr closely; and the headline scaling (~25 MUPS, speedup near
28 at 64 threads) comes from this workload family.
"""

from __future__ import annotations

import numpy as np

from repro.adjacency.dynarr import DynArrAdjacency
from repro.core.update_engine import construct
from repro.experiments.common import (
    FigureResult,
    T2_THREADS,
    footprint_coefficients,
    measured_scale,
    scaled_sweep,
)
from repro.generators.rmat import rmat_graph
from repro.machine.scale import ScaledInstance
from repro.machine.spec import ULTRASPARC_T2
from repro.util.seeding import DEFAULT_SEED

__all__ = ["run", "TARGET_N", "TARGET_M"]

TARGET_N = 1 << 25  # 33.5M vertices
TARGET_M = 268_000_000
#: Paper: "The initial array size is set to 16 in this case."
INITIAL_SIZE = 16


def run(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    backend: str = "serial",
    workers: int | None = None,
) -> FigureResult:
    mscale = measured_scale(15, 12, quick)
    graph = rmat_graph(mscale, 10, seed=seed, backend=backend, workers=workers)
    n0, m0 = graph.n, graph.m
    deg = np.bincount(graph.src, minlength=n0) + np.bincount(graph.dst, minlength=n0)

    series = []
    host = {}
    for label, rep in (
        ("Dyn-arr", DynArrAdjacency(n0, initial_capacity=INITIAL_SIZE)),
        ("Dyn-arr-nr", DynArrAdjacency.preallocated(n0, deg)),
    ):
        res = construct(rep, graph)
        host[label] = {
            "host_seconds": res.host_seconds,
            "host_mups": res.profile.meta.get("host_mups", 0.0),
            "vectorised": res.meta.get("vectorised", False),
        }
        bpv, bpe = footprint_coefficients(rep, n0, 2 * m0)
        inst = ScaledInstance(
            n_measured=n0,
            m_measured=m0,
            n_target=TARGET_N,
            m_target=TARGET_M,
            ops_measured=m0,
            ops_target=TARGET_M,
            bytes_per_vertex=bpv,
            bytes_per_edge=2 * bpe,
        )
        series.append(
            scaled_sweep(
                res.profile, inst, ULTRASPARC_T2, T2_THREADS,
                n_items=TARGET_M, label=label,
            )
        )

    fig = FigureResult(
        figure="Figure 2",
        title="Dyn-arr vs Dyn-arr-nr construction MUPS, UltraSPARC T2",
        series=series,
        notes=f"measured at n=2^{mscale}; target 33.5M vertices / 268M edges",
        meta={"measured_scale": mscale, "gen_backend": backend, "host": host},
    )
    da = fig.get("Dyn-arr")
    nr = fig.get("Dyn-arr-nr")
    ratio64 = nr.mups_at(64) / da.mups_at(64)
    fig.check(
        "resizing overhead is modest (paper: 'not very pronounced')",
        1.0 <= ratio64 <= 1.6,
        f"Dyn-arr-nr / Dyn-arr at 64 threads = {ratio64:.2f}",
    )
    fig.check(
        "near-28x parallel speedup at 64 threads (paper headline)",
        18.0 <= da.speedup_at(64) <= 40.0,
        f"Dyn-arr speedup {da.speedup_at(64):.1f}",
    )
    fig.check(
        "headline MUPS magnitude (paper: ~25 MUPS average for updates)",
        10.0 <= da.mups_at(64) <= 80.0,
        f"Dyn-arr {da.mups_at(64):.1f} MUPS at 64 threads",
    )
    fig.check(
        "Dyn-arr-nr is never slower than Dyn-arr",
        all(nr.seconds_at(t) <= da.seconds_at(t) * 1.001 for t in T2_THREADS),
    )
    return fig
