"""Shared machinery for the figure experiments.

The experiment pattern (DESIGN.md §1):

1. run the real data structure / kernel at a *measured scale* small enough
   for Python (2^12–2^16 vertices, the paper's R-MAT parameters and edge
   density);
2. extract the measured :class:`~repro.machine.profile.WorkProfile` and the
   structure's footprint coefficients;
3. scale the profile to the *paper's instance* with
   :func:`~repro.machine.scale.scale_profile`;
4. evaluate a thread sweep on the simulated machine and compare shapes
   against the paper's reported curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.adjacency.base import AdjacencyRepresentation
from repro.machine.profile import WorkProfile
from repro.machine.scale import ScaledInstance, scale_profile
from repro.machine.sim import ScalingResult, SimulatedMachine
from repro.machine.spec import MachineSpec
from repro.obs import manifest_meta, span

__all__ = [
    "SeriesSpec",
    "FigureResult",
    "measured_scale",
    "attach_backend_comparison",
    "footprint_coefficients",
    "measured_memory_meta",
    "scaled_sweep",
    "T2_THREADS",
    "T1_THREADS",
    "P570_CPUS",
]

#: Thread sweeps matching the paper's x-axes.
T2_THREADS = (1, 2, 4, 8, 16, 32, 64)
T1_THREADS = (1, 2, 4, 8, 16, 32)
P570_CPUS = (1, 2, 4, 8, 16)


def measured_scale(full: int, quick_value: int, quick: bool) -> int:
    """Pick the measured instance scale: smaller under ``quick`` (CI mode)."""
    return quick_value if quick else full


@dataclass(frozen=True)
class SeriesSpec:
    """One plotted series: a label plus its simulated scaling result."""

    label: str
    result: ScalingResult

    def mups_at(self, threads: int) -> float:
        i = self.result.threads.index(threads)
        return float(self.result.mups[i])

    def seconds_at(self, threads: int) -> float:
        i = self.result.threads.index(threads)
        return float(self.result.seconds[i])

    def speedup_at(self, threads: int) -> float:
        i = self.result.threads.index(threads)
        return float(self.result.speedups[i])


@dataclass
class FigureResult:
    """Everything one figure reproduction produced.

    ``checks`` maps a shape assertion's description to (passed, detail);
    benchmarks and tests assert every check passed, and EXPERIMENTS.md
    records the details.
    """

    figure: str
    title: str
    series: list[SeriesSpec] = field(default_factory=list)
    #: Free-form tabular results for figures whose x-axis is not a thread
    #: count (e.g. Figure 1's problem-size sweep).
    rows: list[dict] = field(default_factory=list)
    checks: dict[str, tuple[bool, str]] = field(default_factory=dict)
    notes: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Every figure result is attributable: stamp the run manifest so two
        # exported result files are diffable across commits/seeds/machines.
        self.meta = {**manifest_meta(), **self.meta}

    def check(self, description: str, passed: bool, detail: str = "") -> None:
        self.checks[description] = (bool(passed), detail)

    @property
    def all_passed(self) -> bool:
        return all(ok for ok, _ in self.checks.values())

    def failed_checks(self) -> list[str]:
        return [f"{d}: {detail}" for d, (ok, detail) in self.checks.items() if not ok]

    def get(self, label: str) -> SeriesSpec:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure}")

    def render(self) -> str:
        """Multi-line report: series/row tables plus check outcomes."""
        lines = [f"== {self.figure}: {self.title} =="]
        if self.notes:
            lines.append(self.notes)
        if self.rows:
            cols = list(self.rows[0].keys())
            widths = {
                c: max(len(c), *(len(_fmt(r.get(c))) for r in self.rows)) for c in cols
            }
            lines.append("")
            lines.append(" ".join(c.rjust(widths[c]) for c in cols))
            for r in self.rows:
                lines.append(" ".join(_fmt(r.get(c)).rjust(widths[c]) for c in cols))
        for s in self.series:
            lines.append("")
            lines.append(f"-- {s.label} --")
            lines.append(s.result.table())
        if self.checks:
            lines.append("")
            lines.append("-- shape checks --")
            for desc, (ok, detail) in self.checks.items():
                mark = "PASS" if ok else "FAIL"
                lines.append(f"[{mark}] {desc}" + (f" ({detail})" if detail else ""))
        return "\n".join(lines)


def attach_backend_comparison(
    fig: FigureResult,
    *,
    kernel: str,
    backend_name: str,
    workers: int,
    serial_seconds: float,
    backend_seconds: float,
    identical: bool,
    detail: str = "",
) -> None:
    """Record a measured serial-vs-backend run next to the simulated curves.

    The scaling series above are *simulated* (machine/scale.py); when an
    experiment is run with ``backend="process"`` it also times the measured
    kernel under both backends on this host.  The comparison lands as a
    result row (so ``render()`` prints it beside the sweep tables), a meta
    block (so exported JSON carries it), and a correctness check — the
    process drivers' contract is bit-identical results, so any mismatch
    fails the figure.
    """
    speedup = serial_seconds / backend_seconds if backend_seconds > 0 else 0.0
    fig.rows.append(
        {
            "kernel": kernel,
            "backend": backend_name,
            "workers": workers,
            "serial_s": round(serial_seconds, 4),
            "backend_s": round(backend_seconds, 4),
            "speedup": round(speedup, 2),
        }
    )
    fig.meta["measured_backend"] = {
        "kernel": kernel,
        "backend": backend_name,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "backend_seconds": backend_seconds,
        "speedup_vs_serial": speedup,
        "identical_to_serial": identical,
    }
    fig.check(
        f"{backend_name} backend bit-identical to serial ({kernel})",
        identical,
        detail or f"speedup {speedup:.2f}x with {workers} workers",
    )


def measured_memory_meta(mem) -> dict:
    """Meta entries for a :class:`~repro.obs.prof.MeasuredBlock`.

    Empty when memory profiling is off (the block was inert), so the
    figure runners can splat this into host dicts and
    ``WorkProfile.with_meta`` unconditionally.  The ``measured_`` prefix
    keeps the host-sampled bytes clearly apart from the machine model's
    *modelled* footprint figures.
    """
    if not getattr(mem, "enabled", False):
        return {}
    out = {}
    for key, value in mem.meta().items():
        if value is not None:
            out[f"measured_{key}"] = int(value)
    return out


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def footprint_coefficients(
    rep: AdjacencyRepresentation, n: int, arcs: int, *, header_bytes_per_vertex: float = 40.0
) -> tuple[float, float]:
    """Split a structure's measured footprint into per-vertex/per-arc bytes.

    The per-vertex header estimate covers offset/capacity/count/live/root
    arrays (five-ish words); the remainder is attributed to arcs.  Used to
    recompute the footprint at the paper's instance size.
    """
    mem = float(rep.memory_bytes())
    bpe = max(0.0, (mem - header_bytes_per_vertex * n)) / max(arcs, 1)
    return header_bytes_per_vertex, bpe


def scaled_sweep(
    profile: WorkProfile,
    instance: ScaledInstance,
    machine: MachineSpec,
    threads: Sequence[int],
    *,
    n_items: int | None = None,
    label: str = "",
    scale_barriers_with_diameter: bool = False,
    logdeg_correction: bool = False,
) -> SeriesSpec:
    """Scale a measured profile to the target instance and sweep threads."""
    with span("experiments.scaled_sweep", label=label or profile.name):
        scaled = scale_profile(
            profile,
            instance,
            scale_barriers_with_diameter=scale_barriers_with_diameter,
            logdeg_correction=logdeg_correction,
        )
        sim = SimulatedMachine(machine)
        result = sim.sweep(scaled, threads, n_items=n_items)
    return SeriesSpec(label=label or profile.name, result=result)
