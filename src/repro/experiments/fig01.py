"""Figure 1 — Dyn-arr-nr insertion rate vs problem size.

Paper setup: synthetic R-MAT, m = 10 n, n varied from thousands to tens of
millions of vertices; MUPS reported on (a) one core — 4 threads on
UltraSPARC T1, 8 threads on UltraSPARC T2 — and (b) eight cores — 32 / 64
threads.  The reported shape: performance is relatively high while the run's
memory footprint is comparable to the L2 size, then drops as the instance
outgrows the cache (T2 by ~1.5x and T1 by ~1.8x from n = 2^14 to 2^24 on
8 cores).

Reproduction: one real construction run at the measured scale provides the
per-update work; the profile is scaled to each target size (footprint
recomputed at that size) and evaluated on single-core and full-socket
machine variants.
"""

from __future__ import annotations

import numpy as np

from repro.adjacency.dynarr import DynArrAdjacency
from repro.core.update_engine import construct
from repro.experiments.common import FigureResult, footprint_coefficients, measured_scale
from repro.generators.rmat import rmat_graph
from repro.machine.scale import ScaledInstance, scale_profile
from repro.machine.sim import SimulatedMachine
from repro.machine.spec import ULTRASPARC_T1, ULTRASPARC_T2
from repro.util.seeding import DEFAULT_SEED

__all__ = ["run"]

#: Paper's x-axis: three orders of magnitude.
TARGET_SCALES = (14, 16, 18, 20, 22, 24)
EDGE_FACTOR = 10


def run(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    backend: str = "serial",
    workers: int | None = None,
) -> FigureResult:
    """Reproduce Figure 1 (a: 1 core, b: 8 cores)."""
    mscale = measured_scale(15, 12, quick)
    n0 = 1 << mscale
    graph = rmat_graph(mscale, EDGE_FACTOR, seed=seed, backend=backend, workers=workers)
    arcs0 = 2 * graph.m
    deg = np.bincount(graph.src, minlength=graph.n) + np.bincount(
        graph.dst, minlength=graph.n
    )
    rep = DynArrAdjacency.preallocated(graph.n, deg)
    res = construct(rep, graph)
    bpv, bpe = footprint_coefficients(rep, graph.n, arcs0)

    machines = {
        "T1 1 core (4 thr)": (SimulatedMachine(ULTRASPARC_T1.with_overrides(cores=1)), 4),
        "T2 1 core (8 thr)": (SimulatedMachine(ULTRASPARC_T2.with_overrides(cores=1)), 8),
        "T1 8 cores (32 thr)": (SimulatedMachine(ULTRASPARC_T1), 32),
        "T2 8 cores (64 thr)": (SimulatedMachine(ULTRASPARC_T2), 64),
    }

    rows = []
    for k in TARGET_SCALES:
        n1 = 1 << k
        m1 = EDGE_FACTOR * n1
        inst = ScaledInstance(
            n_measured=n0,
            m_measured=graph.m,
            n_target=n1,
            m_target=m1,
            ops_measured=graph.m,
            ops_target=m1,
            bytes_per_vertex=bpv,
            bytes_per_edge=2 * bpe,  # per *edge* = two arcs
        )
        scaled = scale_profile(res.profile, inst)
        row = {"n": n1, "m": m1, "footprint_MB": inst.footprint_target_bytes / 1e6}
        for label, (sim, threads) in machines.items():
            row[label] = sim.mups_at(scaled, threads, m1)
        rows.append(row)

    fig = FigureResult(
        figure="Figure 1",
        title="Dyn-arr-nr insertion MUPS vs problem size (1 core / 8 cores)",
        rows=rows,
        notes=(
            f"measured at n=2^{mscale}, m={graph.m}; profiles scaled per "
            "target size, footprint recomputed (cache model applies at the "
            "target size)"
        ),
        meta={
            "measured_scale": mscale,
            "gen_backend": backend,
            "targets": TARGET_SCALES,
            "host_seconds": res.host_seconds,
            "host_mups": res.profile.meta.get("host_mups", 0.0),
            "vectorised": res.meta.get("vectorised", False),
        },
    )

    # Shape checks from the paper's prose.
    small = rows[0]
    large = rows[-1]
    drop_t2 = small["T2 8 cores (64 thr)"] / large["T2 8 cores (64 thr)"]
    drop_t1 = small["T1 8 cores (32 thr)"] / large["T1 8 cores (32 thr)"]
    fig.check(
        "T2 8-core rate drops as n grows past the cache (paper: ~1.5x)",
        1.1 <= drop_t2 <= 3.0,
        f"drop factor {drop_t2:.2f}",
    )
    fig.check(
        "T1 8-core rate drops as n grows past the cache (paper: ~1.8x)",
        1.1 <= drop_t1 <= 3.5,
        f"drop factor {drop_t1:.2f}",
    )
    fig.check(
        "8 cores beat 1 core at every size",
        all(
            r["T2 8 cores (64 thr)"] > r["T2 1 core (8 thr)"]
            and r["T1 8 cores (32 thr)"] > r["T1 1 core (4 thr)"]
            for r in rows
        ),
    )
    fig.check(
        "T2 outperforms T1 at full socket on large instances",
        large["T2 8 cores (64 thr)"] > large["T1 8 cores (32 thr)"],
        f"{large['T2 8 cores (64 thr)']:.1f} vs {large['T1 8 cores (32 thr)']:.1f} MUPS",
    )
    return fig
