"""Figure 5 — deletions: Dyn-arr vs Treaps vs Hybrid-arr-treap.

Paper setup: construct the 33.5M / 268M R-MAT network, then time 20 million
random deletions on UltraSPARC T2.  Reported shape: "the real benefit of
using the hybrid representation is seen for deletions, where
Hybrid-arr-treap is almost 20x faster than the dynamic array
representation.  Hybrid-arr-treap is also significantly faster than Treaps."

The mechanism reproduces from measured quantities: Dyn-arr deletions scan
the victim vertex's whole block (edge endpoints are degree-biased, so the
expected scan is the size-biased mean degree — huge under a power law),
while the hybrid's high-degree vertices live in treaps with logarithmic
deletes.  Hybrid beats pure Treaps because the abundant low-degree deletes
stay on short array scans without lock overhead.
"""

from __future__ import annotations

from repro.core.update_engine import apply_stream, construct
from repro.experiments.common import (
    FigureResult,
    T2_THREADS,
    footprint_coefficients,
    measured_memory_meta,
    measured_scale,
    scaled_sweep,
)
from repro.obs.prof import measure_block
from repro.experiments.fig04 import TARGET_M, TARGET_N, make_reps
from repro.generators.rmat import rmat_graph
from repro.generators.streams import deletion_stream
from repro.machine.scale import ScaledInstance, rmat_size_biased_growth
from repro.machine.spec import ULTRASPARC_T2
from repro.util.seeding import DEFAULT_SEED, mix_seed

__all__ = ["run", "TARGET_DELETES"]

TARGET_DELETES = 20_000_000
TARGET_SCALE = 25


def run(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    backend: str = "serial",
    workers: int | None = None,
) -> FigureResult:
    mscale = measured_scale(14, 11, quick)
    graph = rmat_graph(mscale, 10, seed=seed, backend=backend, workers=workers)
    n0, m0 = graph.n, graph.m
    # Same deletion fraction as the paper: 20M of 268M edges.
    k_del = max(1, int(round(m0 * TARGET_DELETES / TARGET_M)))
    dels = deletion_stream(graph, k_del, seed=mix_seed(seed, "fig05-deletes"))

    # Dyn-arr probe scans grow with the size-biased mean degree between the
    # measured and target scales (analytically 1.25^Δk for the paper's R-MAT
    # parameters — see rmat_size_biased_growth); the hybrid's array scans
    # stay bounded by degree_thresh and treap depths grow only
    # logarithmically, which is the entire Figure 5 story.
    probe_growth = rmat_size_biased_growth(mscale, TARGET_SCALE)

    series = []
    host = {}
    for label, rep in make_reps(n0, 2 * m0, seed):
        construct(rep, graph)
        with measure_block() as mem:
            res = apply_stream(
                rep,
                dels,
                phase_name="deletions",
                probe_scale=probe_growth if label == "Dyn-arr" else 1.0,
            )
        mem_meta = measured_memory_meta(mem)
        profile = res.profile.with_meta(**mem_meta) if mem_meta else res.profile
        host[label] = {
            "host_seconds": res.host_seconds,
            "host_mups": res.profile.meta.get("host_mups", 0.0),
            "vectorised": res.meta.get("vectorised", False),
            **mem_meta,
        }
        bpv, bpe = footprint_coefficients(rep, n0, 2 * m0)
        inst = ScaledInstance(
            n_measured=n0, m_measured=m0,
            n_target=TARGET_N, m_target=TARGET_M,
            ops_measured=k_del, ops_target=TARGET_DELETES,
            bytes_per_vertex=bpv, bytes_per_edge=2 * bpe,
        )
        series.append(
            scaled_sweep(
                profile, inst, ULTRASPARC_T2, T2_THREADS,
                n_items=TARGET_DELETES, label=label,
                logdeg_correction=(label != "Dyn-arr"),
            )
        )

    fig = FigureResult(
        figure="Figure 5",
        title="Deletion MUPS after construction: Dyn-arr vs Treaps vs Hybrid, T2",
        series=series,
        notes=(
            f"measured at n=2^{mscale} with {k_del} deletions "
            f"(paper ratio: 20M of 268M edges)"
        ),
        meta={"measured_scale": mscale, "k_del": k_del, "gen_backend": backend, "host": host},
    )
    da = fig.get("Dyn-arr")
    tr = fig.get("Treaps")
    hy = fig.get("Hybrid-arr-treap")
    ratio = hy.mups_at(64) / da.mups_at(64)
    fig.check(
        "Hybrid ~20x faster than Dyn-arr for deletions (paper: 'almost 20x')",
        6.0 <= ratio <= 60.0,
        f"measured ratio {ratio:.1f}",
    )
    fig.check(
        # Direction reproduces; the paper's margin is wider ("significantly
        # faster") — our model attributes most of a deletion's cost to shared
        # memory latency, which both tree structures pay alike.  Recorded as
        # a known magnitude delta in EXPERIMENTS.md.
        "Hybrid faster than Treaps for deletions (paper: 'significantly')",
        hy.mups_at(64) > 1.02 * tr.mups_at(64),
        f"{hy.mups_at(64):.1f} vs {tr.mups_at(64):.1f} MUPS",
    )
    fig.check(
        "Treaps beat Dyn-arr for deletions (log vs linear scans)",
        tr.mups_at(64) > da.mups_at(64),
        f"{tr.mups_at(64):.1f} vs {da.mups_at(64):.1f} MUPS",
    )
    return fig
