"""Figure 9 — induced subgraph kernel on UltraSPARC T1.

Paper setup: R-MAT graph of 20M vertices / 200M edges, integral time-stamps
uniform in [1, 100], edges randomly shuffled to remove generator locality;
extract the subgraph induced by edges in the interval (20, 70).  Each edge
is visited at most twice (mark pass + build/delete pass).  Reported: "the
induced subgraph kernel achieves a good parallel speedup on UltraSPARC T1."
"""

from __future__ import annotations

from repro.core.induced import induced_subgraph
from repro.experiments.common import (
    FigureResult,
    T1_THREADS,
    measured_memory_meta,
    measured_scale,
    scaled_sweep,
)
from repro.generators.rmat import rmat_graph
from repro.obs.prof import measure_block
from repro.machine.scale import ScaledInstance
from repro.machine.spec import ULTRASPARC_T1
from repro.util.seeding import DEFAULT_SEED

__all__ = ["run", "TARGET_N", "TARGET_M", "INTERVAL"]

TARGET_N = 20_000_000
TARGET_M = 200_000_000
INTERVAL = (20, 70)
TS_RANGE = (1, 100)


def run(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    mscale = measured_scale(15, 12, quick)
    graph = rmat_graph(mscale, 10, seed=seed, ts_range=TS_RANGE, shuffle=True)
    n0, m0 = graph.n, graph.m

    with measure_block() as mem:
        res = induced_subgraph(graph, *INTERVAL)
    mem_meta = measured_memory_meta(mem)
    profile = res.profile.with_meta(**mem_meta) if mem_meta else res.profile

    bpe = 24.0  # src + dst + ts words per stored edge
    inst = ScaledInstance(
        n_measured=n0, m_measured=m0,
        n_target=TARGET_N, m_target=TARGET_M,
        ops_measured=m0, ops_target=TARGET_M,
        bytes_per_vertex=16.0, bytes_per_edge=bpe,
    )
    series = [
        scaled_sweep(
            profile, inst, ULTRASPARC_T1, T1_THREADS,
            n_items=TARGET_M, label="induced subgraph",
        )
    ]

    kept_frac = res.n_affected / m0
    fig = FigureResult(
        figure="Figure 9",
        title="Induced subgraph kernel (interval (20,70)), UltraSPARC T1",
        series=series,
        notes=(
            f"measured at n=2^{mscale}; kept {res.n_affected}/{m0} edges "
            f"({100 * kept_frac:.1f}%), strategy={res.strategy}"
        ),
        meta={"measured_scale": mscale, "kept_frac": kept_frac, **mem_meta},
    )
    s = fig.get("induced subgraph")
    fig.check(
        "good parallel speedup on T1 (paper: 'good parallel speedup')",
        s.speedup_at(32) >= 8.0,
        f"speedup {s.speedup_at(32):.1f} at 32 threads",
    )
    fig.check(
        "interval (20,70) keeps ~49% of uniformly-[1,100]-stamped edges",
        0.44 <= kept_frac <= 0.54,
        f"{100 * kept_frac:.1f}%",
    )
    fig.check(
        "kernel picks the rebuild strategy for a minority subset",
        res.strategy == "rebuild",
        res.strategy,
    )
    fig.check(
        "each edge visited at most twice (mark + move)",
        res.profile.total("rand_accesses") <= 2.1 * 2 * m0,
        f"{res.profile.total('rand_accesses'):.3g} random accesses for {m0} edges",
    )
    return fig
