"""Command-line experiment runner.

Usage::

    python -m repro.experiments                 # all figures, quick scale
    python -m repro.experiments --full          # full measured scale
    python -m repro.experiments fig05 fig06     # a subset
    python -m repro.experiments --ablations     # the ablation sweeps too

Prints each figure's series tables and shape checks (the content recorded in
EXPERIMENTS.md) and exits non-zero if any shape check fails.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import FIGURE_MODULES, get_figure


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures on the simulated machines.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=list(FIGURE_MODULES),
        help=f"figure modules to run (default: all of {', '.join(FIGURE_MODULES)})",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at full measured scale (slower, tighter extrapolation)",
    )
    parser.add_argument(
        "--ablations",
        action="store_true",
        help="also run the four ablation sweeps",
    )
    args = parser.parse_args(argv)

    failed = 0
    for name in args.figures:
        run = get_figure(name)
        result = run(quick=not args.full)
        print(result.render())
        print()
        if not result.all_passed:
            failed += 1

    if args.ablations:
        from repro.experiments import ablations

        for fn in (
            ablations.run_resize_policy,
            ablations.run_degree_thresh,
            ablations.run_stream_order,
            ablations.run_mix_ratio,
            ablations.run_compression,
            ablations.run_delta_sweep,
        ):
            result = fn(quick=not args.full)
            print(result.render())
            print()
            if not result.all_passed:
                failed += 1

    if failed:
        print(f"{failed} experiment(s) had failing shape checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
