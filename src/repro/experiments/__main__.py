"""Command-line experiment runner.

Usage::

    python -m repro.experiments                 # all figures, quick scale
    python -m repro.experiments --full          # full measured scale
    python -m repro.experiments fig05 fig06     # a subset
    python -m repro.experiments --ablations     # the ablation sweeps too
    python -m repro.experiments --json report.json   # machine-readable report

Prints each figure's series tables and shape checks (the content recorded in
EXPERIMENTS.md) and exits non-zero if any shape check fails.  ``--json``
additionally writes every result — series numbers, rows, checks, manifest
meta — to a report file; the nightly CI job uploads this as its artifact.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path

from repro.experiments import FIGURE_MODULES, FigureResult, get_figure
from repro.experiments.report import ABLATIONS, ablation_runners, figure_index_table
from repro.obs import ensure_manifest
from repro.util.jsonify import jsonify


def _result_dict(name: str, result: FigureResult) -> dict:
    """Flatten one figure result for the JSON report."""
    return {
        "module": name,
        "figure": result.figure,
        "title": result.title,
        "notes": result.notes,
        "all_passed": result.all_passed,
        "checks": {
            desc: {"passed": ok, "detail": detail}
            for desc, (ok, detail) in result.checks.items()
        },
        "rows": result.rows,
        "meta": result.meta,
        "series": [
            {
                "label": s.label,
                "machine": s.result.machine,
                "threads": list(s.result.threads),
                "seconds": s.result.seconds,
                "speedups": s.result.speedups,
                "mups": s.result.mups,
            }
            for s in result.series
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures on the simulated machines.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=list(FIGURE_MODULES),
        help=f"figure modules to run (default: all of {', '.join(FIGURE_MODULES)})",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at full measured scale (slower, tighter extrapolation)",
    )
    parser.add_argument(
        "--ablations",
        action="store_true",
        help=(
            f"also run the {len(ABLATIONS)} ablation sweeps "
            f"({', '.join(ABLATIONS)})"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write a machine-readable report of every result",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=["serial", "process"],
        help="graph-generation backend for the figures that accept one "
             "(process = communication-free parallel R-MAT on the worker "
             "pool, bit-identical to serial; see docs/GENERATORS.md)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-backend worker count (default: visible CPUs)",
    )
    parser.add_argument(
        "--memprof",
        action="store_true",
        help="measure peak heap/RSS of each figure's kernel "
             "(measured_peak_bytes lands in host dicts and profile meta)",
    )
    parser.add_argument(
        "--figure-index",
        action="store_true",
        help="print the generated fig01-fig11 index table (EXPERIMENTS.md block) and exit",
    )
    args = parser.parse_args(argv)

    if args.figure_index:
        print(figure_index_table())
        return 0

    if args.memprof:
        from repro.obs.prof import enable_memory_profiling

        enable_memory_profiling()

    failed = 0
    report: list[dict] = []
    for name in args.figures:
        run = get_figure(name)
        kwargs = {}
        # Only some figures take an execution backend; pass it through
        # where the signature accepts it so the rest stay untouched.
        params = inspect.signature(run).parameters
        if "backend" in params:
            kwargs["backend"] = args.backend
            if "workers" in params:
                kwargs["workers"] = args.workers
        result = run(quick=not args.full, **kwargs)
        print(result.render())
        print()
        report.append(_result_dict(name, result))
        if not result.all_passed:
            failed += 1

    if args.ablations:
        for _key, fn in ablation_runners():
            result = fn(quick=not args.full)
            print(result.render())
            print()
            report.append(_result_dict(fn.__name__, result))
            if not result.all_passed:
                failed += 1

    if args.json:
        doc = {
            "manifest": ensure_manifest().to_dict(),
            "full_scale": bool(args.full),
            "n_results": len(report),
            "n_failed": failed,
            "results": report,
        }
        Path(args.json).write_text(json.dumps(jsonify(doc), indent=2, sort_keys=True))
        print(f"wrote report for {len(report)} experiment(s) to {args.json}")

    if failed:
        print(f"{failed} experiment(s) had failing shape checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
