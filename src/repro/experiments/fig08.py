"""Figure 8 — 1 million connectivity queries on the link-cut forest.

Paper setup: the Figure 7 forest (10M vertices / 84M edges), 1M connectivity
queries on UltraSPARC T2; each query is two findroot pointer chases of
O(diameter) hops.  Reported: speedup of 20 for parallel query processing;
the paper's headline rate for this network is 7.3M queries per second.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.connectivity import ConnectivityIndex
from repro.experiments.common import (
    FigureResult,
    SeriesSpec,
    T2_THREADS,
    attach_backend_comparison,
    measured_scale,
    scaled_sweep,
)
from repro.machine.sim import ScalingResult
from repro.experiments.fig07 import TARGET_M, TARGET_N, build_measured_forest
from repro.machine.scale import ScaledInstance
from repro.machine.spec import ULTRASPARC_T2
from repro.util.seeding import DEFAULT_SEED, mix_seed

__all__ = ["run", "TARGET_QUERIES"]

TARGET_QUERIES = 1_000_000


def run(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    backend: str = "serial",
    workers: int | None = None,
) -> FigureResult:
    mscale = measured_scale(15, 12, quick)
    graph, csr, forest, record = build_measured_forest(mscale, seed)
    n0, m0 = graph.n, graph.m
    k_measured = 50_000 if quick else 200_000

    index = ConnectivityIndex(forest, record)
    query_seed = mix_seed(seed, "fig08-queries")
    t0 = time.perf_counter()
    qr = index.random_query_batch(k_measured, seed=query_seed)
    serial_seconds = time.perf_counter() - t0

    # The query working set is the parent array; hop counts per query grow
    # with the BFS-tree depth, O(log n) for small-world graphs — captured by
    # the logdeg-free diameter scaling of span/barriers being irrelevant here
    # (a single read-only phase), so we fold depth growth into the op count.
    depth_growth = (
        (TARGET_N).bit_length() / float((n0).bit_length())
    )
    inst = ScaledInstance(
        n_measured=n0, m_measured=m0,
        n_target=TARGET_N, m_target=TARGET_M,
        ops_measured=k_measured,
        ops_target=int(TARGET_QUERIES * depth_growth),
        bytes_per_vertex=8.0,  # the parent array
        bytes_per_edge=0.0,
    )
    series = [
        scaled_sweep(
            qr.profile, inst, ULTRASPARC_T2, T2_THREADS,
            n_items=int(TARGET_QUERIES * depth_growth), label="1M connectivity queries",
        )
    ]
    # Rates should count true queries, not depth-adjusted ops; rebuild the
    # series with the real query count for MUPS reporting.
    base = series[0].result
    series = [
        SeriesSpec(
            label="1M connectivity queries",
            result=ScalingResult(
                machine=base.machine,
                workload=base.workload,
                threads=base.threads,
                seconds=base.seconds,
                n_items=TARGET_QUERIES,
                meta=base.meta,
            ),
        )
    ]

    fig = FigureResult(
        figure="Figure 8",
        title="1M connectivity queries on the link-cut forest, UltraSPARC T2",
        series=series,
        notes=(
            f"measured {k_measured} queries at n=2^{mscale}; "
            f"{qr.hops_per_query:.1f} pointer hops per query; hop count "
            f"scaled by log-depth growth factor {depth_growth:.2f}"
        ),
        meta={"measured_scale": mscale, "hops_per_query": qr.hops_per_query},
    )
    s = fig.get("1M connectivity queries")
    rate_best = max(float(r) for r in s.result.rates)
    fig.check(
        # Our best rate lands within ~4x of the paper's 7.3M/s; the gap is
        # dominated by the BFS-tree depth at the 10M-vertex scale, which we
        # extrapolate logarithmically from the measured forest rather than
        # observe (recorded in EXPERIMENTS.md).
        "query rate magnitude (paper: 7.3M queries/s on this network)",
        2.0e6 <= rate_best <= 40.0e6,
        f"best {rate_best / 1e6:.1f} M queries/s",
    )
    fig.check(
        "speedup ~20 on 32 threads (paper: 20)",
        13.0 <= s.speedup_at(32) <= 30.0,
        f"{s.speedup_at(32):.1f}",
    )
    fig.check(
        "queries keep scaling to 64 threads (read-only, no synchronisation)",
        s.speedup_at(64) >= s.speedup_at(32),
        f"{s.speedup_at(64):.1f} vs {s.speedup_at(32):.1f}",
    )
    if backend != "serial":
        # Same seed → same query pairs; only the execution policy differs.
        t0 = time.perf_counter()
        qr_be = index.random_query_batch(
            k_measured, seed=query_seed, backend=backend, workers=workers
        )
        backend_seconds = time.perf_counter() - t0
        identical = (
            np.array_equal(qr.connected, qr_be.connected)
            and qr.total_hops == qr_be.total_hops
        )
        be_workers = qr_be.profile.meta.get("workers", workers) or 1
        attach_backend_comparison(
            fig,
            kernel="connectivity queries",
            backend_name=str(backend),
            workers=int(be_workers),
            serial_seconds=serial_seconds,
            backend_seconds=backend_seconds,
            identical=identical,
        )
    return fig
