"""Figure 7 — link-cut tree construction time and speedup.

Paper setup: small-world network of 10M vertices / 84M edges; construction
(parallel BFS spanning tree + connected components) on UltraSPARC T2.
Reported: about 3 seconds, with a speedup of 22 on 32 threads.
"""

from __future__ import annotations

from repro.adjacency.csr import build_csr
from repro.core.linkcut import LinkCutForest
from repro.experiments.common import (
    FigureResult,
    T2_THREADS,
    measured_scale,
    scaled_sweep,
)
from repro.generators.rmat import rmat_graph
from repro.machine.scale import ScaledInstance
from repro.machine.spec import ULTRASPARC_T2
from repro.util.seeding import DEFAULT_SEED

__all__ = ["run", "TARGET_N", "TARGET_M", "build_measured_forest"]

TARGET_N = 10_000_000
TARGET_M = 84_000_000
#: Paper instance density: m = 8.4 n.
EDGE_FACTOR = 8.4


def build_measured_forest(mscale: int, seed: int):
    """Shared with Figure 8: (graph, csr, forest, construction record)."""
    n0 = 1 << mscale
    graph = rmat_graph(mscale, m=int(EDGE_FACTOR * n0), seed=seed)
    csr = build_csr(graph)
    forest, record = LinkCutForest.from_csr(csr)
    return graph, csr, forest, record


def run(quick: bool = False, seed: int = DEFAULT_SEED) -> FigureResult:
    mscale = measured_scale(15, 12, quick)
    graph, csr, forest, record = build_measured_forest(mscale, seed)
    n0, m0 = graph.n, graph.m

    # Footprint: CSR arcs + labels/dist/parent arrays.
    bpv, bpe = 32.0, float(max(0.0, csr.memory_bytes() - 8 * n0)) / max(csr.n_arcs, 1) * 2
    inst = ScaledInstance(
        n_measured=n0, m_measured=m0,
        n_target=TARGET_N, m_target=TARGET_M,
        ops_measured=m0, ops_target=TARGET_M,
        bytes_per_vertex=bpv, bytes_per_edge=bpe,
    )
    series = [
        scaled_sweep(
            record.profile, inst, ULTRASPARC_T2, T2_THREADS,
            label="link-cut construction",
            scale_barriers_with_diameter=True,
        )
    ]

    fig = FigureResult(
        figure="Figure 7",
        title="Link-cut tree construction, UltraSPARC T2 (10M vertices / 84M edges)",
        series=series,
        notes=(
            f"measured at n=2^{mscale} (m={m0}); construction = connected "
            f"components + multi-source BFS; measured max tree depth "
            f"{record.max_depth}, {record.components.n_components} components"
        ),
        meta={"measured_scale": mscale, "max_depth": record.max_depth},
    )
    s = fig.get("link-cut construction")
    fig.check(
        "construction takes ~3 s at full thread count (paper: 'about 3 seconds')",
        1.0 <= s.seconds_at(64) <= 10.0,
        f"{s.seconds_at(64):.2f} s at 64 threads",
    )
    fig.check(
        "speedup ~22 on 32 threads (paper: 22)",
        14.0 <= s.speedup_at(32) <= 30.0,
        f"{s.speedup_at(32):.1f}",
    )
    fig.check(
        "forest is a valid spanning forest of the measured graph",
        forest.n_trees() == record.components.n_components,
        f"{forest.n_trees()} trees vs {record.components.n_components} components",
    )
    return fig
