"""Experiment harness: one module per figure of the paper's evaluation.

Each ``figNN`` module exposes ``run(quick=False) -> FigureResult``: it runs
the real kernels at a reduced scale, scales the measured work profile to the
paper's instance (see DESIGN.md §1 and :mod:`repro.machine.scale`), sweeps
the simulated machine over thread counts, and returns the series the paper
plots together with shape checks ("who wins, by what factor").

``python -m repro.experiments`` runs everything and prints the tables used
to fill EXPERIMENTS.md.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.experiments.common import (
    FigureResult,
    SeriesSpec,
    footprint_coefficients,
    measured_scale,
)

FIGURE_MODULES = (
    "fig01",
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
)


def get_figure(name: str) -> Callable[..., FigureResult]:
    """Resolve a figure's ``run`` callable by module name (lazy import)."""
    if name not in FIGURE_MODULES:
        raise KeyError(f"unknown figure {name!r}; available: {FIGURE_MODULES}")
    mod = importlib.import_module(f"repro.experiments.{name}")
    return mod.run


def run_all(quick: bool = True) -> dict[str, FigureResult]:
    """Run every figure reproduction; returns results keyed by module name."""
    return {name: get_figure(name)(quick=quick) for name in FIGURE_MODULES}


def __getattr__(name: str):
    if name in FIGURE_MODULES or name == "ablations":
        mod = importlib.import_module(f"repro.experiments.{name}")
        globals()[name] = mod
        return mod
    raise AttributeError(f"module 'repro.experiments' has no attribute {name!r}")


__all__ = [
    "FigureResult",
    "SeriesSpec",
    "footprint_coefficients",
    "measured_scale",
    "FIGURE_MODULES",
    "get_figure",
    "run_all",
]
