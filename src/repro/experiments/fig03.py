"""Figure 3 — insertion strategies: Dyn-arr-nr vs batched bound vs Vpart/Epart.

Paper setup: insert-only updates for a 33.5M / 268M R-MAT graph on 8 cores
of UltraSPARC T2 and T1; the batched series is the *upper bound* obtained
from the semi-sorting time alone.  Reported shape: "Dyn-arr outperforms the
batched representation, as well as Epart and Vpart.  The trends on
UltraSPARC T2 and UltraSPARC T1 are similar."
"""

from __future__ import annotations

import numpy as np

from repro.adjacency.batch import semisort_phase
from repro.adjacency.dynarr import DynArrAdjacency
from repro.adjacency.epart import EPartAdjacency
from repro.adjacency.vpart import VPartAdjacency
from repro.core.update_engine import construct
from repro.experiments.common import (
    FigureResult,
    SeriesSpec,
    T1_THREADS,
    T2_THREADS,
    footprint_coefficients,
    measured_scale,
    scaled_sweep,
)
from repro.generators.rmat import rmat_graph
from repro.machine.profile import WorkProfile
from repro.machine.scale import ScaledInstance
from repro.machine.sim import SimulatedMachine
from repro.machine.spec import ULTRASPARC_T1, ULTRASPARC_T2
from repro.util.seeding import DEFAULT_SEED

__all__ = ["run"]

TARGET_N = 1 << 25
TARGET_M = 268_000_000


def run(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    backend: str = "serial",
    workers: int | None = None,
) -> FigureResult:
    mscale = measured_scale(15, 12, quick)
    graph = rmat_graph(mscale, 10, seed=seed, backend=backend, workers=workers)
    n0, m0 = graph.n, graph.m
    deg = np.bincount(graph.src, minlength=n0) + np.bincount(graph.dst, minlength=n0)

    def instance(bpv: float, bpe: float) -> ScaledInstance:
        return ScaledInstance(
            n_measured=n0, m_measured=m0,
            n_target=TARGET_N, m_target=TARGET_M,
            ops_measured=m0, ops_target=TARGET_M,
            bytes_per_vertex=bpv, bytes_per_edge=2 * bpe,
        )

    series: list[SeriesSpec] = []
    host = {}
    for machine, threads in ((ULTRASPARC_T2, T2_THREADS), (ULTRASPARC_T1, T1_THREADS)):
        tag = "T2" if machine is ULTRASPARC_T2 else "T1"
        for label, rep in (
            ("Dyn-arr-nr", DynArrAdjacency.preallocated(n0, deg)),
            ("Vpart", VPartAdjacency(n0, expected_m=2 * m0)),
            ("Epart", EPartAdjacency(n0, expected_m=2 * m0)),
        ):
            res = construct(rep, graph)
            host[f"{label} ({tag})"] = {
                "host_seconds": res.host_seconds,
                "host_mups": res.profile.meta.get("host_mups", 0.0),
                "vectorised": res.meta.get("vectorised", False),
            }
            bpv, bpe = footprint_coefficients(rep, n0, 2 * m0)
            series.append(
                scaled_sweep(
                    res.profile, instance(bpv, bpe), machine, threads,
                    n_items=TARGET_M, label=f"{label} ({tag})",
                )
            )
        # Batched upper bound: the semi-sort alone, at target size directly.
        sort_profile = WorkProfile(
            "semisort-bound",
            (semisort_phase(2 * TARGET_M, TARGET_N),),
            meta={"n": TARGET_N, "updates": TARGET_M},
        )
        sim = SimulatedMachine(machine)
        series.append(
            SeriesSpec(
                label=f"Batched bound ({tag})",
                result=sim.sweep(sort_profile, threads, n_items=TARGET_M),
            )
        )

    fig = FigureResult(
        figure="Figure 3",
        title="Insertion strategies on 8 cores: Dyn-arr-nr vs batched/Vpart/Epart",
        series=series,
        notes=f"measured at n=2^{mscale}; batched series is the semi-sort lower-bound cost",
        meta={"measured_scale": mscale, "gen_backend": backend, "host": host},
    )

    for tag, full in (("T2", 64), ("T1", 32)):
        da = fig.get(f"Dyn-arr-nr ({tag})")
        for other in (f"Batched bound ({tag})", f"Vpart ({tag})", f"Epart ({tag})"):
            o = fig.get(other)
            fig.check(
                f"Dyn-arr-nr beats {other} at {full} threads (paper: Dyn-arr wins)",
                da.mups_at(full) > o.mups_at(full),
                f"{da.mups_at(full):.1f} vs {o.mups_at(full):.1f} MUPS",
            )
    t2 = fig.get("Dyn-arr-nr (T2)")
    t1 = fig.get("Dyn-arr-nr (T1)")
    fig.check(
        "trends on T2 and T1 are similar (both scale well)",
        t2.speedup_at(64) > 15 and t1.speedup_at(32) > 10,
        f"T2 speedup {t2.speedup_at(64):.1f}, T1 speedup {t1.speedup_at(32):.1f}",
    )
    vp = fig.get("Vpart (T2)")
    fig.check(
        "Vpart scaling flattens at high thread counts (replicated reads)",
        vp.speedup_at(64) < t2.speedup_at(64),
        f"Vpart {vp.speedup_at(64):.1f} vs Dyn-arr-nr {t2.speedup_at(64):.1f}",
    )
    return fig
