"""Figure 4 — construction (insertions): Dyn-arr vs Treaps vs Hybrid-arr-treap.

Paper setup: R-MAT 33.5M / 268M on UltraSPARC T2, graph construction treated
as a series of insertions.  Reported shape: "Dyn-arr is 1.4 times faster
than the hybrid representation, while Hybrid-arr-treap is slightly faster
than Treaps."
"""

from __future__ import annotations

from repro.adjacency.dynarr import DynArrAdjacency
from repro.adjacency.hybrid import HybridAdjacency
from repro.adjacency.treap import TreapAdjacency
from repro.core.update_engine import construct
from repro.experiments.common import (
    FigureResult,
    T2_THREADS,
    footprint_coefficients,
    measured_memory_meta,
    measured_scale,
    scaled_sweep,
)
from repro.generators.rmat import rmat_graph
from repro.obs.prof import measure_block
from repro.machine.scale import ScaledInstance
from repro.machine.spec import ULTRASPARC_T2
from repro.util.seeding import DEFAULT_SEED

__all__ = ["run", "make_reps", "TARGET_N", "TARGET_M"]

TARGET_N = 1 << 25
TARGET_M = 268_000_000


def make_reps(n: int, expected_arcs: int, seed: int):
    """The three structures of Figures 4–6, with the paper's parameters."""
    return (
        ("Dyn-arr", DynArrAdjacency(n, expected_m=expected_arcs)),
        ("Treaps", TreapAdjacency(n, seed=seed)),
        ("Hybrid-arr-treap", HybridAdjacency(n, seed=seed)),
    )


def run(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    backend: str = "serial",
    workers: int | None = None,
) -> FigureResult:
    mscale = measured_scale(14, 11, quick)
    graph = rmat_graph(mscale, 10, seed=seed, backend=backend, workers=workers)
    n0, m0 = graph.n, graph.m

    series = []
    host = {}
    for label, rep in make_reps(n0, 2 * m0, seed):
        with measure_block() as mem:
            res = construct(rep, graph)
        mem_meta = measured_memory_meta(mem)
        profile = res.profile.with_meta(**mem_meta) if mem_meta else res.profile
        host[label] = {
            "host_seconds": res.host_seconds,
            "host_mups": res.profile.meta.get("host_mups", 0.0),
            "vectorised": res.meta.get("vectorised", False),
            **mem_meta,
        }
        bpv, bpe = footprint_coefficients(rep, n0, 2 * m0)
        inst = ScaledInstance(
            n_measured=n0, m_measured=m0,
            n_target=TARGET_N, m_target=TARGET_M,
            ops_measured=m0, ops_target=TARGET_M,
            bytes_per_vertex=bpv, bytes_per_edge=2 * bpe,
        )
        series.append(
            scaled_sweep(
                profile, inst, ULTRASPARC_T2, T2_THREADS,
                n_items=TARGET_M, label=label,
                logdeg_correction=(label != "Dyn-arr"),
            )
        )

    fig = FigureResult(
        figure="Figure 4",
        title="Construction MUPS: Dyn-arr vs Treaps vs Hybrid, UltraSPARC T2",
        series=series,
        notes=f"measured at n=2^{mscale}; target 33.5M / 268M",
        meta={"measured_scale": mscale, "gen_backend": backend, "host": host},
    )
    da = fig.get("Dyn-arr")
    tr = fig.get("Treaps")
    hy = fig.get("Hybrid-arr-treap")
    ratio = da.mups_at(64) / hy.mups_at(64)
    fig.check(
        "Dyn-arr ~1.4x faster than Hybrid for insertions (paper: 1.4x)",
        1.1 <= ratio <= 2.2,
        f"measured ratio {ratio:.2f}",
    )
    fig.check(
        "Hybrid faster than Treaps for insertions (paper: 'slightly faster')",
        hy.mups_at(64) > tr.mups_at(64),
        f"{hy.mups_at(64):.1f} vs {tr.mups_at(64):.1f} MUPS",
    )
    fig.check(
        "all three scale with threads",
        min(da.speedup_at(64), tr.speedup_at(64), hy.speedup_at(64)) > 5.0,
        f"speedups {da.speedup_at(64):.1f}/{tr.speedup_at(64):.1f}/{hy.speedup_at(64):.1f}",
    )
    return fig
