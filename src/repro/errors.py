"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with one ``except`` clause while
still being able to distinguish the failure classes that matter in practice
(bad vertex ids, malformed update streams, misconfigured machine models).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "VertexError",
    "EdgeError",
    "StreamError",
    "MachineModelError",
    "ProfileError",
    "NotInForestError",
    "ParallelError",
    "WorkerCrashError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """A graph-level invariant was violated (sizes, dtypes, topology)."""


class VertexError(GraphError):
    """A vertex id is out of range or otherwise invalid."""


class EdgeError(GraphError):
    """An edge endpoint/attribute is invalid, or an edge is missing."""


class StreamError(ReproError):
    """An update stream is malformed (bad op codes, shape mismatch)."""


class MachineModelError(ReproError):
    """A machine specification or cost-model parameter is invalid."""


class ProfileError(ReproError):
    """A work profile is malformed (negative counts, missing phases)."""


class NotInForestError(ReproError):
    """A link-cut tree operation referenced a vertex with no tree node."""


class ParallelError(ReproError):
    """The multiprocess execution backend was misused or misconfigured."""


class WorkerCrashError(ParallelError):
    """A pool worker died (or failed) instead of returning a result.

    Raised by :class:`repro.parallel.pool.WorkerPool` when a worker process
    exits abnormally mid-task or reports an exception, so callers see a
    clean error instead of a hang on a half-finished round.
    """


class ServiceError(ReproError):
    """The streaming connectivity service was misused or is unavailable.

    Raised by :mod:`repro.service` for protocol violations (querying before
    the first epoch is published, unbalanced epoch releases, submitting to a
    closed drainer) — never for query-level input errors, which surface as
    HTTP 400s carrying the underlying :class:`GraphError` message.
    """
