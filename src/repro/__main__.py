"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — synthesise an R-MAT / Watts–Strogatz / Erdős–Rényi graph
  to ``.npz`` or text;
* ``stats`` — small-world statistics of a stored graph (degrees,
  clustering, effective diameter, components);
* ``connectivity`` — build the link-cut spanning forest and answer
  s–t queries;
* ``simulate`` — construct the graph on a chosen representation and sweep
  a simulated machine (the Figure 2/4 style table for *your* graph);
* ``trace`` — run a canned workload with span tracing enabled, print the
  span tree (host time, simulated time, top counters) and export the
  manifest-stamped JSONL trace (see docs/OBSERVABILITY.md).  Takes
  ``--backend process --workers N`` to execute the analysis kernels on the
  shared-memory worker pool (docs/PARALLEL.md); the ``fig08``/``fig10``
  workloads then also time serial vs process, verify bit-identity, merge
  the measured comparison into ``BENCH_repro.json`` and append it to the
  bench-history ledger; the ``genscale`` workload does the same for
  communication-free parallel R-MAT generation plus chunked-stream
  construction (docs/GENERATORS.md).  ``--chrome``/``--speedscope``/``--folded``
  additionally export the trace for ``chrome://tracing``, speedscope and
  flamegraph tools; ``--memprof`` turns on per-span memory accounting;
  ``--quiet`` and ``--no-manifest`` trim the output/provenance for
  scripted runs;
* ``bench`` — inspect the bench-history ledger
  (``benchmarks/history.jsonl``): ``bench diff A B`` prints per-kernel
  deltas between two recorded runs, ``bench trend`` the whole trajectory,
  both flagging drift beyond ``--threshold``.  Exit codes are distinct
  and scriptable: **0** clean, **3** drift beyond the threshold (only
  with ``--fail-on-drift``), **2** usage or ledger errors (unknown run
  selector, missing/corrupt history);
* ``kernels`` — show the compiled-kernel tier dispatch state
  (docs/PERFORMANCE.md): numba availability, the ``REPRO_KERNEL_TIER``
  override, the auto-probed default, and where each kernel dispatches
  from; ``--warmup`` JIT-compiles everything now and reports the
  compile cost benchmark runs keep out of timed sections;
* ``obs`` — the live telemetry runtime (docs/OBSERVABILITY.md):
  ``obs serve`` runs a workload with the background collector on and an
  OpenMetrics endpoint up, ``obs scrape`` fetches (and with ``--check``
  structurally validates) a payload from a running endpoint, ``obs top``
  renders the collector's windowed rollups as a terminal table;
* ``serve`` — the streaming connectivity service (docs/SERVICE.md): boot
  an HTTP query front end over epoch-rotated CSR snapshots while a writer
  thread drains an R-MAT update stream into the dynamic structure.
  ``--backend process --workers N`` shards ``/components`` across worker
  processes; ``--duration`` holds the server up for scrapes and external
  query drivers; ``--report`` writes a JSON latency/throughput summary.

The figure reproductions live under ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np


def _say(args: argparse.Namespace, *parts: object) -> None:
    """Print unless the command was invoked with ``--quiet``."""
    if not getattr(args, "quiet", False):
        print(*parts)


def _load(path: str):
    from repro.io import load_npz, read_edgelist

    p = Path(path)
    if p.suffix == ".npz":
        return load_npz(p)
    return read_edgelist(p)


def _save(path: str, graph) -> None:
    from repro.io import save_npz, write_edgelist

    p = Path(path)
    if p.suffix == ".npz":
        save_npz(p, graph)
    else:
        write_edgelist(p, graph)


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.generators import erdos_renyi, rmat_graph, watts_strogatz

    if args.model == "rmat":
        ts_range = (args.ts_min, args.ts_max) if args.ts_max >= 0 else None
        g = rmat_graph(
            args.scale, args.edge_factor, seed=args.seed, ts_range=ts_range,
            shuffle=args.shuffle,
        )
    elif args.model == "ws":
        g = watts_strogatz(1 << args.scale, args.k, args.beta, seed=args.seed)
    else:
        g = erdos_renyi(1 << args.scale, args.p, seed=args.seed)
    _save(args.out, g)
    print(f"wrote {g} -> {args.out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.adjacency.csr import build_csr
    from repro.core.metrics import (
        average_clustering,
        degree_stats,
        effective_diameter,
        giant_component_fraction,
    )

    g = _load(args.graph)
    csr = build_csr(g)
    s = degree_stats(csr)
    print(f"graph: n={s.n} arcs={s.n_arcs}")
    print(f"degrees: min={s.min} mean={s.mean:.2f} median={s.median:.0f} max={s.max}")
    print(f"top-1% vertices hold {100 * s.top1pct_arc_share:.1f}% of arcs "
          f"(log-log slope {s.loglog_slope:.2f})")
    samples = min(args.samples, max(1, csr.n))
    cc = average_clustering(csr, samples=samples, seed=0)
    eff, ecc = effective_diameter(csr, samples=min(8, max(1, csr.n)), seed=0)
    print(f"clustering (sampled): {cc:.4f}")
    print(f"effective diameter (90th pct): {eff:.1f}; max observed ecc: {ecc}")
    print(f"giant component: {100 * giant_component_fraction(csr):.1f}% of vertices")
    return 0


def cmd_connectivity(args: argparse.Namespace) -> int:
    from repro.adjacency.csr import build_csr
    from repro.core.connectivity import ConnectivityIndex

    g = _load(args.graph)
    index = ConnectivityIndex.from_csr(build_csr(g))
    print(f"forest built: {index.forest.n_trees()} trees over {g.n} vertices")
    if args.pairs:
        for pair in args.pairs:
            u, v = (int(x) for x in pair.split(","))
            print(f"connected({u}, {v}) = {index.query(u, v)}")
    if args.random > 0:
        res = index.random_query_batch(args.random, seed=args.seed)
        frac = float(res.connected.mean()) if res.n_queries else 0.0
        print(f"{args.random} random queries: {100 * frac:.1f}% connected, "
              f"{res.hops_per_query:.1f} hops/query")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.adjacency.registry import make_representation
    from repro.core.update_engine import construct
    from repro.machine import SimulatedMachine

    g = _load(args.graph)
    kwargs = {}
    if args.representation in ("treap", "hybrid"):
        kwargs["seed"] = args.seed
    if args.representation == "dynarr":
        kwargs["expected_m"] = 2 * g.m
    if args.representation == "dynarr-nr":
        deg = np.bincount(g.src, minlength=g.n) + np.bincount(g.dst, minlength=g.n)
        kwargs["degrees"] = deg
    rep = make_representation(args.representation, g.n, **kwargs)
    res = construct(rep, g)
    sim = SimulatedMachine(args.machine)
    print(f"constructed {g.m} edges on {args.representation!r} "
          f"(host {res.host_seconds:.2f}s)")
    print(sim.sweep(res.profile, n_items=g.m).table())
    return 0


def _resolve_trace_backend(args: argparse.Namespace):
    """Build the (possibly pooled) execution backend the trace asked for."""
    from repro.parallel.backend import resolve_backend

    be, _ = resolve_backend(args.backend, workers=args.workers)
    return be


def _trace_workload(args: argparse.Namespace, backend) -> None:
    """The traced workloads: small end-to-end slices of the library."""
    from repro import obs
    from repro.api import DynamicGraph
    from repro.core.bfs import bfs_profile
    from repro.generators import mixed_stream, rmat_graph
    from repro.machine import SimulatedMachine

    sim = SimulatedMachine(args.machine)
    graph = rmat_graph(
        args.scale, args.edge_factor, seed=args.seed, ts_range=(1, 100)
    )
    with obs.span("trace.build_graph", n=graph.n, m=graph.m):
        g = DynamicGraph.from_edgelist(graph, representation=args.representation)

    if args.workload in ("quickstart", "updates"):
        stream = mixed_stream(graph, args.updates, insert_frac=0.75, seed=args.seed)
        res = g.apply(stream)
        sim.sweep(res.profile, n_items=res.n_updates)
    if args.workload in ("quickstart", "connectivity"):
        index = g.spanning_forest()
        queries = index.random_query_batch(
            args.queries, seed=args.seed, backend=backend
        )
        sim.sweep(queries.profile, n_items=queries.n_queries)
    if args.workload in ("quickstart", "components"):
        g.connected_components(backend=backend)
    if args.workload in ("quickstart", "connectit"):
        from repro.connectit import ConnectItSpec, connect_components

        res = connect_components(
            g.snapshot(), ConnectItSpec(sampling="kout"), backend=backend
        )
        sim.sweep(res.profile(), n_items=max(res.counters.unions, 1))
    if args.workload in ("quickstart", "bfs"):
        res = g.bfs(0, ts_range=(20, 70), backend=backend)
        profile = bfs_profile(g.snapshot(), res)
        sim.sweep(profile, n_items=max(res.total_edges_scanned, 1))


def _trace_backend_compare(args: argparse.Namespace, backend) -> None:
    """The ``fig08`` / ``fig10`` workloads: measured serial-vs-process runs.

    Runs the figure's kernel once on the serial backend and once on the
    requested one, asserts the results are bit-identical, prints the
    measured wall-clock comparison, merges a ``trace.<workload>`` entry
    (host seconds, speedup, manifest) into ``BENCH_repro.json`` and
    appends the run to the bench-history ledger.
    """
    import time

    import numpy as np

    from repro import kernels, obs
    from repro.adjacency.csr import build_csr
    from repro.core.bfs import bfs
    from repro.core.connectivity import ConnectivityIndex
    from repro.generators import rmat_graph
    from repro.obs.bench import update_bench_file
    from repro.obs.history import DEFAULT_HISTORY_PATH, append_bench_history

    ts_range = (0, 1000)
    graph = rmat_graph(args.scale, args.edge_factor, seed=args.seed, ts_range=ts_range)
    with obs.span("trace.build_graph", n=graph.n, m=graph.m):
        csr = build_csr(graph)

    if args.workload == "fig10":
        source = int(np.argmax(csr.degrees()))
        t0 = time.perf_counter()
        serial = bfs(csr, source, ts_range=ts_range)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        other = backend.bfs(csr, source, ts_range=ts_range)
        other_s = time.perf_counter() - t0
        identical = bool(
            np.array_equal(serial.dist, other.dist)
            and np.array_equal(serial.parent, other.parent)
        )
        detail = f"{serial.n_levels} levels, {serial.n_reached}/{csr.n} reached"
    else:  # fig08
        index = ConnectivityIndex.from_csr(csr)
        t0 = time.perf_counter()
        serial = index.random_query_batch(args.queries, seed=args.seed)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        other = index.random_query_batch(args.queries, seed=args.seed, backend=backend)
        other_s = time.perf_counter() - t0
        identical = bool(np.array_equal(serial.connected, other.connected))
        detail = f"{args.queries} queries, {serial.hops_per_query:.1f} hops/query"

    if not identical:
        raise SystemExit(
            f"backend {backend.name!r} results differ from serial — "
            "determinism contract violated"
        )
    speedup = serial_s / other_s if other_s > 0 else float("inf")
    workers = getattr(backend, "workers", 1)
    _say(
        args,
        f"{args.workload}: serial {serial_s:.3f}s vs {backend.name} "
        f"({workers} workers) {other_s:.3f}s -> speedup {speedup:.2f}x "
        f"[results identical; {detail}]",
    )
    entry = {
        "kernel": f"trace.{args.workload}[scale={args.scale}]",
        "group": "trace-backend",
        "host_seconds": other_s,
        "extra_info": {
            "backend": backend.name,
            "workers": workers,
            "serial_seconds": serial_s,
            "speedup_vs_serial": round(speedup, 3),
            "identical_to_serial": identical,
            "detail": detail,
            **kernels.bench_meta(),
        },
    }
    doc = update_bench_file(Path.cwd() / "BENCH_repro.json", [entry])
    _say(args, f"merged measured comparison into BENCH_repro.json "
               f"({doc['n_benchmarks']} entries)")
    record = append_bench_history(Path.cwd() / DEFAULT_HISTORY_PATH, [entry])
    _say(args, f"appended run to {DEFAULT_HISTORY_PATH} "
               f"({record['n_kernels']} kernel(s))")


def _trace_genscale(args: argparse.Namespace, backend) -> None:
    """The ``genscale`` workload: measured serial-vs-backend generation.

    Times the serial ``rmat_edges`` draw against the backend's
    communication-free sliced generation of the same stream, asserts
    bit-identity, then rebuilds the graph through the streaming
    :func:`~repro.generators.parallel.iter_edge_chunks` path into a
    :class:`~repro.api.DynamicGraph` and reports construction MUPS.
    Merges a ``trace.genscale`` entry into ``BENCH_repro.json`` and the
    bench-history ledger, like the other backend-compare workloads.
    """
    import time

    from repro import kernels, obs
    from repro.api import DynamicGraph
    from repro.generators.parallel import iter_edge_chunks
    from repro.generators.rmat import rmat_edges
    from repro.obs.bench import update_bench_file
    from repro.obs.history import DEFAULT_HISTORY_PATH, append_bench_history

    m = args.edge_factor * (1 << args.scale)
    with obs.span("trace.generate_serial", scale=args.scale, m=m):
        t0 = time.perf_counter()
        s_src, s_dst = rmat_edges(args.scale, m, seed=args.seed)
        serial_s = time.perf_counter() - t0
    with obs.span("trace.generate_backend", backend=backend.name, m=m):
        t0 = time.perf_counter()
        b_src, b_dst = backend.rmat_edges(args.scale, m, seed=args.seed)
        other_s = time.perf_counter() - t0
    identical = bool(np.array_equal(s_src, b_src) and np.array_equal(s_dst, b_dst))
    if not identical:
        raise SystemExit(
            f"backend {backend.name!r} generation differs from serial — "
            "slice-protocol determinism contract violated"
        )
    del s_src, s_dst, b_src, b_dst
    with obs.span("trace.chunked_construction", scale=args.scale, m=m):
        t0 = time.perf_counter()
        g = DynamicGraph.from_edge_chunks(
            1 << args.scale,
            iter_edge_chunks(args.scale, m, seed=args.seed, ts_range=(0, 1000)),
            representation=args.representation,
        )
        construct_s = time.perf_counter() - t0
    mups = m / construct_s / 1e6 if construct_s > 0 else float("inf")
    speedup = serial_s / other_s if other_s > 0 else float("inf")
    workers = getattr(backend, "workers", 1)
    detail = (
        f"{m} edges, chunked construction {g.n_edges} stored edges "
        f"at {mups:.2f} MUPS"
    )
    _say(
        args,
        f"genscale: serial generate {serial_s:.3f}s vs {backend.name} "
        f"({workers} workers) {other_s:.3f}s -> speedup {speedup:.2f}x "
        f"[edges identical; {detail}]",
    )
    entry = {
        "kernel": f"trace.genscale[scale={args.scale}]",
        "group": "trace-backend",
        "host_seconds": other_s,
        "extra_info": {
            "backend": backend.name,
            "workers": workers,
            "serial_seconds": serial_s,
            "speedup_vs_serial": round(speedup, 3),
            "identical_to_serial": identical,
            "construct_seconds": round(construct_s, 6),
            "construct_mups": round(mups, 3),
            "detail": detail,
            **kernels.bench_meta(),
        },
    }
    doc = update_bench_file(Path.cwd() / "BENCH_repro.json", [entry])
    _say(args, f"merged measured comparison into BENCH_repro.json "
               f"({doc['n_benchmarks']} entries)")
    record = append_bench_history(Path.cwd() / DEFAULT_HISTORY_PATH, [entry])
    _say(args, f"appended run to {DEFAULT_HISTORY_PATH} "
               f"({record['n_kernels']} kernel(s))")


def cmd_trace(args: argparse.Namespace) -> int:
    from repro import kernels, obs

    # Warm the compiled kernel tier (no-op without numba) so first-call JIT
    # compilation can never land inside a timed section, BENCH_repro.json or
    # the bench-history ledger; the cost is ledgered as ``compile_seconds``.
    wu = kernels.warmup()
    if wu["compile_seconds"] > 0:
        _say(
            args,
            f"kernel warmup: tier {wu['tier']!r} compiled in "
            f"{wu['compile_seconds']:.3f}s (excluded from timings)",
        )
    if args.scale is None:
        # The figure workloads default to the scale-12 R-MAT instance the
        # benchmark baseline uses; genscale defaults a bit larger (it is
        # generation-bound); the quickstart slices stay smaller.
        if args.workload in ("fig08", "fig10"):
            args.scale = 12
        elif args.workload == "genscale":
            args.scale = 14
        else:
            args.scale = 11
    manifest = None
    if not args.no_manifest:
        manifest = obs.RunManifest.capture(
            seed=args.seed,
            machine=args.machine,
            workload=args.workload,
            backend=args.backend,
            workers=args.workers,
        )
        obs.set_manifest(manifest)
    out = Path(args.out) if args.out else Path(f"trace-{args.workload}.jsonl")
    memory = obs.MemorySink()
    jsonl = obs.JsonlSink(out)
    obs.METRICS.reset()
    obs.enable_tracing(obs.TeeSink(memory, jsonl), manifest=manifest)
    if args.memprof:
        obs.enable_memory_profiling()
    backend = _resolve_trace_backend(args)
    try:
        with obs.span(
            f"trace.{args.workload}", workload=args.workload, backend=backend.name
        ):
            if args.workload in ("fig08", "fig10"):
                _trace_backend_compare(args, backend)
            elif args.workload == "genscale":
                _trace_genscale(args, backend)
            else:
                _trace_workload(args, backend)
    finally:
        backend.close()
        if args.memprof:
            obs.disable_memory_profiling()
        obs.disable_tracing()
        jsonl.close()
    if manifest is not None:
        _say(args, manifest.summary())
        _say(args)
    _say(args, obs.describe(memory.events, metrics=obs.METRICS))
    _say(args)
    _say(args, f"wrote {jsonl.n_written} trace events -> {out}")
    manifest_dict = manifest.to_dict() if manifest is not None else None
    if args.chrome:
        p = obs.write_chrome_trace(args.chrome, memory.events, manifest=manifest_dict)
        _say(args, f"wrote Chrome trace (chrome://tracing, Perfetto) -> {p}")
    if args.speedscope:
        p = obs.write_speedscope(
            args.speedscope, memory.events, name=f"repro trace {args.workload}"
        )
        _say(args, f"wrote speedscope profile (speedscope.app) -> {p}")
    if args.folded:
        p = obs.write_folded(args.folded, memory.events)
        _say(args, f"wrote folded stacks (flamegraph.pl et al.) -> {p}")
    return 0


#: ``repro bench`` exit codes (documented in ``--help`` and DOCS).
BENCH_EXIT_CLEAN = 0
BENCH_EXIT_USAGE = 2
BENCH_EXIT_DRIFT = 3


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.history import (
        HistoryError,
        diff_records,
        format_diff,
        format_trend,
        load_history,
        select_record,
        trend_rows,
    )

    records = load_history(args.history)
    try:
        if args.bench_command == "diff":
            a = select_record(records, args.a)
            b = select_record(records, args.b)
            rows = diff_records(a, b)
            print(format_diff(a, b, rows, threshold=args.threshold))
            drifted = [
                r for r in rows
                if r["delta_pct"] is not None and abs(r["delta_pct"]) > args.threshold
            ]
        else:  # trend
            rows = trend_rows(records)
            print(format_trend(records, rows, threshold=args.threshold))
            drifted = [
                r for r in rows
                if r["total_pct"] is not None and abs(r["total_pct"]) > args.threshold
            ]
    except HistoryError as exc:
        print(f"error: {exc}")
        return BENCH_EXIT_USAGE
    if args.fail_on_drift and drifted:
        return BENCH_EXIT_DRIFT
    return BENCH_EXIT_CLEAN


def cmd_kernels(args: argparse.Namespace) -> int:
    """Show the compiled-kernel dispatch state (``docs/PERFORMANCE.md``).

    Prints numba availability, the ``REPRO_KERNEL_TIER`` override, the
    auto-probed default tier and — per kernel — the tier it would resolve
    to plus the call site it is dispatched from.  ``--warmup`` additionally
    JIT-compiles every kernel now and reports the compile cost that
    benchmark runs exclude from timed sections.
    """
    from repro import kernels

    d = kernels.describe()
    numba_state = (
        f"available (numba {d['numba_version']})"
        if d["available"]
        else f"not available ({d['probe_error'] or 'numba not installed'})"
    )
    print(f"compiled tier : {numba_state}")
    print(f"env override  : {kernels.ENV_VAR}={d['env']}"
          if d["env"] is not None else f"env override  : {kernels.ENV_VAR} unset")
    print(f"default tier  : {d['default_tier']} (auto-probed)")
    if d["resolve_error"] is not None:
        print(f"resolved tier : error — {d['resolve_error']}")
    else:
        print(f"resolved tier : {d['resolved_tier']}")
    print()
    width = max(len(name) for name in kernels.KERNEL_NAMES)
    for name, info in d["kernels"].items():
        tier = info["tier"] if info["tier"] is not None else "error"
        print(f"  {name:<{width}}  {tier:<10}  {info['dispatched_from']}")
    if args.warmup:
        info = kernels.warmup(force=True)
        print()
        print(f"warmup: tier {info['tier']!r}, "
              f"compile {info['compile_seconds']:.3f}s "
              f"(cold {info['cold_seconds']:.3f}s, warm {info['warm_seconds']:.3f}s)")
        for name, stats in info["kernels"].items():
            print(f"  {name:<{width}}  compile {stats['compile_seconds']:.3f}s")
    return 1 if d["resolve_error"] is not None else 0


def _metrics_url(base: str) -> str:
    """Normalise ``obs scrape``/``top`` targets to concrete endpoints."""
    base = base.rstrip("/")
    return base if base.endswith(("/metrics", "/metrics.json")) else base + "/metrics"


def cmd_obs_serve(args: argparse.Namespace) -> int:
    """Run a workload with the live collector on and an HTTP endpoint up.

    The workload repeats until ``--duration`` elapses (0 = one round), so
    an external scraper — CI, ``repro obs scrape``, a Prometheus agent —
    has a live process to poll.  ``--url-file`` publishes the bound URL
    (useful with ``--port 0``) once the server is accepting requests.
    """
    import time as time_mod

    from repro import obs

    obs.METRICS.reset()
    collector = obs.enable_live_telemetry(interval=args.interval)
    server = obs.TelemetryServer(collector=collector, host=args.host, port=args.port)
    server.start()
    if args.url_file:
        Path(args.url_file).write_text(server.url + "\n")
    _say(args, f"serving live telemetry on {server.url} "
               f"(collector interval {args.interval}s)")
    backend = _resolve_trace_backend(args)
    deadline = time_mod.monotonic() + args.duration
    rounds = 0
    try:
        while True:
            _trace_workload(args, backend)
            rounds += 1
            obs.METRICS.inc("obs.serve.workload_rounds")
            if time_mod.monotonic() >= deadline:
                break
    finally:
        backend.close()
        collector.tick()  # final scrape so short runs still fill windows
        _say(args, f"ran {rounds} workload round(s); "
                   f"served {server.n_scrapes} scrape(s); "
                   f"{len(collector.store)} series collected")
        server.stop()
        obs.disable_live_telemetry()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the streaming connectivity service over an R-MAT update stream.

    A feeder thread pushes :func:`~repro.generators.parallel
    .iter_update_chunks` batches through the service's writer while the
    asyncio front end answers queries from pinned epochs.  The server stays
    up until the stream is drained *and* ``--duration`` has elapsed, so an
    external driver (CI's ``tools/check_service.py``, ``repro obs scrape``)
    has a live endpoint to hit.  ``--url-file`` publishes the bound URL;
    ``--report`` writes a JSON summary (stats + query-latency quantiles).
    """
    import json
    import threading
    import time as time_mod

    from repro import obs
    from repro.api import DynamicGraph
    from repro.generators.parallel import iter_update_chunks
    from repro.service import GraphService, ShardRouter

    obs.METRICS.reset()
    obs.EXEMPLARS.clear()
    collector = obs.enable_live_telemetry(interval=args.interval)
    n = 1 << args.scale
    graph = DynamicGraph(n, representation=args.representation)
    router = (
        ShardRouter(workers=args.workers) if args.backend == "process" else None
    )
    tracer = (
        None
        if args.no_reqtrace
        else obs.RequestTracer(
            head_every=args.head_every,
            slow_threshold_seconds=args.slow_ms / 1000.0,
        )
    )
    service = GraphService(
        graph,
        router=router,
        kernel_tier=args.kernel_tier,
        query_threads=args.query_threads,
        rotate_min_interval=args.rotate_interval,
        reqtrace=tracer if tracer is not None else False,
    )
    # SLO burn-rate alerts ride the collector's watchdog channel, next to
    # the worker-health alerts (when the process backend has a pool).
    watchdog = obs.Watchdog(router.pool if router is not None else None)
    watchdog.attach_slo(service.slo_query)
    watchdog.attach_slo(service.slo_update)
    collector.attach_watchdog(watchdog)
    handle = service.start_background(host=args.host, port=args.port)
    if args.url_file:
        Path(args.url_file).write_text(handle.url + "\n")
    _say(args, f"serving {args.representation} graph n=2^{args.scale} on {handle.url} "
               f"(backend={args.backend})")

    total_edges = args.edges if args.edges else n * args.edge_factor
    feeder_error: list[BaseException] = []

    def feed() -> None:
        try:
            for chunk in iter_update_chunks(
                args.scale, total_edges, edge_factor=args.edge_factor,
                seed=args.seed, chunk_edges=args.chunk_edges,
            ):
                handle.submit(chunk)
                if args.throttle:
                    time_mod.sleep(args.throttle)
        except BaseException as exc:  # noqa: BLE001 - reported by the parent
            feeder_error.append(exc)

    feeder = threading.Thread(target=feed, name="repro-serve-feeder", daemon=True)
    started = time_mod.monotonic()
    feeder.start()
    try:
        feeder.join()
        remaining = args.duration - (time_mod.monotonic() - started)
        if remaining > 0:
            _say(args, f"stream drained; holding the server up {remaining:.1f}s more")
            time_mod.sleep(remaining)
    except KeyboardInterrupt:
        _say(args, "interrupted; shutting down")
    finally:
        collector.tick()
        stats = service._q_stats()
        lat = obs.METRICS.histogram("service.query.seconds")
        report = {
            "url": handle.url,
            "scale": args.scale,
            "backend": args.backend,
            "stats": stats,
            "max_epoch_lag": service.drainer.max_observed_lag,
            "query_latency_seconds": {
                "count": lat.count,
                "p50": lat.quantile(0.50),
                "p99": lat.quantile(0.99),
            },
            "slo": service._q_slo()["slos"],
            "alerts": list(watchdog.alerts),
            "reqtrace": {
                "config": tracer.config() if tracer is not None else None,
                "slow_captured": len(tracer.slow()) if tracer is not None else 0,
                "slow": tracer.slow() if tracer is not None else [],
            },
        }
        if args.report:
            Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
            _say(args, f"wrote service report -> {args.report}")
        handle.close()
        obs.disable_live_telemetry()
        _say(args, f"applied {stats['updates_applied']} updates in "
                   f"{stats['batches_applied']} batch(es) across "
                   f"{stats['epochs_published']} epoch(s); "
                   f"answered {stats['queries']} query(ies)")
    if feeder_error:
        print(f"error: update feeder failed: {feeder_error[0]!r}")
        return 1
    return 0


def cmd_obs_scrape(args: argparse.Namespace) -> int:
    """One-shot scrape of a running endpoint; optionally validate/save it."""
    import urllib.error
    import urllib.request

    from repro.obs.expose import validate_openmetrics

    url = _metrics_url(args.url)
    try:
        body = urllib.request.urlopen(url, timeout=args.timeout).read().decode()
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: scrape of {url} failed: {exc}")
        return 2
    if args.out:
        Path(args.out).write_text(body)
        _say(args, f"wrote {len(body)} bytes -> {args.out}")
    else:
        print(body, end="")
    if args.check:
        try:
            stats = validate_openmetrics(body)
        except ValueError as exc:
            print(f"error: invalid OpenMetrics payload: {exc}")
            return 1
        _say(args, f"payload valid: {stats['n_families']} families, "
                   f"{stats['n_samples']} samples")
    return 0


def cmd_obs_top(args: argparse.Namespace) -> int:
    """Render a running collector's windowed rollups as a terminal table."""
    import json
    import urllib.error
    import urllib.request

    from repro.obs.expose import format_rollups

    url = args.url.rstrip("/") + "/metrics.json"
    try:
        payload = json.loads(
            urllib.request.urlopen(url, timeout=args.timeout).read().decode()
        )
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"error: fetch of {url} failed: {exc}")
        return 2
    print(format_rollups(payload.get("rollups", {}), top=args.top))
    return 0


def cmd_obs_slo(args: argparse.Namespace) -> int:
    """Render a running service's SLO burn-rate state from ``GET /slo``."""
    import json
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/slo"
    try:
        payload = json.loads(
            urllib.request.urlopen(url, timeout=args.timeout).read().decode()
        )
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"error: fetch of {url} failed: {exc}")
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    any_breach = False
    for name in sorted(payload.get("slos", {})):
        state = payload["slos"][name]
        windows = "/".join(f"{w:g}s" for w in state.get("windows_seconds", []))
        print(f"{name}  windows={windows}  "
              f"burn-threshold={state.get('burn_threshold')}")
        for kind in sorted(state.get("objectives", {})):
            obj = state["objectives"][kind]
            rates = " ".join(
                f"{w}={obj['burn_rates'][w]:.2f}"
                for w in sorted(obj.get("burn_rates", {}))
            )
            flag = "BREACHING" if obj.get("breaching") else "ok"
            any_breach = any_breach or bool(obj.get("breaching"))
            line = f"  {kind:<12} objective={obj.get('objective')}"
            if obj.get("threshold_seconds") is not None:
                line += f" threshold={obj['threshold_seconds']:g}s"
            print(f"{line}  burn[{rates}]  {flag}")
        totals = state.get("totals", {})
        print(f"  totals: {totals.get('events', 0)} events "
              f"({totals.get('errors', 0)} errors, {totals.get('slow', 0)} slow); "
              f"{state.get('n_alerts', 0)} alert(s)")
        for alert in state.get("alerts", []):
            print(f"  alert: {alert.get('kind')} burn={alert.get('burn_rates')}")
    return 1 if args.fail_on_breach and any_breach else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Dynamic small-world graph analysis (Madduri & Bader 2009 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesise a graph")
    p.add_argument("--model", choices=["rmat", "ws", "er"], default="rmat")
    p.add_argument("--scale", type=int, default=12, help="n = 2^scale")
    p.add_argument("--edge-factor", type=int, default=10, help="m = edge_factor * n (rmat)")
    p.add_argument("--k", type=int, default=4, help="ring degree (ws)")
    p.add_argument("--beta", type=float, default=0.1, help="rewiring prob (ws)")
    p.add_argument("--p", type=float, default=0.001, help="edge prob (er)")
    p.add_argument("--ts-min", type=int, default=1)
    p.add_argument("--ts-max", type=int, default=-1,
                   help="assign uniform time-stamps in [ts-min, ts-max] (rmat)")
    p.add_argument("--shuffle", action="store_true")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--out", required=True, help=".npz or text path")
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("stats", help="small-world statistics of a graph")
    p.add_argument("graph")
    p.add_argument("--samples", type=int, default=200, help="clustering sample size")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("connectivity", help="spanning-forest connectivity queries")
    p.add_argument("graph")
    p.add_argument("--pairs", nargs="*", default=[], metavar="U,V")
    p.add_argument("--random", type=int, default=0, help="also run N random queries")
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_connectivity)

    p = sub.add_parser(
        "trace", help="run a workload with tracing on; print/export the span tree"
    )
    p.add_argument("workload", nargs="?", default="quickstart",
                   choices=["quickstart", "updates", "bfs", "connectivity",
                            "components", "connectit", "fig08", "fig10",
                            "genscale"])
    p.add_argument("--scale", type=int, default=None,
                   help="n = 2^scale (default: 11; 12 for fig08/fig10; "
                        "14 for genscale)")
    p.add_argument("--edge-factor", type=int, default=8)
    p.add_argument("--updates", type=int, default=2000,
                   help="mixed-stream length for the update workloads")
    p.add_argument("--queries", type=int, default=10_000,
                   help="connectivity query count")
    p.add_argument("--representation", default="hybrid",
                   choices=["dynarr", "dynarr-nr", "treap", "hybrid", "vpart",
                            "epart", "batched"])
    p.add_argument("--machine", default="t2", choices=["t1", "t2", "power570"])
    p.add_argument("--backend", default="serial", choices=["serial", "process"],
                   help="execution backend for the analysis kernels "
                        "(process = shared-memory worker pool)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-backend worker count (default: visible CPUs)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--out", default=None,
                   help="JSONL trace path (default: trace-<workload>.jsonl)")
    p.add_argument("--chrome", default=None, metavar="PATH",
                   help="also export a Chrome trace-event JSON "
                        "(chrome://tracing / Perfetto)")
    p.add_argument("--speedscope", default=None, metavar="PATH",
                   help="also export a speedscope profile (speedscope.app)")
    p.add_argument("--folded", default=None, metavar="PATH",
                   help="also export folded stacks for flamegraph tools")
    p.add_argument("--memprof", action="store_true",
                   help="per-span memory accounting (tracemalloc + RSS); "
                        "spans gain alloc/peak/rss-delta attributes")
    p.add_argument("--quiet", "-q", action="store_true",
                   help="suppress the summary output (artifacts still written)")
    p.add_argument("--no-manifest", action="store_true",
                   help="skip run-manifest capture/stamping (fast scripted runs)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "bench", help="inspect the bench-history ledger (diff/trend across runs)"
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    for name, help_text in (
        ("diff", "per-kernel deltas between two recorded runs"),
        ("trend", "per-kernel trajectory across all recorded runs"),
    ):
        bp = bench_sub.add_parser(name, help=help_text)
        if name == "diff":
            bp.add_argument("a", help="run selector: index, latest/previous/first, "
                                      "or manifest-id/git-sha prefix")
            bp.add_argument("b", help="run selector (positive %% = B slower than A)")
        bp.add_argument("--history", default=str(Path("benchmarks") / "history.jsonl"),
                        help="ledger path (default: benchmarks/history.jsonl)")
        bp.add_argument("--threshold", type=float, default=25.0,
                        help="drift flag threshold in %% (default: 25)")
        bp.add_argument("--fail-on-drift", action="store_true",
                        help="exit 3 when any kernel drifts beyond the threshold "
                             "(0 = clean, 2 = usage/ledger error)")
        bp.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "kernels", help="show the compiled-kernel tier dispatch state"
    )
    p.add_argument("--warmup", action="store_true",
                   help="JIT-compile every kernel now and report compile cost")
    p.set_defaults(fn=cmd_kernels)

    p = sub.add_parser(
        "obs", help="live telemetry: serve/scrape/inspect OpenMetrics endpoints"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    sp = obs_sub.add_parser(
        "serve", help="run a workload with the collector on and /metrics up"
    )
    sp.add_argument("workload", nargs="?", default="quickstart",
                    choices=["quickstart", "updates", "bfs", "connectivity",
                             "components", "connectit"])
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=0,
                    help="TCP port (default 0 = ephemeral; see --url-file)")
    sp.add_argument("--url-file", default=None, metavar="PATH",
                    help="write the bound base URL here once serving")
    sp.add_argument("--interval", type=float, default=0.25,
                    help="collector scrape interval in seconds (default: 0.25)")
    sp.add_argument("--duration", type=float, default=0.0,
                    help="keep repeating the workload for this many seconds "
                         "(default: 0 = a single round)")
    sp.add_argument("--scale", type=int, default=11, help="n = 2^scale")
    sp.add_argument("--edge-factor", type=int, default=8)
    sp.add_argument("--updates", type=int, default=2000)
    sp.add_argument("--queries", type=int, default=10_000)
    sp.add_argument("--representation", default="hybrid",
                    choices=["dynarr", "dynarr-nr", "treap", "hybrid", "vpart",
                             "epart", "batched"])
    sp.add_argument("--machine", default="t2", choices=["t1", "t2", "power570"])
    sp.add_argument("--backend", default="serial", choices=["serial", "process"])
    sp.add_argument("--workers", type=int, default=None)
    sp.add_argument("--seed", type=int, default=1)
    sp.add_argument("--quiet", "-q", action="store_true")
    sp.set_defaults(fn=cmd_obs_serve)

    sp = obs_sub.add_parser(
        "scrape", help="fetch one OpenMetrics payload from a running endpoint"
    )
    sp.add_argument("url", help="endpoint base URL (or .../metrics)")
    sp.add_argument("--check", action="store_true",
                    help="structurally validate the payload (exit 1 if invalid)")
    sp.add_argument("--out", default=None, metavar="PATH",
                    help="write the payload here instead of stdout")
    sp.add_argument("--timeout", type=float, default=10.0)
    sp.add_argument("--quiet", "-q", action="store_true")
    sp.set_defaults(fn=cmd_obs_scrape)

    sp = obs_sub.add_parser(
        "top", help="windowed rollups of a running collector, as a table"
    )
    sp.add_argument("url", help="endpoint base URL")
    sp.add_argument("--top", type=int, default=0,
                    help="show only the N busiest series (default: all)")
    sp.add_argument("--timeout", type=float, default=10.0)
    sp.set_defaults(fn=cmd_obs_top)

    sp = obs_sub.add_parser(
        "slo", help="burn-rate state of a running service's SLO trackers"
    )
    sp.add_argument("url", help="service base URL (GraphService /slo endpoint)")
    sp.add_argument("--json", action="store_true",
                    help="print the raw /slo payload instead of the table")
    sp.add_argument("--fail-on-breach", action="store_true",
                    help="exit 1 when any objective is currently breaching")
    sp.add_argument("--timeout", type=float, default=10.0)
    sp.set_defaults(fn=cmd_obs_slo)

    p = sub.add_parser(
        "serve",
        help="streaming connectivity service: queries over epoch-rotated snapshots",
    )
    p.add_argument("--scale", type=int, default=14, help="n = 2^scale (default: 14)")
    p.add_argument("--edge-factor", type=int, default=8)
    p.add_argument("--edges", type=int, default=None,
                   help="total stream edges (default: n * edge-factor)")
    p.add_argument("--chunk-edges", type=int, default=4096,
                   help="edges per update batch (default: 4096)")
    p.add_argument("--representation", default="hybrid",
                   choices=["dynarr", "dynarr-nr", "treap", "hybrid", "vpart",
                            "epart", "batched"])
    p.add_argument("--backend", default="serial", choices=["serial", "process"],
                   help="components execution: serial kernel or sharded workers")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for --backend process")
    p.add_argument("--kernel-tier", default=None,
                   choices=["python", "scalar", "vector", "compiled"],
                   help="kernel tier override for the serial query kernels")
    p.add_argument("--query-threads", type=int, default=4,
                   help="query executor width (default: 4)")
    p.add_argument("--rotate-interval", type=float, default=0.0,
                   help="min seconds between epoch publishes (default: 0 = "
                        "rotate every batch)")
    p.add_argument("--throttle", type=float, default=0.0,
                   help="seconds to sleep between stream batches (default: 0)")
    p.add_argument("--duration", type=float, default=0.0,
                   help="keep serving at least this many seconds (default: "
                        "0 = exit once the stream drains)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = ephemeral; see --url-file)")
    p.add_argument("--url-file", default=None, metavar="PATH",
                   help="write the bound base URL here once serving")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="write a JSON stats + latency report on shutdown")
    p.add_argument("--interval", type=float, default=0.25,
                   help="live-collector scrape interval (default: 0.25)")
    p.add_argument("--head-every", type=int, default=10,
                   help="head sampling: keep every Nth request trace "
                        "(default: 10; 0 keeps only slow requests)")
    p.add_argument("--slow-ms", type=float, default=100.0,
                   help="tail sampling: requests at or above this latency are "
                        "always captured into /debug/slow (default: 100)")
    p.add_argument("--no-reqtrace", action="store_true",
                   help="disable per-request tracing and slow-query capture")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--quiet", "-q", action="store_true")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("simulate", help="sweep a workload on a simulated machine")
    p.add_argument("graph")
    p.add_argument("--representation", default="hybrid",
                   choices=["dynarr", "dynarr-nr", "treap", "hybrid", "vpart",
                            "epart", "batched"])
    p.add_argument("--machine", default="t2", choices=["t1", "t2", "power570"])
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_simulate)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
