"""repro — reproduction of Madduri & Bader, IPDPS 2009.

Compact dynamic-graph representations (Dyn-arr, Treaps, Hybrid-arr-treap,
vertex/edge partitioning, batched semi-sort), parallel connectivity kernels
(link-cut trees, BFS, connected components, induced temporal subgraphs,
temporal betweenness centrality), and a calibrated simulator of the paper's
multithreaded machines (UltraSPARC T1/T2, IBM Power 570).

Quickstart::

    import repro

    g = repro.generators.rmat_graph(scale=14, edge_factor=10, seed=1)
    dg = repro.DynamicGraph.from_edges(g.n, g.src, g.dst, g.ts,
                                       representation="hybrid")
    forest = dg.spanning_forest()
    forest.connected(0, 42)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from __future__ import annotations

__version__ = "0.1.0"

from repro import errors, util, machine

__all__ = [
    "__version__",
    "errors",
    "util",
    "machine",
]


def __getattr__(name: str):
    # Lazy imports keep `import repro` cheap and avoid import cycles while
    # the subpackages below pull in numpy-heavy modules.
    if name in ("generators", "adjacency", "core", "experiments"):
        import importlib

        mod = importlib.import_module(f"repro.{name}")
        globals()[name] = mod
        return mod
    if name == "DynamicGraph":
        from repro.api import DynamicGraph

        globals()["DynamicGraph"] = DynamicGraph
        return DynamicGraph
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
